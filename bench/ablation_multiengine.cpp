// Extension bench: multi-core kernel scaling (the paper's future work —
// "develop a multi-core architecture where multiple DNA fragments are
// mapped at the same time"). Sweeps the number of modeled query engines
// and reports kernel time and scaling efficiency for a fixed batch.
#include <cstdio>

#include "bench_util.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  using namespace bwaver::bench;

  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.05);
  print_header("Extension: multi-engine kernel scaling", setup);

  const auto genome = ecoli_reference(setup);
  ReadSimConfig rc;
  rc.num_reads = scaled(400'000, setup.scale * 5);
  rc.read_length = 40;
  rc.mapping_ratio = 0.9;
  const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));
  const BwaverCpuMapper cpu(genome, RrrParams{15, 50});
  std::printf("reference: %zu bp, reads: %zu x %u bp\n\n", genome.size(), batch.size(),
              rc.read_length);

  std::printf("%8s %16s %12s %12s\n", "engines", "kernel [ms]", "speed-up",
              "efficiency");
  double base_ms = 0.0;
  for (unsigned engines : {1u, 2u, 4u, 8u, 16u}) {
    DeviceSpec spec;
    spec.num_query_engines = engines;
    BwaverFpgaMapper fpga(cpu.index(), spec);
    FpgaMapReport report;
    fpga.map(batch, &report);
    const double ms = report.kernel_seconds * 1e3;
    if (engines == 1) base_ms = ms;
    std::printf("%8u %16.3f %11.2fx %11.0f%%\n", engines, ms, base_ms / ms,
                100.0 * base_ms / ms / engines);
  }
  std::printf("\nnote: the model assumes each engine gets its own BRAM read port;\n"
              "real fabric limits port replication, so treat >4 engines as the\n"
              "upper bound the paper's future-work direction could reach.\n");
  return 0;
}
