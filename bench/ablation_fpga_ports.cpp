// Ablation: FPGA device-model sensitivity. Varies the port width (the
// paper fixes 512-bit bursts), the kernel clock and the superblock factor,
// reporting the modeled kernel time for a fixed workload. Shows where the
// paper's 512-bit choice sits: at sf=50, narrower ports inflate the
// backward-search step II and the mapping time with it.
#include <cstdio>

#include "bench_util.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  using namespace bwaver::bench;

  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.05);
  print_header("Ablation: FPGA model port width / clock / sf", setup);

  const auto genome = ecoli_reference(setup);
  ReadSimConfig rc;
  rc.num_reads = scaled(200'000, setup.scale * 5);
  rc.read_length = 50;
  rc.mapping_ratio = 0.9;
  const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));
  std::printf("reference: %zu bp, reads: %zu x %u bp\n\n", genome.size(), batch.size(),
              rc.read_length);

  std::printf("%6s %6s %10s %8s %16s %14s\n", "sf", "port", "clock", "step II",
              "kernel [ms]", "total [ms]");
  for (unsigned sf : {50u, 100u, 200u}) {
    const BwaverCpuMapper cpu(genome, RrrParams{15, sf});
    for (unsigned port : {64u, 128u, 256u, 512u}) {
      for (double clock_mhz : {250.0}) {
        DeviceSpec spec;
        spec.port_width_bits = port;
        spec.kernel_clock_hz = clock_mhz * 1e6;
        BwaverFpgaMapper fpga(cpu.index(), spec);
        FpgaMapReport report;
        fpga.map(batch, &report);
        std::printf("%6u %6u %7.0fMHz %8u %16.3f %14.3f\n", sf, port, clock_mhz,
                    fpga.runtime().kernel().step_initiation_interval(),
                    report.kernel_seconds * 1e3, report.total_seconds() * 1e3);
      }
    }
  }

  std::printf("\nclock sweep at the paper's 512-bit port, sf=50:\n");
  std::printf("%10s %16s\n", "clock", "kernel [ms]");
  const BwaverCpuMapper cpu(genome, RrrParams{15, 50});
  for (double clock_mhz : {150.0, 250.0, 300.0, 500.0}) {
    DeviceSpec spec;
    spec.kernel_clock_hz = clock_mhz * 1e6;
    BwaverFpgaMapper fpga(cpu.index(), spec);
    FpgaMapReport report;
    fpga.map(batch, &report);
    std::printf("%7.0fMHz %16.3f\n", clock_mhz, report.kernel_seconds * 1e3);
  }
  return 0;
}
