// Figure 7 reproduction: time to map ~240k 100 bp reads against the E. coli
// and chr21 references, sweeping the mapping ratio (0..100%) and, for
// E. coli, the (b, sf) parameters.
//
// Paper findings to check:
//   * mapping time grows with both b-scan cost (sf) and with the mapping
//     ratio (non-mapping reads exit the backward search early);
//   * mapping time does NOT depend on the reference length (compare the
//     E. coli and chr21 columns at the same ratio).
#include <cstdio>

#include "bench_util.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/read_sim.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

constexpr std::size_t kPaperReads = 240'000;
constexpr unsigned kReadLength = 100;

ReadBatch make_reads(const std::vector<std::uint8_t>& genome, std::size_t count,
                     double ratio, std::uint64_t seed) {
  ReadSimConfig config;
  config.num_reads = count;
  config.read_length = kReadLength;
  config.mapping_ratio = ratio;
  config.seed = seed;
  return ReadBatch::from_simulated(simulate_reads(genome, config));
}

void sweep_reference(const char* label, const std::vector<std::uint8_t>& genome,
                     std::size_t reads, bool sweep_params) {
  std::printf("\n--- %s: %zu bp reference, %zu reads x %u bp ---\n", label,
              genome.size(), reads, kReadLength);
  std::printf("%4s %6s %8s %16s %18s\n", "b", "sf", "mapped%", "CPU time [ms]",
              "FPGA model [ms]");

  const std::vector<RrrParams> params =
      sweep_params ? std::vector<RrrParams>{{5, 50}, {15, 50}, {15, 100}, {15, 200}}
                   : std::vector<RrrParams>{{15, 50}};
  for (const RrrParams p : params) {
    const BwaverCpuMapper mapper(genome, p);
    BwaverFpgaMapper fpga(mapper.index());
    for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const ReadBatch batch = make_reads(genome, reads, ratio, 7 + p.block_bits);
      SoftwareMapReport sw;
      mapper.map(batch, 1, &sw);
      FpgaMapReport hw;
      fpga.map(batch, &hw);
      std::printf("%4u %6u %7.0f%% %16.1f %18.3f\n", p.block_bits,
                  p.superblock_factor, ratio * 100, sw.seconds * 1e3,
                  hw.mapping_seconds() * 1e3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.02);
  print_header("Figure 7: mapping time vs mapping ratio", setup);
  const std::size_t reads = scaled(kPaperReads, setup.scale);

  sweep_reference("E.Coli-like", ecoli_reference(setup), reads, /*sweep_params=*/true);
  // Use a lighter reference scale for chr21 so the bench stays laptop-sized;
  // the reference-length independence is exactly what the figure shows.
  sweep_reference("Human Chr.21-like", chr21_reference(setup), reads,
                  /*sweep_params=*/false);

  std::printf("\npaper findings to check: time rises with ratio and with b/sf;\n"
              "time is independent of reference size at equal ratio.\n");
  return 0;
}
