// Index store benchmark: cold pipeline build (SA + BWT + RRR encoding)
// versus loading the same index back from a checksummed archive, in every
// supported format/mode combination.
//
// The archive is the build-once/load-many split the paper's three-step
// pipeline implies: deployment pays only the load column. Four load paths
// are timed per reference:
//
//   load       — v2 archive, deserializing copy load (the pre-v3 serving
//                path: element-wise reads plus an inverse-BWT pass);
//   copy_load  — v3 archive, LoadMode::kCopy (flat sections memcpy'd);
//   mmap_load  — v3 archive, LoadMode::kMmap, first open (CRC verification
//                faults every page in);
//   warm_load  — v3 archive, LoadMode::kMmap, second open (pages cached —
//                the registry-reload / server-restart case).
//
// The bench is also a self-check: every loaded pipeline must reproduce the
// built pipeline's structures AND emit byte-identical SAM for a fixed read
// set, across v1/v2/v3 and both load modes. Any mismatch exits non-zero.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fmindex/dna.hpp"
#include "io/fastq.hpp"
#include "mapper/pipeline.hpp"
#include "store/index_archive.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

/// Deterministic read set: substrings of the reference at a fixed stride.
std::vector<FastqRecord> sample_reads(const std::vector<std::uint8_t>& genome,
                                      std::size_t count, std::size_t length) {
  std::vector<FastqRecord> reads;
  if (genome.size() < length) return reads;
  const std::size_t stride = (genome.size() - length) / (count + 1) + 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pos = (i * stride) % (genome.size() - length + 1);
    FastqRecord record;
    record.name = "r" + std::to_string(i);
    record.sequence = dna_decode_string(
        std::vector<std::uint8_t>(genome.begin() + pos, genome.begin() + pos + length));
    record.quality.assign(length, 'I');
    reads.push_back(std::move(record));
  }
  return reads;
}

bool check_sam(const char* label, const char* variant, const std::string& got,
               const std::string& want) {
  if (got == want) return true;
  std::printf("!! SAM mismatch for %s (%s load)\n", label, variant);
  return false;
}

bool run_reference(const char* label, const std::vector<std::uint8_t>& genome,
                   const std::filesystem::path& dir, JsonReport& report) {
  const std::string v1 = (dir / (std::string(label) + "_v1.bwva")).string();
  const std::string v2 = (dir / (std::string(label) + "_v2.bwva")).string();
  const std::string v3 = (dir / (std::string(label) + "_v3.bwva")).string();

  WallTimer timer;
  Pipeline built;
  built.build_from_sequence(label, dna_decode_string(genome));
  const double build_ms = timer.milliseconds();

  write_index_archive(v1, built.reference(), built.index(), 1);
  write_index_archive(v2, built.reference(), built.index(), 2);
  timer.reset();
  write_index_archive(v3, built.reference(), built.index(), 3);
  const double save_ms = timer.milliseconds();

  // Pre-v3 serving path: v2 archive, element-wise deserialize + inverse BWT.
  timer.reset();
  Pipeline loaded_v2 = Pipeline::from_archive(v2, {}, LoadMode::kCopy);
  const double load_ms = timer.milliseconds();

  timer.reset();
  Pipeline loaded_copy = Pipeline::from_archive(v3, {}, LoadMode::kCopy);
  const double copy_load_ms = timer.milliseconds();

  timer.reset();
  Pipeline loaded_mmap = Pipeline::from_archive(v3, {}, LoadMode::kMmap);
  const double mmap_load_ms = timer.milliseconds();

  timer.reset();
  Pipeline loaded_warm = Pipeline::from_archive(v3, {}, LoadMode::kMmap);
  const double warm_load_ms = timer.milliseconds();

  const auto archive_mb =
      static_cast<double>(std::filesystem::file_size(v3)) / (1024.0 * 1024.0);
  const double load_speedup = build_ms / (load_ms > 0.0 ? load_ms : 1.0);
  const double mmap_speedup = load_ms / (warm_load_ms > 0.0 ? warm_load_ms : 0.001);
  std::printf("%-12s %10zu %10.1f %9.1f %9.1f %9.1f %9.1f %9.1f %7.2f %7.1fx\n",
              label, genome.size(), build_ms, save_ms, load_ms, copy_load_ms,
              mmap_load_ms, warm_load_ms, archive_mb, mmap_speedup);
  report.metric(std::string(label) + ".build_ms", build_ms);
  report.metric(std::string(label) + ".load_ms", load_ms);
  report.metric(std::string(label) + ".load_speedup", load_speedup);
  report.metric(std::string(label) + ".copy_load_ms", copy_load_ms);
  report.metric(std::string(label) + ".mmap_load_ms", mmap_load_ms);
  report.metric(std::string(label) + ".warm_load_ms", warm_load_ms);
  report.metric(std::string(label) + ".mmap_speedup", mmap_speedup);

  // Self-check 1: the loaded index must be the built one, structure for
  // structure, in every mode.
  bool ok = true;
  const std::pair<const Pipeline*, const char*> variants[] = {
      {&loaded_v2, "v2"}, {&loaded_copy, "v3-copy"}, {&loaded_mmap, "v3-mmap"}};
  for (const auto& [loaded, variant] : variants) {
    if (loaded->index().suffix_array() != built.index().suffix_array() ||
        loaded->reference().concatenated() != built.reference().concatenated()) {
      std::printf("!! archive round-trip mismatch for %s (%s)\n", label, variant);
      ok = false;
    }
  }

  // Self-check 2: byte-identical SAM across archive versions and load modes.
  const auto reads = sample_reads(genome, 50, 36);
  const std::string want = built.map_records(reads).sam;
  Pipeline loaded_v1 = Pipeline::from_archive(v1, {}, LoadMode::kCopy);
  ok &= check_sam(label, "v1-copy", loaded_v1.map_records(reads).sam, want);
  ok &= check_sam(label, "v2-copy", loaded_v2.map_records(reads).sam, want);
  ok &= check_sam(label, "v3-copy", loaded_copy.map_records(reads).sam, want);
  ok &= check_sam(label, "v3-mmap", loaded_mmap.map_records(reads).sam, want);
  ok &= check_sam(label, "v3-mmap-warm", loaded_warm.map_records(reads).sam, want);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.1);
  print_header("Index store: cold build vs archive load (copy vs mmap)", setup);

  const auto dir =
      std::filesystem::temp_directory_path() / "bwaver_bench_index_load";
  std::filesystem::create_directories(dir);

  JsonReport report("bench_index_load", setup.json);
  std::printf("%-12s %10s %10s %9s %9s %9s %9s %9s %7s %7s\n", "reference",
              "bp", "build[ms]", "save", "load", "copy", "mmap", "warm", "MiB",
              "speedup");
  bool ok = true;
  ok &= run_reference("ecoli_like", ecoli_reference(setup), dir, report);
  ok &= run_reference("chr21_like", chr21_reference(setup), dir, report);

  std::filesystem::remove_all(dir);
  std::printf("\nload = v2 deserializing read + inverse BWT (the pre-v3 path);\n"
              "copy/mmap/warm = v3 flat archive in each LoadMode (warm = second\n"
              "mmap open). The mmap speedup is what `bwaver serve --store-dir\n"
              "--load-mode mmap` gains on every restart and registry reload.\n");
  report.emit();
  if (!ok) {
    std::printf("!! bench self-check FAILED\n");
    return 1;
  }
  return 0;
}
