// Index store benchmark: cold pipeline build (SA + BWT + RRR encoding)
// versus loading the same index back from a checksummed archive.
//
// The archive is the build-once/load-many split the paper's three-step
// pipeline implies: deployment pays only the load column, which skips
// suffix-array construction entirely and replaces BWT encoding with a
// sequential checksummed read (plus one inverse-BWT pass to recover the
// reference text).
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "fmindex/dna.hpp"
#include "mapper/pipeline.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

void run_reference(const char* label, const std::vector<std::uint8_t>& genome,
                   const std::filesystem::path& dir, JsonReport& report) {
  const std::string archive = (dir / (std::string(label) + ".bwva")).string();

  WallTimer timer;
  Pipeline built;
  built.build_from_sequence(label, dna_decode_string(genome));
  const double build_ms = timer.milliseconds();

  timer.reset();
  built.save_index(archive);
  const double save_ms = timer.milliseconds();

  timer.reset();
  const Pipeline loaded = Pipeline::from_archive(archive);
  const double load_ms = timer.milliseconds();

  const auto archive_mb =
      static_cast<double>(std::filesystem::file_size(archive)) / (1024.0 * 1024.0);
  const double load_speedup = build_ms / (load_ms > 0.0 ? load_ms : 1.0);
  std::printf("%-18s %10zu %12.1f %10.1f %10.1f %9.2f %8.1fx\n", label,
              genome.size(), build_ms, save_ms, load_ms, archive_mb,
              load_speedup);
  report.metric(std::string(label) + ".build_ms", build_ms);
  report.metric(std::string(label) + ".load_ms", load_ms);
  report.metric(std::string(label) + ".load_speedup", load_speedup);

  // The loaded index must be the built one, structure for structure.
  if (loaded.index().suffix_array() != built.index().suffix_array() ||
      loaded.reference().concatenated() != built.reference().concatenated()) {
    std::printf("!! archive round-trip mismatch for %s\n", label);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.1);
  print_header("Index store: cold build vs archive load", setup);

  const auto dir =
      std::filesystem::temp_directory_path() / "bwaver_bench_index_load";
  std::filesystem::create_directories(dir);

  JsonReport report("bench_index_load", setup.json);
  std::printf("%-18s %10s %12s %10s %10s %9s %8s\n", "reference", "bp",
              "build [ms]", "save [ms]", "load [ms]", "MiB", "speedup");
  run_reference("ecoli_like", ecoli_reference(setup), dir, report);
  run_reference("chr21_like", chr21_reference(setup), dir, report);

  std::filesystem::remove_all(dir);
  std::printf("\nbuild = SA + BWT + RRR encoding in memory; load = checksummed\n"
              "archive read + inverse BWT. The speedup is what `bwaver serve\n"
              "--store-dir` gains on every restart and registry reload.\n");
  report.emit();
  return 0;
}
