// SIMD rank-kernel and Occ-engine throughput.
//
// Three tiers of the same question — how fast can this machine count
// characters in the packed BWT?
//   1. raw kernels: every compiled count_words implementation (portable
//      SWAR, SSE4.2, AVX2/NEON when the CPU has them) streaming the whole
//      packed E. coli text, in GB/s;
//   2. Occ engines: random rank() and narrow-interval rank2() probes (the
//      backward-search access pattern) against each software backend, in
//      Mranks/s, with a cross-engine checksum so a wrong answer can never
//      look fast;
//   3. end to end: count-only mapping through the FM-index over each
//      backend.
// The vector-vs-sampled rank ratio is the paper-motivated payoff (Snytsar:
// vectorized counting beats scalar SWAR) and is enforced as a hard
// `vector_vs_scalar_speedup_min` floor in bench/baseline.json.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "fmindex/epr_occ.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "kernels/rank_kernel.hpp"
#include "kernels/vector_occ.hpp"
#include "mapper/read_batch.hpp"
#include "sim/read_sim.hpp"
#include "util/cpu_features.hpp"
#include "util/flat_array.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

struct RankQuery {
  std::uint32_t pos;
  std::uint8_t code;
};

std::vector<RankQuery> random_queries(std::size_t count, std::size_t n,
                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<RankQuery> queries(count);
  for (auto& q : queries) {
    q.pos = static_cast<std::uint32_t>(rng.below(n + 1));
    q.code = static_cast<std::uint8_t>(rng.below(4));
  }
  return queries;
}

template <typename RankFn>
double time_ranks(const std::vector<RankQuery>& queries, std::uint64_t& checksum,
                  const RankFn& rank) {
  // Best of three passes: the enforced floors are ratios of these numbers,
  // and a single pass is at the mercy of frequency ramps and cold lines.
  double best = 0.0;
  std::uint64_t sum = 0;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer timer;
    sum = 0;
    for (const RankQuery& q : queries) sum += rank(q);
    const double seconds = timer.seconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  checksum = sum;
  return best;
}

void report_engine(const char* label, std::size_t ranks, double seconds,
                   std::size_t bytes, std::uint64_t checksum) {
  std::printf("%-26s %12.1f %12.3f %12.3f  %016llx\n", label,
              static_cast<double>(ranks) / seconds / 1e6, seconds * 1e3,
              static_cast<double>(bytes) / 1e6,
              static_cast<unsigned long long>(checksum));
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/1.0);
  JsonReport report("bench_occ_kernels", setup.json);
  print_header("Occ/rank kernels: SIMD dispatch and engine throughput", setup);
  std::printf("cpu features: %s (active kernel: %s)\n",
              cpu_features_string(cpu_features()).c_str(),
              kernels::active_kernel().name);

  const auto genome = ecoli_reference(setup);
  const FmIndex<RrrWaveletOcc> base(
      genome, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  const auto& bwt = base.bwt().symbols;
  std::printf("reference: %zu bp, BWT: %zu symbols\n\n", genome.size(), bwt.size());

  // ---- tier 1: raw kernels over the whole packed text, GB/s -------------
  std::vector<std::uint64_t> packed((bwt.size() + 31) / 32, 0);
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    packed[i / 32] |= (std::uint64_t{bwt[i]} & 3) << ((i % 32) * 2);
  }
  const std::size_t sweep_bytes = packed.size() * sizeof(std::uint64_t);
  // Repeat until ~256 MB have streamed so the figure is not timer noise.
  const std::size_t repeats =
      std::max<std::size_t>(1, (256u << 20) / std::max<std::size_t>(1, sweep_bytes));
  std::printf("%-26s %12s %12s\n", "kernel", "GB/s", "checksum");
  std::uint64_t kernel_reference_sum = 0;
  for (const kernels::RankKernel& kernel : kernels::available_kernels()) {
    WallTimer timer;
    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        sum += kernel.count_words(packed.data(), packed.size(), c);
      }
    }
    const double seconds = timer.seconds();
    const double gbps = static_cast<double>(sweep_bytes) * 4.0 *
                        static_cast<double>(repeats) / seconds / 1e9;
    std::printf("%-26s %12.2f %16llx\n", kernel.name, gbps,
                static_cast<unsigned long long>(sum));
    report.metric(std::string("kernel_") + kernel.name + "_gbps", gbps);
    if (kernel_reference_sum == 0) kernel_reference_sum = sum;
    if (sum != kernel_reference_sum) {
      std::fprintf(stderr, "FATAL: kernel %s checksum mismatch\n", kernel.name);
      return 1;
    }
  }

  // ---- tier 2: Occ engines, random rank probes --------------------------
  const SampledOcc sampled(bwt);
  const PlainWaveletOcc plain(bwt);
  const RrrWaveletOcc& rrr = base.occ_backend();
  const VectorOcc vector(bwt);
  const EprOcc epr(bwt);

  const std::size_t num_queries = scaled(2'000'000, setup.scale);
  const auto queries = random_queries(num_queries, bwt.size(), setup.seed);
  // Narrow-interval pairs: backward search calls occ2 on [lo, hi) spans
  // that shrink toward a handful of rows, usually inside one checkpoint.
  auto pairs = queries;
  for (auto& q : pairs) {
    q.pos = q.pos < 512 ? 0 : q.pos - 512;
  }

  std::printf("\n%-26s %12s %12s %12s  %s\n", "engine rank()", "Mranks/s",
              "time [ms]", "occ [MB]", "checksum");
  std::uint64_t want = 0;
  double sampled_seconds = time_ranks(
      queries, want, [&](const RankQuery& q) { return sampled.rank(q.code, q.pos); });
  report_engine("sampled (scalar SWAR)", num_queries, sampled_seconds,
                sampled.size_in_bytes(), want);

  std::uint64_t sum = 0;
  const double rrr_seconds = time_ranks(
      queries, sum, [&](const RankQuery& q) { return rrr.rank(q.code, q.pos); });
  report_engine("rrr wavelet", num_queries, rrr_seconds, rrr.size_in_bytes(), sum);
  if (sum != want) return std::fprintf(stderr, "FATAL: rrr checksum\n"), 1;

  const double plain_seconds = time_ranks(
      queries, sum, [&](const RankQuery& q) { return plain.rank(q.code, q.pos); });
  report_engine("plain wavelet", num_queries, plain_seconds, plain.size_in_bytes(),
                sum);
  if (sum != want) return std::fprintf(stderr, "FATAL: plain checksum\n"), 1;

  const double vector_seconds = time_ranks(
      queries, sum, [&](const RankQuery& q) { return vector.rank(q.code, q.pos); });
  report_engine("vector (SIMD kernels)", num_queries, vector_seconds,
                vector.size_in_bytes(), sum);
  if (sum != want) return std::fprintf(stderr, "FATAL: vector checksum\n"), 1;

  const double epr_seconds = time_ranks(
      queries, sum, [&](const RankQuery& q) { return epr.rank(q.code, q.pos); });
  report_engine("epr (bit-transposed)", num_queries, epr_seconds,
                epr.size_in_bytes(), sum);
  if (sum != want) return std::fprintf(stderr, "FATAL: epr checksum\n"), 1;

  const double rank_speedup = sampled_seconds / vector_seconds;
  report.metric("rank_sampled_mops", num_queries / sampled_seconds / 1e6);
  report.metric("rank_rrr_mops", num_queries / rrr_seconds / 1e6);
  report.metric("rank_plain_mops", num_queries / plain_seconds / 1e6);
  report.metric("rank_vector_mops", num_queries / vector_seconds / 1e6);
  report.metric("rank_epr_mops", num_queries / epr_seconds / 1e6);

  // rank2 over narrow intervals — the actual occ2 shape in the search loop.
  std::uint64_t pair_want = 0;
  WallTimer sampled2_timer;
  for (std::size_t i = 0; i < num_queries; ++i) {
    pair_want += sampled.rank(queries[i].code, pairs[i].pos) +
                 sampled.rank(queries[i].code, queries[i].pos);
  }
  const double sampled2_seconds = sampled2_timer.seconds();

  WallTimer vector2_timer;
  std::uint64_t pair_sum = 0;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto [a, b] = vector.rank2(queries[i].code, pairs[i].pos, queries[i].pos);
    pair_sum += a + b;
  }
  const double vector2_seconds = vector2_timer.seconds();
  if (pair_sum != pair_want) return std::fprintf(stderr, "FATAL: rank2 checksum\n"), 1;

  const double rank2_speedup = sampled2_seconds / vector2_seconds;
  std::printf("\nrank2 narrow pairs:        sampled %.1f ms, vector %.1f ms "
              "(%.2fx)\n", sampled2_seconds * 1e3, vector2_seconds * 1e3,
              rank2_speedup);
  report.metric("rank2_sampled_mops", num_queries / sampled2_seconds / 1e6);
  report.metric("rank2_vector_mops", num_queries / vector2_seconds / 1e6);

  // The enforced headline: vectorized counting vs the scalar-SWAR backend
  // on the same packed text, single random ranks.
  std::printf("vector vs sampled speedup: %.2fx rank, %.2fx rank2\n", rank_speedup,
              rank2_speedup);
  report.metric("vector_vs_scalar_speedup", rank_speedup);
  report.metric("vector_vs_scalar_rank2_speedup", rank2_speedup);

  // The second enforced headline: the EPR dictionary's one-line/one-popcount
  // rank against the vectorized 192-base-block scan, same random probes.
  const double epr_speedup = vector_seconds / epr_seconds;
  std::printf("epr vs vector speedup:     %.2fx rank\n", epr_speedup);
  report.metric("epr_vs_vector_speedup", epr_speedup);

  // rank_all — the bidirectional-extension primitive: all four symbol
  // counts at one offset against four independent rank() calls.
  std::uint64_t all_sum = 0;
  WallTimer all_timer;
  for (const RankQuery& q : queries) {
    const auto counts = epr.rank_all(q.pos);
    all_sum += counts[0] + counts[1] + counts[2] + counts[3];
  }
  const double all_seconds = all_timer.seconds();
  std::uint64_t four_sum = 0;
  WallTimer four_timer;
  for (const RankQuery& q : queries) {
    for (std::uint8_t c = 0; c < 4; ++c) four_sum += epr.rank(c, q.pos);
  }
  const double four_seconds = four_timer.seconds();
  if (all_sum != four_sum) return std::fprintf(stderr, "FATAL: rank_all checksum\n"), 1;
  std::printf("epr rank_all vs 4x rank:   %.1f vs %.1f ms (%.2fx)\n",
              all_seconds * 1e3, four_seconds * 1e3, four_seconds / all_seconds);
  report.metric("epr_rank_all_mops", num_queries / all_seconds / 1e6);
  report.metric("epr_rank_all_vs_four_ranks", four_seconds / all_seconds);

  // ---- tier 3: end-to-end count-only mapping delta ----------------------
  ReadSimConfig rc;
  rc.num_reads = scaled(100'000, setup.scale);
  rc.read_length = 50;
  rc.mapping_ratio = 0.9;
  rc.seed = setup.seed + 1;
  const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));

  const auto count_throughput = [&batch](const auto& index, std::uint64_t& mapped) {
    WallTimer timer;
    mapped = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!index.count(batch.read(i)).empty()) ++mapped;
    }
    return static_cast<double>(batch.size()) / timer.seconds() / 1e3;
  };

  const auto borrow_bwt = [&base] {
    return Bwt{FlatArray<std::uint8_t>::view_of(base.bwt().symbols),
               base.bwt().primary, base.bwt().text_length};
  };
  const FmIndex<SampledOcc> sampled_index(
      borrow_bwt(), FlatArray<std::uint32_t>::view_of(base.suffix_array()),
      [](std::span<const std::uint8_t> b) { return SampledOcc(b); });
  const FmIndex<VectorOcc> vector_index(
      borrow_bwt(), FlatArray<std::uint32_t>::view_of(base.suffix_array()),
      [](std::span<const std::uint8_t> b) { return VectorOcc(b); });
  const FmIndex<EprOcc> epr_index(
      borrow_bwt(), FlatArray<std::uint32_t>::view_of(base.suffix_array()),
      [](std::span<const std::uint8_t> b) { return EprOcc(b); });

  std::uint64_t mapped_sampled = 0, mapped_vector = 0, mapped_rrr = 0,
                mapped_epr = 0;
  const double map_rrr = count_throughput(base, mapped_rrr);
  const double map_sampled = count_throughput(sampled_index, mapped_sampled);
  const double map_vector = count_throughput(vector_index, mapped_vector);
  const double map_epr = count_throughput(epr_index, mapped_epr);
  if (mapped_sampled != mapped_rrr || mapped_vector != mapped_rrr ||
      mapped_epr != mapped_rrr) {
    std::fprintf(stderr, "FATAL: engines disagree on mapped-read count\n");
    return 1;
  }
  std::printf("\ncount-only mapping (%zu reads x %u bp): rrr %.1f, sampled %.1f, "
              "vector %.1f, epr %.1f kreads/s\n", batch.size(), rc.read_length,
              map_rrr, map_sampled, map_vector, map_epr);
  report.metric("map_rrr_kreads_per_sec", map_rrr);
  report.metric("map_sampled_kreads_per_sec", map_sampled);
  report.metric("map_vector_kreads_per_sec", map_vector);
  report.metric("map_epr_kreads_per_sec", map_epr);
  report.metric("map_vector_vs_sampled", map_vector / map_sampled);

  report.emit();
  return 0;
}
