#!/usr/bin/env python3
"""Enforce bench/baseline.json performance floors against bench --json output.

Usage:
    check_baseline.py baseline.json bench_output.txt [bench_output.txt ...]

Each bench output file is the captured stdout of one benchmark run with
--json: the human-readable table followed by a single machine-readable line
of the form {"bench": "<name>", "metrics": {...}}. This script takes the
LAST line starting with '{' from each file.

Rules (documented in baseline.json's _comment):
  * plain key        -> measured >= floor * 0.7   (fail on a >30% regression)
  * key ending _min  -> measured >= value          (hard minimum, no grace)
  * key ending _max  -> measured <= value          (hard maximum, no grace)

A baseline key whose metric is missing from the measured output is an error:
silently skipping it would let a renamed metric disable its own floor.
Exit status is non-zero when any check fails.
"""

import json
import sys

GRACE = 0.7  # plain floors tolerate a 30% drop before failing


def load_metrics(path):
    """Returns (bench_name, metrics_dict) from a bench stdout capture."""
    json_line = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.lstrip().startswith("{"):
                json_line = line
    if json_line is None:
        raise ValueError(f"{path}: no JSON metrics line (was --json passed?)")
    doc = json.loads(json_line)
    return doc["bench"], doc["metrics"]


def check(bench, floors, metrics):
    """Yields (ok, message) per baseline key for one bench."""
    for key, bound in floors.items():
        if key.startswith("_"):
            continue
        if key.endswith("_min"):
            metric, kind = key[: -len("_min")], "min"
        elif key.endswith("_max"):
            metric, kind = key[: -len("_max")], "max"
        else:
            metric, kind = key, "floor"
        if metric not in metrics:
            yield False, f"{bench}.{metric}: missing from bench output"
            continue
        value = metrics[metric]
        if kind == "min":
            ok = value >= bound
            rule = f">= {bound} (hard minimum)"
        elif kind == "max":
            ok = value <= bound
            rule = f"<= {bound} (hard maximum)"
        else:
            ok = value >= bound * GRACE
            rule = f">= {bound * GRACE:g} (baseline {bound} * {GRACE})"
        status = "ok" if ok else "FAIL"
        yield ok, f"{bench}.{metric}: {value:g} {rule} ... {status}"


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    measured = {}
    for path in argv[2:]:
        bench, metrics = load_metrics(path)
        measured[bench] = metrics

    failed = False
    for bench, floors in baseline.items():
        if bench.startswith("_"):
            continue
        if bench not in measured:
            print(f"{bench}: no bench output supplied ... FAIL")
            failed = True
            continue
        for ok, message in check(bench, floors, measured[bench]):
            print(message)
            failed = failed or not ok
    print("baseline check:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
