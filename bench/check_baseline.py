#!/usr/bin/env python3
"""Enforce bench/baseline.json performance floors against bench --json output.

Usage:
    check_baseline.py baseline.json bench_output.txt [bench_output.txt ...]
    check_baseline.py --self-test

Each bench output file is the captured stdout of one benchmark run with
--json: the human-readable table followed by a single machine-readable line
of the form {"bench": "<name>", "metrics": {...}}. This script takes the
LAST line starting with '{' from each file.

Rules (documented in baseline.json's _comment):
  * plain key        -> measured >= floor * 0.7   (fail on a >30% regression)
  * key ending _min  -> measured >= value          (hard minimum, no grace)
  * key ending _max  -> measured <= value          (hard maximum, no grace)

A baseline key whose metric is missing from the measured output is an error:
silently skipping it would let a renamed (or typo'd) key disable its own
floor. The failure message names the baseline key verbatim and lists the
metrics the bench actually emitted, so a mismatch is a one-look fix.

--self-test runs the rule engine against fixture data (no files needed) and
exits non-zero if any rule misbehaves; CI runs it before the real check.

Exit status is non-zero when any check fails.
"""

import json
import sys

GRACE = 0.7  # plain floors tolerate a 30% drop before failing


def load_metrics(path):
    """Returns (bench_name, metrics_dict) from a bench stdout capture."""
    json_line = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.lstrip().startswith("{"):
                json_line = line
    if json_line is None:
        raise ValueError(f"{path}: no JSON metrics line (was --json passed?)")
    try:
        doc = json.loads(json_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed JSON metrics line: {error}") from error
    if not isinstance(doc, dict) or "bench" not in doc or "metrics" not in doc:
        raise ValueError(
            f"{path}: JSON line lacks 'bench'/'metrics' keys "
            "(expected {\"bench\": ..., \"metrics\": {...}})")
    return doc["bench"], doc["metrics"]


def check(bench, floors, metrics):
    """Yields (ok, message) per baseline key for one bench."""
    for key, bound in floors.items():
        if key.startswith("_"):
            continue
        if key.endswith("_min"):
            metric, kind = key[: -len("_min")], "min"
        elif key.endswith("_max"):
            metric, kind = key[: -len("_max")], "max"
        else:
            metric, kind = key, "floor"
        if metric not in metrics:
            available = ", ".join(sorted(metrics)) or "<none>"
            yield False, (
                f"{bench}: baseline key '{key}' needs metric '{metric}', "
                f"which the bench did not emit (emitted: {available}) ... FAIL")
            continue
        value = metrics[metric]
        if kind == "min":
            ok = value >= bound
            rule = f">= {bound} (hard minimum)"
        elif kind == "max":
            ok = value <= bound
            rule = f"<= {bound} (hard maximum)"
        else:
            ok = value >= bound * GRACE
            rule = f">= {bound * GRACE:g} (baseline {bound} * {GRACE})"
        status = "ok" if ok else "FAIL"
        yield ok, f"{bench}.{metric}: {value:g} {rule} ... {status}"


def run_checks(baseline, measured):
    """Returns True when every floor in `baseline` holds over `measured`."""
    failed = False
    for bench, floors in baseline.items():
        if bench.startswith("_"):
            continue
        if bench not in measured:
            print(f"{bench}: no bench output supplied ... FAIL")
            failed = True
            continue
        for ok, message in check(bench, floors, measured[bench]):
            print(message)
            failed = failed or not ok
    return not failed


def self_test():
    """Exercises every rule of the checker against fixture data."""
    metrics = {"speedup": 2.0, "reads_per_sec": 800.0, "overhead_pct": 1.5}

    def outcomes(floors):
        return [ok for ok, _ in check("fixture", floors, metrics)]

    cases = [
        ("plain floor passes inside grace", {"reads_per_sec": 1000}, [True]),
        ("plain floor fails past grace", {"reads_per_sec": 2000}, [False]),
        ("_min passes at exact bound", {"speedup_min": 2.0}, [True]),
        ("_min fails without grace", {"speedup_min": 2.01}, [False]),
        ("_max passes under bound", {"overhead_pct_max": 2.0}, [True]),
        ("_max fails over bound", {"overhead_pct_max": 1.0}, [False]),
        ("missing metric fails", {"typo_metric_min": 1.0}, [False]),
        ("underscore keys are skipped", {"_comment": "x"}, []),
    ]
    failed = False
    for name, floors, expected in cases:
        got = outcomes(floors)
        ok = got == expected
        failed = failed or not ok
        print(f"self-test: {name} ... {'ok' if ok else 'FAIL'}")

    # A bench named in the baseline but absent from the measured set fails.
    ok = not run_checks({"absent_bench": {"k": 1}}, {})
    failed = failed or not ok
    print(f"self-test: missing bench output fails ... {'ok' if ok else 'FAIL'}")

    # Missing-metric message names the baseline key and lists what was emitted.
    messages = [m for _, m in check("fixture", {"typo_metric_min": 1.0}, metrics)]
    ok = (len(messages) == 1 and "'typo_metric_min'" in messages[0]
          and "reads_per_sec" in messages[0])
    failed = failed or not ok
    print(f"self-test: missing-metric message is actionable ... "
          f"{'ok' if ok else 'FAIL'}")

    print("self-test:", "FAILED" if failed else "passed")
    return 1 if failed else 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except json.JSONDecodeError as error:
        print(f"{argv[1]}: malformed baseline JSON: {error}", file=sys.stderr)
        return 2

    measured = {}
    for path in argv[2:]:
        try:
            bench, metrics = load_metrics(path)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        measured[bench] = metrics

    passed = run_checks(baseline, measured)
    print("baseline check:", "passed" if passed else "FAILED")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
