// K-mer seed-table benchmark: the exact-search hot path (both strands per
// read, the query the FPGA kernel and the software mappers both run) with
// and without the precomputed seed table.
//
// Short reads are the table's sweet spot: with the default k = 12, a 36 bp
// read skips a third of its backward-search steps — and precisely the wide
// early intervals whose two occ lookups land in distant superblocks, the
// most expensive steps of the search. The bench reports reads/sec for both
// paths and their ratio; CI holds the ratio above the floor in
// bench/baseline.json.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/kmer_table.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/reference_set.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/read_batch.hpp"
#include "sim/read_sim.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

constexpr int kRepetitions = 3;

/// One timed pass over the batch: the per-read two-strand exact search.
/// Returns wall ms; folds every interval into `checksum` so the seeded and
/// unseeded passes can be cross-checked (and the loop cannot be elided).
double time_pass(const FmIndex<RrrWaveletOcc>& index, const ReadBatch& batch,
                 std::uint64_t& checksum) {
  WallTimer timer;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto [fwd, rev] = index.count_both_strands(batch.read(i));
    checksum += fwd.lo + fwd.hi + rev.lo + rev.hi;
  }
  return timer.milliseconds();
}

double best_of(const FmIndex<RrrWaveletOcc>& index, const ReadBatch& batch,
               std::uint64_t& checksum) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    checksum = 0;
    const double ms = time_pass(index, batch, checksum);
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/1.0);
  print_header("K-mer seed table: seeded vs unseeded exact search", setup);

  const auto genome = ecoli_reference(setup);
  std::printf("building index over %zu bp...\n", genome.size());
  WallTimer timer;
  FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
  const double index_build_ms = timer.milliseconds();

  ReadSimConfig rconfig;
  rconfig.num_reads = scaled(20000, setup.scale);
  rconfig.read_length = 36;  // short reads: seed skips 12 of 36 steps
  rconfig.mapping_ratio = 1.0;
  rconfig.seed = setup.seed;
  const auto reads = simulate_reads(genome, rconfig);
  const ReadBatch batch = ReadBatch::from_simulated(reads);

  timer.reset();
  index.build_seed_table(genome, KmerSeedTable::kDefaultK);
  const double table_build_ms = timer.milliseconds();
  const unsigned k = index.seed_table()->k();
  const auto table = index.shared_seed_table();

  std::printf("%zu reads of %u bp, seed k = %u (table %.1f MiB, built in %.1f ms)\n\n",
              batch.size(), rconfig.read_length, k,
              static_cast<double>(table->size_in_bytes()) / (1024.0 * 1024.0),
              table_build_ms);
  std::printf("%-10s %12s %12s %9s\n", "path", "wall [ms]", "reads/s", "speedup");

  index.set_seed_table(nullptr);
  std::uint64_t unseeded_sum = 0;
  const double unseeded_ms = best_of(index, batch, unseeded_sum);
  const double unseeded_rps =
      1000.0 * static_cast<double>(batch.size()) / unseeded_ms;
  std::printf("%-10s %12.1f %12.0f %9s\n", "unseeded", unseeded_ms, unseeded_rps,
              "1.00x");

  index.set_seed_table(table);
  std::uint64_t seeded_sum = 0;
  const double seeded_ms = best_of(index, batch, seeded_sum);
  const double seeded_rps = 1000.0 * static_cast<double>(batch.size()) / seeded_ms;
  const double speedup = unseeded_ms / (seeded_ms > 0.0 ? seeded_ms : 1.0);
  std::printf("%-10s %12.1f %12.0f %8.2fx\n", "seeded", seeded_ms, seeded_rps,
              speedup);

  if (seeded_sum != unseeded_sum) {
    std::printf("!! seeded/unseeded interval checksum mismatch (%llu vs %llu)\n",
                static_cast<unsigned long long>(seeded_sum),
                static_cast<unsigned long long>(unseeded_sum));
    return 1;
  }

  std::printf("\nboth passes run the identical two-strand exact search; the\n"
              "seed table only replaces each search's first %u steps with one\n"
              "table lookup (empty entries fall back to the full recurrence).\n",
              k);

  // One full seeded mapping pass for the per-stage decomposition the
  // observability subsystem tracks (no job layer here, so queue wait is 0).
  ReferenceSet reference;
  reference.add("bench_ref", genome);
  PipelineConfig map_config;
  map_config.engine = MappingEngine::kCpu;
  const MappingOutcome outcome =
      map_records_over(index, reference, map_config, reads_to_fastq(reads));
  std::printf("seeded full-map stage split: seed %.1f ms, search %.1f ms, "
              "locate %.1f ms, sam %.1f ms\n",
              outcome.stages.seed_ms, outcome.stages.search_ms,
              outcome.stages.locate_ms, outcome.stages.sam_ms);

  JsonReport report("bench_kmer_seed", setup.json);
  report.metric("index_build_ms", index_build_ms);
  report.metric("table_build_ms", table_build_ms);
  report.metric("seed_k", k);
  report.metric("unseeded_reads_per_sec", unseeded_rps);
  report.metric("seeded_reads_per_sec", seeded_rps);
  report.metric("speedup", speedup);
  report.metric("seed_ms", outcome.stages.seed_ms);
  report.metric("search_ms", outcome.stages.search_ms);
  report.metric("locate_ms", outcome.stages.locate_ms);
  report.metric("sam_ms", outcome.stages.sam_ms);
  report.metric("queue_wait_ms", 0.0);
  report.emit();
  return 0;
}
