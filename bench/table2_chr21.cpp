// Table II reproduction: 1 / 10 / 100 M x 40 bp reads against the
// Human-chr21 reference, b=15, sf=50, same five engines as Table I.
//
// Paper numbers (ms):
//   1 M:   FPGA 242,  CPU 3302   (13.62x), Bowtie2 1891/344/180
//   10 M:  FPGA 460,  CPU 28658  (62.4x),  Bowtie2 19126/3483/1823
//   100 M: FPGA 3783, CPU 266253 (70.39x), Bowtie2 192075/35969/18575
//
// The paper's observation to reproduce: the structure-load overhead is
// fixed, so the FPGA speed-up *grows* with batch size (13.6x -> 70.4x).
#include <cstdio>

#include "bench_util.hpp"
#include "perf_table.hpp"
#include "sim/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  using namespace bwaver::bench;

  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.01);
  print_header("Table II: 1/10/100M x 40bp reads on Chr.21 (b=15, sf=50)", setup);

  // Keep the reference at a laptop-friendly scale too; search time is
  // independent of reference size (Fig. 7), so rows keep their shape.
  const auto genome = chr21_reference(setup);
  std::printf("reference: %zu bp\n", genome.size());

  const BwaverCpuMapper bwaver(genome, RrrParams{15, 50});
  const Bowtie2LikeMapper bowtie(genome);

  const std::size_t paper_reads[3] = {1'000'000, 10'000'000, 100'000'000};
  const PaperRow paper_rows[3] = {
      {242, 3302, 1891, 344, 180},
      {460, 28658, 19126, 3483, 1823},
      {3783, 266253, 192075, 35969, 18575},
  };

  double fpga_speedup_first = 0, fpga_speedup_last = 0;
  for (int i = 0; i < 3; ++i) {
    const std::size_t reads = scaled(paper_reads[i], setup.scale);
    std::printf("\n--- %zu reads (paper: %zu) ---\n", reads, paper_reads[i]);

    ReadSimConfig rc;
    rc.num_reads = reads;
    rc.read_length = 40;
    rc.mapping_ratio = 0.9;
    rc.seed = setup.seed + static_cast<std::uint64_t>(i);
    const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));

    const MeasuredRow row = run_performance_row(bwaver, bowtie, batch);
    print_performance_row(row, paper_rows[i], DeviceSpec{});
    const double speedup = row.cpu_s / row.fpga_s;
    if (i == 0) fpga_speedup_first = speedup;
    if (i == 2) fpga_speedup_last = speedup;
  }

  std::printf("\nshape check (paper: 13.6x at 1M -> 70.4x at 100M): "
              "measured %.1fx -> %.1fx (%s)\n",
              fpga_speedup_first, fpga_speedup_last,
              fpga_speedup_last > fpga_speedup_first ? "speed-up grows with batch, OK"
                                                     : "UNEXPECTED");
  return 0;
}
