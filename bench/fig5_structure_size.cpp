// Figure 5 reproduction: succinct-structure size for the E. coli and
// Human-chr21 references across (block size b, superblock factor sf)
// combinations, against the 1 byte/char uncompressed BWT.
//
// Paper anchors: raw BWT ~4.64 MB (E. coli) and ~40.1 MB (chr21);
// b=15, sf=100 encodes them in ~1.72 MB and ~12.73 MB (up to 68.3% saved).
// Structure size per base is length-independent, so scaled runs preserve
// the figure's shape exactly.
#include <cstdio>

#include "bench_util.hpp"
#include "fmindex/bwt.hpp"
#include "fmindex/occ_backends.hpp"
#include "succinct/global_rank_table.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

void run_reference(const char* label, const std::vector<std::uint8_t>& genome,
                   double paper_raw_mb, double paper_b15_sf100_mb) {
  const Bwt bwt = build_bwt(genome);
  const double raw_mb = static_cast<double>(genome.size()) / 1e6;  // 1 B per char

  std::printf("\n--- %s: %zu bp, raw BWT %.2f MB (paper: %.2f MB full-size) ---\n",
              label, genome.size(), raw_mb, paper_raw_mb);
  std::printf("%4s %6s %14s %14s %10s\n", "b", "sf", "size [MB]", "size [B/base]",
              "saved");
  for (unsigned b : {5u, 10u, 15u}) {
    for (unsigned sf : {50u, 100u, 150u, 200u}) {
      const RrrWaveletOcc occ(bwt.symbols, RrrParams{b, sf});
      const double bytes = static_cast<double>(occ.size_in_bytes()) +
                           static_cast<double>(occ.shared_table_bytes());
      const double per_base = bytes / static_cast<double>(genome.size());
      std::printf("%4u %6u %14.3f %14.4f %9.1f%%\n", b, sf, bytes / 1e6, per_base,
                  100.0 * (1.0 - per_base));
    }
  }
  std::printf("paper anchor: b=15 sf=100 -> %.2f MB (%.4f B/base at full size)\n",
              paper_b15_sf100_mb, paper_b15_sf100_mb * 1e6 / (paper_raw_mb * 1e6));
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.1);
  print_header("Figure 5: data structure size vs (b, sf)", setup);

  run_reference("E.Coli-like", ecoli_reference(setup), 4.64, 1.72);
  run_reference("Human Chr.21-like", chr21_reference(setup), 40.1, 12.73);
  return 0;
}
