// Shared row engine for the Table I / Table II reproductions: runs BWaveR
// on the FPGA model, BWaveR pure-software, and the Bowtie2-like baseline at
// 1/8/16 threads over one read batch, then prints time / speed-up / power
// efficiency exactly in the paper's layout, with the paper's own numbers
// alongside.
#pragma once

#include <cstdio>
#include <vector>

#include "fpga/power.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"

namespace bwaver::bench {

struct PaperRow {
  double fpga_ms;
  double cpu_ms;
  double bowtie_1t_ms;
  double bowtie_8t_ms;
  double bowtie_16t_ms;
};

struct MeasuredRow {
  double fpga_s = 0;
  double fpga_program_s = 0;  ///< fixed structure-load overhead within fpga_s
  double cpu_s = 0;
  double bowtie_s[3] = {0, 0, 0};  // 1, 8, 16 threads
  std::uint64_t mapped = 0;
};

inline MeasuredRow run_performance_row(const BwaverCpuMapper& bwaver,
                                       const Bowtie2LikeMapper& bowtie,
                                       const ReadBatch& batch) {
  MeasuredRow row;

  BwaverFpgaMapper fpga(bwaver.index());
  FpgaMapReport hw;
  fpga.map(batch, &hw);
  row.fpga_s = hw.total_seconds();
  row.fpga_program_s = hw.program_seconds;
  row.mapped = hw.mapped;

  SoftwareMapReport sw;
  bwaver.map(batch, 1, &sw);
  row.cpu_s = sw.seconds;

  const unsigned threads[3] = {1, 8, 16};
  for (int t = 0; t < 3; ++t) {
    SoftwareMapReport report;
    bowtie.map(batch, threads[t], &report);
    row.bowtie_s[t] = report.seconds;
  }
  return row;
}

inline void print_performance_row(const MeasuredRow& m, const PaperRow& paper,
                                  const DeviceSpec& spec) {
  const PowerReport fpga_power{m.fpga_s, spec.board_power_watts};
  auto line = [&](const char* name, double seconds, double paper_ms) {
    const PowerReport power{seconds, name == std::string("BWaveR FPGA")
                                         ? spec.board_power_watts
                                         : spec.reference_cpu_watts};
    std::printf("  %-18s %12.1f %10.2fx %10.2fx   (paper: %9.0f ms, %6.2fx)\n", name,
                seconds * 1e3, speedup_ratio(m.fpga_s, seconds),
                power_efficiency_ratio(fpga_power, power), paper_ms,
                paper_ms / paper.fpga_ms);
  };
  std::printf("  %-18s %12s %11s %11s\n", "", "time [ms]", "speed-up",
              "power-eff");
  line("BWaveR FPGA", m.fpga_s, paper.fpga_ms);
  line("BWaveR CPU", m.cpu_s, paper.cpu_ms);
  line("Bowtie2 1 thread", m.bowtie_s[0], paper.bowtie_1t_ms);
  line("Bowtie2 8 threads", m.bowtie_s[1], paper.bowtie_8t_ms);
  line("Bowtie2 16 threads", m.bowtie_s[2], paper.bowtie_16t_ms);
  std::printf("  (FPGA row = %.1f ms fixed program/load + %.1f ms mapping)\n",
              m.fpga_program_s * 1e3, (m.fpga_s - m.fpga_program_s) * 1e3);
}

}  // namespace bwaver::bench
