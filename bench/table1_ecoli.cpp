// Table I reproduction: BWaveR (FPGA model + pure software) and the
// Bowtie2-like baseline (1/8/16 threads) aligning 100 M x 35 bp reads (and
// their reverse complements) against the E. coli reference, b=15, sf=50.
//
// Paper numbers (ms): FPGA 3623, CPU 247214 (68.23x), Bowtie2 176683 /
// 23016 / 11542 (48.76x / 6.34x / 3.18x); power efficiency up to 368x.
//
// Notes for interpreting the reproduction:
//   * default --scale runs a fraction of the 100 M reads; time scales
//     linearly in read count for every engine, so speed-up ratios are
//     scale-invariant;
//   * FPGA time is the device model's cycle count at 250 MHz, software
//     times are wall-clock on this machine;
//   * on a single-core host the 8/16-thread rows cannot speed up — the
//     meaningful shape checks are FPGA vs CPU and FPGA vs Bowtie2-1T.
#include <cstdio>

#include "bench_util.hpp"
#include "perf_table.hpp"
#include "sim/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  using namespace bwaver::bench;

  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.01);
  print_header("Table I: 100M x 35bp reads on E.Coli (b=15, sf=50)", setup);

  const auto genome = ecoli_reference(setup);
  constexpr std::size_t kPaperReads = 100'000'000;
  const std::size_t reads = scaled(kPaperReads, setup.scale);
  std::printf("reference: %zu bp, reads: %zu (paper: %zu)\n", genome.size(), reads,
              kPaperReads);

  ReadSimConfig rc;
  rc.num_reads = reads;
  rc.read_length = 35;
  rc.mapping_ratio = 0.9;  // typical resequencing mappability
  rc.seed = setup.seed;
  const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));

  const BwaverCpuMapper bwaver(genome, RrrParams{15, 50});
  const Bowtie2LikeMapper bowtie(genome);
  const MeasuredRow row = run_performance_row(bwaver, bowtie, batch);

  const PaperRow paper{3623, 247214, 176683, 23016, 11542};
  print_performance_row(row, paper, DeviceSpec{});
  std::printf("mapped reads: %llu/%zu\n",
              static_cast<unsigned long long>(row.mapped), reads);
  return 0;
}
