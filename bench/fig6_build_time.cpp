// Figure 6 reproduction: succinct-structure *building* time (the pipeline's
// "BWT encoding" step) for the E. coli and chr21 references across (b, sf).
//
// Paper finding: encoding time depends directly on the block size, and is
// almost constant in the superblock factor.
#include <cstdio>

#include "bench_util.hpp"
#include "fmindex/bwt.hpp"
#include "fmindex/occ_backends.hpp"
#include "succinct/global_rank_table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

void run_reference(const char* label, const std::vector<std::uint8_t>& genome) {
  const Bwt bwt = build_bwt(genome);
  std::printf("\n--- %s: %zu bp ---\n", label, genome.size());
  std::printf("%4s %6s %18s %20s\n", "b", "sf", "inverse-table [ms]",
              "paper-style scan [ms]");
  for (unsigned b : {5u, 10u, 15u}) {
    for (unsigned sf : {50u, 100u, 150u, 200u}) {
      // Warm the shared tables so Fig. 6 measures encoding, not table setup.
      (void)GlobalRankTable::get(b);
      WallTimer timer;
      const RrrWaveletOcc fast(bwt.symbols,
                               RrrParams{b, sf, RrrEncodeMode::kInverseTable});
      const double fast_ms = timer.milliseconds();
      timer.reset();
      const RrrWaveletOcc scan(bwt.symbols,
                               RrrParams{b, sf, RrrEncodeMode::kTableScan});
      const double scan_ms = timer.milliseconds();
      std::printf("%4u %6u %18.2f %20.2f\n", b, sf, fast_ms, scan_ms);
      (void)fast;
      (void)scan;
    }
  }
  std::printf("paper finding (their encoder scans the shared table): time rises\n"
              "with b, ~flat in sf — the scan column; the inverse-table column\n"
              "is this implementation's O(1)-per-block improvement.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.1);
  print_header("Figure 6: data structure building time vs (b, sf)", setup);

  run_reference("E.Coli-like", ecoli_reference(setup));
  run_reference("Human Chr.21-like", chr21_reference(setup));
  return 0;
}
