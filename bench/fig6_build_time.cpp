// Figure 6 reproduction: index *building* time. Two tiers:
//
//   1. The paper's encoding experiment — succinct-structure build time
//      across (b, sf). Paper finding: encoding time depends directly on the
//      block size and is almost constant in the superblock factor.
//   2. Whole-archive construction, direct vs blockwise — the same E. coli
//      scale reference built through Pipeline::build_archive (in-RAM direct
//      path) and through the memory-bounded BlockwiseBuilder, with the
//      process peak RSS (VmHWM, reset per phase) measured for each and the
//      two archives compared byte for byte.
//
// --json emits direct/blockwise build times, both peak-RSS figures, and the
// byte-identity flag; bench/baseline.json holds a hard build_peak_rss_mb_max
// bound on the blockwise phase and archives_identical_min = 1.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "build/blockwise_builder.hpp"
#include "fmindex/bwt.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/byte_io.hpp"
#include "mapper/pipeline.hpp"
#include "succinct/global_rank_table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

// Seed-table k for the build comparison: at full scale the default k = 12
// table alone is 128 Mi entries of bounds — it would dominate the peak-RSS
// signal this bench exists to measure.
constexpr unsigned kBenchSeedK = 8;

/// Resets the kernel's peak-RSS watermark to the current RSS (Linux;
/// silently a no-op elsewhere, where the RSS metrics read as 0).
void reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f != nullptr) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

/// Peak RSS (VmHWM) in MB since the last reset_peak_rss().
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lf", &kb) == 1) break;
  }
  std::fclose(f);
  return kb / 1024.0;
}

void run_encode_sweep(const char* label, const std::vector<std::uint8_t>& genome) {
  const Bwt bwt = build_bwt(genome);
  std::printf("\n--- encode sweep, %s: %zu bp ---\n", label, genome.size());
  std::printf("%4s %6s %18s %20s\n", "b", "sf", "inverse-table [ms]",
              "paper-style scan [ms]");
  for (unsigned b : {5u, 10u, 15u}) {
    for (unsigned sf : {50u, 200u}) {
      // Warm the shared tables so Fig. 6 measures encoding, not table setup.
      (void)GlobalRankTable::get(b);
      WallTimer timer;
      const RrrWaveletOcc fast(bwt.symbols,
                               RrrParams{b, sf, RrrEncodeMode::kInverseTable});
      const double fast_ms = timer.milliseconds();
      timer.reset();
      const RrrWaveletOcc scan(bwt.symbols,
                               RrrParams{b, sf, RrrEncodeMode::kTableScan});
      const double scan_ms = timer.milliseconds();
      std::printf("%4u %6u %18.2f %20.2f\n", b, sf, fast_ms, scan_ms);
      (void)fast;
      (void)scan;
    }
  }
  std::printf("paper finding (their encoder scans the shared table): time rises\n"
              "with b, ~flat in sf — the scan column; the inverse-table column\n"
              "is this implementation's O(1)-per-block improvement.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.1);
  print_header("Figure 6: index build time, encode sweep + direct vs blockwise",
               setup);
  JsonReport report("fig6_build_time", setup.json);

  const auto genome = ecoli_reference(setup);
  run_encode_sweep("E.Coli-like", genome);

  ReferenceSet reference;
  reference.add("ecoli_like", genome);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bwaver_fig6_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string blockwise_path = (dir / "blockwise.bwva").string();
  const std::string direct_path = (dir / "direct.bwva").string();

  PipelineConfig config;
  config.seed_k = kBenchSeedK;

  // Blockwise first: a fresh process gives its peak-RSS reading a clean
  // floor (the direct phase's freed pages can linger in the allocator).
  build::BlockwiseConfig blockwise;
  blockwise.block_bases = std::max<std::size_t>(1, genome.size() / 8);
  blockwise.seed_k = kBenchSeedK;
  reset_peak_rss();
  WallTimer timer;
  build::BlockwiseBuilder builder(reference, blockwise);
  const build::BlockwiseStats stats = builder.build_archive(blockwise_path);
  const double blockwise_ms = timer.milliseconds();
  const double blockwise_rss_mb = peak_rss_mb();

  reset_peak_rss();
  timer.reset();
  Pipeline::build_archive(direct_path, reference, config);
  const double direct_ms = timer.milliseconds();
  const double direct_rss_mb = peak_rss_mb();

  const bool identical = read_file(blockwise_path) == read_file(direct_path);
  std::filesystem::remove_all(dir);

  std::printf("\n--- whole-archive build, %zu bp ---\n", genome.size());
  std::printf("%-10s %12s %14s %8s %8s\n", "path", "time [ms]", "peak RSS [MB]",
              "blocks", "merges");
  std::printf("%-10s %12.1f %14.1f %8zu %8s\n", "direct", direct_ms, direct_rss_mb,
              std::size_t{1}, "-");
  std::printf("%-10s %12.1f %14.1f %8zu %8zu\n", "blockwise", blockwise_ms,
              blockwise_rss_mb, stats.blocks, stats.merge_passes);
  std::printf("archives byte-identical: %s\n", identical ? "yes" : "NO");

  report.metric("direct_build_ms", direct_ms);
  report.metric("blockwise_build_ms", blockwise_ms);
  report.metric("direct_peak_rss_mb", direct_rss_mb);
  report.metric("build_peak_rss_mb", blockwise_rss_mb);
  report.metric("blockwise_blocks", static_cast<double>(stats.blocks));
  report.metric("archives_identical", identical ? 1.0 : 0.0);
  report.emit();
  return identical ? 0 : 1;
}
