// Sweep-scheduler benchmark: the search stage (both-strand exact search of
// a whole batch) executed per-read vs. through the locality-aware batched
// sweep scheduler (mapper/batch_scheduler.hpp), at E. coli scale.
//
// Per-read order walks each read's backward search to completion, so the
// core sits in one serial dependent-load chain; the sweep advances every
// in-flight read one step per pass, so each pass is a stream of mutually
// independent rank lookups whose line fetches overlap — and backends with
// address-computable storage (vector, sampled) pull their lines in early
// through a software-prefetch lookahead. The rrr engine has no
// prefetchable layout and is decode-bound, so it sits near 1.0x and is
// reported but not enforced. Both orders produce identical QueryResults
// (cross-checked here); CI holds the vector-engine speedup above the
// sweep_vs_per_read_speedup_min floor in bench/baseline.json.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/kmer_table.hpp"
#include "fmindex/occ_backends.hpp"
#include "kernels/vector_occ.hpp"
#include "mapper/batch_scheduler.hpp"
#include "mapper/read_batch.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/read_sim.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

constexpr int kRepetitions = 3;

std::uint64_t result_checksum(const std::vector<QueryResult>& results) {
  std::uint64_t sum = 0;
  for (const QueryResult& r : results) {
    sum += r.fwd_lo + r.fwd_hi + r.rev_lo + r.rev_hi;
  }
  return sum;
}

/// Best-of-N wall time of one search mode over the whole batch (single
/// thread: the per-core effect is what the scheduler changes; sharding
/// multiplies both modes equally). Returns ms, fills checksum + stats.
template <typename Occ>
double best_of(const FmIndex<Occ>& index, const ReadBatch& batch, SearchMode mode,
               std::uint64_t& checksum, SweepStats& stats) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    SoftwareMapReport report;
    WallTimer timer;
    const auto results =
        mode == SearchMode::kSweep
            ? detail::sweep_map_batch(index, batch, /*threads=*/1, &report)
            : detail::map_batch(index, batch, /*threads=*/1, &report);
    const double ms = timer.milliseconds();
    checksum = result_checksum(results);
    stats = report.sweep;
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

struct ModeRow {
  double per_read_ms = 0.0;
  double sweep_ms = 0.0;
  double speedup = 0.0;
};

template <typename Occ>
ModeRow run_engine(const char* name, const FmIndex<Occ>& index,
                   const ReadBatch& batch) {
  ModeRow row;
  std::uint64_t per_read_sum = 0, sweep_sum = 0;
  SweepStats ignored, stats;
  row.per_read_ms = best_of(index, batch, SearchMode::kPerRead, per_read_sum, ignored);
  row.sweep_ms = best_of(index, batch, SearchMode::kSweep, sweep_sum, stats);
  row.speedup = row.per_read_ms / (row.sweep_ms > 0.0 ? row.sweep_ms : 1.0);
  if (per_read_sum != sweep_sum) {
    std::printf("!! %s: per-read/sweep result checksum mismatch (%llu vs %llu)\n",
                name, static_cast<unsigned long long>(per_read_sum),
                static_cast<unsigned long long>(sweep_sum));
    std::exit(1);
  }
  const double reads_per_sec =
      1000.0 * static_cast<double>(batch.size()) / row.sweep_ms;
  std::printf("%-8s %12.1f %12.1f %8.2fx %12.0f   (passes %llu, peak %llu)\n",
              name, row.per_read_ms, row.sweep_ms, row.speedup, reads_per_sec,
              static_cast<unsigned long long>(stats.passes),
              static_cast<unsigned long long>(stats.peak_active));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/1.0);
  print_header("Sweep scheduler: batched vs per-read backward search", setup);

  const auto genome = ecoli_reference(setup);
  std::printf("building indexes over %zu bp...\n", genome.size());
  FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
  index.build_seed_table(genome, KmerSeedTable::kDefaultK);

  // The registry's derived-engine path: vector/sampled Occ structures over
  // the same BWT/SA/seed table (searches are interval-identical).
  const VectorMapper vector_mapper(
      index, [](std::span<const std::uint8_t> bwt) { return VectorOcc(bwt); });

  ReadSimConfig rconfig;
  rconfig.num_reads = scaled(30000, setup.scale);
  rconfig.read_length = 100;
  rconfig.mapping_ratio = 0.9;  // some searches die early, as in real batches
  rconfig.seed = setup.seed;
  const auto reads = simulate_reads(genome, rconfig);
  const ReadBatch batch = ReadBatch::from_simulated(reads);
  std::printf("%zu reads of %u bp, seed k = %u\n\n", batch.size(),
              rconfig.read_length, index.seed_table()->k());

  std::printf("%-8s %12s %12s %9s %12s\n", "engine", "per-read[ms]", "sweep[ms]",
              "speedup", "reads/s");
  const ModeRow rrr = run_engine("rrr", index, batch);
  const ModeRow vector = run_engine("vector", vector_mapper.index(), batch);

  std::printf("\nidentical QueryResults from both orders (checksummed); the\n"
              "enforced floor tracks the vector engine, whose interleaved\n"
              "blocks let the sweep prefetch each step's lines ahead of use.\n");

  JsonReport report("bench_sweep_search", setup.json);
  report.metric("reads", static_cast<double>(batch.size()));
  report.metric("per_read_ms_rrr", rrr.per_read_ms);
  report.metric("sweep_ms_rrr", rrr.sweep_ms);
  report.metric("sweep_vs_per_read_speedup_rrr", rrr.speedup);
  report.metric("per_read_ms_vector", vector.per_read_ms);
  report.metric("sweep_ms_vector", vector.sweep_ms);
  report.metric("sweep_vs_per_read_speedup", vector.speedup);
  report.emit();
  return 0;
}
