// Extension bench: staged approximate mapping (the paper's future work,
// modeled after Arram et al.'s runtime-reconfigured design). Reports, per
// mutation profile, how reads distribute across the exact / 1-mismatch /
// 2-mismatch stages and what each stage costs in the device model —
// including the reconfiguration overhead the staged approach pays.
#include <cstdio>

#include "bench_util.hpp"
#include "mapper/staged_mapper.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  using namespace bwaver::bench;

  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.02);
  print_header("Extension: staged 0/1/2-mismatch mapping (reconfiguration model)",
               setup);

  const auto genome = ecoli_reference(setup);
  const FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
  std::printf("reference: %zu bp\n", genome.size());

  // Read sets with a controlled per-read substitution count.
  constexpr unsigned kReadLength = 64;
  const std::size_t reads_per_profile = scaled(20'000, setup.scale * 50);
  Xoshiro256 rng(setup.seed);

  struct Profile {
    const char* name;
    double p0, p1, p2, prandom;  // fractions with 0/1/2 mutations / random
  };
  const Profile profiles[] = {
      {"clean (all exact)", 1.0, 0.0, 0.0, 0.0},
      {"typical (80/15/5)", 0.80, 0.15, 0.05, 0.0},
      {"noisy (50/30/15, 5% junk)", 0.50, 0.30, 0.15, 0.05},
  };

  for (const Profile& profile : profiles) {
    ReadBatch batch;
    for (std::size_t r = 0; r < reads_per_profile; ++r) {
      const double u = rng.uniform();
      std::vector<std::uint8_t> read(kReadLength);
      if (u < profile.prandom) {
        for (auto& base : read) base = static_cast<std::uint8_t>(rng.below(4));
      } else {
        const std::size_t origin = rng.below(genome.size() - kReadLength);
        std::copy(genome.begin() + origin, genome.begin() + origin + kReadLength,
                  read.begin());
        unsigned mutations = 0;
        if (u < profile.prandom + profile.p2) {
          mutations = 2;
        } else if (u < profile.prandom + profile.p2 + profile.p1) {
          mutations = 1;
        }
        for (unsigned m = 0; m < mutations; ++m) {
          const std::size_t at = (7 + 23 * m) % kReadLength;
          read[at] = static_cast<std::uint8_t>((read[at] + 1 + rng.below(3)) & 3);
        }
      }
      batch.add(read);
    }

    const StagedFpgaMapper mapper(index);
    StagedMapReport report;
    WallTimer timer;
    mapper.map(batch, &report);
    const double host_ms = timer.milliseconds();

    std::printf("\n--- %s: %zu reads ---\n", profile.name, batch.size());
    std::printf("%8s %10s %10s %16s %14s %14s\n", "stage", "reads in", "aligned",
                "steps/read", "reconf [ms]", "kernel [ms]");
    for (const auto& stage : report.stages) {
      std::printf("%6u mm %10llu %10llu %16.1f %14.1f %14.3f\n", stage.mismatches,
                  static_cast<unsigned long long>(stage.reads_in),
                  static_cast<unsigned long long>(stage.reads_aligned),
                  stage.reads_in ? static_cast<double>(stage.steps_executed) /
                                       static_cast<double>(stage.reads_in)
                                 : 0.0,
                  stage.reconfigure_seconds * 1e3, stage.kernel_seconds * 1e3);
    }
    std::printf("modeled total %.1f ms (host wall time for the functional run: %.1f ms)\n",
                report.total_seconds() * 1e3, host_ms);
  }

  std::printf("\nexpected shape: almost all reads resolve in the cheap exact stage;\n"
              "per-read step cost grows sharply with the mismatch budget, which is\n"
              "why the staged design only reconfigures for the shrinking remainder.\n");
  return 0;
}
