// Extension bench: host-side suffix-array policy. The paper keeps the full
// SA on the host (4 B/base); sampling it at rate r shrinks the footprint to
// ~4/r B/base at the cost of up to r-1 LF steps per located position —
// the host-memory prerequisite for the paper's ">100 Mbp references"
// future work. Reports locate throughput and memory across rates.
#include <cstdio>

#include "bench_util.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/sampled_sa.hpp"
#include "sim/read_sim.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  using namespace bwaver::bench;

  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.05);
  print_header("Extension: sampled-SA locate cost vs memory", setup);

  const auto genome = ecoli_reference(setup);
  const FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });

  ReadSimConfig rc;
  rc.num_reads = scaled(50'000, setup.scale * 20);
  rc.read_length = 40;
  rc.mapping_ratio = 1.0;
  const auto reads = simulate_reads(genome, rc);

  // Pre-compute the SA intervals once; then compare locate strategies.
  std::vector<SaInterval> intervals;
  intervals.reserve(reads.size());
  for (const auto& read : reads) intervals.push_back(index.count(read.codes));
  std::printf("reference: %zu bp, %zu located interval sets\n\n", genome.size(),
              intervals.size());

  std::printf("%8s %14s %16s %16s\n", "rate", "SA [MB]", "locate [ms]",
              "positions/s");
  // Full host-resident SA (the paper's configuration).
  {
    WallTimer timer;
    std::uint64_t located = 0;
    for (const SaInterval& iv : intervals) {
      for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
        volatile std::uint32_t sink = index.suffix_array()[row];
        (void)sink;
        ++located;
      }
    }
    const double ms = timer.milliseconds();
    std::printf("%8s %14.2f %16.3f %16.0f   <- paper: full SA on host\n", "full",
                index.suffix_array().size() * 4.0 / 1e6, ms, located / ms * 1e3);
  }
  for (unsigned rate : {4u, 8u, 16u, 32u, 64u}) {
    const SampledSuffixArray sampled(index.suffix_array(), rate);
    WallTimer timer;
    std::uint64_t located = 0;
    for (const SaInterval& iv : intervals) {
      for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
        volatile std::uint32_t sink = sampled.lookup(index, row);
        (void)sink;
        ++located;
      }
    }
    const double ms = timer.milliseconds();
    std::printf("%8u %14.2f %16.3f %16.0f\n", rate,
                sampled.size_in_bytes() / 1e6, ms, located / ms * 1e3);
  }
  std::printf("\nexpected shape: memory ~ 4/rate B/base; locate time grows ~linearly\n"
              "with rate (each position pays up to rate-1 LF steps on the RRR tree).\n");
  return 0;
}
