// Ablation: Occ-backend choice. The same FM-index backward search over
//   * the paper's RRR wavelet tree (BWaveR),
//   * an uncompressed wavelet tree with two-level rank directories,
//   * the Bowtie-style 2-bit-packed BWT with checkpointed counters,
// measuring count-only throughput and index memory. This quantifies the
// paper's premise that succinct structures trade CPU time for memory —
// the gap the FPGA then closes in hardware.
#include <cstdio>

#include "bench_util.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "mapper/read_batch.hpp"
#include "sim/read_sim.hpp"
#include "succinct/global_rank_table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

template <typename Occ>
void run_backend(const char* label, const FmIndex<Occ>& index, const ReadBatch& batch,
                 std::size_t extra_shared_bytes) {
  WallTimer timer;
  std::uint64_t mapped = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!index.count(batch.read(i)).empty()) ++mapped;
  }
  const double seconds = timer.seconds();
  const double bytes = static_cast<double>(index.occ_size_in_bytes()) +
                       static_cast<double>(extra_shared_bytes);
  std::printf("%-28s %12.1f %14.1f %12.3f %10llu\n", label, seconds * 1e3,
              static_cast<double>(batch.size()) / seconds / 1e3, bytes / 1e6,
              static_cast<unsigned long long>(mapped));
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.05);
  print_header("Ablation: Occ backend (count-only, single thread)", setup);

  const auto genome = ecoli_reference(setup);
  ReadSimConfig rc;
  rc.num_reads = scaled(200'000, setup.scale * 5);
  rc.read_length = 50;
  rc.mapping_ratio = 0.9;
  const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));
  std::printf("reference: %zu bp, reads: %zu x %u bp\n\n", genome.size(), batch.size(),
              rc.read_length);
  std::printf("%-28s %12s %14s %12s %10s\n", "backend", "time [ms]", "kreads/s",
              "occ [MB]", "mapped");

  for (const RrrParams params : {RrrParams{15, 50}, RrrParams{15, 200}, RrrParams{7, 50}}) {
    const FmIndex<RrrWaveletOcc> index(
        genome, [params](std::span<const std::uint8_t> bwt) {
          return RrrWaveletOcc(bwt, params);
        });
    char label[64];
    std::snprintf(label, sizeof(label), "RRR wavelet (b=%u, sf=%u)", params.block_bits,
                  params.superblock_factor);
    run_backend(label, index, batch, index.occ_backend().shared_table_bytes());
  }

  const FmIndex<PlainWaveletOcc> plain(
      genome, [](std::span<const std::uint8_t> bwt) { return PlainWaveletOcc(bwt); });
  run_backend("plain wavelet (2-level rank)", plain, batch, 0);

  // Related-work comparators: Waidyasooriya et al.'s header/body codewords
  // and the SDSL-style Huffman-shaped tree over RRR nodes.
  for (unsigned body : {512u, 1024u}) {
    const FmIndex<HeaderBodyOcc> hb(
        genome, [body](std::span<const std::uint8_t> bwt) {
          return HeaderBodyOcc(bwt, HeaderBodyParams{body});
        });
    char label[64];
    std::snprintf(label, sizeof(label), "header/body WT (%u-bit body)", body);
    run_backend(label, hb, batch, 0);
  }
  {
    const FmIndex<HuffmanRrrOcc> huff(
        genome, [](std::span<const std::uint8_t> bwt) {
          return HuffmanRrrOcc(bwt, RrrParams{15, 50});
        });
    run_backend("Huffman-RRR WT (b=15, sf=50)", huff, batch,
                GlobalRankTable::get(15).device_size_in_bytes());
  }

  for (unsigned words : {1u, 4u, 16u}) {
    const FmIndex<SampledOcc> sampled(
        genome, [words](std::span<const std::uint8_t> bwt) {
          return SampledOcc(bwt, words);
        });
    char label[64];
    std::snprintf(label, sizeof(label), "sampled occ (%u words/ckpt)", words);
    run_backend(label, sampled, batch, 0);
  }

  std::printf("\nexpected shape: RRR is the smallest and slowest on CPU; the\n"
              "sampled-occ layout (Bowtie's) is the fastest; larger sf shrinks\n"
              "memory and adds time. The FPGA erases the RRR scan cost.\n");
  return 0;
}
