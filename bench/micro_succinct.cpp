// Google-benchmark micro suite: RRR rank latency vs (b, sf), wavelet-tree
// symbol rank, plain/sampled rank baselines, SA-IS construction throughput,
// and a single backward-search step. These are the primitive costs the
// paper's architecture is built from.
#include <benchmark/benchmark.h>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/suffix_array.hpp"
#include "sim/genome_sim.hpp"
#include "succinct/rank_support.hpp"
#include "succinct/rrr_vector.hpp"
#include "succinct/wavelet_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace bwaver;

BitVector random_bits(std::size_t n, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector bv;
  for (std::size_t i = 0; i < n; ++i) bv.push_back(rng.chance(density));
  return bv;
}

void BM_RrrRank(benchmark::State& state) {
  const unsigned b = static_cast<unsigned>(state.range(0));
  const unsigned sf = static_cast<unsigned>(state.range(1));
  const std::size_t n = 1 << 20;
  const BitVector bits = random_bits(n, 0.5, 1);
  const RrrVector rrr(bits, RrrParams{b, sf});
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr.rank1(rng.below(n + 1)));
  }
  state.SetLabel("b=" + std::to_string(b) + " sf=" + std::to_string(sf));
}
BENCHMARK(BM_RrrRank)
    ->Args({15, 50})
    ->Args({15, 100})
    ->Args({15, 200})
    ->Args({7, 50})
    ->Args({5, 50});

void BM_PlainRank(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  const PlainRankBitVector plain(random_bits(n, 0.5, 3));
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plain.rank1(rng.below(n + 1)));
  }
}
BENCHMARK(BM_PlainRank);

void BM_WaveletRank(benchmark::State& state) {
  const unsigned sf = static_cast<unsigned>(state.range(0));
  GenomeSimConfig config;
  config.length = 1 << 20;
  const auto genome = simulate_genome(config);
  const RrrParams params{15, sf};
  const WaveletTree<RrrVector> tree(
      genome, 4, [params](const BitVector& bits) { return RrrVector(bits, params); });
  Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.rank(static_cast<std::uint8_t>(rng.below(4)), rng.below(genome.size())));
  }
  state.SetLabel("sf=" + std::to_string(sf));
}
BENCHMARK(BM_WaveletRank)->Arg(50)->Arg(200);

void BM_SampledOccRank(benchmark::State& state) {
  GenomeSimConfig config;
  config.length = 1 << 20;
  const auto genome = simulate_genome(config);
  const SampledOcc occ(genome, static_cast<unsigned>(state.range(0)));
  Xoshiro256 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        occ.rank(static_cast<std::uint8_t>(rng.below(4)), rng.below(genome.size())));
  }
}
BENCHMARK(BM_SampledOccRank)->Arg(1)->Arg(4)->Arg(16);

void BM_SuffixArrayConstruction(benchmark::State& state) {
  GenomeSimConfig config;
  config.length = static_cast<std::size_t>(state.range(0));
  const auto genome = simulate_genome(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_suffix_array(genome));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayConstruction)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

void BM_RrrEncode(benchmark::State& state) {
  const BitVector bits = random_bits(1 << 20, 0.5, 7);
  const RrrParams params{static_cast<unsigned>(state.range(0)), 50};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RrrVector(bits, params));
  }
  state.SetLabel("b=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RrrEncode)->Arg(5)->Arg(10)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_BackwardSearchStep(benchmark::State& state) {
  GenomeSimConfig config;
  config.length = 1 << 20;
  const auto genome = simulate_genome(config);
  const FmIndex<RrrWaveletOcc> index(
      genome, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  Xoshiro256 rng(8);
  SaInterval iv = index.full_interval();
  for (auto _ : state) {
    iv = index.step(iv, static_cast<std::uint8_t>(rng.below(4)));
    if (iv.empty()) iv = index.full_interval();
    benchmark::DoNotOptimize(iv);
  }
}
BENCHMARK(BM_BackwardSearchStep);

}  // namespace
