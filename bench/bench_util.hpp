// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench accepts `--scale F` (default well under the paper's workload
// so the whole suite runs in minutes on a laptop) and `--full` to run the
// paper-sized experiment. Output is a stdout table shaped like the paper's,
// with the paper's own numbers printed alongside for comparison.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "app/cli.hpp"
#include "sim/genome_sim.hpp"

namespace bwaver::bench {

struct ScaledSetup {
  double scale = 1.0;     ///< fraction of the paper workload
  bool full = false;
  bool json = false;      ///< emit a machine-readable metrics line at the end
  std::uint64_t seed = 42;
};

inline ScaledSetup parse_setup(int argc, char** argv, double default_scale) {
  ArgParser args(argc, argv);
  ScaledSetup setup;
  setup.full = args.has("full");
  setup.scale = setup.full ? 1.0 : args.get_double("scale", default_scale);
  setup.json = args.has("json");
  setup.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return setup;
}

/// Flat metric collector. With --json the bench prints its human table as
/// usual and then one `{"bench":...,"metrics":{...}}` line (the last '{'
/// line of stdout), which CI captures as an artifact and checks against
/// the floors in bench/baseline.json.
class JsonReport {
 public:
  JsonReport(std::string bench, bool enabled)
      : bench_(std::move(bench)), enabled_(enabled) {}

  void metric(const std::string& key, double value) {
    if (enabled_) metrics_.emplace_back(key, value);
  }

  void emit() const {
    if (!enabled_) return;
    std::printf("\n{\"bench\":\"%s\",\"metrics\":{", bench_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::printf("%s\"%s\":%.6g", i == 0 ? "" : ",", metrics_[i].first.c_str(),
                  metrics_[i].second);
    }
    std::printf("}}\n");
  }

 private:
  std::string bench_;
  bool enabled_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline std::size_t scaled(std::size_t paper_value, double scale) {
  const auto value = static_cast<std::size_t>(static_cast<double>(paper_value) * scale);
  return value == 0 ? 1 : value;
}

inline void print_header(const std::string& title, const ScaledSetup& setup) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: %.4f of the paper workload%s (use --full for paper size)\n",
              setup.scale, setup.full ? " [FULL]" : "");
  std::printf("==============================================================\n");
}

/// E. coli-like reference at `scale` of the paper's 4,641,652 bp.
inline std::vector<std::uint8_t> ecoli_reference(const ScaledSetup& setup) {
  GenomeSimConfig config = ecoli_like_config(setup.seed);
  config.length = scaled(config.length, setup.scale);
  return simulate_genome(config);
}

/// Human-chr21-like reference at `scale` of the paper's 40,088,619 bp.
inline std::vector<std::uint8_t> chr21_reference(const ScaledSetup& setup) {
  GenomeSimConfig config = chr21_like_config(setup.seed);
  config.length = scaled(config.length, setup.scale);
  return simulate_genome(config);
}

}  // namespace bwaver::bench
