// Job subsystem benchmark: inline synchronous mapping versus the same
// batches routed through the JobManager worker pool.
//
// The async path adds a bounded queue, per-job bookkeeping, and cancel
// checkpoints inside map_records_over. This bench quantifies that overhead
// at one worker and the scaling headroom at several, which is what `bwaver
// serve --workers N` trades off. Queue-wait numbers come from the same
// ServerStats histograms `GET /stats` exposes.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_util.hpp"
#include "fmindex/dna.hpp"
#include "jobs/job_manager.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "obs/trace.hpp"
#include "sim/read_sim.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

constexpr std::size_t kBatches = 32;

std::vector<std::vector<FastqRecord>> make_batches(
    const std::vector<std::uint8_t>& genome, const ScaledSetup& setup) {
  ReadSimConfig config;
  config.num_reads = scaled(64000, setup.scale);
  config.read_length = 100;
  config.seed = setup.seed;
  const auto reads = simulate_reads(genome, config);
  const auto records = reads_to_fastq(reads);

  std::vector<std::vector<FastqRecord>> batches(kBatches);
  for (std::size_t i = 0; i < records.size(); ++i) {
    batches[i % kBatches].push_back(records[i]);
  }
  return batches;
}

double run_inline(const Pipeline& pipeline,
                  const std::vector<std::vector<FastqRecord>>& batches) {
  WallTimer timer;
  for (const auto& batch : batches) {
    const auto outcome = map_records_over(pipeline.index(), pipeline.reference(),
                                          PipelineConfig{}, batch);
    (void)outcome;
  }
  return timer.milliseconds();
}

double run_pooled(const Pipeline& pipeline,
                  const std::vector<std::vector<FastqRecord>>& batches,
                  std::size_t workers, double* mean_queue_wait_ms,
                  bool tracing = false, MappingStageTimings* stages_out = nullptr,
                  int repeats = 1) {
  JobManagerConfig config;
  config.workers = workers;
  config.queue_capacity = batches.size() * static_cast<std::size_t>(repeats);
  if (tracing) {
    config.traces = std::make_shared<obs::TraceCollector>(
        obs::TraceConfig{.enabled = true, .ring_capacity = batches.size()});
  }
  JobManager manager(config);

  std::mutex stages_mutex;
  MappingStageTimings stages;

  WallTimer timer;
  std::vector<std::uint64_t> ids;
  ids.reserve(batches.size() * static_cast<std::size_t>(repeats));
  for (int round = 0; round < repeats; ++round) {
    for (const auto& batch : batches) {
      ids.push_back(manager.submit(
          "bench",
          [&pipeline, &batch, &stages_mutex, &stages](const CancelToken& cancel) {
            const auto outcome = map_records_over(pipeline.index(),
                                                  pipeline.reference(),
                                                  PipelineConfig{}, batch, nullptr,
                                                  nullptr, &cancel);
            {
              std::lock_guard<std::mutex> lock(stages_mutex);
              stages += outcome.stages;
            }
            return outcome.sam;
          }));
    }
  }
  for (const auto id : ids) manager.wait(id);
  const double elapsed_ms = timer.milliseconds();

  const auto& wait = manager.stats().queue_wait;
  *mean_queue_wait_ms =
      wait.count() > 0 ? wait.sum_ms() / static_cast<double>(wait.count()) : 0.0;
  if (stages_out != nullptr) *stages_out = stages;
  return elapsed_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.05);
  print_header("Job subsystem: inline mapping vs worker-pool throughput", setup);

  const auto genome = ecoli_reference(setup);
  Pipeline pipeline;
  pipeline.build_from_sequence("bench_ref", dna_decode_string(genome));
  const auto batches = make_batches(genome, setup);
  std::size_t total_reads = 0;
  for (const auto& batch : batches) total_reads += batch.size();

  std::printf("%zu reads in %zu batches over a %zu bp reference\n\n", total_reads,
              batches.size(), genome.size());
  std::printf("%-14s %12s %12s %10s %14s\n", "path", "wall [ms]", "reads/s",
              "speedup", "queue wait[ms]");

  JsonReport report("bench_job_throughput", setup.json);
  const double inline_ms = run_inline(pipeline, batches);
  const double inline_rps = 1000.0 * static_cast<double>(total_reads) / inline_ms;
  std::printf("%-14s %12.1f %12.0f %9.2fx %14s\n", "inline", inline_ms, inline_rps,
              1.0, "-");
  report.metric("inline_reads_per_sec", inline_rps);

  MappingStageTimings stages_w1;
  double queue_wait_w1 = 0.0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    double mean_wait_ms = 0.0;
    MappingStageTimings stages;
    const double pooled_ms =
        run_pooled(pipeline, batches, workers, &mean_wait_ms, false, &stages);
    if (workers == 1) {
      stages_w1 = stages;
      queue_wait_w1 = mean_wait_ms;
    }
    const double pooled_rps = 1000.0 * static_cast<double>(total_reads) / pooled_ms;
    std::printf("%-7s w=%-4zu %12.1f %12.0f %9.2fx %14.1f\n", "pooled", workers,
                pooled_ms, pooled_rps,
                inline_ms / (pooled_ms > 0.0 ? pooled_ms : 1.0), mean_wait_ms);
    report.metric("pooled_w" + std::to_string(workers) + "_reads_per_sec", pooled_rps);
  }

  // Per-stage split of the w=1 run — the decomposition docs/observability.md
  // catalogs as bwaver_map_stage_seconds.
  std::printf("\nw=1 stage split: seed %.1f ms, search %.1f ms, locate %.1f ms, "
              "sam %.1f ms, mean queue wait %.1f ms\n",
              stages_w1.seed_ms, stages_w1.search_ms, stages_w1.locate_ms,
              stages_w1.sam_ms, queue_wait_w1);
  report.metric("seed_ms", stages_w1.seed_ms);
  report.metric("search_ms", stages_w1.search_ms);
  report.metric("locate_ms", stages_w1.locate_ms);
  report.metric("sam_ms", stages_w1.sam_ms);
  report.metric("queue_wait_ms", queue_wait_w1);

  // Trace overhead guard: the same w=1 workload with trace spans recording
  // versus no-op (tracing off). Ambient load only ever ADDS wall time, so
  // each class's minimum over many trials estimates its noise-free floor,
  // and the gap between the floors is the real tracing overhead. The
  // trials alternate off/on (order flipping every pair) so any quiet
  // window on the machine is sampled by both classes. The baseline bounds
  // the result at 2% (trace_overhead_pct_max). Trials are stretched to
  // ~150 ms at small --scale so scheduler jitter at the floor stays well
  // under the bound; the probe run doubles as warmup.
  double probe_wait = 0.0;
  const double probe_ms = run_pooled(pipeline, batches, 1, &probe_wait, false);
  const int repeats = std::max(1, static_cast<int>(150.0 / std::max(probe_ms, 1.0)));
  double off_ms = 1e300, on_ms = 1e300;
  for (int i = 0; i < 24; ++i) {
    double wait = 0.0;
    if (i % 2 == 0) {
      off_ms = std::min(off_ms,
                        run_pooled(pipeline, batches, 1, &wait, false, nullptr, repeats));
      on_ms = std::min(on_ms,
                       run_pooled(pipeline, batches, 1, &wait, true, nullptr, repeats));
    } else {
      on_ms = std::min(on_ms,
                       run_pooled(pipeline, batches, 1, &wait, true, nullptr, repeats));
      off_ms = std::min(off_ms,
                        run_pooled(pipeline, batches, 1, &wait, false, nullptr, repeats));
    }
  }
  const double overhead_pct = off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  std::printf(
      "tracing overhead (w=1, floor of 24 alternating pairs): off %.1f ms, "
      "on %.1f ms, %+.2f%%\n",
      off_ms, on_ms, overhead_pct);
  report.metric("trace_overhead_pct", overhead_pct);

  std::printf("\ninline = map_records_over called back to back on the caller's\n"
              "thread; pooled = the same batches as jobs through the bounded\n"
              "queue. w=1 isolates the subsystem's overhead (queue hop, state\n"
              "machine, cancel checkpoints); larger w shows scaling headroom.\n");
  report.emit();
  return 0;
}
