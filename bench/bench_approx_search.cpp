// Approximate-search strategy shootout: branch recursion vs bidirectional
// search schemes.
//
// The staged mapper's mismatch stages can run the classic per-stratum
// branch-everywhere recursion (restarting a full 4-way backward search per
// stratum) or precomputed bidirectional search schemes over a fwd+rev
// FM-index pair, which anchor one pattern piece exactly before branching.
// Both produce byte-identical results — this bench verifies that on every
// read, then times 2-mismatch mapping of error-injected reads through both
// modes. The scheme-vs-branch ratio is the optimization's payoff and is
// enforced as a hard `scheme_vs_branch_speedup_min` floor in
// bench/baseline.json.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "fmindex/bidir_index.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "mapper/read_batch.hpp"
#include "mapper/staged_mapper.hpp"
#include "sim/read_sim.hpp"

namespace {

using namespace bwaver;
using namespace bwaver::bench;

}  // namespace

int main(int argc, char** argv) {
  const auto setup = parse_setup(argc, argv, /*default_scale=*/0.25);
  JsonReport report("bench_approx_search", setup.json);
  print_header("Approximate search: branch recursion vs search schemes", setup);

  const auto genome = ecoli_reference(setup);
  const auto builder = [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  };
  const FmIndex<RrrWaveletOcc> index(genome, builder);
  const BidirFmIndex<RrrWaveletOcc> bidir(index, genome, builder);
  std::printf("reference: %zu bp (fwd+rev FM-indexes built)\n", genome.size());

  // Substitution-error reads so a meaningful fraction needs the 1- and
  // 2-mismatch stages — the regime the schemes were built for.
  ReadSimConfig rc;
  rc.num_reads = scaled(20'000, setup.scale);
  rc.read_length = 64;
  rc.mapping_ratio = 0.95;
  rc.error_rate = 0.03;
  rc.seed = setup.seed + 7;
  const ReadBatch batch = ReadBatch::from_simulated(simulate_reads(genome, rc));
  std::printf("reads: %zu x %u bp, %.0f%% genomic, %.1f%% per-base error\n\n",
              batch.size(), rc.read_length, rc.mapping_ratio * 100.0,
              rc.error_rate * 100.0);

  // Best of three passes per mode: the enforced floor is the ratio of
  // these two numbers, and a single pass is at the mercy of frequency
  // ramps and cold caches.
  double branch_seconds = 0.0, scheme_seconds = 0.0;
  std::vector<StagedReadResult> branch, scheme;
  for (int rep = 0; rep < 3; ++rep) {
    double seconds = 0.0;
    branch = approx_map_batch(index, batch, 2, 1, &seconds);
    if (rep == 0 || seconds < branch_seconds) branch_seconds = seconds;
  }
  for (int rep = 0; rep < 3; ++rep) {
    double seconds = 0.0;
    scheme = approx_map_batch(index, batch, 2, 1, &seconds,
                              ApproxMode::kScheme, &bidir);
    if (rep == 0 || seconds < scheme_seconds) scheme_seconds = seconds;
  }

  // A wrong answer can never look fast: the modes must agree on every read.
  if (branch.size() != scheme.size()) {
    std::fprintf(stderr, "FATAL: result count mismatch\n");
    return 1;
  }
  std::uint64_t aligned = 0;
  std::size_t per_stage[3] = {0, 0, 0};
  for (std::size_t i = 0; i < branch.size(); ++i) {
    if (branch[i].stage != scheme[i].stage ||
        branch[i].reverse_strand != scheme[i].reverse_strand ||
        branch[i].positions != scheme[i].positions) {
      std::fprintf(stderr, "FATAL: branch/scheme disagree on read %zu\n", i);
      return 1;
    }
    if (branch[i].stage != StagedReadResult::kUnaligned) {
      ++aligned;
      ++per_stage[branch[i].stage];
    }
  }

  const double branch_rps = static_cast<double>(batch.size()) / branch_seconds;
  const double scheme_rps = static_cast<double>(batch.size()) / scheme_seconds;
  const double speedup = branch_seconds / scheme_seconds;
  std::printf("aligned %llu/%zu reads (stage 0/1/2: %zu/%zu/%zu), "
              "results byte-identical\n",
              static_cast<unsigned long long>(aligned), batch.size(),
              per_stage[0], per_stage[1], per_stage[2]);
  std::printf("%-24s %12s %12s\n", "mode", "time [ms]", "reads/s");
  std::printf("%-24s %12.1f %12.0f\n", "branch (per-stratum)",
              branch_seconds * 1e3, branch_rps);
  std::printf("%-24s %12.1f %12.0f\n", "scheme (bidirectional)",
              scheme_seconds * 1e3, scheme_rps);
  std::printf("scheme vs branch speedup: %.2fx\n", speedup);

  report.metric("branch_reads_per_sec", branch_rps);
  report.metric("scheme_reads_per_sec", scheme_rps);
  report.metric("aligned_fraction",
                static_cast<double>(aligned) / static_cast<double>(batch.size()));
  report.metric("scheme_vs_branch_speedup", speedup);
  report.emit();
  return 0;
}
