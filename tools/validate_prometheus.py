#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4).

Usage:
    validate_prometheus.py [file]          # reads stdin when no file given
    curl -s localhost:8080/metrics | validate_prometheus.py

Checks the subset of the format bwaver emits:
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
    [a-zA-Z_][a-zA-Z0-9_]*;
  * every sample line parses (name, optional {labels}, value);
  * label values use only the \\\\, \\" and \\n escapes;
  * every metric family has exactly one # HELP and one # TYPE line,
    emitted before its first sample, with a known type;
  * histogram families emit _bucket/_sum/_count series, bucket counts are
    cumulative and monotone in le (per label set), the +Inf bucket exists
    and equals _count;
  * no duplicate sample (same name + label set).

Exits non-zero with a line-numbered message on the first violation; prints
a one-line summary on success.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  — labels optional; no timestamp support (bwaver emits none).
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Invalid(Exception):
    pass


def parse_labels(raw, lineno):
    """Parses the inside of {...}; returns a sorted tuple of (name, value)."""
    labels = []
    i = 0
    while i < len(raw):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[i:])
        if not match:
            raise Invalid(f"line {lineno}: bad label syntax at ...{raw[i:]!r}")
        name = match.group(1)
        i += match.end()
        value = []
        while i < len(raw):
            c = raw[i]
            if c == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in ('\\', '"', "n"):
                    raise Invalid(f"line {lineno}: bad escape in label value")
                value.append({"\\": "\\", '"': '"', "n": "\n"}[raw[i + 1]])
                i += 2
            elif c == '"':
                i += 1
                break
            elif c == "\n":
                raise Invalid(f"line {lineno}: raw newline in label value")
            else:
                value.append(c)
                i += 1
        else:
            raise Invalid(f"line {lineno}: unterminated label value")
        labels.append((name, "".join(value)))
        if i < len(raw) and raw[i] == ",":
            i += 1
    return tuple(sorted(labels))


def parse_value(text, lineno):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise Invalid(f"line {lineno}: bad sample value {text!r}") from None


def family_of(name, types):
    """Maps a histogram series name to its declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def validate(text):
    helps, types = {}, {}
    seen_samples = set()
    first_sample_at = {}
    # family -> {labels_without_le: [(le, count)]}, family -> {labels: value}
    buckets, sums, counts = {}, {}, {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not METRIC_NAME.match(name):
                raise Invalid(f"line {lineno}: bad metric name {name!r} in HELP")
            if name in helps:
                raise Invalid(f"line {lineno}: duplicate HELP for {name}")
            if name in first_sample_at:
                raise Invalid(f"line {lineno}: HELP for {name} after its samples")
            helps[name] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise Invalid(f"line {lineno}: malformed TYPE line")
            name, kind = parts
            if not METRIC_NAME.match(name):
                raise Invalid(f"line {lineno}: bad metric name {name!r} in TYPE")
            if kind not in KNOWN_TYPES:
                raise Invalid(f"line {lineno}: unknown type {kind!r} for {name}")
            if name in types:
                raise Invalid(f"line {lineno}: duplicate TYPE for {name}")
            if name in first_sample_at:
                raise Invalid(f"line {lineno}: TYPE for {name} after its samples")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # comment

        match = SAMPLE.match(line)
        if not match:
            raise Invalid(f"line {lineno}: unparseable sample line {line!r}")
        name, _, raw_labels, raw_value = match.groups()
        labels = parse_labels(raw_labels, lineno) if raw_labels else ()
        for label_name, _ in labels:
            if not LABEL_NAME.match(label_name):
                raise Invalid(f"line {lineno}: bad label name {label_name!r}")
        value = parse_value(raw_value, lineno)

        family = family_of(name, types)
        if family not in types:
            raise Invalid(f"line {lineno}: sample {name!r} has no TYPE line")
        if family not in helps:
            raise Invalid(f"line {lineno}: sample {name!r} has no HELP line")
        first_sample_at.setdefault(family, lineno)

        key = (name, labels)
        if key in seen_samples:
            raise Invalid(f"line {lineno}: duplicate sample {name}{dict(labels)}")
        seen_samples.add(key)

        if types[family] == "histogram":
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    raise Invalid(f"line {lineno}: histogram bucket without le")
                rest = tuple(l for l in labels if l[0] != "le")
                buckets.setdefault(family, {}).setdefault(rest, []).append(
                    (parse_value(le, lineno), value))
            elif name.endswith("_sum"):
                sums.setdefault(family, {})[labels] = value
            elif name.endswith("_count"):
                counts.setdefault(family, {})[labels] = value
            else:
                raise Invalid(
                    f"line {lineno}: bare sample {name!r} for histogram family")

    for family, kind in types.items():
        if kind != "histogram":
            continue
        fam_buckets = buckets.get(family, {})
        if not fam_buckets:
            raise Invalid(f"histogram {family}: no _bucket series")
        for labels, series in fam_buckets.items():
            les = [le for le, _ in series]
            if les != sorted(les):
                raise Invalid(f"histogram {family}{dict(labels)}: le not ascending")
            values = [v for _, v in series]
            if any(b > a for a, b in zip(values[1:], values)):
                raise Invalid(
                    f"histogram {family}{dict(labels)}: bucket counts not cumulative")
            if not math.isinf(les[-1]):
                raise Invalid(f"histogram {family}{dict(labels)}: missing +Inf bucket")
            if labels not in counts.get(family, {}):
                raise Invalid(f"histogram {family}{dict(labels)}: missing _count")
            if labels not in sums.get(family, {}):
                raise Invalid(f"histogram {family}{dict(labels)}: missing _sum")
            if counts[family][labels] != values[-1]:
                raise Invalid(
                    f"histogram {family}{dict(labels)}: _count "
                    f"{counts[family][labels]:g} != +Inf bucket {values[-1]:g}")

    return len(types), len(seen_samples)


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(argv) == 2:
        with open(argv[1], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    try:
        families, samples = validate(text)
    except Invalid as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"valid Prometheus exposition: {families} families, {samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
