#include "mapper/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_pipeline_test");

    GenomeSimConfig gconfig;
    gconfig.length = 30000;
    gconfig.seed = 17;
    genome_ = simulate_genome(gconfig);
    const FastaRecord ref{"test_ref", dna_decode_string(genome_)};
    fasta_path_ = (dir_ / "ref.fa").string();
    write_fasta(fasta_path_, std::span<const FastaRecord>(&ref, 1));

    ReadSimConfig rconfig;
    rconfig.num_reads = 200;
    rconfig.read_length = 50;
    rconfig.mapping_ratio = 0.5;
    reads_ = simulate_reads(genome_, rconfig);
    fastq_path_ = (dir_ / "reads.fq").string();
    write_fastq(fastq_path_, reads_to_fastq(reads_));
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::vector<std::uint8_t> genome_;
  std::vector<SimulatedRead> reads_;
  std::string fasta_path_;
  std::string fastq_path_;
};

TEST_F(PipelineTest, ThreeStepWorkflowThroughFiles) {
  Pipeline pipeline;
  const std::string index_path = (dir_ / "ref.bwvr").string();
  const std::string sam_path = (dir_ / "out.sam").string();

  // Step 1.
  const std::string name = pipeline.compute_bwt_sa(fasta_path_, index_path);
  EXPECT_EQ(name, "test_ref");
  EXPECT_TRUE(std::filesystem::exists(index_path));
  EXPECT_GT(pipeline.timings().bwt_sa_seconds, 0.0);

  // Step 2.
  pipeline.encode(index_path);
  ASSERT_TRUE(pipeline.ready());
  EXPECT_EQ(pipeline.index().size(), genome_.size());

  // Step 3.
  const MappingOutcome outcome = pipeline.map_reads(fastq_path_, sam_path);
  EXPECT_EQ(outcome.reads, 200u);
  EXPECT_EQ(outcome.mapped, 100u);  // exact mapping ratio
  EXPECT_TRUE(std::filesystem::exists(sam_path));

  const auto sam = read_file(sam_path);
  const std::string sam_text(sam.begin(), sam.end());
  EXPECT_NE(sam_text.find("@SQ\tSN:test_ref"), std::string::npos);
}

TEST_F(PipelineTest, IndexFileRoundTrip) {
  const auto sa = build_suffix_array(genome_);
  const Bwt bwt = build_bwt(genome_, sa);
  ReferenceSet reference;
  reference.add("roundtrip", genome_);
  const std::string path = (dir_ / "roundtrip.bwvr").string();
  Pipeline::save_index_file(path, reference, bwt, sa);

  ReferenceSet loaded_ref;
  Bwt loaded;
  std::vector<std::uint32_t> loaded_sa;
  Pipeline::load_index_file(path, loaded_ref, loaded, loaded_sa);
  ASSERT_EQ(loaded_ref.num_sequences(), 1u);
  EXPECT_EQ(loaded_ref.sequence(0).name, "roundtrip");
  EXPECT_EQ(loaded_ref.concatenated(), genome_);
  EXPECT_EQ(loaded.symbols, bwt.symbols);
  EXPECT_EQ(loaded.primary, bwt.primary);
  EXPECT_EQ(loaded_sa, sa);
}

TEST_F(PipelineTest, CorruptIndexFileThrows) {
  const std::string path = (dir_ / "corrupt.bwvr").string();
  write_file(path, std::string("not an index file at all"));
  Pipeline pipeline;
  EXPECT_THROW(pipeline.encode(path), IoError);
}

TEST_F(PipelineTest, MapBeforeEncodeThrows) {
  Pipeline pipeline;
  EXPECT_THROW(pipeline.map_reads(fastq_path_), std::logic_error);
}

TEST_F(PipelineTest, AllEnginesAgreeOnMappedCounts) {
  MappingOutcome outcomes[3];
  const MappingEngine engines[] = {MappingEngine::kFpga, MappingEngine::kCpu,
                                   MappingEngine::kBowtie2Like};
  for (int i = 0; i < 3; ++i) {
    PipelineConfig config;
    config.engine = engines[i];
    config.threads = 2;
    Pipeline pipeline(config);
    pipeline.build_from_sequence("ref", dna_decode_string(genome_));
    outcomes[i] = pipeline.map_reads(fastq_path_);
  }
  EXPECT_EQ(outcomes[0].mapped, outcomes[1].mapped);
  EXPECT_EQ(outcomes[1].mapped, outcomes[2].mapped);
  EXPECT_EQ(outcomes[0].occurrences, outcomes[1].occurrences);
  EXPECT_EQ(outcomes[1].occurrences, outcomes[2].occurrences);
  EXPECT_EQ(outcomes[0].sam, outcomes[1].sam);
  EXPECT_EQ(outcomes[1].sam, outcomes[2].sam);
}

TEST_F(PipelineTest, SamPositionsAreCorrect) {
  Pipeline pipeline;
  pipeline.build_from_sequence("ref", dna_decode_string(genome_));
  const MappingOutcome outcome = pipeline.map_reads(fastq_path_);

  // Every mapped forward-strand alignment position, converted back to
  // 0-based, must reproduce the read as a reference substring.
  std::istringstream stream(outcome.sam);
  std::string line;
  std::size_t checked = 0;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '@') continue;
    std::istringstream fields(line);
    std::string qname, flag, rname, pos, mapq, cigar;
    fields >> qname >> flag >> rname >> pos >> mapq >> cigar;
    if (flag != "0") continue;  // forward mapped only
    const std::size_t position = std::stoul(pos) - 1;
    const std::size_t length = std::stoul(cigar.substr(0, cigar.size() - 1));
    ASSERT_LE(position + length, genome_.size());
    // Find the read by name to compare content.
    const auto records = read_fastq(fastq_path_);
    for (const auto& record : records) {
      if (record.name == qname) {
        const auto read_codes = dna_encode_string(record.sequence);
        for (std::size_t k = 0; k < length; ++k) {
          ASSERT_EQ(genome_[position + k], read_codes[k]) << qname;
        }
        ++checked;
        break;
      }
    }
    if (checked >= 10) break;  // spot-check is enough; parsing is O(n^2)
  }
  EXPECT_GE(checked, 5u);
}

TEST_F(PipelineTest, MaxHitsCapLimitsSamLines) {
  // A read of a single repeated base maps at many loci; the cap must bound
  // the emitted lines.
  std::string homopolymer(31000, 'A');
  PipelineConfig config;
  config.max_hits_per_read = 5;
  Pipeline pipeline(config);
  pipeline.build_from_sequence("poly", homopolymer);

  std::vector<FastqRecord> records = {{"rep", std::string(20, 'A'),
                                       std::string(20, 'I')}};
  const MappingOutcome outcome = pipeline.map_records(records);
  EXPECT_GT(outcome.occurrences, 5u);
  std::istringstream stream(outcome.sam);
  std::string line;
  int alignment_lines = 0;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] != '@') ++alignment_lines;
  }
  EXPECT_EQ(alignment_lines, 5);
}

TEST_F(PipelineTest, MultiChromosomeReferenceMapsToCorrectSequence) {
  // Two chromosomes; reads sampled from each must report the right @SQ name
  // and local coordinates, and a read straddling the boundary must not map.
  const std::string chr1 = dna_decode_string(genome_);
  GenomeSimConfig gconfig;
  gconfig.length = 20000;
  gconfig.seed = 99;
  const auto genome2 = simulate_genome(gconfig);
  const std::string chr2 = dna_decode_string(genome2);

  Pipeline pipeline;
  pipeline.build_from_records({{"chr1", chr1}, {"chr2", chr2}});
  ASSERT_EQ(pipeline.reference().num_sequences(), 2u);

  std::vector<FastqRecord> records;
  records.push_back({"from_chr1", chr1.substr(500, 60), std::string(60, 'I')});
  records.push_back({"from_chr2", chr2.substr(700, 60), std::string(60, 'I')});
  // A read straddling the chr1|chr2 boundary in the concatenated text.
  records.push_back({"straddler", chr1.substr(chr1.size() - 30) + chr2.substr(0, 30),
                     std::string(60, 'I')});

  const MappingOutcome outcome = pipeline.map_records(records);
  EXPECT_EQ(outcome.mapped, 2u);
  EXPECT_NE(outcome.sam.find("@SQ\tSN:chr1\tLN:" + std::to_string(chr1.size())),
            std::string::npos);
  EXPECT_NE(outcome.sam.find("@SQ\tSN:chr2\tLN:" + std::to_string(chr2.size())),
            std::string::npos);
  EXPECT_NE(outcome.sam.find("from_chr1\t0\tchr1\t501\t"), std::string::npos)
      << outcome.sam.substr(0, 500);
  EXPECT_NE(outcome.sam.find("from_chr2\t0\tchr2\t701\t"), std::string::npos);
  EXPECT_NE(outcome.sam.find("straddler\t4\t*"), std::string::npos);
}

TEST_F(PipelineTest, MultiChromosomeIndexFileRoundTripsThroughDisk) {
  const std::string chr1 = dna_decode_string(genome_).substr(0, 5000);
  const std::string chr2 = dna_decode_string(genome_).substr(5000, 4000);
  const FastaRecord refs[] = {{"c1", chr1}, {"c2", chr2}};
  const std::string fasta = (dir_ / "multi.fa").string();
  write_fasta(fasta, refs);

  Pipeline pipeline;
  const std::string index_path = (dir_ / "multi.bwvr").string();
  pipeline.compute_bwt_sa(fasta, index_path);
  pipeline.encode(index_path);
  ASSERT_EQ(pipeline.reference().num_sequences(), 2u);
  EXPECT_EQ(pipeline.reference().sequence(1).name, "c2");
  EXPECT_EQ(pipeline.index().size(), chr1.size() + chr2.size());
}

TEST_F(PipelineTest, StreamingMapMatchesWholeFileMap) {
  Pipeline pipeline;
  pipeline.build_from_sequence("ref", dna_decode_string(genome_));

  const std::string whole_sam_path = (dir_ / "whole.sam").string();
  const std::string stream_sam_path = (dir_ / "stream.sam").string();
  const MappingOutcome whole = pipeline.map_reads(fastq_path_, whole_sam_path);
  // Tiny batch size to force many chunks through the streaming path.
  const MappingOutcome streamed =
      pipeline.map_reads_streaming(fastq_path_, stream_sam_path, 17);

  EXPECT_EQ(streamed.reads, whole.reads);
  EXPECT_EQ(streamed.mapped, whole.mapped);
  EXPECT_EQ(streamed.occurrences, whole.occurrences);
  EXPECT_EQ(read_file(stream_sam_path), read_file(whole_sam_path));
}

TEST_F(PipelineTest, StreamingMapFpgaProgramsOnce) {
  PipelineConfig config;
  config.engine = MappingEngine::kFpga;
  Pipeline pipeline(config);
  pipeline.build_from_sequence("ref", dna_decode_string(genome_));
  const MappingOutcome outcome =
      pipeline.map_reads_streaming(fastq_path_, "", 31);
  EXPECT_EQ(outcome.mapped, 100u);
  // The fixed program overhead appears exactly once in the modeled time.
  EXPECT_GT(pipeline.timings().mapping_seconds, 0.17);
  EXPECT_LT(pipeline.timings().mapping_seconds, 0.4);
}

TEST_F(PipelineTest, StreamingMapRejectsBadArguments) {
  Pipeline pipeline;
  EXPECT_THROW(pipeline.map_reads_streaming(fastq_path_, ""), std::logic_error);
  pipeline.build_from_sequence("ref", dna_decode_string(genome_));
  EXPECT_THROW(pipeline.map_reads_streaming(fastq_path_, "", 0),
               std::invalid_argument);
}

TEST_F(PipelineTest, SeededAndUnseededMappingProduceIdenticalSam) {
  // The k-mer seed table is a pure accelerator: disabling it must not move
  // a single output byte, across every software engine.
  for (const MappingEngine engine : {MappingEngine::kCpu, MappingEngine::kFpga}) {
    PipelineConfig seeded_config;
    seeded_config.engine = engine;
    Pipeline seeded(seeded_config);
    seeded.build_from_sequence("ref", dna_decode_string(genome_));
    ASSERT_NE(seeded.index().seed_table(), nullptr);

    PipelineConfig unseeded_config;
    unseeded_config.engine = engine;
    unseeded_config.seed_k = 0;
    Pipeline unseeded(unseeded_config);
    unseeded.build_from_sequence("ref", dna_decode_string(genome_));
    ASSERT_EQ(unseeded.index().seed_table(), nullptr);

    const MappingOutcome with_seeds = seeded.map_reads(fastq_path_);
    const MappingOutcome without = unseeded.map_reads(fastq_path_);
    EXPECT_EQ(with_seeds.reads, without.reads);
    EXPECT_EQ(with_seeds.mapped, without.mapped);
    EXPECT_EQ(with_seeds.occurrences, without.occurrences);
    EXPECT_EQ(with_seeds.sam, without.sam);
  }
}

TEST_F(PipelineTest, ShardedMappingIsDeterministic) {
  PipelineConfig sequential_config;
  sequential_config.engine = MappingEngine::kCpu;
  sequential_config.threads = 1;
  Pipeline sequential(sequential_config);
  sequential.build_from_sequence("ref", dna_decode_string(genome_));
  const MappingOutcome one_thread = sequential.map_reads(fastq_path_);
  EXPECT_EQ(one_thread.shards, 1u);

  // A tiny shard size forces many shards whose completion order is up to
  // the scheduler; the merged output must still be byte-identical.
  PipelineConfig sharded_config;
  sharded_config.engine = MappingEngine::kCpu;
  sharded_config.threads = 4;
  sharded_config.shard_size = 7;
  Pipeline sharded(sharded_config);
  sharded.build_from_sequence("ref", dna_decode_string(genome_));
  for (int repeat = 0; repeat < 3; ++repeat) {
    const MappingOutcome parallel = sharded.map_reads(fastq_path_);
    EXPECT_GT(parallel.shards, 1u);
    EXPECT_EQ(parallel.reads, one_thread.reads);
    EXPECT_EQ(parallel.mapped, one_thread.mapped);
    EXPECT_EQ(parallel.occurrences, one_thread.occurrences);
    ASSERT_EQ(parallel.sam, one_thread.sam) << "repeat " << repeat;
  }
}

TEST_F(PipelineTest, FpgaHostVerificationPassesOnHonestKernel) {
  PipelineConfig config;
  config.engine = MappingEngine::kFpga;
  config.fpga_verify_stride = 3;  // re-check every 3rd kernel result
  Pipeline pipeline(config);
  pipeline.build_from_sequence("ref", dna_decode_string(genome_));
  const MappingOutcome outcome = pipeline.map_reads(fastq_path_);
  EXPECT_EQ(outcome.mapped, 100u);
}

TEST_F(PipelineTest, GzippedInputsWorkEndToEnd) {
  const FastaRecord ref{"gz_ref", dna_decode_string(genome_)};
  const std::string gz_fasta = (dir_ / "ref.fa.gz").string();
  write_fasta(gz_fasta, std::span<const FastaRecord>(&ref, 1), /*gzipped=*/true);
  const std::string gz_fastq = (dir_ / "reads.fq.gz").string();
  write_fastq(gz_fastq, reads_to_fastq(reads_), /*gzipped=*/true);

  Pipeline pipeline;
  const std::string index_path = (dir_ / "gz.bwvr").string();
  pipeline.compute_bwt_sa(gz_fasta, index_path);
  pipeline.encode(index_path);
  const MappingOutcome outcome = pipeline.map_reads(gz_fastq);
  EXPECT_EQ(outcome.mapped, 100u);
}

}  // namespace
}  // namespace bwaver
