// Shared test helpers: random data generation and brute-force oracles.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "succinct/bitvector.hpp"
#include "util/rng.hpp"

namespace bwaver::testing {

/// Random bit-vector of `n` bits with ones-density `density`.
inline BitVector random_bits(std::size_t n, double density, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  BitVector bv;
  for (std::size_t i = 0; i < n; ++i) bv.push_back(rng.chance(density));
  return bv;
}

/// Random symbol sequence over [0, alphabet).
inline std::vector<std::uint8_t> random_symbols(std::size_t n, unsigned alphabet,
                                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& s : out) s = static_cast<std::uint8_t>(rng.below(alphabet));
  return out;
}

/// Brute-force rank oracle: occurrences of `symbol` in s[0, p).
inline std::size_t naive_rank(std::span<const std::uint8_t> s, std::uint8_t symbol,
                              std::size_t p) {
  return static_cast<std::size_t>(
      std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(p), symbol));
}

/// Brute-force substring search: all 0-based occurrence positions of
/// `pattern` in `text`.
inline std::vector<std::uint32_t> naive_find_all(std::span<const std::uint8_t> text,
                                                 std::span<const std::uint8_t> pattern) {
  std::vector<std::uint32_t> positions;
  if (pattern.empty() || pattern.size() > text.size()) return positions;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + i)) {
      positions.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return positions;
}

}  // namespace bwaver::testing
