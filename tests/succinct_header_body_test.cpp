#include "succinct/header_body_vector.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bwaver {
namespace {

struct HbCase {
  std::size_t size;
  double density;
  unsigned body_bits;
};

class HeaderBodyParam : public ::testing::TestWithParam<HbCase> {};

TEST_P(HeaderBodyParam, RankMatchesLinearOracle) {
  const auto [size, density, body_bits] = GetParam();
  const BitVector bv = testing::random_bits(size, density, size + body_bits);
  const HeaderBodyVector hb(bv, HeaderBodyParams{body_bits});
  ASSERT_EQ(hb.size(), size);
  for (std::size_t p = 0; p <= size; ++p) {
    ASSERT_EQ(hb.rank1(p), bv.rank1_linear(p)) << "p=" << p;
  }
  EXPECT_EQ(hb.ones(), bv.count_ones());
}

TEST_P(HeaderBodyParam, AccessMatchesOriginal) {
  const auto [size, density, body_bits] = GetParam();
  const BitVector bv = testing::random_bits(size, density, size * 3 + body_bits);
  const HeaderBodyVector hb(bv, HeaderBodyParams{body_bits});
  for (std::size_t i = 0; i < size; ++i) {
    ASSERT_EQ(hb.access(i), bv.get(i)) << "i=" << i;
  }
}

TEST_P(HeaderBodyParam, SelectInvertsRank) {
  const auto [size, density, body_bits] = GetParam();
  const BitVector bv = testing::random_bits(size, density, size * 5 + body_bits);
  const HeaderBodyVector hb(bv, HeaderBodyParams{body_bits});
  for (std::size_t k = 0; k < hb.ones(); k += 3) {
    const std::size_t pos = hb.select1(k);
    ASSERT_TRUE(bv.get(pos));
    ASSERT_EQ(hb.rank1(pos), k);
  }
  const std::size_t zeros = size - hb.ones();
  for (std::size_t k = 0; k < zeros; k += 3) {
    const std::size_t pos = hb.select0(k);
    ASSERT_FALSE(bv.get(pos));
    ASSERT_EQ(hb.rank0(pos), k);
  }
  EXPECT_THROW(hb.select1(hb.ones()), std::out_of_range);
  EXPECT_THROW(hb.select0(zeros), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HeaderBodyParam,
    ::testing::Values(HbCase{1, 0.5, 64}, HbCase{64, 0.5, 64}, HbCase{65, 0.5, 64},
                      HbCase{512, 0.5, 512}, HbCase{513, 0.3, 512},
                      HbCase{3000, 0.05, 512}, HbCase{3000, 0.95, 128},
                      HbCase{3000, 0.5, 1024}, HbCase{511, 0.5, 512}));

TEST(HeaderBody, RejectsBadBodyWidth) {
  const BitVector bv = testing::random_bits(100, 0.5, 1);
  EXPECT_THROW(HeaderBodyVector(bv, HeaderBodyParams{0}), std::invalid_argument);
  EXPECT_THROW(HeaderBodyVector(bv, HeaderBodyParams{100}), std::invalid_argument);
}

TEST(HeaderBody, OverheadMatchesHeaderRatio) {
  // The related work reports ~5.5% total overhead; with 32-bit headers per
  // 512-bit body the header overhead alone is 6.25%.
  const BitVector bv = testing::random_bits(512 * 100, 0.5, 2);
  const HeaderBodyVector hb(bv, HeaderBodyParams{512});
  EXPECT_NEAR(hb.overhead_fraction(), 32.0 / 512.0, 0.005);
}

TEST(HeaderBody, SerializationRoundTrip) {
  const BitVector bv = testing::random_bits(4000, 0.4, 3);
  const HeaderBodyVector original(bv, HeaderBodyParams{256});
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const HeaderBodyVector loaded = HeaderBodyVector::load(reader);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t p = 0; p <= bv.size(); p += 7) {
    ASSERT_EQ(loaded.rank1(p), original.rank1(p));
  }
}

TEST(HeaderBody, EmptyVector) {
  BitVector bv;
  const HeaderBodyVector hb(bv);
  EXPECT_EQ(hb.size(), 0u);
  EXPECT_EQ(hb.rank1(0), 0u);
}

}  // namespace
}  // namespace bwaver
