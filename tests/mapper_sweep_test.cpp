// Scheduler-determinism suite for the batched "index sweep" backward
// search (mapper/batch_scheduler.hpp).
//
// The sweep only reorders WHICH in-flight read advances next; every read
// still executes the exact interval sequence per-read search would, so the
// rendered SAM must be byte-identical — across every registered engine,
// under sharded execution, and for adversarial batch shapes (empty,
// single-read, randomized sizes, reads whose searches die at every depth).
// Any divergence here is a scheduler bug by definition.
#include "mapper/batch_scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fmindex/dna.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/kmer_table.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/fastq.hpp"
#include "kernels/registry.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/read_batch.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

TEST(SearchModeNames, ParseAndFormatRoundTrip) {
  EXPECT_EQ(parse_search_mode("per-read"), SearchMode::kPerRead);
  EXPECT_EQ(parse_search_mode("sweep"), SearchMode::kSweep);
  EXPECT_EQ(parse_search_mode("Sweep"), std::nullopt);
  EXPECT_EQ(parse_search_mode(""), std::nullopt);
  EXPECT_EQ(parse_search_mode("per_read"), std::nullopt);
  EXPECT_STREQ(search_mode_name(SearchMode::kPerRead), "per-read");
  EXPECT_STREQ(search_mode_name(SearchMode::kSweep), "sweep");
  EXPECT_STREQ(search_mode_choices(), "per-read|sweep");
}

std::vector<std::uint8_t> test_genome(std::size_t length, std::uint64_t seed) {
  GenomeSimConfig config;
  config.length = length;
  config.seed = seed;
  return simulate_genome(config);
}

/// Reads engineered to die at every backward-search depth: take a true
/// substring of the genome and corrupt one base. Backward search consumes
/// codes from the END of the pattern, so a corruption near the end kills
/// the search within a few steps and one near the front kills it on the
/// last steps — sweeping the corruption position sweeps the retire depth.
std::vector<FastqRecord> depth_sweep_records(const std::vector<std::uint8_t>& genome,
                                             std::size_t read_length) {
  std::vector<FastqRecord> records;
  Xoshiro256 rng(321);
  for (std::size_t corrupt = 0; corrupt < read_length; ++corrupt) {
    const std::size_t start = rng.below(genome.size() - read_length);
    std::vector<std::uint8_t> codes(genome.begin() + start,
                                    genome.begin() + start + read_length);
    codes[corrupt] = static_cast<std::uint8_t>((codes[corrupt] + 1) & 3);
    records.push_back({"die_at_" + std::to_string(corrupt),
                       dna_decode_string(codes), std::string(read_length, 'I')});
  }
  // A handful of uncorrupted reads that survive to full depth.
  for (int k = 0; k < 8; ++k) {
    const std::size_t start = rng.below(genome.size() - read_length);
    const std::vector<std::uint8_t> codes(genome.begin() + start,
                                          genome.begin() + start + read_length);
    records.push_back({"full_depth_" + std::to_string(k), dna_decode_string(codes),
                       std::string(read_length, 'I')});
  }
  return records;
}

MappingOutcome run_mode(const std::vector<std::uint8_t>& genome,
                        const std::vector<FastqRecord>& records,
                        MappingEngine engine, SearchMode mode, unsigned threads = 1,
                        std::size_t shard_size = 0) {
  PipelineConfig config;
  config.engine = engine;
  config.search_mode = mode;
  config.threads = threads;
  if (shard_size != 0) config.shard_size = shard_size;
  Pipeline pipeline(config);
  pipeline.build_from_sequence("ref", dna_decode_string(genome));
  return pipeline.map_records(records);
}

class SweepEngineTest : public ::testing::TestWithParam<MappingEngine> {};

TEST_P(SweepEngineTest, SweepSamIsByteIdenticalToPerRead) {
  const auto genome = test_genome(30000, 17);

  ReadSimConfig rconfig;
  rconfig.num_reads = 150;
  rconfig.read_length = 50;
  rconfig.mapping_ratio = 0.5;  // half the searches die partway
  const auto simulated = simulate_reads(genome, rconfig);
  auto records = reads_to_fastq(simulated);
  const auto depth_records = depth_sweep_records(genome, 40);
  records.insert(records.end(), depth_records.begin(), depth_records.end());

  const MappingOutcome per_read =
      run_mode(genome, records, GetParam(), SearchMode::kPerRead);
  const MappingOutcome sweep =
      run_mode(genome, records, GetParam(), SearchMode::kSweep);

  EXPECT_EQ(sweep.reads, per_read.reads);
  EXPECT_EQ(sweep.mapped, per_read.mapped);
  EXPECT_EQ(sweep.occurrences, per_read.occurrences);
  ASSERT_EQ(sweep.sam, per_read.sam);
}

TEST_P(SweepEngineTest, SweepMatchesPerReadUnderSharding) {
  const auto genome = test_genome(20000, 23);
  ReadSimConfig rconfig;
  rconfig.num_reads = 120;
  rconfig.read_length = 40;
  rconfig.mapping_ratio = 0.7;
  const auto records = reads_to_fastq(simulate_reads(genome, rconfig));

  // Ground truth: sequential per-read. Shard size 7 forces many shards
  // whose completion order is up to the thread pool; each shard runs its
  // own sweep and the spliced SAM must still match byte for byte.
  const MappingOutcome truth =
      run_mode(genome, records, GetParam(), SearchMode::kPerRead);
  const MappingOutcome sharded_sweep = run_mode(
      genome, records, GetParam(), SearchMode::kSweep, /*threads=*/4,
      /*shard_size=*/7);
  EXPECT_GE(sharded_sweep.shards, 1u);
  EXPECT_EQ(sharded_sweep.mapped, truth.mapped);
  ASSERT_EQ(sharded_sweep.sam, truth.sam);
}

TEST_P(SweepEngineTest, RandomizedBatchSizesIncludingEmptyAndSingle) {
  const auto genome = test_genome(12000, 31);
  ReadSimConfig rconfig;
  rconfig.num_reads = 64;
  rconfig.read_length = 36;
  rconfig.mapping_ratio = 0.5;
  const auto all = reads_to_fastq(simulate_reads(genome, rconfig));

  Xoshiro256 rng(99);
  std::vector<std::size_t> sizes{0, 1, 2, all.size()};
  for (int k = 0; k < 4; ++k) sizes.push_back(1 + rng.below(all.size() - 1));

  for (const std::size_t n : sizes) {
    const std::vector<FastqRecord> batch(all.begin(), all.begin() + n);
    const MappingOutcome per_read =
        run_mode(genome, batch, GetParam(), SearchMode::kPerRead);
    const MappingOutcome sweep =
        run_mode(genome, batch, GetParam(), SearchMode::kSweep);
    EXPECT_EQ(sweep.reads, n);
    ASSERT_EQ(sweep.sam, per_read.sam) << "batch size " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, SweepEngineTest,
    ::testing::Values(MappingEngine::kFpga, MappingEngine::kCpu,
                      MappingEngine::kBowtie2Like, MappingEngine::kPlainWavelet,
                      MappingEngine::kVector),
    [](const ::testing::TestParamInfo<MappingEngine>& info) {
      return std::string(kernels::engine_spec(info.param).name);
    });

TEST(SweepStatsCounters, PopulatedInSweepModeOnly) {
  const auto genome = test_genome(10000, 41);
  ReadSimConfig rconfig;
  rconfig.num_reads = 50;
  rconfig.read_length = 30;
  rconfig.mapping_ratio = 0.8;
  const auto records = reads_to_fastq(simulate_reads(genome, rconfig));

  const MappingOutcome per_read =
      run_mode(genome, records, MappingEngine::kCpu, SearchMode::kPerRead);
  EXPECT_EQ(per_read.sweep.batches, 0u);
  EXPECT_EQ(per_read.sweep.passes, 0u);

  const MappingOutcome sweep =
      run_mode(genome, records, MappingEngine::kCpu, SearchMode::kSweep);
  EXPECT_GT(sweep.sweep.batches, 0u);
  EXPECT_GT(sweep.sweep.passes, 0u);
  EXPECT_GT(sweep.sweep.state_steps, 0u);
  // Both strands of every read are in flight at the first pass.
  EXPECT_EQ(sweep.sweep.peak_active, 2 * records.size());
}

TEST(SweepStatsCounters, FpgaEngineIgnoresSweepMode) {
  // The modeled device already streams query packets; requesting sweep is
  // a documented no-op there and must not invent scheduler counters.
  const auto genome = test_genome(10000, 43);
  ReadSimConfig rconfig;
  rconfig.num_reads = 30;
  rconfig.read_length = 30;
  const auto records = reads_to_fastq(simulate_reads(genome, rconfig));
  const MappingOutcome sweep =
      run_mode(genome, records, MappingEngine::kFpga, SearchMode::kSweep);
  EXPECT_EQ(sweep.sweep.batches, 0u);
}

TEST(SweepMapBatchLowLevel, RaggedReadLengthsMatchPerRead) {
  // Variable-length reads (including length 0 and length 1) exercise the
  // scheduler's retire-at-seed and slot bookkeeping off the FASTQ path.
  const auto genome = test_genome(15000, 53);
  const FmIndex<RrrWaveletOcc> index(
      genome, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });

  Xoshiro256 rng(7);
  ReadBatch batch;
  batch.add({});  // empty read: retired before the first pass
  for (int k = 0; k < 200; ++k) {
    const std::size_t len = 1 + rng.below(64);
    const std::size_t start = rng.below(genome.size() - len);
    std::vector<std::uint8_t> codes(genome.begin() + start,
                                    genome.begin() + start + len);
    if (k % 3 == 0) {  // corrupt a random base so some searches die early
      const std::size_t at = rng.below(len);
      codes[at] = static_cast<std::uint8_t>((codes[at] + 1) & 3);
    }
    batch.add(codes);
  }

  for (const unsigned threads : {1u, 4u}) {
    const auto per_read = detail::map_batch(index, batch, threads, nullptr);
    SoftwareMapReport report;
    const auto sweep = detail::sweep_map_batch(index, batch, threads, &report);
    ASSERT_EQ(sweep.size(), per_read.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      EXPECT_EQ(sweep[i].id, per_read[i].id) << "read " << i;
      EXPECT_EQ(sweep[i].fwd_lo, per_read[i].fwd_lo) << "read " << i;
      EXPECT_EQ(sweep[i].fwd_hi, per_read[i].fwd_hi) << "read " << i;
      EXPECT_EQ(sweep[i].rev_lo, per_read[i].rev_lo) << "read " << i;
      EXPECT_EQ(sweep[i].rev_hi, per_read[i].rev_hi) << "read " << i;
    }
    EXPECT_GT(report.sweep.passes, 0u);
  }
}

TEST(SweepMapBatchLowLevel, SeededAndUnseededIndexesBothMatchPerRead) {
  // The sweep must replicate count()'s seed-table decision exactly: with a
  // seed table the search starts mid-pattern, without one it starts at the
  // full depth — in both cases per-read and sweep intervals must agree.
  const auto genome = test_genome(15000, 59);
  for (const bool seeded : {false, true}) {
    FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
      return RrrWaveletOcc(bwt, RrrParams{15, 50});
    });
    if (seeded) index.build_seed_table(genome, KmerSeedTable::kDefaultK);

    ReadSimConfig rconfig;
    rconfig.num_reads = 100;
    rconfig.read_length = 48;
    rconfig.mapping_ratio = 0.6;
    const auto batch = ReadBatch::from_simulated(simulate_reads(genome, rconfig));

    const auto per_read = detail::map_batch(index, batch, 1, nullptr);
    const auto sweep = detail::sweep_map_batch(index, batch, 1, nullptr);
    ASSERT_EQ(sweep.size(), per_read.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      EXPECT_EQ(sweep[i].fwd_lo, per_read[i].fwd_lo) << (seeded ? "seeded " : "unseeded ") << i;
      EXPECT_EQ(sweep[i].fwd_hi, per_read[i].fwd_hi) << (seeded ? "seeded " : "unseeded ") << i;
      EXPECT_EQ(sweep[i].rev_lo, per_read[i].rev_lo) << (seeded ? "seeded " : "unseeded ") << i;
      EXPECT_EQ(sweep[i].rev_hi, per_read[i].rev_hi) << (seeded ? "seeded " : "unseeded ") << i;
    }
  }
}

}  // namespace
}  // namespace bwaver
