#include "sim/genome_sim.hpp"

#include <gtest/gtest.h>

#include "fmindex/bwt.hpp"
#include "fmindex/occ_backends.hpp"
#include "succinct/rrr_vector.hpp"

namespace bwaver {
namespace {

GenomeSimConfig small_config(std::size_t length, std::uint64_t seed = 1) {
  GenomeSimConfig config;
  config.length = length;
  config.seed = seed;
  return config;
}

TEST(GenomeSim, ProducesRequestedLength) {
  for (std::size_t length : {1u, 100u, 12345u}) {
    EXPECT_EQ(simulate_genome(small_config(length)).size(), length);
  }
}

TEST(GenomeSim, DeterministicPerSeed) {
  const auto a = simulate_genome(small_config(10000, 5));
  const auto b = simulate_genome(small_config(10000, 5));
  const auto c = simulate_genome(small_config(10000, 6));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(GenomeSim, AllCodesValid) {
  const auto genome = simulate_genome(small_config(50000));
  for (std::uint8_t code : genome) ASSERT_LT(code, 4);
}

TEST(GenomeSim, GcContentApproximatelyRespected) {
  for (double gc : {0.3, 0.5, 0.7}) {
    GenomeSimConfig config = small_config(200000, 11);
    config.gc_content = gc;
    config.repeat_fraction = 0.0;  // repeats would skew composition slightly
    const auto genome = simulate_genome(config);
    std::size_t gc_count = 0;
    for (std::uint8_t code : genome) gc_count += (code == 1 || code == 2);
    EXPECT_NEAR(static_cast<double>(gc_count) / genome.size(), gc, 0.03) << "gc=" << gc;
  }
}

TEST(GenomeSim, InvalidConfigsThrow) {
  EXPECT_THROW(simulate_genome(GenomeSimConfig{.length = 0}), std::invalid_argument);
  GenomeSimConfig bad_gc = small_config(100);
  bad_gc.gc_content = 1.5;
  EXPECT_THROW(simulate_genome(bad_gc), std::invalid_argument);
  GenomeSimConfig bad_repeat = small_config(100);
  bad_repeat.repeat_fraction = 1.0;
  EXPECT_THROW(simulate_genome(bad_repeat), std::invalid_argument);
  GenomeSimConfig bad_unit = small_config(100);
  bad_unit.repeat_unit_min = 10;
  bad_unit.repeat_unit_max = 5;
  EXPECT_THROW(simulate_genome(bad_unit), std::invalid_argument);
}

TEST(GenomeSim, PresetLengthsMatchPaperReferences) {
  EXPECT_EQ(ecoli_like_config().length, 4'641'652u);
  EXPECT_EQ(chr21_like_config().length, 40'088'619u);
  EXPECT_GT(chr21_like_config().repeat_fraction, ecoli_like_config().repeat_fraction);
}

TEST(GenomeSim, StringVariantDecodes) {
  const std::string genome = simulate_genome_string(small_config(1000));
  EXPECT_EQ(genome.size(), 1000u);
  for (char base : genome) {
    EXPECT_TRUE(base == 'A' || base == 'C' || base == 'G' || base == 'T');
  }
}

TEST(GenomeSim, RepeatsLowerBwtEntropy) {
  // The design premise: a repeat-rich genome yields a runnier BWT whose
  // wavelet-tree bit-vectors RRR-compress better than a repeat-free one.
  GenomeSimConfig repeat_rich = small_config(200000, 21);
  repeat_rich.repeat_fraction = 0.6;
  repeat_rich.markov_persistence = 0.3;
  GenomeSimConfig repeat_free = small_config(200000, 21);
  repeat_free.repeat_fraction = 0.0;
  repeat_free.markov_persistence = 0.0;

  const RrrParams params{15, 50};
  const auto occ_bytes = [&](const GenomeSimConfig& config) {
    const auto genome = simulate_genome(config);
    const Bwt bwt = build_bwt(genome);
    return RrrWaveletOcc(bwt.symbols, params).size_in_bytes();
  };
  EXPECT_LT(occ_bytes(repeat_rich), occ_bytes(repeat_free));
}

}  // namespace
}  // namespace bwaver
