#include "mapper/software_mapper.hpp"

#include <gtest/gtest.h>

#include "mapper/fpga_mapper.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

class SoftwareMapperTest : public ::testing::Test {
 protected:
  SoftwareMapperTest() {
    GenomeSimConfig config;
    config.length = 40000;
    config.seed = 91;
    reference_ = simulate_genome(config);

    ReadSimConfig rc;
    rc.num_reads = 400;
    rc.read_length = 45;
    rc.mapping_ratio = 0.6;
    reads_ = simulate_reads(reference_, rc);
    batch_ = ReadBatch::from_simulated(reads_);
  }

  std::vector<std::uint8_t> reference_;
  std::vector<SimulatedRead> reads_;
  ReadBatch batch_;
};

TEST_F(SoftwareMapperTest, ReadBatchPreservesReads) {
  ASSERT_EQ(batch_.size(), reads_.size());
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    const auto view = batch_.read(i);
    ASSERT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()), reads_[i].codes);
  }
  EXPECT_EQ(batch_.total_bases(), reads_.size() * 45);
}

TEST_F(SoftwareMapperTest, CpuMapperFindsSimulatedOrigins) {
  const BwaverCpuMapper mapper(reference_, RrrParams{15, 50});
  SoftwareMapReport report;
  const auto results = mapper.map(batch_, 1, &report);
  ASSERT_EQ(results.size(), reads_.size());

  const auto& sa = mapper.index().suffix_array();
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    const auto& read = reads_[i];
    if (read.origin == SimulatedRead::kUnmapped) continue;
    ASSERT_TRUE(results[i].mapped()) << "read " << i;
    // Forward-strand sampled reads appear in the fwd interval; reverse ones
    // in the rev interval (searching revcomp recovers the original locus).
    const std::uint32_t lo = read.from_reverse_strand ? results[i].rev_lo
                                                      : results[i].fwd_lo;
    const std::uint32_t hi = read.from_reverse_strand ? results[i].rev_hi
                                                      : results[i].fwd_hi;
    bool found = false;
    for (std::uint32_t row = lo; row < hi; ++row) {
      if (sa[row] == read.origin) found = true;
    }
    ASSERT_TRUE(found) << "origin " << read.origin << " not located for read " << i;
  }
  EXPECT_EQ(report.reads, reads_.size());
  EXPECT_EQ(report.mapped, 240u);  // 0.6 * 400 exactly
  EXPECT_GT(report.seconds, 0.0);
}

TEST_F(SoftwareMapperTest, MultithreadedMatchesSingleThreaded) {
  const BwaverCpuMapper mapper(reference_, RrrParams{15, 50});
  const auto single = mapper.map(batch_, 1);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto multi = mapper.map(batch_, threads);
    ASSERT_EQ(multi.size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      ASSERT_EQ(multi[i].fwd_lo, single[i].fwd_lo) << "threads=" << threads;
      ASSERT_EQ(multi[i].fwd_hi, single[i].fwd_hi);
      ASSERT_EQ(multi[i].rev_lo, single[i].rev_lo);
      ASSERT_EQ(multi[i].rev_hi, single[i].rev_hi);
    }
  }
}

TEST_F(SoftwareMapperTest, Bowtie2LikeAgreesWithBwaverCpu) {
  const BwaverCpuMapper bwaver(reference_, RrrParams{15, 50});
  const Bowtie2LikeMapper bowtie(reference_);
  const auto a = bwaver.map(batch_);
  const auto b = bowtie.map(batch_, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fwd_lo, b[i].fwd_lo) << i;
    ASSERT_EQ(a[i].fwd_hi, b[i].fwd_hi);
    ASSERT_EQ(a[i].rev_lo, b[i].rev_lo);
    ASSERT_EQ(a[i].rev_hi, b[i].rev_hi);
  }
}

TEST_F(SoftwareMapperTest, FpgaMatchesSoftwareExactly) {
  // The paper's "without any loss in accuracy" claim: identical intervals
  // from the FPGA kernel and the software mappers.
  const BwaverCpuMapper cpu(reference_, RrrParams{15, 50});
  BwaverFpgaMapper fpga(cpu.index());
  const auto sw = cpu.map(batch_);
  FpgaMapReport report;
  const auto hw = fpga.map(batch_, &report);
  ASSERT_EQ(sw.size(), hw.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    ASSERT_EQ(hw[i].fwd_lo, sw[i].fwd_lo);
    ASSERT_EQ(hw[i].fwd_hi, sw[i].fwd_hi);
    ASSERT_EQ(hw[i].rev_lo, sw[i].rev_lo);
    ASSERT_EQ(hw[i].rev_hi, sw[i].rev_hi);
  }
  EXPECT_EQ(report.reads, batch_.size());
  EXPECT_EQ(report.mapped, 240u);
  EXPECT_GT(report.kernel_seconds, 0.0);
  EXPECT_GT(report.program_seconds, 0.0);
}

TEST_F(SoftwareMapperTest, FpgaBatchSizeDoesNotChangeResults) {
  const BwaverCpuMapper cpu(reference_, RrrParams{15, 50});
  BwaverFpgaMapper big(cpu.index(), DeviceSpec{}, 1 << 16);
  BwaverFpgaMapper tiny(cpu.index(), DeviceSpec{}, 7);
  const auto a = big.map(batch_);
  const auto b = tiny.map(batch_);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fwd_lo, b[i].fwd_lo);
    ASSERT_EQ(a[i].fwd_hi, b[i].fwd_hi);
  }
}

TEST_F(SoftwareMapperTest, UnmappedOnlyBatchMapsNothing) {
  ReadSimConfig rc;
  rc.num_reads = 100;
  rc.read_length = 60;
  rc.mapping_ratio = 0.0;
  const auto reads = simulate_reads(reference_, rc);
  const BwaverCpuMapper mapper(reference_, RrrParams{15, 50});
  SoftwareMapReport report;
  mapper.map(ReadBatch::from_simulated(reads), 1, &report);
  EXPECT_EQ(report.mapped, 0u);
}

TEST(SoftwareMapper, EmptyBatch) {
  const auto reference = testing::random_symbols(5000, 4, 1);
  const BwaverCpuMapper mapper(reference, RrrParams{15, 50});
  SoftwareMapReport report;
  const auto results = mapper.map(ReadBatch{}, 4, &report);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(report.reads, 0u);
}

TEST(FpgaMapper, ZeroBatchPacketsRejected) {
  const auto reference = testing::random_symbols(5000, 4, 2);
  const BwaverCpuMapper cpu(reference, RrrParams{15, 50});
  EXPECT_THROW(BwaverFpgaMapper(cpu.index(), DeviceSpec{}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bwaver
