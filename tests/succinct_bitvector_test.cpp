#include "succinct/bitvector.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

TEST(BitVector, EmptyByDefault) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.count_ones(), 0u);
}

TEST(BitVector, SizedConstructorZeros) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.count_ones(), 0u);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_FALSE(bv.get(i));
}

TEST(BitVector, SizedConstructorOnesClampsTail) {
  // Non-word-aligned size with value=true must not count padding bits.
  for (std::size_t n : {1u, 63u, 64u, 65u, 100u, 128u, 129u}) {
    BitVector bv(n, true);
    EXPECT_EQ(bv.size(), n);
    EXPECT_EQ(bv.count_ones(), n) << "n=" << n;
  }
}

TEST(BitVector, PushBackAndGet) {
  BitVector bv;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) bv.push_back(b);
  ASSERT_EQ(bv.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(bv.get(i), pattern[i]);
}

TEST(BitVector, SetOverwrites) {
  BitVector bv(130);
  bv.set(0, true);
  bv.set(64, true);
  bv.set(129, true);
  EXPECT_EQ(bv.count_ones(), 3u);
  bv.set(64, false);
  EXPECT_EQ(bv.count_ones(), 2u);
  EXPECT_FALSE(bv.get(64));
  EXPECT_TRUE(bv.get(0));
  EXPECT_TRUE(bv.get(129));
}

TEST(BitVector, AppendBitsGetBitsRoundTrip) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector bv;
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    std::size_t total = 0;
    for (int f = 0; f < 100; ++f) {
      const unsigned width = 1 + static_cast<unsigned>(rng.below(64));
      const std::uint64_t value =
          width == 64 ? rng() : rng() & ((std::uint64_t{1} << width) - 1);
      fields.emplace_back(value, width);
      bv.append_bits(value, width);
      total += width;
    }
    ASSERT_EQ(bv.size(), total);
    std::size_t pos = 0;
    for (const auto& [value, width] : fields) {
      ASSERT_EQ(bv.get_bits(pos, width), value) << "pos=" << pos << " width=" << width;
      pos += width;
    }
  }
}

TEST(BitVector, AppendBitsZeroWidthIsNoop) {
  BitVector bv;
  bv.append_bits(0xFFFF, 0);
  EXPECT_EQ(bv.size(), 0u);
}

TEST(BitVector, AppendBitsMasksHighBits) {
  BitVector bv;
  bv.append_bits(~std::uint64_t{0}, 4);
  EXPECT_EQ(bv.size(), 4u);
  EXPECT_EQ(bv.get_bits(0, 4), 0xFu);
  EXPECT_EQ(bv.count_ones(), 4u);
}

TEST(BitVector, GetBitsAcrossWordBoundary) {
  BitVector bv;
  bv.append_bits(0, 60);
  bv.append_bits(0b1011, 4);  // last 4 bits of word 0
  bv.append_bits(0b1101, 4);  // first 4 bits of word 1
  EXPECT_EQ(bv.get_bits(60, 8), 0b11011011u);
}

TEST(BitVector, RankLinearMatchesManual) {
  const BitVector bv = testing::random_bits(1000, 0.3, 42);
  std::size_t ones = 0;
  for (std::size_t p = 0; p <= bv.size(); ++p) {
    ASSERT_EQ(bv.rank1_linear(p), ones);
    if (p < bv.size() && bv.get(p)) ++ones;
  }
}

TEST(BitVector, CountOnesMatchesDensity) {
  const BitVector bv = testing::random_bits(100000, 0.5, 7);
  EXPECT_NEAR(static_cast<double>(bv.count_ones()) / bv.size(), 0.5, 0.02);
}

TEST(BitVector, EqualityComparesContentAndSize) {
  BitVector a = testing::random_bits(500, 0.4, 9);
  BitVector b = a;
  EXPECT_TRUE(a == b);
  b.set(250, !b.get(250));
  EXPECT_FALSE(a == b);

  BitVector c = testing::random_bits(501, 0.4, 9);
  EXPECT_FALSE(a == c);  // different size
}

TEST(BitVector, WordsExposeRawStorage) {
  BitVector bv;
  bv.append_bits(0xDEADBEEF, 32);
  bv.append_bits(0xCAFE, 16);
  ASSERT_GE(bv.word_count(), 1u);
  EXPECT_EQ(bv.words()[0] & 0xFFFFFFFF, 0xDEADBEEFu);
}

}  // namespace
}  // namespace bwaver
