// K-mer seed table properties: the size cap, the SA-scan construction
// against a brute-force oracle, and the load-bearing invariant of the
// whole seeding design — seeded and unseeded searches return identical
// intervals and positions for every read shape (random, mutated,
// N-substituted, shorter than k).
#include "fmindex/kmer_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fmindex/dna.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/byte_io.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

FmIndex<RrrWaveletOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<RrrWaveletOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}

TEST(KmerTableTest, CappedKRespectsSizeBudgetAndRequest) {
  EXPECT_EQ(KmerSeedTable::capped_k(0, 1'000'000), 0u);
  // Never above the request or the hard maximum.
  EXPECT_EQ(KmerSeedTable::capped_k(3, 1'000'000'000), 3u);
  EXPECT_EQ(KmerSeedTable::capped_k(99, 1'000'000'000), KmerSeedTable::kMaxK);
  for (const std::size_t length :
       {std::size_t{10}, std::size_t{1000}, std::size_t{100'000},
        std::size_t{5'000'000}}) {
    const unsigned k = KmerSeedTable::capped_k(12, length);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 12u);
    // 4^k entries stay within max(4096, 16 * length).
    const std::size_t budget = std::max<std::size_t>(4096, 16 * length);
    EXPECT_LE(std::size_t{1} << (2 * k), budget) << "length " << length;
  }
  // Monotone in the text length.
  EXPECT_LE(KmerSeedTable::capped_k(12, 100), KmerSeedTable::capped_k(12, 100'000));
  // E. coli scale affords the full default k.
  EXPECT_EQ(KmerSeedTable::capped_k(KmerSeedTable::kDefaultK, 4'600'000),
            KmerSeedTable::kDefaultK);
}

TEST(KmerTableTest, EveryTextKmerResolvesToTheUnseededInterval) {
  const auto text = testing::random_symbols(5000, 4, 71);
  auto index = make_index(text);
  index.build_seed_table(text, 8);
  ASSERT_NE(index.seed_table(), nullptr);
  const KmerSeedTable& table = *index.seed_table();
  const unsigned k = table.k();
  ASSERT_GE(k, 1u);

  for (std::size_t pos = 0; pos + k <= text.size(); ++pos) {
    const std::span<const std::uint8_t> kmer(text.data() + pos, k);
    const auto seed = table.lookup(kmer);
    ASSERT_TRUE(seed.has_value());
    const SaInterval expected = index.count_unseeded(kmer);
    EXPECT_EQ(seed->lo, expected.lo) << "pos " << pos;
    EXPECT_EQ(seed->hi, expected.hi) << "pos " << pos;
    // And the interval really holds every occurrence.
    auto located = index.locate(*seed);
    std::sort(located.begin(), located.end());
    EXPECT_EQ(located, testing::naive_find_all(text, kmer));
  }
}

TEST(KmerTableTest, AbsentKmersAreEmptyAndOutOfAlphabetIsNullopt) {
  // A two-symbol text leaves most of the 4^k codes absent.
  const auto text = testing::random_symbols(2000, 2, 5);
  auto index = make_index(text);
  index.build_seed_table(text, 6);
  const KmerSeedTable& table = *index.seed_table();
  const unsigned k = table.k();

  std::vector<std::uint8_t> absent(k, 3);  // 'T' never occurs in the text
  const auto miss = table.lookup(absent);
  ASSERT_TRUE(miss.has_value());
  EXPECT_TRUE(miss->empty());
  EXPECT_TRUE(index.count(absent).empty());

  std::vector<std::uint8_t> invalid(k, 0);
  invalid[k / 2] = 4;  // un-substituted N
  EXPECT_FALSE(table.lookup(invalid).has_value());

  std::vector<std::uint8_t> wrong_length(k + 1, 0);
  EXPECT_FALSE(table.lookup(wrong_length).has_value());
}

TEST(KmerTableTest, SeededSearchIsByteIdenticalToUnseeded) {
  // Randomized references and reads, including mutated reads that stop
  // matching mid-search and reads shorter than k.
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const std::size_t length = 1000 + 3000 * static_cast<std::size_t>(seed % 3);
    const auto text = testing::random_symbols(length, 4, seed);
    auto index = make_index(text);
    index.build_seed_table(text, 10);
    const unsigned k = index.seed_table()->k();

    Xoshiro256 rng(seed * 97);
    for (int trial = 0; trial < 300; ++trial) {
      const std::size_t len = 1 + rng.below(60);
      std::vector<std::uint8_t> pattern;
      if (trial % 3 == 0) {
        // Pure random pattern (usually absent for long lengths).
        for (std::size_t i = 0; i < len; ++i) {
          pattern.push_back(static_cast<std::uint8_t>(rng.below(4)));
        }
      } else {
        // Substring of the text, sometimes with a point mutation.
        const std::size_t start = rng.below(text.size() - std::min(len, text.size()) + 1);
        const std::size_t n = std::min(len, text.size() - start);
        pattern.assign(text.begin() + start, text.begin() + start + n);
        if (trial % 3 == 2 && !pattern.empty()) {
          const std::size_t at = rng.below(pattern.size());
          pattern[at] = static_cast<std::uint8_t>((pattern[at] + 1 + rng.below(3)) % 4);
        }
      }
      const SaInterval seeded = index.count(pattern);
      const SaInterval unseeded = index.count_unseeded(pattern);
      ASSERT_EQ(seeded.lo, unseeded.lo) << "seed " << seed << " trial " << trial
                                        << " len " << len << " k " << k;
      ASSERT_EQ(seeded.hi, unseeded.hi) << "seed " << seed << " trial " << trial;
      ASSERT_EQ(index.locate(seeded), index.locate(unseeded));
    }
  }
}

TEST(KmerTableTest, NSubstitutedReadsSearchIdentically) {
  // Reads with Ns get deterministic substitute codes at FASTQ decode; the
  // seeded path must agree with the unseeded one on them too.
  const auto text = testing::random_symbols(4000, 4, 40);
  auto index = make_index(text);
  index.build_seed_table(text, 8);

  const std::string with_n = "ACGTNNACGTACNGTACGTTGCANACGTACGT";
  const auto codes = dna_encode_string(with_n, /*substitute_invalid=*/true);
  EXPECT_EQ(index.count(codes), index.count_unseeded(codes));

  const std::string shorter_than_k = "ACN";
  const auto short_codes = dna_encode_string(shorter_than_k, true);
  EXPECT_EQ(index.count(short_codes), index.count_unseeded(short_codes));
}

TEST(KmerTableTest, SaveLoadRoundTripsExactly) {
  const auto text = testing::random_symbols(3000, 4, 77);
  const auto index = make_index(text);
  const KmerSeedTable table = KmerSeedTable::build(text, index.suffix_array(), 7);
  ASSERT_TRUE(table.enabled());

  ByteWriter writer;
  table.save(writer);
  ByteReader reader(writer.data());
  const KmerSeedTable loaded = KmerSeedTable::load(reader);
  EXPECT_TRUE(reader.done());
  ASSERT_EQ(loaded.k(), table.k());
  ASSERT_EQ(loaded.entries(), table.entries());
  for (std::size_t pos = 0; pos + table.k() <= text.size(); pos += 13) {
    const std::span<const std::uint8_t> kmer(text.data() + pos, table.k());
    EXPECT_EQ(loaded.lookup(kmer), table.lookup(kmer));
  }
}

// The incremental builder the blockwise constructor feeds row by row must
// produce the exact table the one-shot SA scan builds — serialized bytes
// and all, since the archive byte-identity guarantee rests on it.
TEST(KmerTableTest, IncrementalBuilderMatchesOneShotBuild) {
  for (const unsigned requested_k : {3u, 5u, 12u}) {
    const auto text = testing::random_symbols(2000, 4, 17 + requested_k);
    const auto index = make_index(text);
    const KmerSeedTable direct =
        KmerSeedTable::build(text, index.suffix_array(), requested_k);

    KmerTableBuilder builder(text, requested_k);
    ASSERT_EQ(builder.enabled(), direct.enabled());
    const auto sa = index.suffix_array();
    for (std::size_t row = 0; row < sa.size(); ++row) {
      builder.feed(static_cast<std::uint32_t>(row), sa[row]);
    }
    const KmerSeedTable incremental = builder.finish();

    ByteWriter direct_bytes, incremental_bytes;
    direct.save_flat(direct_bytes);
    incremental.save_flat(incremental_bytes);
    EXPECT_EQ(incremental_bytes.data(), direct_bytes.data()) << "k " << requested_k;
  }
}

TEST(KmerTableTest, IncrementalBuilderDisabledOnShortText) {
  const auto text = testing::random_symbols(5, 4, 3);
  KmerTableBuilder builder(text, 8);  // capped k still exceeds the text
  EXPECT_FALSE(builder.enabled());
  builder.feed(0, 5);
  EXPECT_FALSE(builder.finish().enabled());
}

TEST(KmerTableTest, ZeroKDisablesSeeding) {
  const auto text = testing::random_symbols(1000, 4, 9);
  auto index = make_index(text);
  index.build_seed_table(text, 0);
  EXPECT_EQ(index.seed_table(), nullptr);

  const KmerSeedTable empty = KmerSeedTable::build(text, make_index(text).suffix_array(), 0);
  EXPECT_FALSE(empty.enabled());
  EXPECT_EQ(empty.entries(), 0u);
}

}  // namespace
}  // namespace bwaver
