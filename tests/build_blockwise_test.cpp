// Blockwise-builder correctness: the merged BWT equals the direct BWT for
// every block size (including degenerate and adversarial texts), the
// streamed archive is byte-identical to write_index_archive's output, the
// archive loads under both kCopy and kMmap and maps identical SAM on every
// engine, the planner wiring in Pipeline::build_archive selects blockwise
// under a tight budget, and builder provenance round-trips.
#include "build/blockwise_builder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "build/build_plan.hpp"
#include "fmindex/bwt.hpp"
#include "fmindex/dna.hpp"
#include "io/byte_io.hpp"
#include "kernels/registry.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "store/index_archive.hpp"

#include "test_temp_dir.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

ReferenceSet single_sequence(const std::vector<std::uint8_t>& codes) {
  ReferenceSet reference;
  reference.add("seq", codes);
  return reference;
}

/// Direct-path archive through the same entry point the CLI uses (no
/// budget, so plan_build stays direct -> write_index_archive).
void write_direct(const std::string& path, const ReferenceSet& reference,
                  PipelineConfig config = PipelineConfig{}) {
  const BuildArchiveResult result = Pipeline::build_archive(path, reference, config);
  ASSERT_FALSE(result.blockwise);
}

void expect_same_bwt(const ReferenceSet& reference, std::size_t block_bases) {
  const Bwt direct = build_bwt(reference.concatenated());
  build::BlockwiseConfig config;
  config.block_bases = block_bases;
  build::BlockwiseBuilder builder(reference, config);
  const Bwt merged = builder.build_merged_bwt();
  ASSERT_EQ(merged.text_length, direct.text_length) << "block " << block_bases;
  EXPECT_EQ(merged.primary, direct.primary) << "block " << block_bases;
  ASSERT_EQ(merged.symbols.size(), direct.symbols.size()) << "block " << block_bases;
  for (std::size_t i = 0; i < merged.symbols.size(); ++i) {
    ASSERT_EQ(merged.symbols[i], direct.symbols[i])
        << "block " << block_bases << " symbol " << i;
  }
}

const std::size_t kBlockSweep[] = {1, 2, 3, 5, 7, 13, 64, 97, 1024};

TEST(BlockwiseBwtTest, RandomTextAllBlockSizes) {
  const auto codes = testing::random_symbols(611, 4, 1234);
  const ReferenceSet reference = single_sequence(codes);
  for (const std::size_t block : kBlockSweep) {
    expect_same_bwt(reference, block);
  }
  // Block >= n and block == n - 1 (one tiny trailing block).
  expect_same_bwt(reference, codes.size() - 1);
  expect_same_bwt(reference, codes.size());
  expect_same_bwt(reference, codes.size() + 17);
}

TEST(BlockwiseBwtTest, AllEqualSymbolsText) {
  // Maximally self-similar: every suffix comparison runs to the boundary.
  const std::vector<std::uint8_t> codes(200, 0);
  const ReferenceSet reference = single_sequence(codes);
  for (const std::size_t block : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                                  std::size_t{199}, std::size_t{200}}) {
    expect_same_bwt(reference, block);
  }
}

TEST(BlockwiseBwtTest, PeriodicText) {
  std::vector<std::uint8_t> codes;
  for (int i = 0; i < 120; ++i) {
    codes.push_back(static_cast<std::uint8_t>(i % 3));  // ACGACG...
  }
  const ReferenceSet reference = single_sequence(codes);
  for (const std::size_t block :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7}, std::size_t{40}}) {
    expect_same_bwt(reference, block);
  }
}

TEST(BlockwiseBwtTest, TinyTexts) {
  for (std::size_t n = 1; n <= 6; ++n) {
    const auto codes = testing::random_symbols(n, 4, 99 + n);
    const ReferenceSet reference = single_sequence(codes);
    for (std::size_t block = 1; block <= n + 1; ++block) {
      expect_same_bwt(reference, block);
    }
  }
}

TEST(BlockwiseBwtTest, MultiSequenceReference) {
  ReferenceSet reference;
  reference.add("chrA", testing::random_symbols(300, 4, 5));
  reference.add("chrB", testing::random_symbols(170, 4, 6));
  reference.add("chrC", testing::random_symbols(41, 4, 7));
  for (const std::size_t block :
       {std::size_t{1}, std::size_t{13}, std::size_t{97}, std::size_t{512}}) {
    expect_same_bwt(reference, block);
  }
}

class BlockwiseArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_build_blockwise");
    reference_.add("chrA", testing::random_symbols(2100, 4, 21));
    reference_.add("chrB", testing::random_symbols(901, 4, 22));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::vector<std::uint8_t> blockwise_bytes(build::BlockwiseConfig config,
                                            const std::string& name) {
    build::BlockwiseBuilder builder(reference_, std::move(config));
    builder.build_archive(path(name));
    return read_file(path(name));
  }

  std::filesystem::path dir_;
  ReferenceSet reference_;
};

TEST_F(BlockwiseArchiveTest, ByteIdenticalToDirectAcrossBlockSizes) {
  write_direct(path("direct.bwva"), reference_);
  const auto direct = read_file(path("direct.bwva"));
  const std::size_t n = reference_.total_length();
  for (const std::size_t block :
       {std::size_t{13}, std::size_t{97}, std::size_t{1024}, n - 1, n, n + 17}) {
    build::BlockwiseConfig config;
    config.block_bases = block;
    EXPECT_EQ(blockwise_bytes(config, "bw_" + std::to_string(block) + ".bwva"), direct)
        << "block " << block;
  }
}

TEST_F(BlockwiseArchiveTest, ByteIdenticalWithSpilledSuffixArray) {
  write_direct(path("direct.bwva"), reference_);
  build::BlockwiseConfig config;
  config.block_bases = 499;
  config.sa_chunk_bytes = 1024;  // ~256 rows per chunk -> the spill path
  EXPECT_EQ(blockwise_bytes(config, "spill.bwva"), read_file(path("direct.bwva")));
}

TEST_F(BlockwiseArchiveTest, ByteIdenticalWithoutSeedTable) {
  PipelineConfig direct;
  direct.seed_k = 0;
  write_direct(path("direct.bwva"), reference_, direct);
  build::BlockwiseConfig config;
  config.block_bases = 777;
  config.seed_k = 0;
  EXPECT_EQ(blockwise_bytes(config, "nok.bwva"), read_file(path("direct.bwva")));
  // Without the seed table there is no "kmer" section at all.
  const ArchiveInfo info = read_index_archive_info(path("nok.bwva"));
  for (const auto& section : info.sections) EXPECT_NE(section.name, "kmer");
}

TEST_F(BlockwiseArchiveTest, ByteIdenticalAtFormatV3) {
  // v3 archives (no "epr" section) through the low-level writer.
  const auto sa = build_suffix_array(reference_.concatenated());
  Bwt bwt = build_bwt(reference_.concatenated(), sa);
  auto seeds = std::make_shared<const KmerSeedTable>(
      KmerSeedTable::build(reference_.concatenated(), sa, KmerSeedTable::kDefaultK));
  FmIndex<RrrWaveletOcc> index(
      std::move(bwt), sa, [](std::span<const std::uint8_t> symbols) {
        return RrrWaveletOcc(symbols, RrrParams{});
      });
  index.set_seed_table(std::move(seeds));
  write_index_archive(path("direct.bwva"), reference_, index, /*format_version=*/3);

  build::BlockwiseConfig config;
  config.block_bases = 613;
  config.format_version = 3;
  EXPECT_EQ(blockwise_bytes(config, "v3.bwva"), read_file(path("direct.bwva")));
}

TEST_F(BlockwiseArchiveTest, BudgetedPipelineBuildSelectsBlockwiseAndMatches) {
  write_direct(path("direct.bwva"), reference_);

  PipelineConfig config;
  // Between the blockwise floor and the direct estimate: forces blockwise.
  config.build_memory_budget_bytes =
      build::blockwise_build_peak_bytes(reference_.total_length(), 64) + 1024;
  ASSERT_GT(build::direct_build_peak_bytes(reference_.total_length()),
            config.build_memory_budget_bytes);
  std::vector<std::string> progress;
  const BuildArchiveResult result = Pipeline::build_archive(
      path("budget.bwva"), reference_, config,
      [&progress](const std::string& line) { progress.push_back(line); });
  EXPECT_TRUE(result.blockwise);
  EXPECT_GE(result.block_bases, 1u);
  EXPECT_GT(result.merge_passes, 0u);
  EXPECT_EQ(result.bytes_written, std::filesystem::file_size(path("budget.bwva")));
  EXPECT_FALSE(progress.empty());
  EXPECT_EQ(read_file(path("budget.bwva")), read_file(path("direct.bwva")));
}

TEST_F(BlockwiseArchiveTest, ProvenanceRoundTrips) {
  build::BlockwiseConfig config;
  config.block_bases = 500;
  config.memory_budget_bytes = std::size_t{160} << 20;
  config.write_provenance = true;
  build::BlockwiseBuilder builder(reference_, config);
  const build::BlockwiseStats stats = builder.build_archive(path("prov.bwva"));

  const ArchiveInfo info = read_index_archive_info(path("prov.bwva"));
  ASSERT_TRUE(info.build.has_value());
  EXPECT_EQ(info.build->builder, "blockwise");
  EXPECT_EQ(info.build->block_bases, 500u);
  EXPECT_EQ(info.build->merge_passes, stats.merge_passes);
  EXPECT_EQ(info.build->memory_budget_bytes, std::size_t{160} << 20);

  // The full loader ignores the extra section and still validates.
  const StoredIndex loaded = read_index_archive(path("prov.bwva"), LoadMode::kCopy);
  EXPECT_EQ(loaded.reference.total_length(), reference_.total_length());

  // Direct builds record provenance too, and archives without it report none.
  PipelineConfig direct;
  direct.build_provenance = true;
  Pipeline::build_archive(path("direct_prov.bwva"), reference_, direct);
  const ArchiveInfo direct_info = read_index_archive_info(path("direct_prov.bwva"));
  ASSERT_TRUE(direct_info.build.has_value());
  EXPECT_EQ(direct_info.build->builder, "direct");

  write_direct(path("plain.bwva"), reference_);
  EXPECT_FALSE(read_index_archive_info(path("plain.bwva")).build.has_value());
}

// End-to-end: a blockwise archive loads under both modes and maps reads to
// byte-identical SAM on every registered engine.
class BlockwiseMappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_build_blockwise_map");

    GenomeSimConfig gconfig;
    gconfig.length = 9000;
    gconfig.seed = 31;
    genome_ = simulate_genome(gconfig);

    ReadSimConfig rconfig;
    rconfig.num_reads = 120;
    rconfig.read_length = 40;
    rconfig.mapping_ratio = 0.7;
    reads_ = reads_to_fastq(simulate_reads(genome_, rconfig));

    reference_.add("chr", genome_);
    direct_path_ = (dir_ / "direct.bwva").string();
    blockwise_path_ = (dir_ / "blockwise.bwva").string();
    write_direct(direct_path_, reference_);
    build::BlockwiseConfig config;
    config.block_bases = 997;
    build::BlockwiseBuilder builder(reference_, config);
    builder.build_archive(blockwise_path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string map_sam(const std::string& archive, MappingEngine engine, LoadMode mode) {
    PipelineConfig config;
    config.engine = engine;
    Pipeline pipeline = Pipeline::from_archive(archive, config, mode);
    return pipeline.map_records(reads_).sam;
  }

  std::filesystem::path dir_;
  std::vector<std::uint8_t> genome_;
  std::vector<FastqRecord> reads_;
  ReferenceSet reference_;
  std::string direct_path_;
  std::string blockwise_path_;
};

TEST_F(BlockwiseMappingTest, IdenticalSamOnEveryEngine) {
  ASSERT_EQ(read_file(blockwise_path_), read_file(direct_path_));
  for (const auto& spec : kernels::engines()) {
    const std::string direct_sam = map_sam(direct_path_, spec.engine, LoadMode::kCopy);
    EXPECT_FALSE(direct_sam.empty()) << spec.name;
    EXPECT_EQ(map_sam(blockwise_path_, spec.engine, LoadMode::kCopy), direct_sam)
        << spec.name;
  }
}

TEST_F(BlockwiseMappingTest, LoadsUnderCopyAndMmap) {
  const std::string copy_sam =
      map_sam(blockwise_path_, MappingEngine::kCpu, LoadMode::kCopy);
  const std::string mmap_sam =
      map_sam(blockwise_path_, MappingEngine::kCpu, LoadMode::kMmap);
  EXPECT_EQ(mmap_sam, copy_sam);
  EXPECT_EQ(map_sam(blockwise_path_, MappingEngine::kEpr, LoadMode::kMmap),
            map_sam(direct_path_, MappingEngine::kEpr, LoadMode::kCopy));
}

}  // namespace
}  // namespace bwaver
