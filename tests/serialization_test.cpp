// Round-trip serialization tests across the whole index stack.
#include <gtest/gtest.h>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/byte_io.hpp"
#include "succinct/rank_support.hpp"
#include "succinct/rrr_vector.hpp"
#include "succinct/wavelet_tree.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

TEST(Serialization, BitVectorRoundTrip) {
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    const BitVector original = testing::random_bits(n, 0.5, n + 1);
    ByteWriter writer;
    original.save(writer);
    ByteReader reader(writer.data());
    const BitVector loaded = BitVector::load(reader);
    EXPECT_TRUE(loaded == original) << "n=" << n;
    EXPECT_TRUE(reader.done());
  }
}

TEST(Serialization, IntVectorRoundTrip) {
  for (unsigned width : {1u, 4u, 13u, 64u}) {
    IntVector original(100, width);
    Xoshiro256 rng(width);
    for (std::size_t i = 0; i < 100; ++i) {
      original.set(i, rng() & ((width == 64) ? ~0ull : ((1ull << width) - 1)));
    }
    ByteWriter writer;
    original.save(writer);
    ByteReader reader(writer.data());
    const IntVector loaded = IntVector::load(reader);
    ASSERT_EQ(loaded.size(), original.size());
    ASSERT_EQ(loaded.width(), original.width());
    for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(loaded.get(i), original.get(i));
  }
}

TEST(Serialization, IntVectorCorruptWidthThrows) {
  ByteWriter writer;
  writer.u64(10);   // size
  writer.u32(200);  // invalid width
  ByteReader reader(writer.data());
  EXPECT_THROW(IntVector::load(reader), IoError);
}

TEST(Serialization, RrrVectorRoundTrip) {
  const BitVector bits = testing::random_bits(50000, 0.35, 9);
  const RrrVector original(bits, RrrParams{15, 50});
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const RrrVector loaded = RrrVector::load(reader);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.ones(), original.ones());
  EXPECT_EQ(loaded.block_bits(), 15u);
  EXPECT_EQ(loaded.superblock_factor(), 50u);
  for (std::size_t p = 0; p <= bits.size(); p += 97) {
    ASSERT_EQ(loaded.rank1(p), original.rank1(p));
  }
  for (std::size_t i = 0; i < bits.size(); i += 89) {
    ASSERT_EQ(loaded.access(i), bits.get(i));
  }
}

TEST(Serialization, RrrVectorCorruptParamsThrow) {
  ByteWriter writer;
  writer.u32(0);  // block_bits = 0
  writer.u32(50);
  ByteReader reader(writer.data());
  EXPECT_THROW(RrrVector::load(reader), IoError);
}

TEST(Serialization, WaveletTreeRrrRoundTrip) {
  const auto symbols = testing::random_symbols(20000, 4, 10);
  const WaveletTree<RrrVector> original(
      symbols, 4, [](const BitVector& bits) { return RrrVector(bits, {15, 50}); });
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const auto loaded = WaveletTree<RrrVector>::load(reader);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::size_t p = 0; p <= symbols.size(); p += 311) {
      ASSERT_EQ(loaded.rank(c, p), original.rank(c, p));
    }
  }
  for (std::size_t i = 0; i < symbols.size(); i += 307) {
    ASSERT_EQ(loaded.access(i), symbols[i]);
  }
}

TEST(Serialization, WaveletTreePlainRoundTrip) {
  const auto symbols = testing::random_symbols(5000, 8, 11);
  const WaveletTree<PlainRankBitVector> original(
      symbols, 8, [](const BitVector& bits) {
        return PlainRankBitVector(BitVector(bits));
      });
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const auto loaded = WaveletTree<PlainRankBitVector>::load(reader);
  for (std::uint8_t c = 0; c < 8; ++c) {
    ASSERT_EQ(loaded.rank(c, symbols.size()),
              testing::naive_rank(symbols, c, symbols.size()));
  }
}

template <typename Occ>
class FmIndexSerialization : public ::testing::Test {};

template <typename Occ>
FmIndex<Occ> build_index(std::span<const std::uint8_t> text);

template <>
FmIndex<RrrWaveletOcc> build_index(std::span<const std::uint8_t> text) {
  return FmIndex<RrrWaveletOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}
template <>
FmIndex<PlainWaveletOcc> build_index(std::span<const std::uint8_t> text) {
  return FmIndex<PlainWaveletOcc>(
      text, [](std::span<const std::uint8_t> bwt) { return PlainWaveletOcc(bwt); });
}
template <>
FmIndex<SampledOcc> build_index(std::span<const std::uint8_t> text) {
  return FmIndex<SampledOcc>(
      text, [](std::span<const std::uint8_t> bwt) { return SampledOcc(bwt, 3); });
}

using OccTypes = ::testing::Types<RrrWaveletOcc, PlainWaveletOcc, SampledOcc>;
TYPED_TEST_SUITE(FmIndexSerialization, OccTypes);

TYPED_TEST(FmIndexSerialization, FullIndexRoundTrip) {
  const auto text = testing::random_symbols(8000, 4, 12);
  const auto original = build_index<TypeParam>(text);
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const auto loaded = FmIndex<TypeParam>::load(reader);
  EXPECT_TRUE(reader.done());

  ASSERT_EQ(loaded.size(), original.size());
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pattern = testing::random_symbols(1 + rng.below(25), 4, rng());
    const SaInterval a = original.count(pattern);
    const SaInterval b = loaded.count(pattern);
    ASSERT_EQ(a, b);
    ASSERT_EQ(original.locate(a), loaded.locate(b));
  }
}

TYPED_TEST(FmIndexSerialization, TruncatedStreamThrows) {
  const auto text = testing::random_symbols(2000, 4, 14);
  const auto original = build_index<TypeParam>(text);
  ByteWriter writer;
  original.save(writer);
  auto data = writer.take();
  data.resize(data.size() / 2);
  ByteReader reader(data);
  EXPECT_THROW(FmIndex<TypeParam>::load(reader), IoError);
}

}  // namespace
}  // namespace bwaver
