// Trace span tree, ambient context propagation, Chrome trace_event export,
// and the TraceCollector slow-request ring.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

namespace {

using namespace bwaver::obs;

TEST(Trace, SpanTreeParentsAndDurations) {
  Trace trace("t1");
  const std::uint32_t root = trace.begin("root");
  const std::uint32_t child = trace.begin("child", root);
  trace.end(child);
  trace.end(root);

  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_GE(spans[0].dur_ms, 0.0);
  EXPECT_GE(spans[1].dur_ms, 0.0);
  EXPECT_LE(spans[1].dur_ms, spans[0].dur_ms + 1.0);
}

TEST(Trace, EmitReturnsIdAndSupportsNesting) {
  Trace trace("t2");
  const std::uint32_t parent = trace.emit("search", 0, -1.0, 5.0);
  ASSERT_NE(parent, 0u);
  const std::uint32_t child = trace.emit("fpga:kernel", parent, -1.0, 3.0);
  ASSERT_NE(child, 0u);
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].parent, parent);
  EXPECT_DOUBLE_EQ(spans[0].dur_ms, 5.0);
  EXPECT_DOUBLE_EQ(spans[1].dur_ms, 3.0);
}

TEST(Trace, DropsBeyondMaxSpans) {
  Trace trace("t3", /*max_spans=*/2);
  EXPECT_NE(trace.begin("a"), 0u);
  EXPECT_NE(trace.begin("b"), 0u);
  EXPECT_EQ(trace.begin("c"), 0u);
  EXPECT_EQ(trace.emit("d", 0, -1.0, 1.0), 0u);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 2u);
  trace.end(0);  // no-op on a dropped id
}

TEST(TraceSpan, NoOpWithoutAmbientContext) {
  // No installed context: construction must not touch any trace.
  TraceSpan span("orphan");
  EXPECT_EQ(span.id(), 0u);
}

TEST(TraceSpan, NestsThroughAmbientContext) {
  auto trace = std::make_shared<Trace>("ambient");
  {
    ScopedObsContext scope(ObsContext{trace.get(), 0, nullptr});
    TraceSpan outer("outer");
    ASSERT_NE(outer.id(), 0u);
    {
      TraceSpan inner("inner");
      ASSERT_NE(inner.id(), 0u);
    }
    // After inner's destruction new spans parent to outer again.
    TraceSpan sibling("sibling");
    ASSERT_NE(sibling.id(), 0u);
  }
  // Context restored: further spans are no-ops.
  TraceSpan after("after");
  EXPECT_EQ(after.id(), 0u);

  const auto spans = trace->spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);  // inner under outer
  EXPECT_EQ(spans[2].parent, spans[0].id);  // sibling under outer
}

TEST(TraceSpan, ContextReinstallOnWorkerThread) {
  auto trace = std::make_shared<Trace>("xthread");
  ObsContext captured;
  std::uint32_t root_id = 0;
  {
    ScopedObsContext scope(ObsContext{trace.get(), 0, nullptr});
    TraceSpan root("root");
    root_id = root.id();
    captured = current_context();
    std::thread worker([captured] {
      ScopedObsContext scoped(captured);
      TraceSpan shard("shard");
      EXPECT_NE(shard.id(), 0u);
    });
    worker.join();
  }
  const auto spans = trace->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "shard");
  EXPECT_EQ(spans[1].parent, root_id);
  EXPECT_NE(spans[1].tid, spans[0].tid);  // distinct per-trace thread ordinal
}

TEST(Trace, JsonShapes) {
  Trace trace("json\"id");
  const auto root = trace.begin("work");
  trace.end(root);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"trace_id\":\"json\\\"id\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":[{\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);

  const std::string chrome = trace.chrome_json();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_EQ(chrome.back(), ']');
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"cat\":\"bwaver\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":"), std::string::npos);
}

TEST(TraceCollector, DisabledReturnsNullTrace) {
  TraceCollector collector(TraceConfig{.enabled = false});
  EXPECT_EQ(collector.start_trace("req-1"), nullptr);
  collector.finish(nullptr);  // tolerated
  EXPECT_EQ(collector.completed(), 0u);
}

TEST(TraceCollector, RingBoundsAndOrder) {
  TraceCollector collector(TraceConfig{.enabled = true, .ring_capacity = 2});
  for (int i = 0; i < 4; ++i) {
    auto trace = collector.start_trace("req-" + std::to_string(i));
    ASSERT_NE(trace, nullptr);
    trace->end(trace->begin("root"));
    collector.finish(trace);
  }
  EXPECT_EQ(collector.completed(), 4u);
  EXPECT_EQ(collector.retained(), 2u);
  const auto recent = collector.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0]->id(), "req-3");  // most recent first
  EXPECT_EQ(recent[1]->id(), "req-2");
}

TEST(TraceCollector, SlowThresholdFilters) {
  TraceCollector collector(
      TraceConfig{.enabled = true, .slow_threshold_ms = 1000.0});
  auto fast = collector.start_trace("fast");
  fast->end(fast->begin("root"));
  collector.finish(fast);
  EXPECT_EQ(collector.completed(), 1u);
  EXPECT_EQ(collector.retained(), 0u);  // sub-threshold: counted, not retained

  auto slow = collector.start_trace("slow");
  slow->emit("modeled", 0, 0.0, 5000.0);  // 5 s modeled span
  collector.finish(slow);
  EXPECT_EQ(collector.retained(), 1u);
  EXPECT_EQ(collector.recent()[0]->id(), "slow");
}

}  // namespace
