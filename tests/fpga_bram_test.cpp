#include "fpga/bram.hpp"

#include <gtest/gtest.h>

#include "fpga/query_packet.hpp"

namespace bwaver {
namespace {

DeviceSpec tiny_spec() {
  DeviceSpec spec;
  spec.bram_bytes = 1000;
  spec.uram_bytes = 0;
  return spec;
}

TEST(Bram, TracksAllocations) {
  BramAllocator bram(tiny_spec());
  EXPECT_EQ(bram.capacity_bytes(), 1000u);
  bram.allocate("a", 400);
  bram.allocate("b", 500);
  EXPECT_EQ(bram.used_bytes(), 900u);
  EXPECT_EQ(bram.free_bytes(), 100u);
  ASSERT_EQ(bram.allocations().size(), 2u);
  EXPECT_EQ(bram.allocations()[0].label, "a");
  EXPECT_EQ(bram.allocations()[1].bytes, 500u);
}

TEST(Bram, OverflowThrowsWithContext) {
  BramAllocator bram(tiny_spec());
  bram.allocate("big", 900);
  try {
    bram.allocate("straw", 101);
    FAIL() << "expected DeviceCapacityError";
  } catch (const DeviceCapacityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("straw"), std::string::npos);
    EXPECT_NE(what.find("900"), std::string::npos);
  }
  // Failed allocation must not change accounting.
  EXPECT_EQ(bram.used_bytes(), 900u);
}

TEST(Bram, ExactFitSucceeds) {
  BramAllocator bram(tiny_spec());
  bram.allocate("exact", 1000);
  EXPECT_EQ(bram.free_bytes(), 0u);
}

TEST(Bram, ResetReleasesEverything) {
  BramAllocator bram(tiny_spec());
  bram.allocate("x", 800);
  bram.reset();
  EXPECT_EQ(bram.used_bytes(), 0u);
  EXPECT_TRUE(bram.allocations().empty());
  bram.allocate("y", 1000);  // capacity available again
}

TEST(DeviceSpec, DefaultsMatchPaperAssumptions) {
  const DeviceSpec spec;
  EXPECT_EQ(spec.port_width_bits, 512u);
  EXPECT_EQ(spec.port_bytes_per_cycle(), 64u);
  EXPECT_DOUBLE_EQ(spec.board_power_watts, 25.0);
  EXPECT_DOUBLE_EQ(spec.reference_cpu_watts, 135.0);
  // The combined on-chip capacity must hold the paper's chr21 structure
  // (~12.73 MB at b=15, sf=100) with room to spare.
  EXPECT_GT(spec.total_on_chip_bytes(), 13'000'000u);
}

TEST(DeviceSpec, CyclesToSeconds) {
  DeviceSpec spec;
  spec.kernel_clock_hz = 250e6;
  EXPECT_DOUBLE_EQ(spec.cycles_to_seconds(250'000'000), 1.0);
  EXPECT_DOUBLE_EQ(spec.cycles_to_seconds(0), 0.0);
}

// ------------------------------------------------------------ QueryPacket

TEST(QueryPacket, EncodeDecodeRoundTrip) {
  std::vector<std::uint8_t> codes;
  for (unsigned i = 0; i < 100; ++i) codes.push_back(static_cast<std::uint8_t>(i % 4));
  const QueryPacket packet = QueryPacket::encode(codes, 0xDEADBEEF);
  EXPECT_EQ(packet.length(), 100u);
  EXPECT_EQ(packet.id(), 0xDEADBEEFu);
  EXPECT_EQ(packet.decode(), codes);
}

TEST(QueryPacket, MaxLengthRead) {
  std::vector<std::uint8_t> codes(QueryPacket::kMaxBases, 3);
  const QueryPacket packet = QueryPacket::encode(codes, 7);
  EXPECT_EQ(packet.decode(), codes);
}

TEST(QueryPacket, RejectsOversizedRead) {
  std::vector<std::uint8_t> codes(QueryPacket::kMaxBases + 1, 0);
  EXPECT_THROW(QueryPacket::encode(codes, 0), std::length_error);
}

TEST(QueryPacket, RejectsEmptyRead) {
  EXPECT_THROW(QueryPacket::encode({}, 0), std::invalid_argument);
}

TEST(QueryPacket, MalformedLengthFieldThrowsOnDecode) {
  QueryPacket packet;
  packet.raw[44] = 0xFF;
  packet.raw[45] = 0xFF;
  EXPECT_THROW(packet.decode(), std::invalid_argument);
  QueryPacket zero;
  EXPECT_THROW(zero.decode(), std::invalid_argument);
}

TEST(QueryPacket, PacketIs512Bits) {
  EXPECT_EQ(sizeof(QueryPacket), 64u);
  EXPECT_EQ(QueryPacket::kBytes * 8, 512u);
}

TEST(QueryResult, MappedFlags) {
  QueryResult result;
  EXPECT_FALSE(result.mapped());
  result.fwd_lo = 3;
  result.fwd_hi = 5;
  EXPECT_TRUE(result.fwd_mapped());
  EXPECT_FALSE(result.rev_mapped());
  EXPECT_TRUE(result.mapped());
}

}  // namespace
}  // namespace bwaver
