#include "succinct/int_vector.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bwaver {
namespace {

TEST(IntVector, EmptyByDefault) {
  IntVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(IntVector, ZeroInitialized) {
  IntVector v(100, 7);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(v.get(i), 0u);
}

TEST(IntVector, InvalidWidthThrows) {
  EXPECT_THROW(IntVector(10, 0), std::invalid_argument);
  EXPECT_THROW(IntVector(10, 65), std::invalid_argument);
}

class IntVectorWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntVectorWidth, SetGetRoundTripRandom) {
  const unsigned width = GetParam();
  const std::size_t n = 300;
  IntVector v(n, width);
  Xoshiro256 rng(width);
  std::vector<std::uint64_t> expected(n);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = rng() & mask;
    v.set(i, expected[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(v.get(i), expected[i]) << "width=" << width << " i=" << i;
  }
}

TEST_P(IntVectorWidth, OverwriteDoesNotDisturbNeighbors) {
  const unsigned width = GetParam();
  IntVector v(10, width);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  for (std::size_t i = 0; i < 10; ++i) v.set(i, mask);
  v.set(5, 0);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(v.get(i), i == 5 ? 0 : mask);
  }
}

TEST_P(IntVectorWidth, ValueAboveWidthIsMasked) {
  const unsigned width = GetParam();
  if (width == 64) GTEST_SKIP() << "no overflow possible at 64 bits";
  IntVector v(4, width);
  v.set(2, ~std::uint64_t{0});
  EXPECT_EQ(v.get(2), (std::uint64_t{1} << width) - 1);
  EXPECT_EQ(v.get(1), 0u);
  EXPECT_EQ(v.get(3), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, IntVectorWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 13u, 15u,
                                           16u, 17u, 31u, 32u, 33u, 63u, 64u));

TEST(IntVector, FourBitClassArrayUseCase) {
  // The RRR class array stores values 0..15 in 4-bit fields.
  IntVector classes(1000, 4);
  Xoshiro256 rng(99);
  std::vector<std::uint8_t> expected(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    expected[i] = static_cast<std::uint8_t>(rng.below(16));
    classes.set(i, expected[i]);
  }
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(classes.get(i), expected[i]);
  EXPECT_EQ(classes.size_in_bytes(), ((1000 * 4 + 63) / 64) * 8u);
}

}  // namespace
}  // namespace bwaver
