#include "kernels/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "kernels/rank_kernel.hpp"

namespace bwaver::kernels {
namespace {

TEST(EngineRegistry, EnumeratesEveryEngineInEnumOrder) {
  const auto specs = engines();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].engine, MappingEngine::kFpga);
  EXPECT_EQ(specs[1].engine, MappingEngine::kCpu);
  EXPECT_EQ(specs[2].engine, MappingEngine::kBowtie2Like);
  EXPECT_EQ(specs[3].engine, MappingEngine::kPlainWavelet);
  EXPECT_EQ(specs[4].engine, MappingEngine::kVector);
  EXPECT_EQ(specs[5].engine, MappingEngine::kEpr);

  std::set<std::string> names;
  for (const EngineSpec& spec : specs) {
    ASSERT_NE(spec.name, nullptr);
    ASSERT_NE(spec.occ_backend, nullptr);
    ASSERT_NE(spec.description, nullptr);
    EXPECT_GT(spec.approx_bytes_per_base, 0.0) << spec.name;
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    if (spec.alias != nullptr) {
      EXPECT_TRUE(names.insert(spec.alias).second) << "alias collides: " << spec.alias;
    }
    EXPECT_EQ(&engine_spec(spec.engine), &spec);
  }
}

TEST(EngineRegistry, OnlyTheFpgaEngineIsADeviceModel) {
  for (const EngineSpec& spec : engines()) {
    EXPECT_EQ(spec.device_model, spec.engine == MappingEngine::kFpga) << spec.name;
  }
}

TEST(EngineRegistry, ParseAcceptsCanonicalNamesAndAliases) {
  EXPECT_EQ(parse_engine_name("fpga"), MappingEngine::kFpga);
  EXPECT_EQ(parse_engine_name("rrr"), MappingEngine::kCpu);
  EXPECT_EQ(parse_engine_name("cpu"), MappingEngine::kCpu);
  EXPECT_EQ(parse_engine_name("sampled"), MappingEngine::kBowtie2Like);
  EXPECT_EQ(parse_engine_name("bowtie2like"), MappingEngine::kBowtie2Like);
  EXPECT_EQ(parse_engine_name("plain"), MappingEngine::kPlainWavelet);
  EXPECT_EQ(parse_engine_name("vector"), MappingEngine::kVector);
  EXPECT_EQ(parse_engine_name("epr"), MappingEngine::kEpr);
  EXPECT_FALSE(parse_engine_name("").has_value());
  EXPECT_FALSE(parse_engine_name("FPGA").has_value());
  EXPECT_FALSE(parse_engine_name("simd").has_value());
}

TEST(EngineRegistry, DefaultEngineHonoursEnvironment) {
  // default_engine() re-reads $BWAVER_ENGINE on every call (unlike the
  // cached CPU-feature snapshot) so a test can exercise all branches.
  const char* saved = std::getenv("BWAVER_ENGINE");
  const std::string saved_value = saved ? saved : "";

  unsetenv("BWAVER_ENGINE");
  EXPECT_EQ(default_engine(), MappingEngine::kFpga);
  setenv("BWAVER_ENGINE", "vector", 1);
  EXPECT_EQ(default_engine(), MappingEngine::kVector);
  setenv("BWAVER_ENGINE", "cpu", 1);
  EXPECT_EQ(default_engine(), MappingEngine::kCpu);
  setenv("BWAVER_ENGINE", "not-an-engine", 1);
  EXPECT_EQ(default_engine(), MappingEngine::kFpga);

  if (saved) {
    setenv("BWAVER_ENGINE", saved_value.c_str(), 1);
  } else {
    unsetenv("BWAVER_ENGINE");
  }
}

TEST(EngineRegistry, KernelNameReflectsVectorization) {
  for (const EngineSpec& spec : engines()) {
    const char* kernel = engine_kernel_name(spec.engine);
    if (spec.vectorized) {
      EXPECT_STREQ(kernel, active_kernel().name) << spec.name;
    } else {
      EXPECT_STREQ(kernel, "scalar") << spec.name;
    }
  }
}

}  // namespace
}  // namespace bwaver::kernels
