#include "fmindex/reference_set.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "test_util.hpp"

namespace bwaver {
namespace {

ReferenceSet three_sequences() {
  ReferenceSet set;
  set.add("chrA", testing::random_symbols(100, 4, 1));
  set.add("chrB", testing::random_symbols(250, 4, 2));
  set.add("chrC", testing::random_symbols(50, 4, 3));
  return set;
}

TEST(ReferenceSet, ConcatenationLayout) {
  const auto set = three_sequences();
  EXPECT_EQ(set.num_sequences(), 3u);
  EXPECT_EQ(set.total_length(), 400u);
  EXPECT_EQ(set.sequence(0).offset, 0u);
  EXPECT_EQ(set.sequence(1).offset, 100u);
  EXPECT_EQ(set.sequence(2).offset, 350u);
  EXPECT_EQ(set.sequence(2).length, 50u);
}

TEST(ReferenceSet, RejectsEmptySequence) {
  ReferenceSet set;
  EXPECT_THROW(set.add("empty", {}), std::invalid_argument);
}

TEST(ReferenceSet, ResolveMapsGlobalToLocal) {
  const auto set = three_sequences();
  EXPECT_EQ(set.resolve(0).sequence_index, 0u);
  EXPECT_EQ(set.resolve(0).offset, 0u);
  EXPECT_EQ(set.resolve(99).sequence_index, 0u);
  EXPECT_EQ(set.resolve(99).offset, 99u);
  EXPECT_EQ(set.resolve(100).sequence_index, 1u);
  EXPECT_EQ(set.resolve(100).offset, 0u);
  EXPECT_EQ(set.resolve(349).sequence_index, 1u);
  EXPECT_EQ(set.resolve(350).sequence_index, 2u);
  EXPECT_EQ(set.resolve(399).offset, 49u);
  EXPECT_THROW(set.resolve(400), std::out_of_range);
}

TEST(ReferenceSet, SpanWithinSequenceFiltersBoundaryStraddlers) {
  const auto set = three_sequences();
  EXPECT_TRUE(set.span_within_sequence(0, 100));    // exactly chrA
  EXPECT_FALSE(set.span_within_sequence(0, 101));   // spills into chrB
  EXPECT_FALSE(set.span_within_sequence(95, 10));   // straddles A|B
  EXPECT_TRUE(set.span_within_sequence(100, 250));  // exactly chrB
  EXPECT_FALSE(set.span_within_sequence(340, 20));  // straddles B|C
  EXPECT_TRUE(set.span_within_sequence(390, 10));   // tail of chrC
  EXPECT_FALSE(set.span_within_sequence(390, 11));  // past the end
  EXPECT_FALSE(set.span_within_sequence(0, 0));     // empty span
}

TEST(ReferenceSet, ResolveSpanCombinesBoth) {
  const auto set = three_sequences();
  const auto hit = set.resolve_span(120, 30);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sequence_index, 1u);
  EXPECT_EQ(hit->offset, 20u);
  EXPECT_FALSE(set.resolve_span(95, 10).has_value());
}

TEST(ReferenceSet, SerializationRoundTrip) {
  const auto original = three_sequences();
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const auto loaded = ReferenceSet::load(reader);
  EXPECT_EQ(loaded.num_sequences(), 3u);
  EXPECT_EQ(loaded.sequence(1).name, "chrB");
  EXPECT_EQ(loaded.concatenated(), original.concatenated());
}

TEST(ReferenceSet, LoadRejectsCorruptTable) {
  ByteWriter writer;
  writer.u64(1);
  writer.str("bad");
  writer.u32(5);   // offset should be 0
  writer.u32(10);
  writer.vec_u8(std::vector<std::uint8_t>(15, 0));
  ByteReader reader(writer.data());
  EXPECT_THROW(ReferenceSet::load(reader), IoError);
}

TEST(ReferenceSet, SingleSequenceDegenerateCase) {
  ReferenceSet set;
  set.add("only", testing::random_symbols(42, 4, 9));
  EXPECT_TRUE(set.span_within_sequence(0, 42));
  EXPECT_EQ(set.resolve(41).sequence_index, 0u);
}

TEST(ReferenceSet, CoordinateOverflowGuard) {
  ReferenceSet set;
  // The guard triggers on total size, not per-sequence size; simulate with
  // a fake large count via repeated adds being too slow — instead check the
  // documented limit directly on one oversized request.
  std::vector<std::uint8_t> big;
  EXPECT_THROW(
      {
        // Can't actually allocate >1 GiB here; the guard fires before the
        // insert, so pass a span with a forged size over a small buffer.
        std::vector<std::uint8_t> tiny(1);
        set.add("huge", std::span<const std::uint8_t>(
                            tiny.data(), std::numeric_limits<std::uint32_t>::max()));
      },
      std::length_error);
}

}  // namespace
}  // namespace bwaver
