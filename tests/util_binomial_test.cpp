#include "util/binomial.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"

namespace bwaver {
namespace {

TEST(Binomial, KnownValues) {
  const auto& table = BinomialTable::instance();
  EXPECT_EQ(table.choose(0, 0), 1u);
  EXPECT_EQ(table.choose(5, 0), 1u);
  EXPECT_EQ(table.choose(5, 5), 1u);
  EXPECT_EQ(table.choose(5, 2), 10u);
  EXPECT_EQ(table.choose(15, 7), 6435u);
  EXPECT_EQ(table.choose(15, 8), 6435u);
  EXPECT_EQ(table.choose(10, 3), 120u);
}

TEST(Binomial, OutOfRangeIsZero) {
  const auto& table = BinomialTable::instance();
  EXPECT_EQ(table.choose(3, 4), 0u);
  EXPECT_EQ(table.choose(16, 1), 0u);  // beyond kMaxBlockBits
}

TEST(Binomial, Symmetry) {
  const auto& table = BinomialTable::instance();
  for (unsigned n = 0; n <= kMaxBlockBits; ++n) {
    for (unsigned k = 0; k <= n; ++k) {
      EXPECT_EQ(table.choose(n, k), table.choose(n, n - k));
    }
  }
}

TEST(Binomial, PascalIdentity) {
  const auto& table = BinomialTable::instance();
  for (unsigned n = 1; n <= kMaxBlockBits; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      EXPECT_EQ(table.choose(n, k), table.choose(n - 1, k - 1) + table.choose(n - 1, k));
    }
  }
}

TEST(Binomial, RowSumsArePowersOfTwo) {
  const auto& table = BinomialTable::instance();
  for (unsigned n = 0; n <= kMaxBlockBits; ++n) {
    std::uint64_t sum = 0;
    for (unsigned k = 0; k <= n; ++k) sum += table.choose(n, k);
    EXPECT_EQ(sum, std::uint64_t{1} << n);
  }
}

TEST(Binomial, OffsetWidthIsCeilLog2) {
  const auto& table = BinomialTable::instance();
  for (unsigned n = 0; n <= kMaxBlockBits; ++n) {
    for (unsigned k = 0; k <= n; ++k) {
      EXPECT_EQ(table.offset_width(n, k), ceil_log2(table.choose(n, k)));
    }
  }
  // Singleton classes need zero offset bits.
  EXPECT_EQ(table.offset_width(15, 0), 0u);
  EXPECT_EQ(table.offset_width(15, 15), 0u);
}

TEST(Binomial, SharedInstanceIsStable) {
  const auto& a = BinomialTable::instance();
  const auto& b = BinomialTable::instance();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace bwaver
