#include "fpga/runtime.hpp"

#include <gtest/gtest.h>

#include "fpga/power.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {
namespace {

FmIndex<RrrWaveletOcc> small_index() {
  GenomeSimConfig config;
  config.length = 20000;
  config.seed = 31;
  const auto genome = simulate_genome(config);
  return FmIndex<RrrWaveletOcc>(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}

std::vector<QueryPacket> small_batch(const FmIndex<RrrWaveletOcc>& index,
                                     std::size_t count) {
  GenomeSimConfig config;
  config.length = 20000;
  config.seed = 31;
  const auto genome = simulate_genome(config);
  ReadSimConfig rc;
  rc.num_reads = count;
  rc.read_length = 40;
  const auto reads = simulate_reads(genome, rc);
  std::vector<QueryPacket> packets;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    packets.push_back(QueryPacket::encode(reads[i].codes, static_cast<std::uint32_t>(i)));
  }
  (void)index;
  return packets;
}

TEST(FpgaRuntime, KernelBeforeProgramThrows) {
  FpgaRuntime runtime;
  std::vector<QueryResult> results;
  EXPECT_THROW(runtime.enqueue_kernel({}, results), std::logic_error);
}

TEST(FpgaRuntime, ProgramRecordsEvent) {
  FpgaRuntime runtime;
  const auto index = small_index();
  const EventPtr event = runtime.program(index);
  EXPECT_EQ(event->type, CommandType::kProgram);
  EXPECT_GT(event->duration_ns(), 0u);
  EXPECT_TRUE(runtime.programmed());
}

TEST(FpgaRuntime, TimelineIsMonotonicAndGapless) {
  FpgaRuntime runtime;
  const auto index = small_index();
  runtime.program(index);
  std::vector<QueryResult> results;
  const auto batch = small_batch(index, 100);
  runtime.enqueue_write(batch.size() * QueryPacket::kBytes);
  runtime.enqueue_kernel(batch, results);
  runtime.enqueue_read(batch.size() * QueryResult::kBytes);

  const auto& events = runtime.events();
  ASSERT_EQ(events.size(), 4u);
  std::uint64_t cursor = 0;
  for (const auto& event : events) {
    ASSERT_EQ(event->start_ns, cursor);  // in-order queue, no gaps
    ASSERT_GE(event->end_ns, event->start_ns);
    ASSERT_LE(event->queued_ns, event->start_ns);
    cursor = event->end_ns;
  }
  EXPECT_EQ(runtime.device_time_ns(), cursor);
}

TEST(FpgaRuntime, TransferTimeMatchesBandwidthModel) {
  DeviceSpec spec;
  spec.pcie_bandwidth_bytes_per_sec = 1e9;  // 1 GB/s for easy arithmetic
  FpgaRuntime runtime(spec);
  const EventPtr event = runtime.enqueue_write(1'000'000);  // 1 MB -> 1 ms
  EXPECT_NEAR(static_cast<double>(event->duration_ns()), 1e6, 1e3);
}

TEST(FpgaRuntime, KernelDurationMatchesCycleModel) {
  FpgaRuntime runtime;
  const auto index = small_index();
  runtime.program(index);
  std::vector<QueryResult> results;
  const auto batch = small_batch(index, 200);
  const EventPtr event = runtime.enqueue_kernel(batch, results);
  const KernelStats& stats = runtime.total_kernel_stats();
  const double expected_ns =
      runtime.spec().cycles_to_seconds(stats.compute_cycles) * 1e9;
  EXPECT_NEAR(static_cast<double>(event->duration_ns()), expected_ns, 1.0);
  EXPECT_EQ(results.size(), batch.size());
}

TEST(FpgaRuntime, KernelStatsAccumulateAcrossBatches) {
  FpgaRuntime runtime;
  const auto index = small_index();
  runtime.program(index);
  std::vector<QueryResult> results;
  const auto batch = small_batch(index, 50);
  runtime.enqueue_kernel(batch, results);
  const auto after_one = runtime.total_kernel_stats().queries;
  runtime.enqueue_kernel(batch, results);
  EXPECT_EQ(runtime.total_kernel_stats().queries, after_one * 2);
}

TEST(FpgaRuntime, ReprogramResetsStats) {
  FpgaRuntime runtime;
  const auto index = small_index();
  runtime.program(index);
  std::vector<QueryResult> results;
  runtime.enqueue_kernel(small_batch(index, 50), results);
  EXPECT_GT(runtime.total_kernel_stats().queries, 0u);
  runtime.program(index);
  EXPECT_EQ(runtime.total_kernel_stats().queries, 0u);
}

// ---------------------------------------------------------------- power

TEST(Power, JoulesIsTimesWatts) {
  const PowerReport report{2.0, 25.0};
  EXPECT_DOUBLE_EQ(report.joules(), 50.0);
}

TEST(Power, EfficiencyRatioMatchesPaperDefinition) {
  // FPGA: 1 s at 25 W; CPU: 10 s at 135 W -> CPU uses 54x the energy.
  const PowerReport fpga{1.0, 25.0};
  const PowerReport cpu{10.0, 135.0};
  EXPECT_DOUBLE_EQ(power_efficiency_ratio(fpga, cpu), 54.0);
  EXPECT_DOUBLE_EQ(power_efficiency_ratio(fpga, fpga), 1.0);
}

TEST(Power, SpeedupRatio) {
  EXPECT_DOUBLE_EQ(speedup_ratio(1.0, 68.23), 68.23);
  EXPECT_DOUBLE_EQ(speedup_ratio(0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace bwaver
