#include "fmindex/sampled_sa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

FmIndex<RrrWaveletOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<RrrWaveletOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}

TEST(FmIndexLf, LfWalksTextBackwards) {
  const auto text = testing::random_symbols(500, 4, 500);
  const auto index = make_index(text);
  const auto& sa = index.suffix_array();
  for (std::uint32_t row = 0; row < index.rows(); ++row) {
    const std::uint32_t next = index.lf(row);
    if (sa[row] == 0) {
      // Primary row: LF wraps to the first row (the sentinel suffix).
      EXPECT_EQ(next, 0u);
    } else {
      EXPECT_EQ(sa[next], sa[row] - 1) << "row=" << row;
    }
  }
}

TEST(FmIndexLf, BwtAtMatchesColumn) {
  const auto text = testing::random_symbols(300, 4, 501);
  const auto index = make_index(text);
  for (std::uint32_t row = 0; row < index.rows(); ++row) {
    EXPECT_EQ(index.bwt_at(row), index.bwt().column(row));
  }
}

class SampledSaRate : public ::testing::TestWithParam<unsigned> {};

TEST_P(SampledSaRate, LookupMatchesFullArray) {
  const unsigned rate = GetParam();
  const auto text = testing::random_symbols(2000, 4, 502);
  const auto index = make_index(text);
  const auto& sa = index.suffix_array();
  const SampledSuffixArray sampled(sa, rate);
  for (std::uint32_t row = 0; row < index.rows(); ++row) {
    ASSERT_EQ(sampled.lookup(index, row), sa[row]) << "rate=" << rate << " row=" << row;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SampledSaRate,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u, 100u));

TEST(SampledSa, RejectsZeroRate) {
  const std::vector<std::uint32_t> sa = {3, 2, 1, 0};
  EXPECT_THROW(SampledSuffixArray(sa, 0), std::invalid_argument);
}

TEST(SampledSa, MemoryShrinksWithRate) {
  const auto text = testing::random_symbols(50000, 4, 503);
  const auto index = make_index(text);
  const SampledSuffixArray rate4(index.suffix_array(), 4);
  const SampledSuffixArray rate32(index.suffix_array(), 32);
  EXPECT_LT(rate32.size_in_bytes(), rate4.size_in_bytes());
  // The full SA costs 4 B/row; rate-32 sampling must be far below 1 B/row.
  EXPECT_LT(static_cast<double>(rate32.size_in_bytes()) /
                static_cast<double>(index.rows()),
            1.0);
}

TEST(SampledSa, Rate1KeepsEverySample) {
  const auto text = testing::random_symbols(200, 4, 504);
  const auto index = make_index(text);
  const SampledSuffixArray sampled(index.suffix_array(), 1);
  for (std::uint32_t row = 0; row < index.rows(); ++row) {
    EXPECT_TRUE(sampled.is_sampled(row));
  }
}

TEST(SampledSa, LocateThroughSampledArrayMatchesBruteForce) {
  const auto text = testing::random_symbols(3000, 4, 505);
  const auto index = make_index(text);
  const SampledSuffixArray sampled(index.suffix_array(), 16);
  std::vector<std::uint8_t> pattern(text.begin() + 42, text.begin() + 60);
  const SaInterval iv = index.count(pattern);
  std::vector<std::uint32_t> positions;
  for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
    positions.push_back(sampled.lookup(index, row));
  }
  std::sort(positions.begin(), positions.end());
  EXPECT_EQ(positions, testing::naive_find_all(text, pattern));
}

TEST(SampledSa, SerializationRoundTrip) {
  const auto text = testing::random_symbols(1500, 4, 506);
  const auto index = make_index(text);
  const SampledSuffixArray original(index.suffix_array(), 8);

  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const SampledSuffixArray loaded = SampledSuffixArray::load(reader);
  EXPECT_EQ(loaded.rate(), original.rate());
  for (std::uint32_t row = 0; row < index.rows(); row += 7) {
    ASSERT_EQ(loaded.lookup(index, row), index.suffix_array()[row]);
  }
}

class SampledIsaRate : public ::testing::TestWithParam<unsigned> {};

TEST_P(SampledIsaRate, ExtractRecoversArbitraryWindows) {
  const unsigned rate = GetParam();
  const auto text = testing::random_symbols(3000, 4, 510);
  const auto index = make_index(text);
  const SampledInverseSuffixArray isa(index.suffix_array(), rate);

  Xoshiro256 rng(511);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint32_t start = static_cast<std::uint32_t>(rng.below(text.size()));
    const std::uint32_t length =
        static_cast<std::uint32_t>(rng.below(text.size() - start + 1));
    const auto extracted = isa.extract(index, start, length);
    ASSERT_EQ(extracted.size(), length);
    for (std::uint32_t k = 0; k < length; ++k) {
      ASSERT_EQ(extracted[k], text[start + k])
          << "rate=" << rate << " start=" << start << " len=" << length << " k=" << k;
    }
  }
}

TEST_P(SampledIsaRate, ExtractFullTextAndEdges) {
  const unsigned rate = GetParam();
  const auto text = testing::random_symbols(500, 4, 512);
  const auto index = make_index(text);
  const SampledInverseSuffixArray isa(index.suffix_array(), rate);
  EXPECT_EQ(isa.extract(index, 0, static_cast<std::uint32_t>(text.size())), text);
  EXPECT_TRUE(isa.extract(index, 100, 0).empty());
  const auto tail = isa.extract(index, static_cast<std::uint32_t>(text.size()) - 1, 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], text.back());
  EXPECT_THROW(isa.extract(index, 0, static_cast<std::uint32_t>(text.size()) + 1),
               std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(Rates, SampledIsaRate, ::testing::Values(1u, 4u, 16u, 64u));

TEST(SampledIsa, RejectsZeroRate) {
  const std::vector<std::uint32_t> sa = {3, 2, 1, 0};
  EXPECT_THROW(SampledInverseSuffixArray(sa, 0), std::invalid_argument);
}

TEST(SampledIsa, SerializationRoundTrip) {
  const auto text = testing::random_symbols(800, 4, 513);
  const auto index = make_index(text);
  const SampledInverseSuffixArray original(index.suffix_array(), 8);
  ByteWriter writer;
  original.save(writer);
  ByteReader reader(writer.data());
  const auto loaded = SampledInverseSuffixArray::load(reader);
  EXPECT_EQ(loaded.extract(index, 13, 200), original.extract(index, 13, 200));
}

TEST(SampledIsa, SelfIndexWithoutTextMemory) {
  // The combination ISA samples + Occ backend replaces the text: memory is
  // a small fraction of the raw 2-bit text at rate 32.
  const auto text = testing::random_symbols(60000, 4, 514);
  const auto index = make_index(text);
  const SampledInverseSuffixArray isa(index.suffix_array(), 32);
  EXPECT_LT(isa.size_in_bytes(), text.size() / 4);  // well under 2 bits/base
}

TEST(SampledSa, MoveKeepsRankValid) {
  const auto text = testing::random_symbols(800, 4, 507);
  const auto index = make_index(text);
  SampledSuffixArray a(index.suffix_array(), 8);
  const SampledSuffixArray b = std::move(a);
  for (std::uint32_t row = 0; row < index.rows(); row += 13) {
    ASSERT_EQ(b.lookup(index, row), index.suffix_array()[row]);
  }
}

}  // namespace
}  // namespace bwaver
