// End-to-end integration: simulated genome -> simulated reads -> all three
// engines -> located positions verified against the simulator's ground
// truth, plus the paper's accuracy claim (FPGA == software, bit-exact).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fmindex/dna.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  EndToEnd() {
    GenomeSimConfig gc;
    gc.length = 100000;
    gc.seed = 2024;
    gc.repeat_fraction = 0.2;
    genome_ = simulate_genome(gc);

    ReadSimConfig rc;
    rc.num_reads = 1000;
    rc.read_length = 64;
    rc.mapping_ratio = 0.75;
    rc.seed = 99;
    reads_ = simulate_reads(genome_, rc);
    batch_ = ReadBatch::from_simulated(reads_);
  }

  std::vector<std::uint8_t> genome_;
  std::vector<SimulatedRead> reads_;
  ReadBatch batch_;
};

TEST_F(EndToEnd, EveryMappedReadLocatesItsTrueOrigin) {
  const BwaverCpuMapper mapper(genome_, RrrParams{15, 50});
  const auto results = mapper.map(batch_, 2);
  const auto& index = mapper.index();

  std::size_t verified = 0;
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    const auto& read = reads_[i];
    if (read.origin == SimulatedRead::kUnmapped) {
      // 64-mer random reads must not occur in a 100 kb reference.
      ASSERT_FALSE(results[i].mapped()) << "random read " << i << " mapped";
      continue;
    }
    const SaInterval iv = read.from_reverse_strand
                              ? SaInterval{results[i].rev_lo, results[i].rev_hi}
                              : SaInterval{results[i].fwd_lo, results[i].fwd_hi};
    const auto positions = index.locate(iv);
    ASSERT_TRUE(std::find(positions.begin(), positions.end(), read.origin) !=
                positions.end())
        << "read " << i;
    // Every reported position must be a true occurrence.
    const auto probe = read.from_reverse_strand
                           ? dna_reverse_complement(read.codes)
                           : read.codes;
    for (std::uint32_t pos : positions) {
      ASSERT_LE(pos + probe.size(), genome_.size());
      ASSERT_TRUE(std::equal(probe.begin(), probe.end(), genome_.begin() + pos));
    }
    ++verified;
  }
  EXPECT_EQ(verified, 750u);
}

TEST_F(EndToEnd, AllThreeEnginesAreBitExact) {
  const BwaverCpuMapper cpu(genome_, RrrParams{15, 50});
  const Bowtie2LikeMapper bowtie(genome_);
  BwaverFpgaMapper fpga(cpu.index());

  const auto a = cpu.map(batch_);
  const auto b = bowtie.map(batch_);
  const auto c = fpga.map(batch_);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fwd_lo, b[i].fwd_lo);
    ASSERT_EQ(a[i].fwd_hi, b[i].fwd_hi);
    ASSERT_EQ(a[i].rev_lo, b[i].rev_lo);
    ASSERT_EQ(a[i].rev_hi, b[i].rev_hi);
    ASSERT_EQ(a[i].fwd_lo, c[i].fwd_lo);
    ASSERT_EQ(a[i].fwd_hi, c[i].fwd_hi);
    ASSERT_EQ(a[i].rev_lo, c[i].rev_lo);
    ASSERT_EQ(a[i].rev_hi, c[i].rev_hi);
  }
}

TEST_F(EndToEnd, RrrParametersDoNotChangeResults) {
  // b and sf trade memory for time but never accuracy.
  const BwaverCpuMapper baseline(genome_, RrrParams{15, 50});
  const auto expected = baseline.map(batch_);
  for (const RrrParams params : {RrrParams{15, 200}, RrrParams{7, 10}, RrrParams{4, 5}}) {
    const BwaverCpuMapper variant(genome_, params);
    const auto results = variant.map(batch_);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(results[i].fwd_lo, expected[i].fwd_lo)
          << "b=" << params.block_bits << " sf=" << params.superblock_factor;
      ASSERT_EQ(results[i].fwd_hi, expected[i].fwd_hi);
      ASSERT_EQ(results[i].rev_lo, expected[i].rev_lo);
      ASSERT_EQ(results[i].rev_hi, expected[i].rev_hi);
    }
  }
}

TEST_F(EndToEnd, MappingRatioDrivesKernelWork) {
  // Fig. 7's mechanism end-to-end: higher mapping ratio -> more executed
  // steps -> more kernel cycles, on the same reference and read count.
  const BwaverCpuMapper cpu(genome_, RrrParams{15, 50});
  std::uint64_t prev_cycles = 0;
  for (double ratio : {0.0, 0.5, 1.0}) {
    ReadSimConfig rc;
    rc.num_reads = 500;
    rc.read_length = 100;
    rc.mapping_ratio = ratio;
    const auto reads = simulate_reads(genome_, rc);
    BwaverFpgaMapper fpga(cpu.index());
    FpgaMapReport report;
    fpga.map(ReadBatch::from_simulated(reads), &report);
    EXPECT_GT(report.kernel_stats.compute_cycles, prev_cycles) << "ratio=" << ratio;
    prev_cycles = report.kernel_stats.compute_cycles;
  }
}

TEST_F(EndToEnd, SearchTimeIndependentOfReferenceSize) {
  // Paper Sec. IV: mapping cost depends on reads, not reference length.
  // Modeled kernel cycles for the same fully-mapping workload must be equal
  // (up to early-exit noise) across a 50 kb and a 200 kb reference.
  GenomeSimConfig small_cfg;
  small_cfg.length = 50000;
  small_cfg.seed = 1;
  GenomeSimConfig large_cfg;
  large_cfg.length = 200000;
  large_cfg.seed = 2;
  const auto small_genome = simulate_genome(small_cfg);
  const auto large_genome = simulate_genome(large_cfg);

  ReadSimConfig rc;
  rc.num_reads = 300;
  rc.read_length = 80;
  rc.mapping_ratio = 1.0;

  std::uint64_t cycles[2];
  const std::vector<std::uint8_t>* genomes[2] = {&small_genome, &large_genome};
  for (int i = 0; i < 2; ++i) {
    const BwaverCpuMapper cpu(*genomes[i], RrrParams{15, 50});
    BwaverFpgaMapper fpga(cpu.index());
    FpgaMapReport report;
    fpga.map(ReadBatch::from_simulated(simulate_reads(*genomes[i], rc)), &report);
    cycles[i] = report.kernel_stats.compute_cycles;
  }
  EXPECT_NEAR(static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]), 1.0,
              0.01);
}

TEST_F(EndToEnd, FpgaModelOutpacesMeasuredSoftware) {
  // The qualitative headline: the modeled FPGA mapping time beats the
  // wall-clock software time on any realistic batch.
  const BwaverCpuMapper cpu(genome_, RrrParams{15, 50});
  SoftwareMapReport sw;
  cpu.map(batch_, 1, &sw);

  BwaverFpgaMapper fpga(cpu.index());
  FpgaMapReport hw;
  fpga.map(batch_, &hw);
  EXPECT_LT(hw.mapping_seconds(), sw.seconds);
}

}  // namespace
}  // namespace bwaver
