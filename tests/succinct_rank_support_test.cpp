#include "succinct/rank_support.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bwaver {
namespace {

struct RankCase {
  std::size_t size;
  double density;
};

class RankSupportParam : public ::testing::TestWithParam<RankCase> {};

TEST_P(RankSupportParam, MatchesLinearOracleEverywhere) {
  const auto [size, density] = GetParam();
  const BitVector bv = testing::random_bits(size, density, size * 31 + 1);
  const RankSupport rank(bv);
  for (std::size_t p = 0; p <= size; ++p) {
    ASSERT_EQ(rank.rank1(p), bv.rank1_linear(p)) << "p=" << p;
    ASSERT_EQ(rank.rank0(p), p - bv.rank1_linear(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, RankSupportParam,
    ::testing::Values(RankCase{1, 0.5}, RankCase{63, 0.1}, RankCase{64, 0.5},
                      RankCase{65, 0.9}, RankCase{511, 0.5}, RankCase{512, 0.3},
                      RankCase{513, 0.7}, RankCase{1000, 0.01}, RankCase{1000, 0.99},
                      RankCase{4096, 0.5}, RankCase{10000, 0.25}));

TEST(RankSupport, EmptyVector) {
  BitVector bv;
  RankSupport rank(bv);
  EXPECT_EQ(rank.rank1(0), 0u);
}

TEST(RankSupport, AllZeros) {
  BitVector bv(2000, false);
  RankSupport rank(bv);
  EXPECT_EQ(rank.rank1(2000), 0u);
  EXPECT_EQ(rank.rank0(2000), 2000u);
}

TEST(RankSupport, AllOnes) {
  BitVector bv(2000, true);
  RankSupport rank(bv);
  for (std::size_t p : {0u, 1u, 64u, 512u, 1999u, 2000u}) {
    ASSERT_EQ(rank.rank1(p), p);
  }
}

TEST(RankSupport, WordAlignedEnd) {
  // rank at exactly size when size is a multiple of 64 and of the
  // superblock span (512) — regression test for the sentinel entry.
  for (std::size_t size : {512u, 1024u, 4096u}) {
    const BitVector bv = testing::random_bits(size, 0.5, size);
    const RankSupport rank(bv);
    ASSERT_EQ(rank.rank1(size), bv.count_ones()) << "size=" << size;
  }
}

TEST(PlainRankBitVector, WrapsBitsAndRank) {
  const BitVector bits = testing::random_bits(777, 0.4, 123);
  const BitVector copy = bits;
  PlainRankBitVector prbv(std::move(const_cast<BitVector&>(copy)));
  ASSERT_EQ(prbv.size(), 777u);
  for (std::size_t i = 0; i < 777; ++i) {
    ASSERT_EQ(prbv.access(i), bits.get(i));
  }
  for (std::size_t p = 0; p <= 777; p += 7) {
    ASSERT_EQ(prbv.rank1(p), bits.rank1_linear(p));
  }
  EXPECT_GT(prbv.size_in_bytes(), 0u);
}

TEST(PlainRankBitVector, MoveKeepsRankValid) {
  PlainRankBitVector a(testing::random_bits(1000, 0.5, 5));
  const std::size_t expected = a.rank1(1000);
  PlainRankBitVector b = std::move(a);
  EXPECT_EQ(b.rank1(1000), expected);
  EXPECT_EQ(b.size(), 1000u);
}

}  // namespace
}  // namespace bwaver
