// Per-process-unique scratch directories for test fixtures.
//
// gtest_discover_tests runs every TEST_F as its own ctest entry, so under
// `ctest -j` the same fixture executes concurrently in separate processes.
// A fixture that uses a fixed temp path has its files deleted by a
// neighbor's TearDown mid-test; deriving the path from the pid plus a
// random suffix removes the collision (the same reasoning that makes the
// HTTP tests bind port 0 instead of a fixed port).
#pragma once

#include <unistd.h>

#include <filesystem>
#include <random>
#include <string>

namespace bwaver::test {

inline std::filesystem::path unique_test_dir(const std::string& prefix) {
  static std::mt19937_64 rng{std::random_device{}()};
  const auto dir = std::filesystem::temp_directory_path() /
                   (prefix + "_" + std::to_string(::getpid()) + "_" +
                    std::to_string(rng() & 0xffffff));
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace bwaver::test
