#include "util/cpu_features.hpp"

#include <gtest/gtest.h>

#include <string>

namespace bwaver {
namespace {

CpuFeatures full_x86() {
  CpuFeatures f;
  f.sse42 = true;
  f.avx2 = true;
  f.pclmul = true;
  f.best = SimdLevel::kAvx2;
  return f;
}

TEST(CpuFeatures, DetectionIsInternallyConsistent) {
  const CpuFeatures f = detect_cpu_features();
  switch (f.best) {
    case SimdLevel::kAvx2:
      EXPECT_TRUE(f.avx2);
      break;
    case SimdLevel::kSse42:
      EXPECT_TRUE(f.sse42);
      EXPECT_FALSE(f.avx2);
      break;
    case SimdLevel::kNeon:
      EXPECT_TRUE(f.neon);
      break;
    case SimdLevel::kPortable:
      EXPECT_FALSE(f.avx2);
      EXPECT_FALSE(f.sse42);
      EXPECT_FALSE(f.neon);
      break;
  }
}

TEST(CpuFeatures, CapClearsFlagsAboveTheLevel) {
  CpuFeatures capped = cap_cpu_features(full_x86(), SimdLevel::kSse42);
  EXPECT_FALSE(capped.avx2);
  EXPECT_TRUE(capped.sse42);
  EXPECT_TRUE(capped.pclmul);  // pclmul rides with the sse4 tier
  EXPECT_EQ(capped.best, SimdLevel::kSse42);

  capped = cap_cpu_features(full_x86(), SimdLevel::kPortable);
  EXPECT_FALSE(capped.avx2);
  EXPECT_FALSE(capped.sse42);
  EXPECT_FALSE(capped.pclmul);
  EXPECT_EQ(capped.best, SimdLevel::kPortable);
}

TEST(CpuFeatures, CapAtOrAboveDetectedIsIdentity) {
  const CpuFeatures capped = cap_cpu_features(full_x86(), SimdLevel::kAvx2);
  EXPECT_TRUE(capped.avx2);
  EXPECT_TRUE(capped.sse42);
  EXPECT_TRUE(capped.pclmul);
  EXPECT_EQ(capped.best, SimdLevel::kAvx2);
}

TEST(CpuFeatures, NeonCapOnX86DegradesToPortable) {
  const CpuFeatures capped = cap_cpu_features(full_x86(), SimdLevel::kNeon);
  EXPECT_FALSE(capped.avx2);
  EXPECT_FALSE(capped.sse42);
  EXPECT_FALSE(capped.pclmul);
  EXPECT_EQ(capped.best, SimdLevel::kPortable);
}

TEST(CpuFeatures, NeonCapKeepsNeon) {
  CpuFeatures arm;
  arm.neon = true;
  arm.best = SimdLevel::kNeon;
  const CpuFeatures capped = cap_cpu_features(arm, SimdLevel::kNeon);
  EXPECT_TRUE(capped.neon);
  EXPECT_EQ(capped.best, SimdLevel::kNeon);
}

TEST(CpuFeatures, CapToLevelHardwareLacksDegrades) {
  CpuFeatures sse_only;
  sse_only.sse42 = true;
  sse_only.best = SimdLevel::kSse42;
  const CpuFeatures capped = cap_cpu_features(sse_only, SimdLevel::kAvx2);
  EXPECT_FALSE(capped.avx2);
  EXPECT_EQ(capped.best, SimdLevel::kSse42);
}

TEST(CpuFeatures, LevelNamesRoundTrip) {
  for (const SimdLevel level : {SimdLevel::kPortable, SimdLevel::kSse42,
                                SimdLevel::kAvx2, SimdLevel::kNeon}) {
    const auto parsed = parse_simd_level(simd_level_name(level));
    ASSERT_TRUE(parsed.has_value()) << simd_level_name(level);
    EXPECT_EQ(*parsed, level);
  }
}

TEST(CpuFeatures, ParseAcceptsSpellingVariants) {
  EXPECT_EQ(parse_simd_level("scalar"), SimdLevel::kPortable);
  EXPECT_EQ(parse_simd_level("swar"), SimdLevel::kPortable);
  EXPECT_EQ(parse_simd_level("sse4.2"), SimdLevel::kSse42);
  EXPECT_FALSE(parse_simd_level("avx512").has_value());
  EXPECT_FALSE(parse_simd_level("").has_value());
  EXPECT_FALSE(parse_simd_level("AVX2").has_value());  // names are lowercase
}

TEST(CpuFeatures, FeatureStringFormats) {
  EXPECT_EQ(cpu_features_string(CpuFeatures{}), "portable");
  EXPECT_EQ(cpu_features_string(full_x86()), "avx2+sse42+pclmul");
  CpuFeatures arm;
  arm.neon = true;
  arm.best = SimdLevel::kNeon;
  EXPECT_EQ(cpu_features_string(arm), "neon");
}

TEST(CpuFeatures, ProcessSnapshotIsCachedAndCapConsistent) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b);  // one static snapshot
  // Whatever cap $BWAVER_CPU_FEATURES applied, the snapshot can never
  // exceed the raw hardware detection.
  const CpuFeatures raw = detect_cpu_features();
  EXPECT_LE(a.avx2, raw.avx2);
  EXPECT_LE(a.sse42, raw.sse42);
  EXPECT_LE(a.neon, raw.neon);
  EXPECT_LE(a.pclmul, raw.pclmul);
  EXPECT_LE(static_cast<int>(a.best), static_cast<int>(raw.best));
}

}  // namespace
}  // namespace bwaver
