#include "succinct/rrr_vector.hpp"

#include <gtest/gtest.h>

#include "succinct/global_rank_table.hpp"
#include "test_util.hpp"
#include "util/bits.hpp"

namespace bwaver {
namespace {

// ------------------------------------------------------- GlobalRankTable

TEST(GlobalRankTable, RejectsInvalidBlockSize) {
  EXPECT_THROW(GlobalRankTable::get(0), std::invalid_argument);
  EXPECT_THROW(GlobalRankTable::get(16), std::invalid_argument);
}

TEST(GlobalRankTable, SharedPerBlockSize) {
  EXPECT_EQ(&GlobalRankTable::get(15), &GlobalRankTable::get(15));
  EXPECT_NE(&GlobalRankTable::get(7), &GlobalRankTable::get(8));
}

class GlobalRankTableParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(GlobalRankTableParam, PermutationsSortedByClassThenValue) {
  const unsigned b = GetParam();
  const auto& table = GlobalRankTable::get(b);
  const std::uint32_t universe = 1u << b;
  std::uint16_t prev = 0;
  unsigned prev_class = 0;
  for (std::uint32_t i = 0; i < universe; ++i) {
    const std::uint16_t value = table.permutation(i);
    const unsigned cls = static_cast<unsigned>(popcount64(value));
    if (i > 0) {
      ASSERT_GE(cls, prev_class);
      if (cls == prev_class) ASSERT_GT(value, prev);
    }
    prev = value;
    prev_class = cls;
  }
}

TEST_P(GlobalRankTableParam, ClassOffsetsMatchBinomials) {
  const unsigned b = GetParam();
  const auto& table = GlobalRankTable::get(b);
  const auto& binom = BinomialTable::instance();
  std::uint32_t running = 0;
  for (unsigned c = 0; c <= b; ++c) {
    ASSERT_EQ(table.class_offset(c), running);
    running += binom.choose(b, c);
  }
  ASSERT_EQ(running, 1u << b);
}

TEST_P(GlobalRankTableParam, OffsetOfInvertsPermutation) {
  const unsigned b = GetParam();
  const auto& table = GlobalRankTable::get(b);
  const std::uint32_t universe = 1u << b;
  for (std::uint32_t value = 0; value < universe; ++value) {
    const unsigned cls = static_cast<unsigned>(popcount64(value));
    const std::uint32_t index = table.class_offset(cls) + table.offset_of(
        static_cast<std::uint16_t>(value));
    ASSERT_EQ(table.permutation(index), value);
  }
}

TEST_P(GlobalRankTableParam, SearchOffsetMatchesInverseTable) {
  const unsigned b = GetParam();
  const auto& table = GlobalRankTable::get(b);
  const std::uint32_t universe = 1u << b;
  // Exhaustive for small b, strided for b=15 to stay fast.
  const std::uint32_t stride = b >= 14 ? 37 : 1;
  for (std::uint32_t value = 0; value < universe; value += stride) {
    ASSERT_EQ(table.offset_of_by_search(static_cast<std::uint16_t>(value)),
              table.offset_of(static_cast<std::uint16_t>(value)))
        << "value=" << value;
  }
}

TEST_P(GlobalRankTableParam, DeviceBytesFormula) {
  const unsigned b = GetParam();
  const auto& table = GlobalRankTable::get(b);
  EXPECT_EQ(table.device_size_in_bytes(), (std::size_t{2} << b) + 4 * (b + 1));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, GlobalRankTableParam,
                         ::testing::Values(1u, 2u, 4u, 7u, 8u, 12u, 15u));

// ------------------------------------------------------------ RrrVector

TEST(RrrVector, RejectsInvalidParams) {
  const BitVector bv = testing::random_bits(100, 0.5, 1);
  EXPECT_THROW(RrrVector(bv, RrrParams{0, 50}), std::invalid_argument);
  EXPECT_THROW(RrrVector(bv, RrrParams{16, 50}), std::invalid_argument);
  EXPECT_THROW(RrrVector(bv, RrrParams{15, 0}), std::invalid_argument);
}

struct RrrCase {
  std::size_t size;
  double density;
  unsigned b;
  unsigned sf;
};

void PrintTo(const RrrCase& c, std::ostream* os) {
  *os << "n=" << c.size << " d=" << c.density << " b=" << c.b << " sf=" << c.sf;
}

class RrrParamTest : public ::testing::TestWithParam<RrrCase> {};

TEST_P(RrrParamTest, RankMatchesLinearOracle) {
  const auto& c = GetParam();
  const BitVector bv = testing::random_bits(c.size, c.density, c.size + c.b * 1000 + c.sf);
  const RrrVector rrr(bv, RrrParams{c.b, c.sf});
  ASSERT_EQ(rrr.size(), c.size);
  for (std::size_t p = 0; p <= c.size; ++p) {
    ASSERT_EQ(rrr.rank1(p), bv.rank1_linear(p)) << "p=" << p;
  }
  EXPECT_EQ(rrr.ones(), bv.count_ones());
}

TEST_P(RrrParamTest, AccessMatchesOriginal) {
  const auto& c = GetParam();
  const BitVector bv = testing::random_bits(c.size, c.density, c.size * 3 + c.b);
  const RrrVector rrr(bv, RrrParams{c.b, c.sf});
  for (std::size_t i = 0; i < c.size; ++i) {
    ASSERT_EQ(rrr.access(i), bv.get(i)) << "i=" << i;
  }
}

TEST_P(RrrParamTest, Rank0Complements) {
  const auto& c = GetParam();
  const BitVector bv = testing::random_bits(c.size, c.density, c.size + 17);
  const RrrVector rrr(bv, RrrParams{c.b, c.sf});
  for (std::size_t p = 0; p <= c.size; p += 3) {
    ASSERT_EQ(rrr.rank0(p) + rrr.rank1(p), p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RrrParamTest,
    ::testing::Values(
        // Tiny vectors and extreme parameters.
        RrrCase{1, 0.5, 1, 1}, RrrCase{1, 0.5, 15, 50}, RrrCase{14, 0.5, 15, 50},
        RrrCase{15, 0.5, 15, 1}, RrrCase{16, 0.5, 15, 1},
        // Block/superblock boundary alignments (size multiples of b*sf).
        RrrCase{15 * 50, 0.5, 15, 50}, RrrCase{15 * 50 + 1, 0.5, 15, 50},
        RrrCase{15 * 50 - 1, 0.5, 15, 50},
        // Parameter sweep at moderate size.
        RrrCase{3000, 0.5, 3, 2}, RrrCase{3000, 0.5, 7, 5}, RrrCase{3000, 0.5, 8, 64},
        RrrCase{3000, 0.5, 15, 50}, RrrCase{3000, 0.5, 15, 100},
        RrrCase{3000, 0.5, 15, 200}, RrrCase{3000, 0.5, 4, 1},
        // Density extremes.
        RrrCase{5000, 0.0, 15, 50}, RrrCase{5000, 1.0, 15, 50},
        RrrCase{5000, 0.01, 15, 50}, RrrCase{5000, 0.99, 15, 50},
        RrrCase{5000, 0.25, 5, 10}));

TEST(RrrVector, EmptyVector) {
  BitVector bv;
  const RrrVector rrr(bv, RrrParams{15, 50});
  EXPECT_EQ(rrr.size(), 0u);
  EXPECT_EQ(rrr.rank1(0), 0u);
  EXPECT_EQ(rrr.ones(), 0u);
}

TEST(RrrVector, DefaultConstructedIsEmpty) {
  RrrVector rrr;
  EXPECT_EQ(rrr.size(), 0u);
}

TEST(RrrVector, BlockAndSuperblockCounts) {
  const BitVector bv = testing::random_bits(15 * 50 * 3 + 7, 0.5, 11);
  const RrrVector rrr(bv, RrrParams{15, 50});
  EXPECT_EQ(rrr.num_blocks(), div_ceil(bv.size(), 15));
  EXPECT_EQ(rrr.num_superblocks(), div_ceil(rrr.num_blocks(), 50));
}

TEST(RrrVector, LowEntropyCompressesBetterThanHighEntropy) {
  // The offset field width depends on block class: runs of equal bits give
  // extreme classes (0 or b) with near-zero offset widths. This is the
  // property that makes the BWT encodable in small space (paper Sec. III-B).
  const std::size_t n = 150000;
  BitVector runs;
  for (std::size_t i = 0; i < n; ++i) runs.push_back((i / 500) % 2 == 0);
  const BitVector random = testing::random_bits(n, 0.5, 3);

  const RrrParams params{15, 50};
  const RrrVector rrr_runs(runs, params);
  const RrrVector rrr_random(random, params);
  EXPECT_LT(rrr_runs.offset_bits(), rrr_random.offset_bits() / 4);
  EXPECT_LT(rrr_runs.size_in_bytes(), rrr_random.size_in_bytes());
}

TEST(RrrVector, PaperSizeFormulaTracksActualSize) {
  const BitVector bv = testing::random_bits(200000, 0.5, 21);
  const RrrVector rrr(bv, RrrParams{15, 50});
  const double formula = rrr.paper_size_in_bytes();
  const double actual = static_cast<double>(rrr.size_in_bytes()) +
                        static_cast<double>(GlobalRankTable::get(15).device_size_in_bytes());
  // The formula is an estimate (it ignores word-padding); they must agree
  // within 15%.
  EXPECT_NEAR(formula / actual, 1.0, 0.15);
}

TEST(RrrVector, LargerSfShrinksStructure) {
  const BitVector bv = testing::random_bits(100000, 0.5, 23);
  const RrrVector sf50(bv, RrrParams{15, 50});
  const RrrVector sf200(bv, RrrParams{15, 200});
  EXPECT_LT(sf200.size_in_bytes(), sf50.size_in_bytes());
  // Compression must not change answers.
  for (std::size_t p = 0; p <= bv.size(); p += 997) {
    ASSERT_EQ(sf50.rank1(p), sf200.rank1(p));
  }
}

TEST(RrrVector, LargerBlockShrinksClassOverhead) {
  const BitVector bv = testing::random_bits(100000, 0.15, 29);
  const RrrVector b5(bv, RrrParams{5, 50});
  const RrrVector b15(bv, RrrParams{15, 50});
  EXPECT_LT(b15.size_in_bytes(), b5.size_in_bytes());
}

TEST(RrrVector, EncodeModesProduceIdenticalStructures) {
  const BitVector bv = testing::random_bits(40000, 0.4, 37);
  const RrrVector fast(bv, RrrParams{15, 50, RrrEncodeMode::kInverseTable});
  const RrrVector scan(bv, RrrParams{15, 50, RrrEncodeMode::kTableScan});
  EXPECT_EQ(fast.size_in_bytes(), scan.size_in_bytes());
  EXPECT_EQ(fast.offset_bits(), scan.offset_bits());
  for (std::size_t p = 0; p <= bv.size(); p += 119) {
    ASSERT_EQ(fast.rank1(p), scan.rank1(p));
  }
  for (std::size_t i = 0; i < bv.size(); i += 113) {
    ASSERT_EQ(fast.access(i), scan.access(i));
  }
}

TEST(RrrVector, RanksAtExactSuperblockBoundaries) {
  const unsigned b = 15, sf = 50;
  const BitVector bv = testing::random_bits(b * sf * 5, 0.5, 31);
  const RrrVector rrr(bv, RrrParams{b, sf});
  for (std::size_t super = 0; super <= 5; ++super) {
    const std::size_t p = super * b * sf;
    ASSERT_EQ(rrr.rank1(p), bv.rank1_linear(p));
  }
}

}  // namespace
}  // namespace bwaver
