// End-to-end smoke tests of the `bwaver` CLI binary (subprocess level):
// simulate -> index -> map / map-approx / stats, checking exit codes and
// the artifacts left on disk. The binary path is injected by CMake.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "fmindex/dna.hpp"
#include "io/byte_io.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/paired_end.hpp"

#include "test_temp_dir.hpp"

#ifndef BWAVER_BIN
#error "BWAVER_BIN must be defined by the build"
#endif

namespace bwaver {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_cli_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Runs the CLI with `args`, returns its exit code; stdout goes to a log.
  int run(const std::string& args) {
    const std::string log = (dir_ / "cli.log").string();
    const std::string command =
        std::string(BWAVER_BIN) + " " + args + " > " + log + " 2>&1";
    const int status = std::system(command.c_str());
    return WEXITSTATUS(status);
  }

  std::string log_contents() {
    return std::string(reinterpret_cast<const char*>(
                           read_file((dir_ / "cli.log").string()).data()),
                       read_file((dir_ / "cli.log").string()).size());
  }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  EXPECT_EQ(run(""), 2);
  EXPECT_NE(log_contents().find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownSubcommandFails) {
  EXPECT_EQ(run("frobnicate"), 2);
}

TEST_F(CliTest, FullWorkflow) {
  ASSERT_EQ(run("simulate-genome --length 60000 --seed 3 --out " + path("ref.fa")), 0);
  ASSERT_TRUE(std::filesystem::exists(path("ref.fa")));

  ASSERT_EQ(run("simulate-reads --ref " + path("ref.fa") +
                " --num 500 --length 50 --mapping-ratio 0.8 --out " +
                path("reads.fq.gz")),
            0);
  ASSERT_TRUE(std::filesystem::exists(path("reads.fq.gz")));

  ASSERT_EQ(run("index --ref " + path("ref.fa") + " --out " + path("ref.bwvr")), 0);
  ASSERT_TRUE(std::filesystem::exists(path("ref.bwvr")));

  ASSERT_EQ(run("map --index " + path("ref.bwvr") + " --reads " + path("reads.fq.gz") +
                " --engine fpga --out " + path("out.sam")),
            0);
  const auto contents = log_contents();
  EXPECT_NE(contents.find("mapped 400/500"), std::string::npos) << contents;
  ASSERT_TRUE(std::filesystem::exists(path("out.sam")));
}

TEST_F(CliTest, MapApproxReportsStages) {
  ASSERT_EQ(run("simulate-genome --length 40000 --seed 5 --out " + path("ref.fa")), 0);
  ASSERT_EQ(run("simulate-reads --ref " + path("ref.fa") +
                " --num 100 --length 40 --out " + path("reads.fq")),
            0);
  ASSERT_EQ(run("index --ref " + path("ref.fa") + " --out " + path("ref.bwvr")), 0);
  ASSERT_EQ(run("map-approx --index " + path("ref.bwvr") + " --reads " +
                path("reads.fq") + " --mismatches 1"),
            0);
  const auto contents = log_contents();
  EXPECT_NE(contents.find("staged approximate mapping"), std::string::npos);
  EXPECT_NE(contents.find("0 mm"), std::string::npos);
}

TEST_F(CliTest, StatsReportsStructure) {
  ASSERT_EQ(run("simulate-genome --length 30000 --seed 7 --out " + path("ref.fa")), 0);
  ASSERT_EQ(run("index --ref " + path("ref.fa") + " --out " + path("ref.bwvr")), 0);
  ASSERT_EQ(run("stats --index " + path("ref.bwvr")), 0);
  const auto contents = log_contents();
  EXPECT_NE(contents.find("BWT runs:"), std::string::npos);
  EXPECT_NE(contents.find("device fit:       YES"), std::string::npos) << contents;
}

TEST_F(CliTest, PipelineSubcommandEndToEnd) {
  ASSERT_EQ(run("simulate-genome --length 50000 --seed 11 --out " + path("r.fa")), 0);
  ASSERT_EQ(run("simulate-reads --ref " + path("r.fa") +
                " --num 300 --length 60 --mapping-ratio 0.5 --out " + path("r.fq")),
            0);
  ASSERT_EQ(run("pipeline --ref " + path("r.fa") + " --reads " + path("r.fq") +
                " --engine cpu --threads 2 --out " + path("p.sam")),
            0);
  EXPECT_NE(log_contents().find("mapped 150/300"), std::string::npos);
}

TEST_F(CliTest, MapPairedClassifiesPairs) {
  ASSERT_EQ(run("simulate-genome --length 80000 --seed 13 --out " + path("r.fa")), 0);
  ASSERT_EQ(run("index --ref " + path("r.fa") + " --out " + path("r.bwvr")), 0);

  // Build FR mate files from the reference itself.
  const auto fasta = read_fasta(path("r.fa"));
  const auto genome = dna_encode_string(fasta.front().sequence, true);
  const auto pairs = simulate_read_pairs(genome, 50, 60, 400, 50, 21);
  std::vector<FastqRecord> m1, m2;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    m1.push_back({"p" + std::to_string(i), dna_decode_string(pairs[i].mate1),
                  std::string(60, 'I')});
    m2.push_back({"p" + std::to_string(i), dna_decode_string(pairs[i].mate2),
                  std::string(60, 'I')});
  }
  write_fastq(path("m1.fq"), m1);
  write_fastq(path("m2.fq"), m2);

  ASSERT_EQ(run("map-paired --index " + path("r.bwvr") + " --reads1 " + path("m1.fq") +
                " --reads2 " + path("m2.fq") + " --min-insert 200 --max-insert 600"),
            0);
  const auto contents = log_contents();
  EXPECT_NE(contents.find("proper:       50"), std::string::npos) << contents;
}

TEST_F(CliTest, IndexStoreBuildInfoAndMap) {
  ASSERT_EQ(run("simulate-genome --length 40000 --seed 19 --out " + path("a.fa")), 0);
  ASSERT_EQ(run("simulate-genome --length 30000 --seed 23 --out " + path("b.fa")), 0);
  ASSERT_EQ(run("simulate-reads --ref " + path("a.fa") +
                " --num 200 --length 50 --mapping-ratio 1.0 --out " + path("a.fq")),
            0);

  // Build two archives into one store.
  ASSERT_EQ(run("index build --ref " + path("a.fa") + " --store-dir " +
                path("store") + " --name refA"),
            0);
  EXPECT_NE(log_contents().find("built 'refA'"), std::string::npos);
  ASSERT_EQ(run("index build --ref " + path("b.fa") + " --store-dir " +
                path("store") + " --name refB"),
            0);
  ASSERT_TRUE(std::filesystem::exists(path("store/refA.bwva")));
  ASSERT_TRUE(std::filesystem::exists(path("store/refB.bwva")));
  ASSERT_TRUE(std::filesystem::exists(path("store/manifest.tsv")));

  // Store listing and per-archive section table.
  ASSERT_EQ(run("index info --store-dir " + path("store")), 0);
  auto contents = log_contents();
  EXPECT_NE(contents.find("refA"), std::string::npos) << contents;
  EXPECT_NE(contents.find("refB"), std::string::npos) << contents;

  ASSERT_EQ(run("index info --archive " + path("store/refA.bwva")), 0);
  contents = log_contents();
  EXPECT_NE(contents.find("format version: 4"), std::string::npos) << contents;
  for (const char* section : {"meta", "text", "bwt", "occ", "sa", "kmer"}) {
    EXPECT_NE(contents.find(section), std::string::npos) << contents;
  }

  // Mapping straight from the store skips the whole build.
  ASSERT_EQ(run("map --store-dir " + path("store") + " --ref-name refA --reads " +
                path("a.fq") + " --engine cpu --out " + path("a.sam")),
            0);
  EXPECT_NE(log_contents().find("mapped 200/200"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(path("a.sam")));

  // A truncated archive is refused, not served.
  const auto archive = read_file(path("store/refA.bwva"));
  auto clipped = archive;
  clipped.resize(archive.size() / 2);
  write_file(path("store/refA.bwva"), clipped);
  EXPECT_EQ(run("index info --archive " + path("store/refA.bwva")), 1);
  EXPECT_NE(log_contents().find("error"), std::string::npos);
  EXPECT_EQ(run("map --store-dir " + path("store") + " --ref-name refA --reads " +
                path("a.fq")),
            1);
}

TEST_F(CliTest, BlockwiseBuildFlagsAndProvenance) {
  // 1.5 Mbp with --block-mb 1 (1 MiB of bases per block) forces the
  // blockwise constructor through a real merge pass at the CLI level.
  ASSERT_EQ(run("simulate-genome --length 1500000 --seed 29 --out " + path("g.fa")), 0);

  ASSERT_EQ(run("index build --ref " + path("g.fa") + " --store-dir " +
                path("bw") + " --name g --block-mb 1 --seed-k 8 --build-meta"),
            0);
  auto contents = log_contents();
  EXPECT_NE(contents.find("blockwise"), std::string::npos) << contents;
  EXPECT_NE(contents.find("merge pass"), std::string::npos) << contents;

  // Provenance rides in the archive and surfaces in `index info`.
  ASSERT_EQ(run("index info --archive " + path("bw/g.bwva")), 0);
  contents = log_contents();
  EXPECT_NE(contents.find("builder: blockwise"), std::string::npos) << contents;
  EXPECT_NE(contents.find("build"), std::string::npos) << contents;

  // Without --build-meta the blockwise and direct paths must produce
  // byte-identical archives — the subsystem's core guarantee, end to end.
  ASSERT_EQ(run("index build --ref " + path("g.fa") + " --store-dir " +
                path("bw2") + " --name g --block-mb 1 --seed-k 8"),
            0);
  ASSERT_EQ(run("index build --ref " + path("g.fa") + " --store-dir " +
                path("direct") + " --name g --seed-k 8"),
            0);
  EXPECT_NE(log_contents().find("direct"), std::string::npos);
  EXPECT_EQ(read_file(path("bw2/g.bwva")), read_file(path("direct/g.bwva")));

  ASSERT_EQ(run("index info --archive " + path("direct/g.bwva")), 0);
  EXPECT_NE(log_contents().find("builder: unknown"), std::string::npos);

  // The blockwise store serves like any other.
  ASSERT_EQ(run("simulate-reads --ref " + path("g.fa") +
                " --num 50 --length 50 --mapping-ratio 1.0 --out " + path("g.fq")),
            0);
  ASSERT_EQ(run("map --store-dir " + path("bw") + " --ref-name g --reads " +
                path("g.fq") + " --engine cpu --out " + path("g.sam")),
            0);
  EXPECT_NE(log_contents().find("mapped 50/50"), std::string::npos);
}

TEST_F(CliTest, MapWithUnknownStoreReferenceFails) {
  ASSERT_EQ(run("simulate-genome --length 30000 --seed 31 --out " + path("r.fa")), 0);
  ASSERT_EQ(run("index build --ref " + path("r.fa") + " --store-dir " +
                path("store") + " --name known"),
            0);
  EXPECT_EQ(run("map --store-dir " + path("store") +
                " --ref-name unknown --reads " + path("r.fa")),
            1);
  EXPECT_NE(log_contents().find("error"), std::string::npos);
}

TEST_F(CliTest, MapWithMissingIndexFails) {
  EXPECT_EQ(run("map --index " + path("nope.bwvr") + " --reads " + path("nope.fq")),
            1);
  EXPECT_NE(log_contents().find("error"), std::string::npos);
}

TEST_F(CliTest, MapMissingArgumentsShowsUsage) {
  EXPECT_EQ(run("map"), 2);
}

}  // namespace
}  // namespace bwaver
