// Build-planner tests: direct-vs-blockwise selection, budget-fitted block
// sizes, and the failure mode when even a one-base block cannot fit.
#include "build/build_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bwaver::build {
namespace {

constexpr std::size_t kMB = std::size_t{1} << 20;

TEST(BuildPlanTest, UnboundedBudgetStaysDirect) {
  const BuildPlan plan = plan_build(100 * kMB, /*budget_bytes=*/0, /*block_bases=*/0);
  EXPECT_FALSE(plan.blockwise);
  EXPECT_EQ(plan.block_bases, 0u);
  EXPECT_EQ(plan.estimated_peak_bytes, direct_build_peak_bytes(100 * kMB));
}

TEST(BuildPlanTest, GenerousBudgetStaysDirect) {
  const std::size_t n = 4 * kMB;
  const BuildPlan plan = plan_build(n, direct_build_peak_bytes(n) + 1, 0);
  EXPECT_FALSE(plan.blockwise);
}

TEST(BuildPlanTest, TightBudgetGoesBlockwiseWithinBudget) {
  const std::size_t n = 24 * kMB;
  const std::size_t budget = 256 * kMB;
  ASSERT_GT(direct_build_peak_bytes(n), budget);
  const BuildPlan plan = plan_build(n, budget, 0);
  EXPECT_TRUE(plan.blockwise);
  EXPECT_GE(plan.block_bases, 1u);
  EXPECT_LE(plan.block_bases, n);
  // The fitted block's own estimate honors the budget.
  EXPECT_LE(blockwise_build_peak_bytes(n, plan.block_bases), budget);
  EXPECT_EQ(plan.estimated_peak_bytes, blockwise_build_peak_bytes(n, plan.block_bases));
}

TEST(BuildPlanTest, ExplicitBlockForcesBlockwise) {
  const BuildPlan plan = plan_build(1000, /*budget_bytes=*/0, /*block_bases=*/64);
  EXPECT_TRUE(plan.blockwise);
  EXPECT_EQ(plan.block_bases, 64u);
}

TEST(BuildPlanTest, DerivedBlockClampedToText) {
  // A budget far above the blockwise baseline derives a block capped at n.
  const std::size_t n = 1000;
  const std::size_t block = derive_block_bases(n, std::size_t{8} << 30);
  EXPECT_EQ(block, n);
}

TEST(BuildPlanTest, DeriveMonotoneInBudget) {
  const std::size_t n = 64 * kMB;
  const std::size_t small = derive_block_bases(n, 300 * kMB);
  const std::size_t large = derive_block_bases(n, 600 * kMB);
  EXPECT_GE(large, small);
  EXPECT_LE(blockwise_build_peak_bytes(n, small), 300 * kMB);
  EXPECT_LE(blockwise_build_peak_bytes(n, large), 600 * kMB);
}

TEST(BuildPlanTest, ImpossibleBudgetThrows) {
  // Below the O(n) floor (text + partial BWTs + fixed overhead) no block
  // size can help.
  EXPECT_THROW(derive_block_bases(100 * kMB, 1 * kMB), std::invalid_argument);
  EXPECT_THROW(plan_build(100 * kMB, 1 * kMB, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bwaver::build
