#include "io/fasta.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/gzip.hpp"

namespace bwaver {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Fasta, ParseSingleRecord) {
  const auto records = parse_fasta(bytes_of(">chr1 test\nACGT\nACGT\n"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "chr1 test");
  EXPECT_EQ(records[0].sequence, "ACGTACGT");
}

TEST(Fasta, ParseMultiRecord) {
  const auto records = parse_fasta(bytes_of(">a\nAC\nGT\n>b\nTTT\n>c\nG\n"));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[1].name, "b");
  EXPECT_EQ(records[1].sequence, "TTT");
  EXPECT_EQ(records[2].sequence, "G");
}

TEST(Fasta, HandlesCrlfAndBlankLines) {
  const auto records = parse_fasta(bytes_of(">x\r\nAC\r\n\r\nGT\r\n"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "x");
  EXPECT_EQ(records[0].sequence, "ACGT");
}

TEST(Fasta, NoTrailingNewline) {
  const auto records = parse_fasta(bytes_of(">x\nACGT"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGT");
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  EXPECT_THROW(parse_fasta(bytes_of("ACGT\n>x\nAC\n")), IoError);
}

TEST(Fasta, EmptyInputThrows) {
  EXPECT_THROW(parse_fasta(bytes_of("")), IoError);
  EXPECT_THROW(parse_fasta(bytes_of("\n\n")), IoError);
}

TEST(Fasta, EmptySequenceThrows) {
  EXPECT_THROW(parse_fasta(bytes_of(">x\n>y\nAC\n")), IoError);
}

TEST(Fasta, GzippedInputTransparent) {
  const auto plain = bytes_of(">gz test\nACGTACGTACGT\n");
  const auto compressed = gzip_compress(plain);
  const auto records = parse_fasta(compressed);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGTACGTACGT");
}

TEST(Fasta, FormatWrapsLines) {
  const FastaRecord record{"r", std::string(25, 'A')};
  const std::string text = format_fasta(std::span<const FastaRecord>(&record, 1), 10);
  EXPECT_EQ(text, ">r\nAAAAAAAAAA\nAAAAAAAAAA\nAAAAA\n");
}

TEST(Fasta, FormatParseRoundTrip) {
  std::vector<FastaRecord> records = {{"one", "ACGTACGTAA"}, {"two", "GGGCCC"}};
  const std::string text = format_fasta(records, 4);
  const auto parsed = parse_fasta(bytes_of(text));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, records[0].name);
  EXPECT_EQ(parsed[0].sequence, records[0].sequence);
  EXPECT_EQ(parsed[1].sequence, records[1].sequence);
}

TEST(Fasta, FileRoundTripPlainAndGzip) {
  const auto dir = std::filesystem::temp_directory_path();
  std::vector<FastaRecord> records = {{"ref", "ACGTTGCAACGT"}};
  for (bool gzipped : {false, true}) {
    const std::string path =
        (dir / (gzipped ? "bwaver_t.fa.gz" : "bwaver_t.fa")).string();
    write_fasta(path, records, gzipped);
    const auto loaded = read_fasta(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].sequence, records[0].sequence);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace bwaver
