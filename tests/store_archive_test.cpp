// Archive format tests: round-trip fidelity (byte-identical SAM against the
// in-memory build), the `index info` header path, and rejection of every
// corruption mode — truncation, bad magic, unsupported version, header
// damage, and a single flipped bit in each payload section.
#include "store/index_archive.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "fmindex/dna.hpp"
#include "io/byte_io.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_store_archive_test");

    GenomeSimConfig gconfig;
    gconfig.length = 24000;
    gconfig.seed = 29;
    genome_ = simulate_genome(gconfig);

    ReadSimConfig rconfig;
    rconfig.num_reads = 150;
    rconfig.read_length = 45;
    rconfig.mapping_ratio = 0.6;
    reads_ = reads_to_fastq(simulate_reads(genome_, rconfig));

    // Two chromosomes so the sequence table is non-trivial.
    PipelineConfig config;
    config.engine = MappingEngine::kCpu;
    pipeline_ = std::make_unique<Pipeline>(config);
    const std::string bases = dna_decode_string(genome_);
    pipeline_->build_from_records(
        {{"chrA", bases.substr(0, 15000)}, {"chrB", bases.substr(15000)}});

    archive_path_ = (dir_ / "ref.bwva").string();
    pipeline_->save_index(archive_path_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes `bytes` to a scratch archive and returns its path.
  std::string write_variant(const std::string& name,
                            const std::vector<std::uint8_t>& bytes) {
    const std::string path = (dir_ / name).string();
    write_file(path, bytes);
    return path;
  }

  std::filesystem::path dir_;
  std::vector<std::uint8_t> genome_;
  std::vector<FastqRecord> reads_;
  std::unique_ptr<Pipeline> pipeline_;
  std::string archive_path_;
};

TEST_F(ArchiveTest, RoundTripProducesIdenticalSam) {
  const MappingOutcome in_memory = pipeline_->map_records(reads_);

  PipelineConfig config;
  config.engine = MappingEngine::kCpu;
  Pipeline loaded = Pipeline::from_archive(archive_path_, config);
  ASSERT_TRUE(loaded.ready());
  const MappingOutcome from_disk = loaded.map_records(reads_);

  EXPECT_EQ(from_disk.reads, in_memory.reads);
  EXPECT_EQ(from_disk.mapped, in_memory.mapped);
  EXPECT_EQ(from_disk.occurrences, in_memory.occurrences);
  EXPECT_EQ(from_disk.sam, in_memory.sam);
}

TEST_F(ArchiveTest, RoundTripRebuildsIdenticalStructures) {
  const StoredIndex stored = read_index_archive(archive_path_);
  ASSERT_EQ(stored.reference.num_sequences(), 2u);
  EXPECT_EQ(stored.reference.sequence(0).name, "chrA");
  EXPECT_EQ(stored.reference.sequence(1).name, "chrB");
  // v3 stores the text flat; v1/v2 recover it from the BWT. Either way it
  // must round-trip exactly.
  EXPECT_EQ(stored.reference.concatenated(), genome_);
  EXPECT_EQ(stored.index.bwt().symbols, pipeline_->index().bwt().symbols);
  EXPECT_EQ(stored.index.bwt().primary, pipeline_->index().bwt().primary);
  EXPECT_EQ(stored.index.suffix_array(), pipeline_->index().suffix_array());

  const std::span<const std::uint8_t> pattern(genome_.data() + 1000, 30);
  EXPECT_EQ(stored.index.locate(pattern), pipeline_->index().locate(pattern));
}

TEST_F(ArchiveTest, InfoListsVersionedCheckedSections) {
  const ArchiveInfo info = read_index_archive_info(archive_path_);
  EXPECT_EQ(info.version, kArchiveVersionLatest);
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(archive_path_));
  ASSERT_EQ(info.sections.size(), 7u);
  EXPECT_EQ(info.sections[0].name, "meta");
  EXPECT_EQ(info.sections[1].name, "text");
  EXPECT_EQ(info.sections[2].name, "bwt");
  EXPECT_EQ(info.sections[3].name, "occ");
  EXPECT_EQ(info.sections[4].name, "sa");
  EXPECT_EQ(info.sections[5].name, "kmer");
  EXPECT_EQ(info.sections[6].name, "epr");
  // v3 payload offsets are 64-byte aligned, ascending, non-overlapping, and
  // the last payload ends exactly at the file size.
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    EXPECT_EQ(info.sections[i].offset % 64, 0u) << info.sections[i].name;
    if (i > 0) {
      EXPECT_GE(info.sections[i].offset,
                info.sections[i - 1].offset + info.sections[i - 1].length);
    }
  }
  EXPECT_EQ(info.sections.back().offset + info.sections.back().length,
            info.file_bytes);
  EXPECT_EQ(info.text_length, genome_.size());
  ASSERT_EQ(info.sequences.size(), 2u);
  EXPECT_EQ(info.sequences[0].name, "chrA");
  EXPECT_EQ(info.sequences[1].length, genome_.size() - 15000);
}

TEST_F(ArchiveTest, SingleBitFlipInEachSectionIsRejected) {
  const auto original = read_file(archive_path_);
  const ArchiveInfo info = read_index_archive_info(archive_path_);
  for (const ArchiveSection& section : info.sections) {
    auto bytes = original;
    bytes[section.offset + section.length / 2] ^= 0x01;
    const std::string path = write_variant(section.name + "_flip.bwva", bytes);
    try {
      read_index_archive(path);
      FAIL() << "bit flip in section '" << section.name << "' was accepted";
    } catch (const IoError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("checksum"), std::string::npos) << what;
      EXPECT_NE(what.find(section.name), std::string::npos) << what;
    }
  }
}

TEST_F(ArchiveTest, CorruptSectionTableIsRejected) {
  // Byte 9 is inside the section-count field: the flip makes the count
  // implausible, and any other header damage fails the header CRC.
  auto bytes = read_file(archive_path_);
  bytes[9] ^= 0x01;
  EXPECT_THROW(read_index_archive(write_variant("header_flip.bwva", bytes)),
               IoError);

  auto crc_bytes = read_file(archive_path_);
  crc_bytes[12] ^= 0x01;  // first byte of the section table itself
  EXPECT_THROW(read_index_archive(write_variant("table_flip.bwva", crc_bytes)),
               IoError);
}

TEST_F(ArchiveTest, TruncationIsRejected) {
  const auto original = read_file(archive_path_);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{6}, original.size() / 2, original.size() - 1}) {
    auto bytes = original;
    bytes.resize(keep);
    const std::string path = write_variant("trunc.bwva", bytes);
    EXPECT_THROW(read_index_archive(path), IoError) << "kept " << keep << " bytes";
    EXPECT_THROW(read_index_archive_info(path), IoError) << "kept " << keep;
  }
}

TEST_F(ArchiveTest, BadMagicIsRejected) {
  auto bytes = read_file(archive_path_);
  bytes[0] ^= 0xFF;
  try {
    read_index_archive(write_variant("magic.bwva", bytes));
    FAIL() << "bad magic accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
  }
}

TEST_F(ArchiveTest, UnsupportedVersionIsRejected) {
  auto bytes = read_file(archive_path_);
  bytes[4] = 99;  // version u32 lives at offset 4
  try {
    read_index_archive(write_variant("version.bwva", bytes));
    FAIL() << "future version accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version 99"), std::string::npos)
        << e.what();
  }
}

TEST_F(ArchiveTest, V1ArchiveWithoutSeedTableStillLoads) {
  // A pre-seed-table archive must keep loading; its searches simply fall
  // back to the classic recurrence — with identical results.
  const std::string v1_path = (dir_ / "legacy_v1.bwva").string();
  write_index_archive(v1_path, pipeline_->reference(), pipeline_->index(),
                      kArchiveVersionMin);

  const ArchiveInfo info = read_index_archive_info(v1_path);
  EXPECT_EQ(info.version, kArchiveVersionMin);
  ASSERT_EQ(info.sections.size(), 4u);  // no "kmer" section in v1

  const StoredIndex stored = read_index_archive(v1_path);
  EXPECT_EQ(stored.index.seed_table(), nullptr);
  EXPECT_NE(pipeline_->index().seed_table(), nullptr);

  const std::span<const std::uint8_t> pattern(genome_.data() + 500, 36);
  EXPECT_EQ(stored.index.count(pattern), pipeline_->index().count(pattern));
  EXPECT_EQ(stored.index.locate(pattern), pipeline_->index().locate(pattern));
}

TEST_F(ArchiveTest, SeedTableRoundTripsThroughArchive) {
  const KmerSeedTable* built = pipeline_->index().seed_table();
  ASSERT_NE(built, nullptr);
  const StoredIndex stored = read_index_archive(archive_path_);
  const KmerSeedTable* loaded = stored.index.seed_table();
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->k(), built->k());
  EXPECT_EQ(loaded->entries(), built->entries());

  // Every k-mer of the genome must resolve to the same interval through
  // the loaded table as through the freshly built one.
  const unsigned k = built->k();
  for (std::size_t pos = 0; pos + k <= genome_.size(); pos += 97) {
    const std::span<const std::uint8_t> kmer(genome_.data() + pos, k);
    EXPECT_EQ(loaded->lookup(kmer), built->lookup(kmer)) << "pos " << pos;
  }
}

TEST_F(ArchiveTest, MissingFileThrows) {
  EXPECT_THROW(read_index_archive((dir_ / "nope.bwva").string()), IoError);
}

TEST_F(ArchiveTest, SaveBeforeBuildThrows) {
  Pipeline empty;
  EXPECT_THROW(empty.save_index((dir_ / "empty.bwva").string()), std::logic_error);
}

}  // namespace
}  // namespace bwaver
