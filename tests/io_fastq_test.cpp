#include "io/fastq.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/gzip.hpp"

namespace bwaver {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Fastq, ParseSingleRecord) {
  const auto records = parse_fastq(bytes_of("@r1\nACGT\n+\nIIII\n"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "r1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
}

TEST(Fastq, ParseMultipleRecords) {
  const auto records =
      parse_fastq(bytes_of("@a\nAC\n+\nII\n@b\nGGT\n+anything\n!!!\n"));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].name, "b");
  EXPECT_EQ(records[1].sequence, "GGT");
  EXPECT_EQ(records[1].quality, "!!!");
}

TEST(Fastq, EmptyInputYieldsNoRecords) {
  EXPECT_TRUE(parse_fastq(bytes_of("")).empty());
}

TEST(Fastq, MissingAtThrows) {
  EXPECT_THROW(parse_fastq(bytes_of("r1\nACGT\n+\nIIII\n")), IoError);
}

TEST(Fastq, MissingPlusThrows) {
  EXPECT_THROW(parse_fastq(bytes_of("@r1\nACGT\nIIII\n")), IoError);
}

TEST(Fastq, QualityLengthMismatchThrows) {
  EXPECT_THROW(parse_fastq(bytes_of("@r1\nACGT\n+\nII\n")), IoError);
}

TEST(Fastq, TruncatedRecordThrows) {
  EXPECT_THROW(parse_fastq(bytes_of("@r1\nACGT\n+\n")), IoError);
  EXPECT_THROW(parse_fastq(bytes_of("@r1\n")), IoError);
}

TEST(Fastq, GzippedInputTransparent) {
  const auto compressed = gzip_compress(bytes_of("@z\nACGTAC\n+\nIIIIII\n"));
  const auto records = parse_fastq(compressed);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGTAC");
}

TEST(Fastq, FormatParseRoundTrip) {
  std::vector<FastqRecord> records = {{"a", "ACGT", "IIII"}, {"b", "GG", "!!"}};
  const auto parsed = parse_fastq(bytes_of(format_fastq(records)));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "a");
  EXPECT_EQ(parsed[0].sequence, "ACGT");
  EXPECT_EQ(parsed[0].quality, "IIII");
  EXPECT_EQ(parsed[1].sequence, "GG");
}

TEST(Fastq, FileRoundTripPlainAndGzip) {
  const auto dir = std::filesystem::temp_directory_path();
  std::vector<FastqRecord> records = {{"read", "ACGTACGT", "IIIIIIII"}};
  for (bool gzipped : {false, true}) {
    const std::string path =
        (dir / (gzipped ? "bwaver_t.fq.gz" : "bwaver_t.fq")).string();
    write_fastq(path, records, gzipped);
    const auto loaded = read_fastq(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].sequence, records[0].sequence);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace bwaver
