#include "succinct/huffman_wavelet_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "succinct/rank_support.hpp"
#include "succinct/rrr_vector.hpp"
#include "succinct/wavelet_tree.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

HuffmanWaveletTree<PlainRankBitVector>::Builder plain_builder() {
  return [](const BitVector& bits) { return PlainRankBitVector(BitVector(bits)); };
}

/// Skewed symbol stream: symbol s has weight ~ 2^-(s+1).
std::vector<std::uint8_t> skewed_symbols(std::size_t n, unsigned alphabet,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& s : out) {
    std::uint8_t symbol = 0;
    while (symbol + 1u < alphabet && rng.chance(0.5)) ++symbol;
    s = symbol;
  }
  return out;
}

TEST(HuffmanWavelet, RankMatchesNaiveUniform) {
  const auto symbols = testing::random_symbols(3000, 4, 900);
  const HuffmanWaveletTree<PlainRankBitVector> tree(symbols, 4, plain_builder());
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::size_t p = 0; p <= symbols.size(); p += 11) {
      ASSERT_EQ(tree.rank(c, p), testing::naive_rank(symbols, c, p))
          << "c=" << int(c) << " p=" << p;
    }
  }
}

TEST(HuffmanWavelet, RankMatchesNaiveSkewed) {
  for (unsigned alphabet : {2u, 4u, 8u, 16u}) {
    const auto symbols = skewed_symbols(2000, alphabet, alphabet + 901);
    const HuffmanWaveletTree<PlainRankBitVector> tree(symbols, alphabet,
                                                      plain_builder());
    for (std::uint8_t c = 0; c < alphabet; ++c) {
      for (std::size_t p = 0; p <= symbols.size(); p += 29) {
        ASSERT_EQ(tree.rank(c, p), testing::naive_rank(symbols, c, p))
            << "alphabet=" << alphabet << " c=" << int(c) << " p=" << p;
      }
    }
  }
}

TEST(HuffmanWavelet, AccessReconstructsSequence) {
  const auto symbols = skewed_symbols(1500, 8, 902);
  const HuffmanWaveletTree<PlainRankBitVector> tree(symbols, 8, plain_builder());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ASSERT_EQ(tree.access(i), symbols[i]) << "i=" << i;
  }
}

TEST(HuffmanWavelet, AbsentSymbolRankIsZero) {
  std::vector<std::uint8_t> symbols(500, 0);
  symbols[100] = 1;  // symbol 2 and 3 never occur
  const HuffmanWaveletTree<PlainRankBitVector> tree(symbols, 4, plain_builder());
  EXPECT_EQ(tree.rank(2, 500), 0u);
  EXPECT_EQ(tree.rank(3, 500), 0u);
  EXPECT_EQ(tree.code_length(2), 0u);
}

TEST(HuffmanWavelet, SingleSymbolDegenerateCase) {
  const std::vector<std::uint8_t> symbols(300, 2);
  const HuffmanWaveletTree<PlainRankBitVector> tree(symbols, 4, plain_builder());
  EXPECT_EQ(tree.rank(2, 300), 300u);
  EXPECT_EQ(tree.rank(2, 150), 150u);
  EXPECT_EQ(tree.rank(0, 300), 0u);
  EXPECT_EQ(tree.access(42), 2);
  EXPECT_EQ(tree.num_nodes(), 0u);
}

TEST(HuffmanWavelet, CodeLengthsSatisfyKraftAndOrdering) {
  const auto symbols = skewed_symbols(5000, 8, 903);
  const HuffmanWaveletTree<PlainRankBitVector> tree(symbols, 8, plain_builder());
  double kraft = 0.0;
  for (unsigned c = 0; c < 8; ++c) {
    if (tree.code_length(static_cast<std::uint8_t>(c)) == 0) continue;
    kraft += std::pow(2.0, -static_cast<double>(tree.code_length(
                                static_cast<std::uint8_t>(c))));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
  // The most frequent symbol (0) must not have a longer code than the
  // least frequent occurring one.
  unsigned longest = 0;
  for (unsigned c = 0; c < 8; ++c) {
    longest = std::max(longest, tree.code_length(static_cast<std::uint8_t>(c)));
  }
  EXPECT_LE(tree.code_length(0), longest);
  EXPECT_LE(tree.code_length(0), 2u);
}

TEST(HuffmanWavelet, StoresFewerBitsThanBalancedOnSkewedInput) {
  const auto symbols = skewed_symbols(20000, 4, 904);
  const HuffmanWaveletTree<PlainRankBitVector> huffman(symbols, 4, plain_builder());
  const WaveletTree<PlainRankBitVector> balanced(
      symbols, 4,
      [](const BitVector& bits) { return PlainRankBitVector(BitVector(bits)); });
  // Balanced stores exactly 2 bits/symbol across levels; Huffman should be
  // well under for the ~(1/2, 1/4, 1/8, 1/8) composition (entropy ~1.75).
  EXPECT_LT(huffman.stored_bits(), symbols.size() * 2);
  EXPECT_LT(huffman.average_code_length(), 2.0);
  EXPECT_GE(huffman.average_code_length(), 1.0);
  (void)balanced;
}

TEST(HuffmanWavelet, MatchesBalancedTreeAnswers) {
  const auto symbols = skewed_symbols(4000, 4, 905);
  const HuffmanWaveletTree<RrrVector> huffman(
      symbols, 4, [](const BitVector& bits) { return RrrVector(bits, {15, 50}); });
  const WaveletTree<RrrVector> balanced(
      symbols, 4, [](const BitVector& bits) { return RrrVector(bits, {15, 50}); });
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::size_t p = 0; p <= symbols.size(); p += 41) {
      ASSERT_EQ(huffman.rank(c, p), balanced.rank(c, p));
    }
  }
}

TEST(HuffmanWavelet, RejectsBadInputs) {
  const auto symbols = testing::random_symbols(100, 4, 906);
  EXPECT_THROW(HuffmanWaveletTree<PlainRankBitVector>(symbols, 1, plain_builder()),
               std::invalid_argument);
  std::vector<std::uint8_t> bad = {0, 5};
  EXPECT_THROW(HuffmanWaveletTree<PlainRankBitVector>(bad, 4, plain_builder()),
               std::invalid_argument);
}

}  // namespace
}  // namespace bwaver
