#include "mapper/paired_end.hpp"

#include <gtest/gtest.h>

#include "sim/genome_sim.hpp"

namespace bwaver {
namespace {

class PairedEndTest : public ::testing::Test {
 protected:
  PairedEndTest() {
    GenomeSimConfig config;
    config.length = 80000;
    config.seed = 700;
    config.repeat_fraction = 0.0;  // keep loci unique for crisp assertions
    genome_ = simulate_genome(config);
    reference_.add("chrT", genome_);
    index_ = std::make_unique<FmIndex<RrrWaveletOcc>>(
        reference_.concatenated(), [](std::span<const std::uint8_t> bwt) {
          return RrrWaveletOcc(bwt, RrrParams{15, 50});
        });
  }

  std::vector<std::uint8_t> genome_;
  ReferenceSet reference_;
  std::unique_ptr<FmIndex<RrrWaveletOcc>> index_;
};

TEST_F(PairedEndTest, SimulatedPairsHaveFrStructure) {
  const auto pairs = simulate_read_pairs(genome_, 100, 50, 300, 50, 1);
  ASSERT_EQ(pairs.size(), 100u);
  for (const auto& pair : pairs) {
    ASSERT_EQ(pair.mate1.size(), 50u);
    ASSERT_EQ(pair.mate2.size(), 50u);
    ASSERT_GE(pair.insert_size, 250u);
    ASSERT_LE(pair.insert_size, 350u);
    // Mate 1 is the fragment head on the forward strand.
    for (std::size_t k = 0; k < 50; ++k) {
      ASSERT_EQ(pair.mate1[k], genome_[pair.fragment_start + k]);
    }
    // Mate 2 is the revcomp of the fragment tail.
    const auto tail = dna_reverse_complement(pair.mate2);
    const std::size_t tail_start = pair.fragment_start + pair.insert_size - 50;
    for (std::size_t k = 0; k < 50; ++k) {
      ASSERT_EQ(tail[k], genome_[tail_start + k]);
    }
  }
}

TEST_F(PairedEndTest, ProperPairsRecovered) {
  const auto sim = simulate_read_pairs(genome_, 200, 50, 300, 50, 2);
  ReadBatch mates1, mates2;
  for (const auto& pair : sim) {
    mates1.add(pair.mate1);
    mates2.add(pair.mate2);
  }
  PairedEndConfig config;
  config.min_insert = 200;
  config.max_insert = 400;
  const auto pairs = map_pairs(*index_, reference_, mates1, mates2, config, 2);
  ASSERT_EQ(pairs.size(), sim.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(pairs[i].pair_class, PairClass::kProperPair) << "pair " << i;
    EXPECT_EQ(pairs[i].sequence_index, 0u);
    EXPECT_EQ(pairs[i].mate1_pos, sim[i].fragment_start);
    EXPECT_EQ(pairs[i].insert_size, sim[i].insert_size);
    EXPECT_TRUE(pairs[i].mate1_is_forward);
  }
}

TEST_F(PairedEndTest, InsertWindowRejectsOutliers) {
  const auto sim = simulate_read_pairs(genome_, 50, 50, 600, 0, 3);
  ReadBatch mates1, mates2;
  for (const auto& pair : sim) {
    mates1.add(pair.mate1);
    mates2.add(pair.mate2);
  }
  PairedEndConfig tight;
  tight.min_insert = 100;
  tight.max_insert = 300;  // true insert is 600
  const auto pairs = map_pairs(*index_, reference_, mates1, mates2, tight);
  for (const auto& pair : pairs) {
    EXPECT_EQ(pair.pair_class, PairClass::kDiscordant);
  }
}

TEST_F(PairedEndTest, WrongOrientationIsDiscordant) {
  // Both mates on the forward strand (FF): never a proper pair.
  ReadBatch mates1, mates2;
  std::vector<std::uint8_t> head(genome_.begin() + 1000, genome_.begin() + 1050);
  std::vector<std::uint8_t> tail(genome_.begin() + 1250, genome_.begin() + 1300);
  mates1.add(head);
  mates2.add(tail);  // forward orientation, not revcomp
  const auto pairs = map_pairs(*index_, reference_, mates1, mates2, PairedEndConfig{});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].pair_class, PairClass::kDiscordant);
}

TEST_F(PairedEndTest, UnmappedMatesClassified) {
  std::vector<std::uint8_t> real(genome_.begin() + 5000, genome_.begin() + 5050);
  std::vector<std::uint8_t> junk(50);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::uint8_t>((i * 2654435761u >> 3) & 3);
  }
  {
    ReadBatch mates1, mates2;
    mates1.add(real);
    mates2.add(junk);
    const auto pairs = map_pairs(*index_, reference_, mates1, mates2, PairedEndConfig{});
    EXPECT_EQ(pairs[0].pair_class, PairClass::kOneUnmapped);
  }
  {
    ReadBatch mates1, mates2;
    mates1.add(junk);
    mates2.add(junk);
    const auto pairs = map_pairs(*index_, reference_, mates1, mates2, PairedEndConfig{});
    EXPECT_EQ(pairs[0].pair_class, PairClass::kUnmapped);
  }
}

TEST_F(PairedEndTest, SwappedMatesStillPair) {
  // If mate1 happens to be the reverse-strand mate, the pairing logic must
  // accept the symmetric combination.
  const auto sim = simulate_read_pairs(genome_, 20, 50, 300, 0, 4);
  ReadBatch mates1, mates2;
  for (const auto& pair : sim) {
    mates1.add(pair.mate2);  // swapped on purpose
    mates2.add(pair.mate1);
  }
  PairedEndConfig config;
  config.min_insert = 200;
  config.max_insert = 400;
  const auto pairs = map_pairs(*index_, reference_, mates1, mates2, config);
  for (const auto& pair : pairs) {
    ASSERT_EQ(pair.pair_class, PairClass::kProperPair);
    EXPECT_FALSE(pair.mate1_is_forward);
  }
}

TEST_F(PairedEndTest, CrossChromosomePairsAreDiscordant) {
  ReferenceSet two;
  two.add("c1", std::span<const std::uint8_t>(genome_.data(), 40000));
  two.add("c2", std::span<const std::uint8_t>(genome_.data() + 40000, 40000));
  const FmIndex<RrrWaveletOcc> index(
      two.concatenated(), [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  // Mate1 near the end of c1; "mate2" revcomp'd from the start of c2 so the
  // naive global-coordinate insert would look proper.
  std::vector<std::uint8_t> m1(genome_.begin() + 39900, genome_.begin() + 39950);
  const auto m2 = dna_reverse_complement(
      std::span<const std::uint8_t>(genome_.data() + 40050, 50));
  ReadBatch mates1, mates2;
  mates1.add(m1);
  mates2.add(m2);
  PairedEndConfig config;
  config.min_insert = 100;
  config.max_insert = 300;
  const auto pairs = map_pairs(index, two, mates1, mates2, config);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].pair_class, PairClass::kDiscordant);
}

TEST(PairedEnd, InvalidSimulationConfigThrows) {
  std::vector<std::uint8_t> tiny(100, 0);
  EXPECT_THROW(simulate_read_pairs(tiny, 1, 60, 100, 0, 1), std::invalid_argument);
  EXPECT_THROW(simulate_read_pairs(tiny, 1, 10, 200, 0, 1), std::invalid_argument);
}

TEST(PairedEnd, MismatchedBatchSizesThrow) {
  GenomeSimConfig config;
  config.length = 5000;
  const auto genome = simulate_genome(config);
  ReferenceSet reference;
  reference.add("x", genome);
  const FmIndex<RrrWaveletOcc> index(
      genome, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  ReadBatch a, b;
  a.add(std::span<const std::uint8_t>(genome.data(), 30));
  EXPECT_THROW(map_pairs(index, reference, a, b, PairedEndConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bwaver
