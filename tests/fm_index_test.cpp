#include "fmindex/fm_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fmindex/occ_backends.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

template <typename Occ>
FmIndex<Occ> make_index(std::span<const std::uint8_t> text);

template <>
FmIndex<RrrWaveletOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<RrrWaveletOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}
template <>
FmIndex<PlainWaveletOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<PlainWaveletOcc>(
      text, [](std::span<const std::uint8_t> bwt) { return PlainWaveletOcc(bwt); });
}
template <>
FmIndex<SampledOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<SampledOcc>(
      text, [](std::span<const std::uint8_t> bwt) { return SampledOcc(bwt, 2); });
}
template <>
FmIndex<HeaderBodyOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<HeaderBodyOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return HeaderBodyOcc(bwt, HeaderBodyParams{256});
  });
}
template <>
FmIndex<HuffmanRrrOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<HuffmanRrrOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return HuffmanRrrOcc(bwt, RrrParams{15, 50});
  });
}

template <typename Occ>
class FmIndexTyped : public ::testing::Test {};

using Backends = ::testing::Types<RrrWaveletOcc, PlainWaveletOcc, SampledOcc,
                                  HeaderBodyOcc, HuffmanRrrOcc>;
TYPED_TEST_SUITE(FmIndexTyped, Backends);

TYPED_TEST(FmIndexTyped, CountAndLocateMatchBruteForce) {
  const auto text = testing::random_symbols(3000, 4, 200);
  const auto index = make_index<TypeParam>(text);
  Xoshiro256 rng(201);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t len = 1 + rng.below(20);
    std::vector<std::uint8_t> pattern;
    if (trial % 2 == 0) {
      // Sample a true substring so the positive path is exercised often.
      const std::size_t start = rng.below(text.size() - len);
      pattern.assign(text.begin() + start, text.begin() + start + len);
    } else {
      pattern = testing::random_symbols(len, 4, rng());
    }
    const auto expected = testing::naive_find_all(text, pattern);
    const SaInterval iv = index.count(pattern);
    ASSERT_EQ(iv.count(), expected.size());
    auto positions = index.locate(iv);
    std::sort(positions.begin(), positions.end());
    ASSERT_EQ(positions, expected);
  }
}

TYPED_TEST(FmIndexTyped, EmptyPatternMatchesAllRows) {
  const auto text = testing::random_symbols(100, 4, 1);
  const auto index = make_index<TypeParam>(text);
  const SaInterval iv = index.count({});
  EXPECT_EQ(iv.count(), 101u);  // n + 1 rows
}

TYPED_TEST(FmIndexTyped, PatternLongerThanTextNeverMatches) {
  const auto text = testing::random_symbols(50, 4, 2);
  const auto index = make_index<TypeParam>(text);
  const auto pattern = testing::random_symbols(51, 4, 3);
  EXPECT_TRUE(index.count(pattern).empty());
}

TYPED_TEST(FmIndexTyped, WholeTextIsFound) {
  const auto text = testing::random_symbols(500, 4, 4);
  const auto index = make_index<TypeParam>(text);
  const SaInterval iv = index.count(text);
  ASSERT_EQ(iv.count(), 1u);
  EXPECT_EQ(index.locate(iv).front(), 0u);
}

TYPED_TEST(FmIndexTyped, OccIsConsistentAroundPrimary) {
  // occ(c, row) over the full column must be a non-decreasing step function
  // that skips exactly the sentinel row.
  const auto text = testing::random_symbols(300, 4, 5);
  const auto index = make_index<TypeParam>(text);
  for (std::uint8_t c = 0; c < 4; ++c) {
    std::size_t prev = 0;
    std::size_t total_steps = 0;
    for (std::size_t row = 0; row <= index.rows(); ++row) {
      const std::size_t now = index.occ(c, row);
      ASSERT_GE(now, prev);
      ASSERT_LE(now - prev, 1u);
      total_steps += now - prev;
      prev = now;
    }
    ASSERT_EQ(total_steps, testing::naive_rank(index.bwt().symbols, c,
                                               index.bwt().symbols.size()));
  }
}

TYPED_TEST(FmIndexTyped, CArrayCountsSmallerSymbols) {
  const auto text = testing::random_symbols(1000, 4, 6);
  const auto index = make_index<TypeParam>(text);
  std::array<std::size_t, 4> counts{};
  for (std::uint8_t c : text) ++counts[c];
  std::size_t sum = 1;  // sentinel
  for (std::uint8_t c = 0; c < 4; ++c) {
    ASSERT_EQ(index.c_array(c), sum);
    sum += counts[c];
  }
}

TYPED_TEST(FmIndexTyped, CountBothStrandsFindsReverseComplement) {
  const auto text = testing::random_symbols(2000, 4, 7);
  const auto index = make_index<TypeParam>(text);
  // A substring maps forward; its revcomp maps on the reverse strand.
  std::vector<std::uint8_t> sub(text.begin() + 100, text.begin() + 140);
  const auto rc = dna_reverse_complement(sub);
  const auto [fwd_of_rc, rev_of_rc] = index.count_both_strands(rc);
  EXPECT_GE(rev_of_rc.count(), 1u);
  const auto positions = index.locate(rev_of_rc);
  EXPECT_TRUE(std::find(positions.begin(), positions.end(), 100u) != positions.end());
  (void)fwd_of_rc;
}

TYPED_TEST(FmIndexTyped, StepShrinksOrEmptiesInterval) {
  const auto text = testing::random_symbols(800, 4, 8);
  const auto index = make_index<TypeParam>(text);
  Xoshiro256 rng(9);
  SaInterval iv = index.full_interval();
  while (!iv.empty()) {
    const SaInterval next = index.step(iv, static_cast<std::uint8_t>(rng.below(4)));
    ASSERT_LE(next.count(), iv.count());
    iv = next;
  }
}

TYPED_TEST(FmIndexTyped, SingleBaseCountsMatchComposition) {
  const auto text = testing::random_symbols(5000, 4, 10);
  const auto index = make_index<TypeParam>(text);
  for (std::uint8_t c = 0; c < 4; ++c) {
    const std::vector<std::uint8_t> pattern = {c};
    ASSERT_EQ(index.count(pattern).count(),
              testing::naive_rank(text, c, text.size()));
  }
}

TEST(FmIndex, BackendsProduceIdenticalIntervals) {
  const auto text = testing::random_symbols(4000, 4, 11);
  const auto rrr = make_index<RrrWaveletOcc>(text);
  const auto plain = make_index<PlainWaveletOcc>(text);
  const auto sampled = make_index<SampledOcc>(text);
  const auto header_body = make_index<HeaderBodyOcc>(text);
  const auto huffman = make_index<HuffmanRrrOcc>(text);
  Xoshiro256 rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    const auto pattern = testing::random_symbols(1 + rng.below(30), 4, rng());
    const SaInterval a = rrr.count(pattern);
    ASSERT_EQ(a, plain.count(pattern));
    ASSERT_EQ(a, sampled.count(pattern));
    ASSERT_EQ(a, header_body.count(pattern));
    ASSERT_EQ(a, huffman.count(pattern));
  }
}

TEST(FmIndex, ConstructFromPrecomputedParts) {
  const auto text = testing::random_symbols(600, 4, 13);
  const auto sa = build_suffix_array(text);
  Bwt bwt = build_bwt(text, sa);
  const FmIndex<SampledOcc> index(
      std::move(bwt), std::vector<std::uint32_t>(sa.begin(), sa.end()),
      [](std::span<const std::uint8_t> symbols) { return SampledOcc(symbols); });
  std::vector<std::uint8_t> sub(text.begin() + 10, text.begin() + 30);
  const auto positions = index.locate(sub);
  EXPECT_TRUE(std::find(positions.begin(), positions.end(), 10u) != positions.end());
}

TEST(FmIndex, MismatchedPartsThrow) {
  const auto text = testing::random_symbols(100, 4, 14);
  Bwt bwt = build_bwt(text);
  std::vector<std::uint32_t> bad_sa(5);
  EXPECT_THROW(FmIndex<SampledOcc>(
                   std::move(bwt), std::move(bad_sa),
                   [](std::span<const std::uint8_t> s) { return SampledOcc(s); }),
               std::invalid_argument);
}

TEST(SampledOcc, RankMatchesNaiveAcrossCheckpointWidths) {
  const auto bwt = testing::random_symbols(3000, 4, 15);
  for (unsigned words : {1u, 2u, 4u, 8u}) {
    const SampledOcc occ(bwt, words);
    for (std::uint8_t c = 0; c < 4; ++c) {
      for (std::size_t p = 0; p <= bwt.size(); p += 17) {
        ASSERT_EQ(occ.rank(c, p), testing::naive_rank(bwt, c, p))
            << "words=" << words << " c=" << int(c) << " p=" << p;
      }
      ASSERT_EQ(occ.rank(c, bwt.size()), testing::naive_rank(bwt, c, bwt.size()));
    }
  }
}

TEST(SampledOcc, AccessDecodesPackedSymbols) {
  const auto bwt = testing::random_symbols(500, 4, 16);
  const SampledOcc occ(bwt);
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    ASSERT_EQ(occ.access(i), bwt[i]);
  }
}

TEST(SampledOcc, RejectsZeroCheckpointWords) {
  const auto bwt = testing::random_symbols(100, 4, 17);
  EXPECT_THROW(SampledOcc(bwt, 0), std::invalid_argument);
}

TEST(SampledOcc, PartialLastWordNotOvercounted) {
  // Padding in the final word encodes as code 0 ('A'); rank(0, n) must not
  // include it.
  const std::vector<std::uint8_t> bwt(33, 0);  // 33 A's: one full word + 1
  const SampledOcc occ(bwt, 1);
  EXPECT_EQ(occ.rank(0, 33), 33u);
  EXPECT_EQ(occ.rank(1, 33), 0u);
}

}  // namespace
}  // namespace bwaver
