#include "fpga/hls_kernel.hpp"

#include <gtest/gtest.h>

#include "fmindex/dna.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

FmIndex<RrrWaveletOcc> make_index(std::span<const std::uint8_t> text,
                                  RrrParams params = {15, 50}) {
  return FmIndex<RrrWaveletOcc>(text, [params](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, params);
  });
}

std::vector<QueryPacket> packets_from_reads(const std::vector<SimulatedRead>& reads) {
  std::vector<QueryPacket> packets;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    packets.push_back(QueryPacket::encode(reads[i].codes, static_cast<std::uint32_t>(i)));
  }
  return packets;
}

class HlsKernelTest : public ::testing::Test {
 protected:
  HlsKernelTest() {
    GenomeSimConfig config;
    config.length = 30000;
    config.seed = 77;
    reference_ = simulate_genome(config);
    index_ = std::make_unique<FmIndex<RrrWaveletOcc>>(make_index(reference_));
  }

  std::vector<std::uint8_t> reference_;
  std::unique_ptr<FmIndex<RrrWaveletOcc>> index_;
};

TEST_F(HlsKernelTest, ResultsAreBitExactWithHostSearch) {
  const HlsMapperKernel kernel(DeviceSpec{}, *index_);
  ReadSimConfig config;
  config.num_reads = 300;
  config.read_length = 50;
  config.mapping_ratio = 0.7;
  const auto reads = simulate_reads(reference_, config);
  const auto packets = packets_from_reads(reads);

  std::vector<QueryResult> results;
  kernel.run_batch(packets, results);
  ASSERT_EQ(results.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto [fwd, rev] = index_->count_both_strands(reads[i].codes);
    ASSERT_EQ(results[i].id, i);
    ASSERT_EQ(results[i].fwd_lo, fwd.lo);
    ASSERT_EQ(results[i].fwd_hi, fwd.hi);
    ASSERT_EQ(results[i].rev_lo, rev.lo);
    ASSERT_EQ(results[i].rev_hi, rev.hi);
  }
}

TEST_F(HlsKernelTest, MappedReadsAreFoundAtOrigin) {
  const HlsMapperKernel kernel(DeviceSpec{}, *index_);
  ReadSimConfig config;
  config.num_reads = 100;
  config.read_length = 40;
  config.mapping_ratio = 1.0;
  const auto reads = simulate_reads(reference_, config);
  std::vector<QueryResult> results;
  kernel.run_batch(packets_from_reads(reads), results);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    ASSERT_TRUE(results[i].mapped()) << "read " << i;
  }
}

TEST_F(HlsKernelTest, CyclesScaleWithBatchSize) {
  const HlsMapperKernel kernel(DeviceSpec{}, *index_);
  ReadSimConfig config;
  config.read_length = 50;
  config.mapping_ratio = 1.0;

  config.num_reads = 100;
  std::vector<QueryResult> r1;
  const KernelStats small = kernel.run_batch(
      packets_from_reads(simulate_reads(reference_, config)), r1);

  config.num_reads = 1000;
  std::vector<QueryResult> r2;
  const KernelStats large = kernel.run_batch(
      packets_from_reads(simulate_reads(reference_, config)), r2);

  // 10x the reads -> ~10x the cycles (within pipeline-fill noise).
  const double ratio = static_cast<double>(large.compute_cycles) /
                       static_cast<double>(small.compute_cycles);
  EXPECT_NEAR(ratio, 10.0, 1.5);
}

TEST_F(HlsKernelTest, NonMappingReadsExitEarly) {
  const HlsMapperKernel kernel(DeviceSpec{}, *index_);
  ReadSimConfig config;
  config.num_reads = 300;
  config.read_length = 100;

  config.mapping_ratio = 1.0;
  std::vector<QueryResult> r1;
  const KernelStats mapped = kernel.run_batch(
      packets_from_reads(simulate_reads(reference_, config)), r1);

  config.mapping_ratio = 0.0;
  std::vector<QueryResult> r2;
  const KernelStats unmapped = kernel.run_batch(
      packets_from_reads(simulate_reads(reference_, config)), r2);

  // Random 100-mers die after a handful of steps; fully-mapping reads run
  // all 100 steps (paper Sec. IV: time depends on mapping ratio).
  EXPECT_LT(unmapped.steps_executed * 2, mapped.steps_executed);
  EXPECT_LT(unmapped.compute_cycles, mapped.compute_cycles);
  EXPECT_GT(unmapped.early_exits, 0u);
}

TEST_F(HlsKernelTest, StatsAccounting) {
  const HlsMapperKernel kernel(DeviceSpec{}, *index_);
  ReadSimConfig config;
  config.num_reads = 50;
  config.read_length = 30;
  config.mapping_ratio = 1.0;
  std::vector<QueryResult> results;
  const KernelStats stats = kernel.run_batch(
      packets_from_reads(simulate_reads(reference_, config)), results);
  EXPECT_EQ(stats.queries, 50u);
  // Every fully-mapping read executes exactly read_length steps per strand;
  // the slower strand defines the query's step count.
  EXPECT_EQ(stats.steps_executed, 50u * 30u);
  EXPECT_GT(stats.rank_queries, stats.steps_executed);
  EXPECT_GT(stats.compute_cycles, 0u);
}

TEST_F(HlsKernelTest, EmptyBatchCostsNothing) {
  const HlsMapperKernel kernel(DeviceSpec{}, *index_);
  std::vector<QueryResult> results;
  const KernelStats stats = kernel.run_batch({}, results);
  EXPECT_EQ(stats.compute_cycles, 0u);
  EXPECT_TRUE(results.empty());
}

TEST_F(HlsKernelTest, StructureLoadCyclesMatchPortWidth) {
  const DeviceSpec spec;
  const HlsMapperKernel kernel(spec, *index_);
  EXPECT_EQ(kernel.structure_load_cycles(),
            (kernel.structure_bytes() + 63) / 64);
}

TEST_F(HlsKernelTest, StepIiDependsOnSuperblockFactor) {
  const auto index_sf50 = make_index(reference_, {15, 50});
  const auto index_sf200 = make_index(reference_, {15, 200});
  const HlsMapperKernel k50(DeviceSpec{}, index_sf50);
  const HlsMapperKernel k200(DeviceSpec{}, index_sf200);
  // sf=50 -> 200 class bits -> 1 beat; sf=200 -> 800 bits -> 2 beats.
  EXPECT_EQ(k50.step_initiation_interval(), 1u);
  EXPECT_EQ(k200.step_initiation_interval(), 2u);
}

TEST(HlsKernel, OversizedStructureThrows) {
  const auto reference = testing::random_symbols(50000, 4, 3);
  const auto index = make_index(reference);
  DeviceSpec tiny;
  tiny.bram_bytes = 1024;
  tiny.uram_bytes = 0;
  EXPECT_THROW(HlsMapperKernel(tiny, index), DeviceCapacityError);
}

TEST(HlsKernel, BramHoldsStructureAllocations) {
  const auto reference = testing::random_symbols(20000, 4, 4);
  const auto index = make_index(reference);
  const HlsMapperKernel kernel(DeviceSpec{}, index);
  ASSERT_EQ(kernel.bram().allocations().size(), 3u);
  EXPECT_EQ(kernel.bram().used_bytes(), kernel.structure_bytes());
}

}  // namespace
}  // namespace bwaver
