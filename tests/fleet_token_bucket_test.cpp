// Token-bucket admission: burst capacity, refill over time, and the
// Retry-After hint.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fleet/token_bucket.hpp"

namespace bwaver::fleet {
namespace {

TEST(TokenBucket, BurstIsAdmittedThenClamped) {
  TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire()) << "burst exhausted, rate is 1/s";
}

TEST(TokenBucket, RefillsAtTheConfiguredRate) {
  TokenBucket bucket(/*rate_per_second=*/200.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(bucket.try_acquire()) << "200/s refills a token within ~5ms";
}

TEST(TokenBucket, NeverExceedsBurst) {
  TokenBucket bucket(/*rate_per_second=*/1000.0, /*burst=*/2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(bucket.try_acquire(2.0));
  EXPECT_FALSE(bucket.try_acquire(2.0)) << "idle time cannot bank beyond burst";
}

TEST(TokenBucket, SecondsUntilAvailableIsZeroWhenTokensExist) {
  TokenBucket bucket(1.0, 2.0);
  EXPECT_EQ(bucket.seconds_until_available(), 0.0);
}

TEST(TokenBucket, SecondsUntilAvailableEstimatesTheWait) {
  TokenBucket bucket(/*rate_per_second=*/2.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.try_acquire());
  const double wait = bucket.seconds_until_available();
  EXPECT_GT(wait, 0.0);
  EXPECT_LE(wait, 0.5 + 1e-6) << "one token at 2/s is at most half a second away";
}

}  // namespace
}  // namespace bwaver::fleet
