// EprOcc unit tests: rank/rank2/rank_all/access against brute force at
// every block geometry edge, per-kernel agreement for the EPR prefix
// counter, serialization (classic and flat/adopting), and the zero-copy
// view used by the serving path.
#include "fmindex/epr_occ.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/byte_io.hpp"
#include "kernels/rank_kernel.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

TEST(EprOcc, RankMatchesBruteForceAtEveryOffset) {
  // A deliberately awkward length: several full blocks plus a ragged tail
  // crossing the second plane word of the last data block.
  const auto text = testing::random_symbols(5 * 128 + 97, 4, 11);
  const EprOcc occ(text);
  ASSERT_EQ(occ.size(), text.size());
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i <= text.size(); ++i) {
      ASSERT_EQ(occ.rank(c, i), testing::naive_rank(text, c, i))
          << "c=" << int(c) << " i=" << i;
    }
  }
}

TEST(EprOcc, BlockBoundaryOffsetsAreExact) {
  const auto text = testing::random_symbols(1024, 4, 12);
  const EprOcc occ(text);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{127}, std::size_t{128}, std::size_t{191},
                              std::size_t{256}, text.size()}) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      EXPECT_EQ(occ.rank(c, i), testing::naive_rank(text, c, i)) << i;
    }
  }
}

TEST(EprOcc, Rank2MatchesTwoSingleRanks) {
  const auto text = testing::random_symbols(3000, 4, 13);
  const EprOcc occ(text);
  Xoshiro256 rng(14);
  for (int trial = 0; trial < 500; ++trial) {
    std::size_t i1 = rng.below(text.size() + 1);
    std::size_t i2 = rng.below(text.size() + 1);
    if (i1 > i2) std::swap(i1, i2);
    // Mix in same-block pairs so the hot-line reuse path is exercised.
    if (trial % 3 == 0) i2 = std::min(text.size(), i1 + rng.below(128));
    const std::uint8_t c = static_cast<std::uint8_t>(rng.below(4));
    const auto [r1, r2] = occ.rank2(c, i1, i2);
    EXPECT_EQ(r1, occ.rank(c, i1));
    EXPECT_EQ(r2, occ.rank(c, i2));
  }
}

TEST(EprOcc, RankAllAgreesWithFourRanks) {
  const auto text = testing::random_symbols(2500, 4, 15);
  const EprOcc occ(text);
  for (std::size_t i = 0; i <= text.size(); i += (i % 7) + 1) {
    const std::array<std::uint32_t, 4> all = occ.rank_all(i);
    for (std::uint8_t c = 0; c < 4; ++c) {
      ASSERT_EQ(all[c], occ.rank(c, i)) << "c=" << int(c) << " i=" << i;
    }
  }
  // The four counts at any offset must always sum to the offset.
  for (const std::size_t i : {std::size_t{0}, std::size_t{100}, text.size()}) {
    const auto all = occ.rank_all(i);
    EXPECT_EQ(std::size_t{all[0]} + all[1] + all[2] + all[3], i);
  }
}

TEST(EprOcc, AccessRecoversTheText) {
  const auto text = testing::random_symbols(777, 4, 16);
  const EprOcc occ(text);
  for (std::size_t i = 0; i < text.size(); ++i) {
    ASSERT_EQ(occ.access(i), text[i]) << i;
  }
}

TEST(EprOcc, EveryAvailableKernelAgrees) {
  const auto text = testing::random_symbols(4096 + 31, 4, 17);
  const EprOcc reference(text);  // dispatch choice
  for (const kernels::RankKernel& kernel : kernels::available_kernels()) {
    const EprOcc pinned(text, &kernel);
    for (std::size_t i = 0; i <= text.size(); i += 3) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        ASSERT_EQ(pinned.rank(c, i), reference.rank(c, i))
            << kernel.name << " c=" << int(c) << " i=" << i;
      }
    }
  }
}

TEST(EprOcc, SaveLoadRoundTrips) {
  const auto text = testing::random_symbols(2000, 4, 18);
  const EprOcc occ(text);
  ByteWriter writer;
  occ.save(writer);
  const std::vector<std::uint8_t> bytes = writer.data();
  ByteReader reader(bytes);
  const EprOcc loaded = EprOcc::load(reader);
  ASSERT_EQ(loaded.size(), occ.size());
  for (std::size_t i = 0; i <= text.size(); i += 5) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      ASSERT_EQ(loaded.rank(c, i), occ.rank(c, i));
    }
  }
}

TEST(EprOcc, FlatRoundTripsInBothAdoptModes) {
  const auto text = testing::random_symbols(1500, 4, 19);
  const EprOcc occ(text);
  ByteWriter writer;
  occ.save_flat(writer);
  // FlatArray adoption requires the blocks to sit 64-byte aligned in the
  // backing buffer; the flat format pads before the block payload, so a
  // 64-byte-aligned buffer start suffices. alignas on a local array
  // guarantees it.
  const std::vector<std::uint8_t>& flat = writer.data();
  alignas(64) std::array<std::uint8_t, 1 << 16> backing;
  ASSERT_LE(flat.size(), backing.size());
  std::copy(flat.begin(), flat.end(), backing.begin());
  const std::span<const std::uint8_t> view(backing.data(), flat.size());

  for (const bool adopt : {false, true}) {
    ByteReader reader(view);
    const EprOcc loaded = EprOcc::load_flat(reader, adopt);
    ASSERT_EQ(loaded.size(), occ.size()) << "adopt=" << adopt;
    if (adopt) {
      EXPECT_EQ(loaded.heap_size_in_bytes(), 0u);
    } else {
      EXPECT_EQ(loaded.heap_size_in_bytes(), loaded.size_in_bytes());
    }
    for (std::size_t i = 0; i <= text.size(); i += 7) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        ASSERT_EQ(loaded.rank(c, i), occ.rank(c, i)) << "adopt=" << adopt;
      }
    }
    EXPECT_EQ(reader.offset(), flat.size()) << "adopt=" << adopt;
  }
}

TEST(EprOcc, ViewAliasesWithoutCopying) {
  const auto text = testing::random_symbols(900, 4, 20);
  const EprOcc owner(text);
  const EprOcc view = EprOcc::view_of(owner);
  EXPECT_EQ(view.size(), owner.size());
  EXPECT_EQ(view.heap_size_in_bytes(), 0u);  // borrowed, nothing owned
  for (std::size_t i = 0; i <= text.size(); i += 3) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      ASSERT_EQ(view.rank(c, i), owner.rank(c, i));
    }
  }
}

TEST(EprOcc, WorksAsFmIndexBackend) {
  // End-to-end: an FmIndex over the EPR backend must count/locate exactly
  // like the RRR reference backend.
  const auto text = testing::random_symbols(6000, 4, 21);
  const FmIndex<EprOcc> epr_index(
      text, [](std::span<const std::uint8_t> bwt) { return EprOcc(bwt); });
  const FmIndex<RrrWaveletOcc> rrr_index(
      text, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t len = 4 + rng.below(20);
    const std::size_t start = rng.below(text.size() - len);
    const std::span<const std::uint8_t> pattern(text.data() + start, len);
    EXPECT_EQ(epr_index.count(pattern).count(), rrr_index.count(pattern).count());
    EXPECT_EQ(epr_index.locate(pattern), rrr_index.locate(pattern));
  }
}

TEST(EprOcc, EmptyTextIsWellFormed) {
  const EprOcc occ(std::span<const std::uint8_t>{});
  EXPECT_EQ(occ.size(), 0u);
  for (std::uint8_t c = 0; c < 4; ++c) EXPECT_EQ(occ.rank(c, 0), 0u);
}

}  // namespace
}  // namespace bwaver
