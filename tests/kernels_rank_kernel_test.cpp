#include "kernels/rank_kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace bwaver::kernels {
namespace {

/// Packs 2-bit codes into words, low slots first (32 codes per word).
std::vector<std::uint64_t> pack(const std::vector<std::uint8_t>& codes) {
  std::vector<std::uint64_t> words((codes.size() + 31) / 32, 0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    words[i / 32] |= (std::uint64_t{codes[i]} & 3) << ((i % 32) * 2);
  }
  return words;
}

std::vector<std::uint8_t> random_codes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.below(4));
  return codes;
}

std::size_t naive_count(const std::vector<std::uint8_t>& codes, std::size_t lo,
                        std::size_t hi, std::uint8_t c) {
  std::size_t count = 0;
  for (std::size_t i = lo; i < hi; ++i) count += codes[i] == c;
  return count;
}

TEST(RankKernel, RegistryShapeIsSane) {
  const auto kernels = available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.back().name, "portable");
  EXPECT_EQ(&active_kernel(), &kernels.front());
  std::set<std::string> names;
  for (const RankKernel& kernel : kernels) {
    ASSERT_NE(kernel.count_words, nullptr) << kernel.name;
    EXPECT_TRUE(names.insert(kernel.name).second) << "duplicate " << kernel.name;
    // Best-first ordering: levels never increase down the list.
    EXPECT_LE(static_cast<int>(kernel.level),
              static_cast<int>(kernels.front().level));
  }
  EXPECT_STREQ(portable_kernel().name, "portable");
  ASSERT_NE(kernel_for(SimdLevel::kPortable), nullptr);
  EXPECT_STREQ(kernel_for(SimdLevel::kPortable)->name, "portable");
}

TEST(RankKernel, CountPartialWordMatchesNaive) {
  const auto codes = random_codes(32, 7);
  const auto words = pack(codes);
  for (unsigned bases = 0; bases <= 32; ++bases) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      EXPECT_EQ(static_cast<std::size_t>(count_partial_word(words[0], c, bases)),
                naive_count(codes, 0, bases, c))
          << "bases=" << bases << " c=" << int(c);
    }
  }
}

TEST(RankKernel, EveryKernelCountsWholeWordsExactly) {
  // Word counts straddle every kernel's stride (4 words per SSE iteration,
  // 8 per AVX2 iteration) plus the scalar tail.
  for (const std::size_t n_words :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{15}, std::size_t{16}, std::size_t{17}, std::size_t{40}}) {
    const auto codes = random_codes(n_words * 32, 100 + n_words);
    const auto words = pack(codes);
    for (const RankKernel& kernel : available_kernels()) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        EXPECT_EQ(kernel.count_words(words.data(), n_words, c),
                  naive_count(codes, 0, codes.size(), c))
            << kernel.name << " n_words=" << n_words << " c=" << int(c);
      }
    }
  }
}

TEST(RankKernel, EveryKernelAgreesWithPortable) {
  const std::size_t n_words = 64;
  const auto codes = random_codes(n_words * 32, 42);
  const auto words = pack(codes);
  const RankKernel& portable = portable_kernel();
  for (const RankKernel& kernel : available_kernels()) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      EXPECT_EQ(kernel.count_words(words.data(), n_words, c),
                portable.count_words(words.data(), n_words, c))
          << kernel.name << " c=" << int(c);
    }
  }
}

TEST(RankKernel, CountRangeHandlesRaggedEdges) {
  const std::size_t n = 7 * 32 + 11;  // partial final word
  const auto codes = random_codes(n, 9);
  auto words = pack(codes);
  Xoshiro256 rng(17);
  for (const RankKernel& kernel : available_kernels()) {
    // Edge ranges: empty, single base, word-aligned, crossing every word.
    for (const auto& [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
             {0, 0}, {0, 1}, {0, n}, {31, 33}, {32, 64}, {1, n - 1}, {n, n},
             {63, 65}, {96, 96}, {5, 27}}) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        EXPECT_EQ(count_range(kernel, words.data(), lo, hi, c),
                  naive_count(codes, lo, hi, c))
            << kernel.name << " [" << lo << "," << hi << ") c=" << int(c);
      }
    }
    for (int trial = 0; trial < 200; ++trial) {
      std::size_t lo = rng.below(n + 1);
      std::size_t hi = rng.below(n + 1);
      if (lo > hi) std::swap(lo, hi);
      const auto c = static_cast<std::uint8_t>(rng.below(4));
      EXPECT_EQ(count_range(kernel, words.data(), lo, hi, c),
                naive_count(codes, lo, hi, c))
          << kernel.name << " [" << lo << "," << hi << ") c=" << int(c);
    }
  }
}

TEST(RankKernel, EveryKernelCountsBlockPrefixesExactly) {
  // Exhaustive off sweep over a six-word block (the VectorOcc hot path),
  // for every kernel and code — including off 0 and the full 192.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto codes = random_codes(192, seed);
    const auto words = pack(codes);
    ASSERT_EQ(words.size(), 6u);
    for (const RankKernel& kernel : available_kernels()) {
      ASSERT_NE(kernel.count_block_prefix, nullptr) << kernel.name;
      for (unsigned off = 0; off <= 192; ++off) {
        for (std::uint8_t c = 0; c < 4; ++c) {
          EXPECT_EQ(kernel.count_block_prefix(words.data(), off, c),
                    naive_count(codes, 0, off, c))
              << kernel.name << " off=" << off << " c=" << int(c);
        }
      }
    }
  }
}

/// Transposes 128 2-bit codes into EPR bit planes [lo0, lo1, hi0, hi1].
std::array<std::uint64_t, 4> transpose_epr(const std::vector<std::uint8_t>& codes) {
  std::array<std::uint64_t, 4> planes{};
  for (std::size_t i = 0; i < codes.size() && i < 128; ++i) {
    const unsigned w = static_cast<unsigned>(i >> 6);
    const unsigned b = static_cast<unsigned>(i & 63);
    planes[w] |= std::uint64_t{codes[i] & 1u} << b;
    planes[2 + w] |= std::uint64_t{(codes[i] >> 1) & 1u} << b;
  }
  return planes;
}

TEST(RankKernel, EveryKernelCountsEprPrefixesExactly) {
  // Exhaustive off sweep over one EPR block (128 bases, the EprOcc hot
  // path), for every kernel and code — including off 0, the 64-base plane
  // boundary, and the full 128.
  for (const std::uint64_t seed : {4u, 5u, 6u}) {
    const auto codes = random_codes(128, seed);
    const auto planes = transpose_epr(codes);
    for (const RankKernel& kernel : available_kernels()) {
      ASSERT_NE(kernel.count_epr_prefix, nullptr) << kernel.name;
      for (unsigned off = 0; off <= 128; ++off) {
        for (std::uint8_t c = 0; c < 4; ++c) {
          EXPECT_EQ(kernel.count_epr_prefix(planes.data(), off, c),
                    naive_count(codes, 0, off, c))
              << kernel.name << " off=" << off << " c=" << int(c);
        }
      }
    }
  }
}

TEST(RankKernel, EprPrefixHandlesUniformPlanes) {
  // All-same-symbol planes, including code 0 (all-zero planes — also what
  // the terminal block's padding looks like).
  for (std::uint8_t fill = 0; fill < 4; ++fill) {
    const std::vector<std::uint8_t> codes(128, fill);
    const auto planes = transpose_epr(codes);
    for (const RankKernel& kernel : available_kernels()) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        for (const unsigned off : {0u, 1u, 63u, 64u, 65u, 127u, 128u}) {
          EXPECT_EQ(kernel.count_epr_prefix(planes.data(), off, c),
                    c == fill ? off : 0u)
              << kernel.name << " fill=" << int(fill) << " c=" << int(c);
        }
      }
    }
  }
}

TEST(RankKernel, AllSameSymbolTexts) {
  // Degenerate skews: every slot the same code, including code 0, whose
  // pattern (all-zero words) is also what padding looks like.
  const std::size_t n_words = 12;
  for (std::uint8_t fill = 0; fill < 4; ++fill) {
    const std::vector<std::uint8_t> codes(n_words * 32, fill);
    const auto words = pack(codes);
    for (const RankKernel& kernel : available_kernels()) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        EXPECT_EQ(kernel.count_words(words.data(), n_words, c),
                  c == fill ? n_words * 32 : 0u)
            << kernel.name << " fill=" << int(fill) << " c=" << int(c);
      }
    }
  }
}

}  // namespace
}  // namespace bwaver::kernels
