#include "app/http_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "app/web_service.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "io/gzip.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {
namespace {

/// Blocking loopback HTTP client good enough for tests.
std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& path, const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n";
  // These helpers read the response until EOF, so opt out of keep-alive.
  request += "Connection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpServer, RoutesAndResponds) {
  HttpServer server;
  server.route("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::text(200, "pong");
  });
  server.start(0);
  ASSERT_GT(server.port(), 0);

  const std::string response = http_request(server.port(), "GET", "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("pong"), std::string::npos);
  server.stop();
}

TEST(HttpServer, UnknownPathIs404) {
  HttpServer server;
  server.start(0);
  const std::string response = http_request(server.port(), "GET", "/missing");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  server.stop();
}

TEST(HttpServer, PostBodyIsDelivered) {
  HttpServer server;
  std::string received;
  server.route("POST", "/echo", [&](const HttpRequest& request) {
    received.assign(request.body.begin(), request.body.end());
    return HttpResponse::text(200, "got " + std::to_string(request.body.size()));
  });
  server.start(0);
  const std::string body(10000, 'x');  // larger than one recv chunk
  const std::string response = http_request(server.port(), "POST", "/echo", body);
  EXPECT_NE(response.find("got 10000"), std::string::npos);
  EXPECT_EQ(received, body);
  server.stop();
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server;
  server.route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaboom");
  });
  server.start(0);
  const std::string response = http_request(server.port(), "GET", "/boom");
  EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos);
  EXPECT_NE(response.find("kaboom"), std::string::npos);
  server.stop();
}

TEST(HttpServer, MultipleSequentialRequests) {
  HttpServer server;
  server.route("GET", "/n", [](const HttpRequest&) {
    static int counter = 0;
    return HttpResponse::text(200, std::to_string(++counter));
  });
  server.start(0);
  for (int i = 1; i <= 5; ++i) {
    const std::string response = http_request(server.port(), "GET", "/n");
    EXPECT_NE(response.find(std::to_string(i)), std::string::npos);
  }
  server.stop();
}

TEST(HttpServer, DoubleStartThrows) {
  HttpServer server;
  server.start(0);
  EXPECT_THROW(server.start(0), std::logic_error);
  server.stop();
}

// ------------------------------------------------- path-template routing

TEST(HttpServerRouting, TemplateMatchCapturesParams) {
  std::map<std::string, std::string> params;
  EXPECT_TRUE(HttpServer::match_path_template("/jobs/{id}", "/jobs/42", params));
  EXPECT_EQ(params.at("id"), "42");

  EXPECT_TRUE(
      HttpServer::match_path_template("/jobs/{id}/result", "/jobs/7/result", params));
  EXPECT_EQ(params.at("id"), "7");

  EXPECT_TRUE(HttpServer::match_path_template("/a/{x}/b/{y}", "/a/one/b/two", params));
  EXPECT_EQ(params.at("x"), "one");
  EXPECT_EQ(params.at("y"), "two");
}

TEST(HttpServerRouting, TemplateMissCases) {
  std::map<std::string, std::string> params;
  // Wrong segment count.
  EXPECT_FALSE(HttpServer::match_path_template("/jobs/{id}", "/jobs", params));
  EXPECT_FALSE(HttpServer::match_path_template("/jobs/{id}", "/jobs/42/result", params));
  // Literal mismatch.
  EXPECT_FALSE(HttpServer::match_path_template("/jobs/{id}", "/tasks/42", params));
  EXPECT_FALSE(
      HttpServer::match_path_template("/jobs/{id}/result", "/jobs/42/status", params));
  // An empty segment never satisfies a capture.
  EXPECT_FALSE(HttpServer::match_path_template("/jobs/{id}", "/jobs/", params));
  // Non-rooted inputs.
  EXPECT_FALSE(HttpServer::match_path_template("jobs/{id}", "/jobs/42", params));
  EXPECT_FALSE(HttpServer::match_path_template("/jobs/{id}", "jobs/42", params));
}

TEST(HttpServerRouting, PathParamsReachHandlers) {
  HttpServer server;
  server.route("GET", "/jobs/{id}", [](const HttpRequest& request) {
    return HttpResponse::text(200, "job=" + request.path_param("id"));
  });
  server.route("GET", "/jobs/{id}/result", [](const HttpRequest& request) {
    return HttpResponse::text(200, "result-for=" + request.path_param("id"));
  });
  server.start(0);

  EXPECT_NE(http_request(server.port(), "GET", "/jobs/42").find("job=42"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "GET", "/jobs/42/result")
                .find("result-for=42"),
            std::string::npos);
  // Misses fall through to 404.
  EXPECT_NE(http_request(server.port(), "GET", "/jobs/42/other").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "GET", "/jobs").find("HTTP/1.1 404"),
            std::string::npos);
  server.stop();
}

TEST(HttpServerRouting, ExactRouteWinsOverTemplate) {
  HttpServer server;
  server.route("GET", "/jobs/{id}", [](const HttpRequest&) {
    return HttpResponse::text(200, "template");
  });
  server.route("GET", "/jobs/latest", [](const HttpRequest&) {
    return HttpResponse::text(200, "exact");
  });
  server.start(0);
  EXPECT_NE(http_request(server.port(), "GET", "/jobs/latest").find("exact"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "GET", "/jobs/3").find("template"),
            std::string::npos);
  server.stop();
}

TEST(HttpServerRouting, WrongMethodOnKnownPathIs405) {
  HttpServer server;
  server.route("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::text(200, "pong");
  });
  server.route("GET", "/jobs/{id}", [](const HttpRequest&) {
    return HttpResponse::text(200, "job");
  });
  server.start(0);
  EXPECT_NE(http_request(server.port(), "POST", "/ping").find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "POST", "/jobs/9").find("HTTP/1.1 405"),
            std::string::npos);
  server.stop();
}

// ----------------------------------------- body limits and worker pool

TEST(HttpServerLimits, OversizedBodyIs413) {
  HttpServerOptions options;
  options.max_body_bytes = 512;
  HttpServer server(options);
  bool handler_ran = false;
  server.route("POST", "/upload", [&](const HttpRequest&) {
    handler_ran = true;
    return HttpResponse::text(200, "ok");
  });
  server.start(0);
  const std::string big(2048, 'x');
  const std::string response = http_request(server.port(), "POST", "/upload", big);
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos);
  EXPECT_FALSE(handler_ran) << "oversized bodies must be rejected before dispatch";
  // At the limit is still accepted.
  const std::string ok = http_request(server.port(), "POST", "/upload",
                                      std::string(512, 'x'));
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  server.stop();
}

TEST(HttpServerLimits, ExtraHeadersAreEmitted) {
  HttpServer server;
  server.route("GET", "/busy", [](const HttpRequest&) {
    HttpResponse response = HttpResponse::text(503, "try later\n");
    response.with_header("Retry-After", "3");
    return response;
  });
  server.start(0);
  const std::string response = http_request(server.port(), "GET", "/busy");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 3"), std::string::npos);
  server.stop();
}

TEST(HttpServerPool, BoundedWorkersServeConcurrentBurst) {
  HttpServerOptions options;
  options.worker_threads = 2;
  HttpServer server(options);
  std::atomic<int> served{0};
  server.route("GET", "/slow", [&](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ++served;
    return HttpResponse::text(200, "done");
  });
  server.start(0);
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&] {
      const std::string response = http_request(server.port(), "GET", "/slow");
      if (response.find("HTTP/1.1 200") != std::string::npos) ++ok;
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(ok.load(), 8) << "burst beyond the pool size must still be served";
  EXPECT_EQ(served.load(), 8);
  server.stop();
}

TEST(HttpServerPool, StopJoinsInFlightHandlers) {
  HttpServer server;
  std::atomic<bool> finished{false};
  server.route("GET", "/slow", [&](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    finished = true;
    return HttpResponse::text(200, "done");
  });
  server.start(0);
  std::thread client([&] { http_request(server.port(), "GET", "/slow"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // handler in flight
  server.stop();
  EXPECT_TRUE(finished.load()) << "stop() must join, not abandon, in-flight handlers";
  client.join();
}

// --------------------------------------------------------- keep-alive

/// Reads exactly one Content-Length-framed response from `fd`.
std::string read_one_response(int fd) {
  std::string data;
  char chunk[4096];
  while (data.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return data;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = data.find("\r\n\r\n") + 4;
  std::size_t content_length = 0;
  const std::size_t at = data.find("Content-Length: ");
  if (at != std::string::npos && at < head_end) {
    content_length = std::strtoul(data.c_str() + at + 16, nullptr, 10);
  }
  while (data.size() < head_end + content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  return data.substr(0, head_end + content_length);
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(HttpServerKeepAlive, OneConnectionServesSequentialRequests) {
  HttpServer server;
  std::atomic<int> hits{0};
  server.route("GET", "/ping", [&](const HttpRequest&) {
    ++hits;
    return HttpResponse::text(200, "pong");
  });
  server.start(0);

  const int fd = connect_to(server.port());
  const std::string request =
      "GET /ping HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n";
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    const std::string response = read_one_response(fd);
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos)
        << "an HTTP/1.1 response on a reusable connection must advertise keep-alive";
    EXPECT_NE(response.find("pong"), std::string::npos);
  }
  ::close(fd);
  EXPECT_EQ(hits.load(), 3) << "all three requests must arrive over the one connection";
  server.stop();
}

TEST(HttpServerKeepAlive, ConnectionCloseIsHonored) {
  HttpServer server;
  server.route("GET", "/ping",
               [](const HttpRequest&) { return HttpResponse::text(200, "pong"); });
  server.start(0);

  const int fd = connect_to(server.port());
  const std::string request =
      "GET /ping HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
      "Content-Length: 0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string data;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    data.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_NE(data.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(data.find("Connection: close"), std::string::npos);
  // recv returning 0 above proves the server closed after one response.
  ::close(fd);
  server.stop();
}

TEST(HttpServerKeepAlive, DisabledKeepAliveClosesAfterEachResponse) {
  HttpServerOptions options;
  options.keep_alive = false;
  HttpServer server(options);
  server.route("GET", "/ping",
               [](const HttpRequest&) { return HttpResponse::text(200, "pong"); });
  server.start(0);

  const std::string response = http_request(server.port(), "GET", "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  server.stop();
}

// --------------------------------------------------------- WebService

class WebServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenomeSimConfig config;
    config.length = 20000;
    config.seed = 5;
    genome_codes_ = simulate_genome(config);

    const FastaRecord ref{"web_ref", dna_decode_string(genome_codes_)};
    fasta_text_ = format_fasta(std::span<const FastaRecord>(&ref, 1));

    ReadSimConfig rc;
    rc.num_reads = 50;
    rc.read_length = 40;
    rc.mapping_ratio = 1.0;
    const auto reads = simulate_reads(genome_codes_, rc);
    fastq_text_ = format_fastq(reads_to_fastq(reads));

    service_.start(0);
  }

  void TearDown() override { service_.stop(); }

  std::vector<std::uint8_t> genome_codes_;
  std::string fasta_text_;
  std::string fastq_text_;
  WebService service_;
};

TEST_F(WebServiceTest, LandingPageIsHtml) {
  const std::string response = http_request(service_.port(), "GET", "/");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("BWaveR"), std::string::npos);
  EXPECT_NE(response.find("text/html"), std::string::npos);
}

TEST_F(WebServiceTest, StatusBeforeReference) {
  const std::string response = http_request(service_.port(), "GET", "/status");
  EXPECT_NE(response.find("no reference loaded"), std::string::npos);
}

TEST_F(WebServiceTest, MapBeforeReferenceIs409) {
  const std::string response =
      http_request(service_.port(), "POST", "/map", fastq_text_);
  EXPECT_NE(response.find("HTTP/1.1 409"), std::string::npos);
}

TEST_F(WebServiceTest, FullUploadIndexMapWorkflow) {
  const std::string upload =
      http_request(service_.port(), "POST", "/reference", fasta_text_);
  EXPECT_NE(upload.find("200 OK"), std::string::npos);
  EXPECT_NE(upload.find("web_ref"), std::string::npos);

  const std::string status = http_request(service_.port(), "GET", "/status");
  EXPECT_NE(status.find("state: ready"), std::string::npos);
  EXPECT_NE(status.find("20000 bp"), std::string::npos);

  const std::string sam = http_request(service_.port(), "POST", "/map", fastq_text_);
  EXPECT_NE(sam.find("200 OK"), std::string::npos);
  EXPECT_NE(sam.find("@SQ\tSN:web_ref"), std::string::npos);
  EXPECT_NE(sam.find("40M"), std::string::npos);  // 40 bp exact matches
}

TEST_F(WebServiceTest, GzippedUploadsAccepted) {
  const auto gz_fasta = gzip_compress(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(fasta_text_.data()), fasta_text_.size()));
  const std::string upload = http_request(
      service_.port(), "POST", "/reference",
      std::string(gz_fasta.begin(), gz_fasta.end()));
  EXPECT_NE(upload.find("200 OK"), std::string::npos);
}

TEST_F(WebServiceTest, EmptyUploadRejected) {
  const std::string response = http_request(service_.port(), "POST", "/reference", "");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

TEST_F(WebServiceTest, MalformedFastaIs500) {
  const std::string response =
      http_request(service_.port(), "POST", "/reference", "garbage not fasta");
  EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos);
}

}  // namespace
}  // namespace bwaver
