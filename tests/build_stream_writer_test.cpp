// ArchiveStreamWriter + write_file_atomic tests: byte-exact layout against
// the in-RAM ByteWriter rendering, section-order enforcement, and the crash
// contract — an unfinished writer (including a process killed mid-write)
// never disturbs the previous archive under the final name.
#include "build/archive_stream_writer.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

#include "io/byte_io.hpp"
#include "io/checksum.hpp"
#include "store/index_archive.hpp"

#include "test_temp_dir.hpp"

namespace bwaver::build {
namespace {

class StreamWriterTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = test::unique_test_dir("bwaver_build_stream_writer"); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

std::vector<std::uint8_t> bytes_0_to(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  return out;
}

TEST_F(StreamWriterTest, MatchesInRamRenderingByteForByte) {
  const auto alpha = bytes_0_to(100);  // not 64-aligned: exercises padding
  const std::vector<std::uint32_t> beta{7, 11, 0xdeadbeef};

  const std::string file = path("out.bwva");
  {
    ArchiveStreamWriter writer(file, /*format_version=*/3, {"alpha", "beta"});
    writer.begin_section("alpha");
    writer.append(alpha);
    writer.end_section();
    writer.begin_section("beta");
    writer.append_u64(beta.size());
    writer.pad_section_to(64);
    writer.append_raw_u32(beta);
    writer.end_section();
    writer.finish();
  }

  // The same archive rendered the way write_index_archive does it: payloads
  // into per-section ByteWriters, then header + 64-aligned payloads.
  ByteWriter beta_payload;
  beta_payload.u64(beta.size());
  beta_payload.pad_to(64);
  beta_payload.raw_u32(beta);
  std::vector<ArchiveSectionPlan> plans;
  plans.push_back({"alpha", alpha.size(), crc32_ieee(alpha)});
  plans.push_back({"beta", beta_payload.data().size(), crc32_ieee(beta_payload.data())});
  ByteWriter expected;
  expected.bytes(render_archive_header(3, plans));
  expected.pad_to(kSectionAlign);
  expected.bytes(alpha);
  expected.pad_to(kSectionAlign);
  expected.bytes(beta_payload.data());

  EXPECT_EQ(read_file(file), expected.data());
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

TEST_F(StreamWriterTest, BytesWrittenTracksFileSize) {
  const std::string file = path("sized.bwva");
  std::uint64_t reported = 0;
  {
    ArchiveStreamWriter writer(file, 3, {"only"});
    writer.begin_section("only");
    writer.append(bytes_0_to(1000));
    writer.end_section();
    writer.finish();
    reported = writer.bytes_written();
  }
  EXPECT_EQ(reported, std::filesystem::file_size(file));
}

TEST_F(StreamWriterTest, EnforcesDeclaredSectionOrder) {
  ArchiveStreamWriter writer(path("order.bwva"), 3, {"first", "second"});
  EXPECT_THROW(writer.begin_section("second"), std::logic_error);
  writer.begin_section("first");
  EXPECT_THROW(writer.begin_section("second"), std::logic_error);  // still open
  writer.end_section();
  EXPECT_THROW(writer.begin_section("first"), std::logic_error);
  writer.begin_section("second");
  writer.end_section();
}

TEST_F(StreamWriterTest, FinishRequiresAllDeclaredSections) {
  ArchiveStreamWriter writer(path("missing.bwva"), 3, {"first", "second"});
  writer.begin_section("first");
  writer.end_section();
  EXPECT_THROW(writer.finish(), std::logic_error);
}

TEST_F(StreamWriterTest, DestructionWithoutFinishLeavesNothing) {
  const std::string file = path("aborted.bwva");
  {
    ArchiveStreamWriter writer(file, 3, {"only"});
    writer.begin_section("only");
    writer.append(bytes_0_to(5000));
  }
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

TEST_F(StreamWriterTest, AbortedRewriteLeavesPreviousArchiveIntact) {
  const std::string file = path("stable.bwva");
  {
    ArchiveStreamWriter writer(file, 3, {"only"});
    writer.begin_section("only");
    writer.append(bytes_0_to(100));
    writer.end_section();
    writer.finish();
  }
  const auto before = read_file(file);
  {
    ArchiveStreamWriter writer(file, 3, {"only"});
    writer.begin_section("only");
    writer.append(bytes_0_to(77));
    // destroyed unfinished
  }
  EXPECT_EQ(read_file(file), before);
}

// The satellite's kill-mid-write case: a child process dies (no destructors,
// no finish) while streaming a replacement archive. The previous archive
// under the final name must survive byte-for-byte.
TEST_F(StreamWriterTest, ProcessKilledMidWritePreservesArchive) {
  const std::string file = path("killed.bwva");
  {
    ArchiveStreamWriter writer(file, 3, {"only"});
    writer.begin_section("only");
    writer.append(bytes_0_to(100));
    writer.end_section();
    writer.finish();
  }
  const auto before = read_file(file);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: write enough to force flushes past the buffered threshold,
    // then die abruptly.
    auto writer = std::make_unique<ArchiveStreamWriter>(file, 3,
                                                        std::vector<std::string>{"only"});
    writer->begin_section("only");
    const auto chunk = bytes_0_to(1 << 16);
    for (int i = 0; i < 64; ++i) writer->append(chunk);
    _exit(1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 1);

  EXPECT_EQ(read_file(file), before);
  std::filesystem::remove(file + ".tmp");  // at most a stale temp remains
}

TEST_F(StreamWriterTest, WriteFileAtomicReplacesAndCleansUp) {
  const std::string file = path("atomic.bin");
  const auto first = bytes_0_to(10);
  const auto second = bytes_0_to(2000);
  write_file_atomic(file, first);
  EXPECT_EQ(read_file(file), first);
  write_file_atomic(file, second);
  EXPECT_EQ(read_file(file), second);
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

}  // namespace
}  // namespace bwaver::build
