// Satellite: randomized differential fuzzing of the Occ engines.
//
// Generates BWT-like symbol sequences across alphabet skews and lengths
// chosen to straddle SIMD widths (32-base words), VectorOcc's 192-base
// blocks, SampledOcc's checkpoints and the degenerate 0/1 cases, then
// checks every engine's rank/rank2 — and the FmIndex occ/occ2 surface —
// against the RRR wavelet tree reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/byte_io.hpp"
#include "kernels/rank_kernel.hpp"
#include "kernels/vector_occ.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

// Lengths straddling every structural boundary: SIMD word (32), SampledOcc
// checkpoint (128 at the default width), VectorOcc block (192) and its
// midpoint (96, where the scan direction flips), plus 0/1.
const std::size_t kLengths[] = {0,  1,   31,  32,  33,  63,  64,  65,  95, 96,
                                97, 127, 128, 129, 191, 192, 193, 384, 1000};

struct Skew {
  const char* name;
  // Sampling weights for codes 0..3 (A, C, G, T), in 1/64ths.
  unsigned weights[4];
};

const Skew kSkews[] = {
    {"uniform", {16, 16, 16, 16}},
    {"all-A", {64, 0, 0, 0}},
    {"AT-heavy", {30, 2, 2, 30}},
    {"one-hot-G", {1, 1, 61, 1}},
};

std::vector<std::uint8_t> skewed_symbols(std::size_t n, const Skew& skew,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& s : out) {
    const std::uint64_t roll = rng.below(64);
    std::uint64_t acc = 0;
    for (std::uint8_t c = 0; c < 4; ++c) {
      acc += skew.weights[c];
      if (roll < acc) {
        s = c;
        break;
      }
    }
  }
  return out;
}

/// Positions worth probing for a text of length n: every structural edge
/// plus a random sprinkle.
std::vector<std::size_t> probe_positions(std::size_t n, Xoshiro256& rng) {
  std::vector<std::size_t> probes{0, n};
  for (const std::size_t edge : {std::size_t{1}, std::size_t{31}, std::size_t{32},
                                 std::size_t{33}, std::size_t{96}, std::size_t{127},
                                 std::size_t{128}, std::size_t{191}, std::size_t{192},
                                 n / 2, n - 1}) {
    if (edge <= n) probes.push_back(edge);
  }
  for (int i = 0; i < 32; ++i) probes.push_back(rng.below(n + 1));
  return probes;
}

TEST(OccEngineFuzz, AllEnginesAgreeWithRrrOnRankAndRank2) {
  Xoshiro256 rng(2024);
  for (const Skew& skew : kSkews) {
    for (const std::size_t n : kLengths) {
      const auto bwt = skewed_symbols(n, skew, 5000 + n);
      const RrrWaveletOcc reference(bwt, RrrParams{15, 50});
      const PlainWaveletOcc plain(bwt);
      const SampledOcc sampled(bwt);
      std::vector<VectorOcc> vectors;
      for (const kernels::RankKernel& kernel : kernels::available_kernels()) {
        vectors.emplace_back(bwt, &kernel);
      }

      const auto probes = probe_positions(n, rng);
      for (const std::size_t i : probes) {
        for (std::uint8_t c = 0; c < 4; ++c) {
          const std::size_t want = reference.rank(c, i);
          EXPECT_EQ(plain.rank(c, i), want)
              << "plain " << skew.name << " n=" << n << " i=" << i;
          EXPECT_EQ(sampled.rank(c, i), want)
              << "sampled " << skew.name << " n=" << n << " i=" << i;
          for (const VectorOcc& vec : vectors) {
            EXPECT_EQ(vec.rank(c, i), want)
                << "vector/" << vec.kernel().name << " " << skew.name
                << " n=" << n << " i=" << i;
          }
        }
      }
      // rank2 over ordered probe pairs, including i1 == i2.
      for (std::size_t a = 0; a < probes.size(); ++a) {
        for (std::size_t b = a; b < probes.size(); b += 3) {
          std::size_t i1 = probes[a], i2 = probes[b];
          if (i1 > i2) std::swap(i1, i2);
          for (std::uint8_t c = 0; c < 4; ++c) {
            const auto want = reference.rank2(c, i1, i2);
            EXPECT_EQ(plain.rank2(c, i1, i2), want) << skew.name << " n=" << n;
            // SampledOcc has no rank2 — its pair is two independent ranks.
            EXPECT_EQ(std::make_pair(sampled.rank(c, i1), sampled.rank(c, i2)), want)
                << skew.name << " n=" << n;
            for (const VectorOcc& vec : vectors) {
              EXPECT_EQ(vec.rank2(c, i1, i2), want)
                  << "vector/" << vec.kernel().name << " " << skew.name
                  << " n=" << n << " [" << i1 << "," << i2 << ")";
            }
          }
        }
      }
    }
  }
}

TEST(OccEngineFuzz, VectorOccBulkRankMatchesScalarRank2) {
  // rank2_bulk must answer exactly like per-query rank2 for every kernel,
  // across skews and block-boundary-straddling positions — including the
  // empty batch and single-query batches.
  Xoshiro256 rng(4096);
  for (const Skew& skew : kSkews) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{96}, std::size_t{192},
                                std::size_t{193}, std::size_t{1000}}) {
      const auto bwt = skewed_symbols(n, skew, 9000 + n);
      for (const kernels::RankKernel& kernel : kernels::available_kernels()) {
        const VectorOcc vec(bwt, &kernel);
        std::vector<VectorOcc::BulkQuery> queries;
        const auto probes = probe_positions(n, rng);
        for (std::size_t a = 0; a < probes.size(); ++a) {
          for (std::size_t b = a; b < probes.size(); b += 5) {
            std::size_t i1 = probes[a], i2 = probes[b];
            if (i1 > i2) std::swap(i1, i2);
            queries.push_back({static_cast<std::uint32_t>(i1),
                               static_cast<std::uint32_t>(i2),
                               static_cast<std::uint8_t>(rng.below(4))});
          }
        }
        for (const std::size_t batch : {std::size_t{0}, std::size_t{1}, queries.size()}) {
          const std::span<const VectorOcc::BulkQuery> span(queries.data(), batch);
          std::vector<std::pair<std::uint32_t, std::uint32_t>> out(batch);
          vec.rank2_bulk(span, out.data());
          for (std::size_t q = 0; q < batch; ++q) {
            const auto want = vec.rank2(queries[q].c, queries[q].lo, queries[q].hi);
            EXPECT_EQ(out[q].first, want.first)
                << kernel.name << " " << skew.name << " n=" << n << " q=" << q;
            EXPECT_EQ(out[q].second, want.second)
                << kernel.name << " " << skew.name << " n=" << n << " q=" << q;
          }
        }
      }
    }
  }
}

TEST(OccEngineFuzz, FmIndexOccSurfaceAgreesAcrossEngines) {
  // The mapper-facing surface: occ/occ2 over the (n+1)-row BWT column with
  // the out-of-band sentinel adjustment. Each engine indexes the same text.
  Xoshiro256 rng(77);
  for (const std::size_t n : {std::size_t{193}, std::size_t{1000}}) {
    const auto text = testing::random_symbols(n, 4, 31 + n);
    const FmIndex<RrrWaveletOcc> rrr(
        text, [](std::span<const std::uint8_t> bwt) {
          return RrrWaveletOcc(bwt, RrrParams{15, 50});
        });
    const FmIndex<SampledOcc> sampled(
        text, [](std::span<const std::uint8_t> bwt) { return SampledOcc(bwt); });
    const FmIndex<PlainWaveletOcc> plain(
        text, [](std::span<const std::uint8_t> bwt) { return PlainWaveletOcc(bwt); });
    const FmIndex<VectorOcc> vector(
        text, [](std::span<const std::uint8_t> bwt) { return VectorOcc(bwt); });

    for (std::size_t trial = 0; trial < 400; ++trial) {
      std::size_t r1 = rng.below(rrr.rows() + 1);
      std::size_t r2 = rng.below(rrr.rows() + 1);
      if (r1 > r2) std::swap(r1, r2);
      for (std::uint8_t c = 0; c < 4; ++c) {
        const auto want = rrr.occ2(c, r1, r2);
        EXPECT_EQ(sampled.occ2(c, r1, r2), want) << "n=" << n << " rows=" << r1;
        EXPECT_EQ(plain.occ2(c, r1, r2), want) << "n=" << n << " rows=" << r1;
        EXPECT_EQ(vector.occ2(c, r1, r2), want) << "n=" << n << " rows=" << r1;
        EXPECT_EQ(vector.occ(c, r1), want.first);
      }
    }
  }
}

TEST(OccEngineFuzz, VectorOccSerializationRoundTrip) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{192},
                              std::size_t{777}}) {
    const auto bwt = testing::random_symbols(n, 4, 3 + n);
    const VectorOcc original(bwt);
    ByteWriter writer;
    original.save(writer);
    ByteReader reader(writer.data());
    const VectorOcc loaded = VectorOcc::load(reader);
    ASSERT_EQ(loaded.size(), n);
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::uint8_t c = 0; c < 4; ++c) {
        ASSERT_EQ(loaded.rank(c, i), original.rank(c, i)) << "n=" << n << " i=" << i;
      }
      if (i < n) {
        ASSERT_EQ(loaded.access(i), bwt[i]);
      }
    }
  }
}

}  // namespace
}  // namespace bwaver
