// Consistent-hash ring: ownership stability, failover ordering, and the
// minimal-disruption property that justifies the ring over key % N.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fleet/hash_ring.hpp"

namespace bwaver::fleet {
namespace {

std::vector<std::string> keys_for(int n) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) keys.push_back("ref/" + std::to_string(i));
  return keys;
}

TEST(HashRing, EmptyRingYieldsNothing) {
  HashRing ring;
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pick("anything"), "");
  EXPECT_TRUE(ring.candidates("anything", 3).empty());
}

TEST(HashRing, PickIsDeterministic) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  ring.add("c:3");
  for (const std::string& key : keys_for(50)) {
    EXPECT_EQ(ring.pick(key), ring.pick(key));
    EXPECT_EQ(ring.candidates(key, 3).front(), ring.pick(key));
  }
}

TEST(HashRing, CandidatesAreDistinctAndCovering) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  ring.add("c:3");
  for (const std::string& key : keys_for(20)) {
    const auto candidates = ring.candidates(key, 5);
    ASSERT_EQ(candidates.size(), 3u) << "3 nodes -> at most 3 distinct candidates";
    const std::set<std::string> unique(candidates.begin(), candidates.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(HashRing, SharesAreRoughlyBalanced) {
  HashRing ring(64);
  ring.add("a:1");
  ring.add("b:2");
  ring.add("c:3");
  std::map<std::string, int> counts;
  const int kKeys = 3000;
  for (const std::string& key : keys_for(kKeys)) counts[ring.pick(key)]++;
  for (const auto& [node, count] : counts) {
    // Each of 3 nodes should own a third-ish; accept a wide band so the
    // test pins gross imbalance, not hash micro-variance.
    EXPECT_GT(count, kKeys / 6) << node;
    EXPECT_LT(count, kKeys / 2) << node;
  }
}

TEST(HashRing, RemovingANodeOnlyMovesItsOwnKeys) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  ring.add("c:3");
  const auto keys = keys_for(500);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.pick(key);

  ring.remove("b:2");
  EXPECT_FALSE(ring.contains("b:2"));
  for (const std::string& key : keys) {
    const std::string after = ring.pick(key);
    EXPECT_NE(after, "b:2");
    if (before[key] != "b:2") {
      // The consistent-hashing contract: keys not owned by the removed
      // node do not move.
      EXPECT_EQ(after, before[key]) << key;
    }
  }
}

TEST(HashRing, ReAddingRestoresOwnership) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  const auto keys = keys_for(200);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.pick(key);
  ring.remove("a:1");
  ring.add("a:1");
  for (const std::string& key : keys) EXPECT_EQ(ring.pick(key), before[key]) << key;
}

TEST(HashRing, FailoverCandidateTakesOverWhenPrimaryLeaves) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  ring.add("c:3");
  for (const std::string& key : keys_for(100)) {
    const auto candidates = ring.candidates(key, 3);
    ring.remove(candidates[0]);
    // With the primary gone, the former second choice owns the key.
    EXPECT_EQ(ring.pick(key), candidates[1]) << key;
    ring.add(candidates[0]);
  }
}

TEST(HashRing, DuplicateAddAndUnknownRemoveAreNoOps) {
  HashRing ring;
  ring.add("a:1");
  ring.add("a:1");
  EXPECT_EQ(ring.size(), 1u);
  ring.remove("nope");
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.pick("k"), "a:1");
}

}  // namespace
}  // namespace bwaver::fleet
