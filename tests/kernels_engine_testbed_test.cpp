// The shared engine-correctness testbed.
//
// One simulated reference + read workload runs through every engine the
// registry enumerates — the modeled FPGA and all four software Occ
// backends — via the same map_records_over entry point the pipeline and
// the web service use. The paper's "no loss in accuracy" claim, promoted
// to a registry-wide invariant: byte-identical SAM and identical outcome
// counters from every engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fmindex/dna.hpp"
#include "kernels/registry.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {
namespace {

class EngineTestbed : public ::testing::TestWithParam<kernels::EngineSpec> {
 protected:
  static void SetUpTestSuite() {
    GenomeSimConfig genome_config;
    genome_config.length = 60000;
    genome_config.seed = 1234;
    genome_ = new std::vector<std::uint8_t>(simulate_genome(genome_config));

    ReadSimConfig read_config;
    read_config.num_reads = 600;
    read_config.read_length = 48;
    read_config.mapping_ratio = 0.7;
    read_config.seed = 99;
    records_ = new std::vector<FastqRecord>(
        reads_to_fastq(simulate_reads(*genome_, read_config)));

    pipeline_ = new Pipeline(PipelineConfig{});
    pipeline_->build_from_sequence("testbed_ref", dna_decode_string(*genome_));

    PipelineConfig reference_config;
    reference_config.engine = MappingEngine::kCpu;
    reference_sam_ = new MappingOutcome(map_records_over(
        pipeline_->index(), pipeline_->reference(), reference_config, *records_));
  }

  static void TearDownTestSuite() {
    delete reference_sam_;
    delete pipeline_;
    delete records_;
    delete genome_;
    reference_sam_ = nullptr;
    pipeline_ = nullptr;
    records_ = nullptr;
    genome_ = nullptr;
  }

  static std::vector<std::uint8_t>* genome_;
  static std::vector<FastqRecord>* records_;
  static Pipeline* pipeline_;
  static MappingOutcome* reference_sam_;
};

std::vector<std::uint8_t>* EngineTestbed::genome_ = nullptr;
std::vector<FastqRecord>* EngineTestbed::records_ = nullptr;
Pipeline* EngineTestbed::pipeline_ = nullptr;
MappingOutcome* EngineTestbed::reference_sam_ = nullptr;

TEST_P(EngineTestbed, SamIsByteIdenticalToTheReferenceEngine) {
  PipelineConfig config;
  config.engine = GetParam().engine;
  const MappingOutcome outcome = map_records_over(
      pipeline_->index(), pipeline_->reference(), config, *records_);
  EXPECT_EQ(outcome.reads, reference_sam_->reads);
  EXPECT_EQ(outcome.mapped, reference_sam_->mapped);
  EXPECT_EQ(outcome.occurrences, reference_sam_->occurrences);
  ASSERT_EQ(outcome.sam, reference_sam_->sam) << "engine " << GetParam().name;
}

TEST_P(EngineTestbed, ShardedPathMatchesSequential) {
  if (GetParam().device_model) {
    GTEST_SKIP() << "FPGA batches are not sharded by thread count";
  }
  PipelineConfig config;
  config.engine = GetParam().engine;
  config.threads = 3;
  config.shard_size = 100;
  const MappingOutcome sharded = map_records_over(
      pipeline_->index(), pipeline_->reference(), config, *records_);
  EXPECT_GT(sharded.shards, 1u);
  EXPECT_EQ(sharded.sam, reference_sam_->sam) << "engine " << GetParam().name;
}

TEST_P(EngineTestbed, TimedRunReportsEngineSeconds) {
  PipelineConfig config;
  config.engine = GetParam().engine;
  double seconds = -1.0;
  map_records_over(pipeline_->index(), pipeline_->reference(), config, *records_,
                   nullptr, &seconds);
  EXPECT_GE(seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineTestbed, ::testing::ValuesIn(kernels::engines().begin(),
                                                   kernels::engines().end()),
    [](const ::testing::TestParamInfo<kernels::EngineSpec>& info) {
      return std::string(info.param.name);
    });

TEST(EngineTestbedMappers, DerivedMappersShareBaseIndexState) {
  // The derived mappers borrow the base index's BWT/SA/seed table rather
  // than rebuilding them; intervals must match the base engine exactly.
  GenomeSimConfig genome_config;
  genome_config.length = 30000;
  genome_config.seed = 5;
  const auto genome = simulate_genome(genome_config);
  ReadSimConfig read_config;
  read_config.num_reads = 200;
  read_config.read_length = 40;
  const auto reads = simulate_reads(genome, read_config);
  const ReadBatch batch = ReadBatch::from_simulated(reads);

  const BwaverCpuMapper cpu(genome, RrrParams{15, 50});
  const VectorMapper vector(cpu.index(), [](std::span<const std::uint8_t> bwt) {
    return VectorOcc(bwt);
  });
  const PlainWaveletMapper plain(cpu.index(),
                                 [](std::span<const std::uint8_t> bwt) {
                                   return PlainWaveletOcc(bwt);
                                 });
  EXPECT_EQ(vector.index().size(), cpu.index().size());

  const auto want = cpu.map(batch);
  const auto via_vector = vector.map(batch);
  const auto via_plain = plain.map(batch);
  ASSERT_EQ(via_vector.size(), want.size());
  ASSERT_EQ(via_plain.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(via_vector[i].fwd_lo, want[i].fwd_lo) << i;
    EXPECT_EQ(via_vector[i].fwd_hi, want[i].fwd_hi) << i;
    EXPECT_EQ(via_vector[i].rev_lo, want[i].rev_lo) << i;
    EXPECT_EQ(via_vector[i].rev_hi, want[i].rev_hi) << i;
    EXPECT_EQ(via_plain[i].fwd_lo, want[i].fwd_lo) << i;
    EXPECT_EQ(via_plain[i].fwd_hi, want[i].fwd_hi) << i;
  }
}

}  // namespace
}  // namespace bwaver
