#include "mapper/staged_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/genome_sim.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

class StagedMapperTest : public ::testing::Test {
 protected:
  StagedMapperTest() {
    GenomeSimConfig config;
    config.length = 50000;
    config.seed = 600;
    genome_ = simulate_genome(config);
    index_ = std::make_unique<FmIndex<RrrWaveletOcc>>(
        genome_, [](std::span<const std::uint8_t> bwt) {
          return RrrWaveletOcc(bwt, RrrParams{15, 50});
        });

    // Reads with 0, 1 and 2 substitutions plus pure-random ones.
    Xoshiro256 rng(601);
    constexpr unsigned kLength = 48;
    for (unsigned mutations = 0; mutations <= 2; ++mutations) {
      for (int n = 0; n < 30; ++n) {
        const std::size_t origin = rng.below(genome_.size() - kLength);
        std::vector<std::uint8_t> read(genome_.begin() + origin,
                                       genome_.begin() + origin + kLength);
        // Distinct positions so the distance is exactly `mutations`.
        for (unsigned m = 0; m < mutations; ++m) {
          const std::size_t at = 5 + m * 17;
          read[at] = static_cast<std::uint8_t>((read[at] + 1 + rng.below(3)) & 3);
        }
        batch_.add(read);
        expected_stage_.push_back(mutations);
        origins_.push_back(static_cast<std::uint32_t>(origin));
      }
    }
    for (int n = 0; n < 20; ++n) {
      std::vector<std::uint8_t> read(kLength);
      for (auto& base : read) base = static_cast<std::uint8_t>(rng.below(4));
      batch_.add(read);
      expected_stage_.push_back(StagedReadResult::kUnaligned);
      origins_.push_back(0);
    }
  }

  std::vector<std::uint8_t> genome_;
  std::unique_ptr<FmIndex<RrrWaveletOcc>> index_;
  ReadBatch batch_;
  std::vector<std::uint8_t> expected_stage_;
  std::vector<std::uint32_t> origins_;
};

TEST_F(StagedMapperTest, ReadsAlignAtTheirMutationStage) {
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  const auto results = mapper.map(batch_, &report);
  ASSERT_EQ(results.size(), batch_.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // A mutated read could by chance match elsewhere with fewer mismatches,
    // so the aligned stage is at most the mutation count.
    if (expected_stage_[i] == StagedReadResult::kUnaligned) {
      EXPECT_EQ(results[i].stage, StagedReadResult::kUnaligned) << "read " << i;
    } else {
      ASSERT_NE(results[i].stage, StagedReadResult::kUnaligned) << "read " << i;
      EXPECT_LE(results[i].stage, expected_stage_[i]) << "read " << i;
      // The true origin must be among the reported loci when the stage
      // equals the mutation count.
      if (results[i].stage == expected_stage_[i]) {
        EXPECT_TRUE(std::find(results[i].positions.begin(), results[i].positions.end(),
                              origins_[i]) != results[i].positions.end())
            << "read " << i;
      }
    }
  }
}

TEST_F(StagedMapperTest, StageReportsAccountAllReads) {
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  mapper.map(batch_, &report);
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.stages[0].reads_in, batch_.size());
  for (std::size_t s = 1; s < report.stages.size(); ++s) {
    EXPECT_EQ(report.stages[s].reads_in,
              report.stages[s - 1].reads_in - report.stages[s - 1].reads_aligned);
    EXPECT_GT(report.stages[s].reconfigure_seconds, 0.0);
  }
  // Roughly 30 reads align per stage (some mutated reads luck into earlier
  // stages, so the exact split varies).
  EXPECT_GE(report.stages[0].reads_aligned, 28u);
  EXPECT_GT(report.total_seconds(), 0.0);
}

TEST_F(StagedMapperTest, LaterStagesCostMoreStepsPerRead) {
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  mapper.map(batch_, &report);
  const auto per_read = [](const StageReport& stage) {
    return stage.reads_in == 0 ? 0.0
                               : static_cast<double>(stage.steps_executed) /
                                     static_cast<double>(stage.reads_in);
  };
  EXPECT_GT(per_read(report.stages[1]), per_read(report.stages[0]));
  EXPECT_GT(per_read(report.stages[2]), per_read(report.stages[1]));
}

TEST_F(StagedMapperTest, SoftwareComparatorMatchesFpgaModel) {
  const StagedFpgaMapper fpga(*index_);
  const auto hw = fpga.map(batch_);
  double seconds = 0.0;
  const auto sw = approx_map_batch(*index_, batch_, 2, 2, &seconds);
  ASSERT_EQ(hw.size(), sw.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    ASSERT_EQ(hw[i].stage, sw[i].stage) << i;
    auto hw_pos = hw[i].positions;
    auto sw_pos = sw[i].positions;
    std::sort(hw_pos.begin(), hw_pos.end());
    std::sort(sw_pos.begin(), sw_pos.end());
    ASSERT_EQ(hw_pos, sw_pos) << i;
  }
  EXPECT_GT(seconds, 0.0);
}

TEST_F(StagedMapperTest, ExactOnlyConfigurationSkipsLaterStages) {
  const StagedFpgaMapper mapper(*index_, DeviceSpec{}, 0);
  StagedMapReport report;
  const auto results = mapper.map(batch_, &report);
  EXPECT_EQ(report.stages.size(), 1u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].stage != StagedReadResult::kUnaligned) {
      EXPECT_EQ(results[i].stage, 0);
    }
  }
}

TEST_F(StagedMapperTest, SchemeModeIsByteIdenticalToBranchMode) {
  const BidirFmIndex<RrrWaveletOcc> bidir(
      *index_, genome_, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  const StagedFpgaMapper branch(*index_);
  const StagedFpgaMapper scheme(*index_, DeviceSpec{}, 2, ApproxMode::kScheme,
                                &bidir);
  StagedMapReport branch_report, scheme_report;
  const auto branch_results = branch.map(batch_, &branch_report);
  const auto scheme_results = scheme.map(batch_, &scheme_report);
  ASSERT_EQ(branch_results.size(), scheme_results.size());
  for (std::size_t i = 0; i < branch_results.size(); ++i) {
    ASSERT_EQ(branch_results[i].stage, scheme_results[i].stage) << "read " << i;
    EXPECT_EQ(branch_results[i].reverse_strand, scheme_results[i].reverse_strand)
        << "read " << i;
    // Not just the same set: byte-identical vectors, thanks to the
    // canonical per-strand ordering both modes apply.
    ASSERT_EQ(branch_results[i].positions, scheme_results[i].positions)
        << "read " << i;
  }
  // Anchored schemes must beat branch-everywhere on executed steps in the
  // mismatch stages (the exact stage is shared).
  for (std::size_t s = 1; s < branch_report.stages.size(); ++s) {
    EXPECT_LT(scheme_report.stages[s].steps_executed,
              branch_report.stages[s].steps_executed)
        << "stage " << s;
  }
}

TEST_F(StagedMapperTest, SchemeComparatorMatchesBranchComparator) {
  const BidirFmIndex<RrrWaveletOcc> bidir(
      *index_, genome_, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  const auto branch = approx_map_batch(*index_, batch_, 2, 2);
  const auto scheme = approx_map_batch(*index_, batch_, 2, 2, nullptr,
                                       ApproxMode::kScheme, &bidir);
  ASSERT_EQ(branch.size(), scheme.size());
  for (std::size_t i = 0; i < branch.size(); ++i) {
    ASSERT_EQ(branch[i].stage, scheme[i].stage) << i;
    ASSERT_EQ(branch[i].positions, scheme[i].positions) << i;
  }
}

TEST(StagedMapper, HitCapTruncatesAndCountsReads) {
  // Plant three DISTINCT 1-mismatch neighbors of a read in the genome
  // (different mutated positions => different strings => separate SA
  // intervals at the 1-mismatch stratum), so a 1-hit cap must truncate.
  Xoshiro256 rng(700);
  std::vector<std::uint8_t> read(20);
  for (auto& base : read) base = static_cast<std::uint8_t>(rng.below(4));
  std::vector<std::uint8_t> genome;
  for (const std::size_t at : {std::size_t{3}, std::size_t{10}, std::size_t{15}}) {
    std::vector<std::uint8_t> neighbor = read;
    neighbor[at] = static_cast<std::uint8_t>((neighbor[at] + 1) & 3);
    genome.insert(genome.end(), neighbor.begin(), neighbor.end());
    for (int j = 0; j < 50; ++j) {
      genome.push_back(static_cast<std::uint8_t>(rng.below(4)));
    }
  }
  const FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
  ReadBatch batch;
  batch.add(read);

  const StagedFpgaMapper uncapped(index);
  StagedMapReport full_report;
  const auto full = uncapped.map(batch, &full_report);
  ASSERT_EQ(full[0].stage, 1);
  ASSERT_GE(full[0].positions.size(), 3u);
  for (const auto& stage : full_report.stages) {
    EXPECT_EQ(stage.truncated_reads, 0u);
  }

  const StagedFpgaMapper capped(index, DeviceSpec{}, 2, ApproxMode::kBranch,
                                nullptr, /*hit_cap=*/1);
  StagedMapReport report;
  const auto results = capped.map(batch, &report);
  // Stage assignment is unaffected; only the loci list shrinks.
  EXPECT_EQ(results[0].stage, full[0].stage);
  EXPECT_LT(results[0].positions.size(), full[0].positions.size());
  std::uint64_t truncated = 0;
  for (const auto& stage : report.stages) truncated += stage.truncated_reads;
  EXPECT_EQ(truncated, 1u);
}

TEST_F(StagedMapperTest, ApproxCountersMoveUnderAmbientMetrics) {
  obs::MetricsRegistry registry;
  const obs::ScopedObsContext scope(obs::ObsContext{nullptr, 0, &registry});
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  mapper.map(batch_, &report);

  std::uint64_t expected_steps = 0, expected_pruned = 0, expected_hits = 0;
  for (std::size_t s = 1; s < report.stages.size(); ++s) {
    expected_steps += report.stages[s].steps_executed;
    expected_pruned += report.stages[s].branches_pruned;
    expected_hits += report.stages[s].hits;
  }
  const obs::Labels labels{{"approx_mode", "branch"}};
  EXPECT_GT(registry.counter("bwaver_approx_steps_total", "", labels).value(), 0u);
  EXPECT_EQ(registry.counter("bwaver_approx_pruned_total", "", labels).value(),
            expected_pruned);
  EXPECT_EQ(registry.counter("bwaver_approx_hits_total", "", labels).value(),
            expected_hits);
}

TEST(StagedMapper, RejectsMoreThanTwoMismatches) {
  GenomeSimConfig config;
  config.length = 1000;
  const auto genome = simulate_genome(config);
  const FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
  EXPECT_THROW(StagedFpgaMapper(index, DeviceSpec{}, 3), std::invalid_argument);
}

TEST(StagedMapper, SchemeModeRequiresMatchingBidirIndex) {
  GenomeSimConfig config;
  config.length = 1000;
  const auto genome = simulate_genome(config);
  const auto builder = [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  };
  const FmIndex<RrrWaveletOcc> index(genome, builder);
  EXPECT_THROW(
      StagedFpgaMapper(index, DeviceSpec{}, 2, ApproxMode::kScheme, nullptr),
      std::invalid_argument);
  // A bidirectional index over a DIFFERENT forward index is rejected too.
  const FmIndex<RrrWaveletOcc> other(genome, builder);
  const BidirFmIndex<RrrWaveletOcc> other_bidir(other, genome, builder);
  EXPECT_THROW(
      StagedFpgaMapper(index, DeviceSpec{}, 2, ApproxMode::kScheme, &other_bidir),
      std::invalid_argument);
}

}  // namespace
}  // namespace bwaver
