#include "mapper/staged_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/genome_sim.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

class StagedMapperTest : public ::testing::Test {
 protected:
  StagedMapperTest() {
    GenomeSimConfig config;
    config.length = 50000;
    config.seed = 600;
    genome_ = simulate_genome(config);
    index_ = std::make_unique<FmIndex<RrrWaveletOcc>>(
        genome_, [](std::span<const std::uint8_t> bwt) {
          return RrrWaveletOcc(bwt, RrrParams{15, 50});
        });

    // Reads with 0, 1 and 2 substitutions plus pure-random ones.
    Xoshiro256 rng(601);
    constexpr unsigned kLength = 48;
    for (unsigned mutations = 0; mutations <= 2; ++mutations) {
      for (int n = 0; n < 30; ++n) {
        const std::size_t origin = rng.below(genome_.size() - kLength);
        std::vector<std::uint8_t> read(genome_.begin() + origin,
                                       genome_.begin() + origin + kLength);
        // Distinct positions so the distance is exactly `mutations`.
        for (unsigned m = 0; m < mutations; ++m) {
          const std::size_t at = 5 + m * 17;
          read[at] = static_cast<std::uint8_t>((read[at] + 1 + rng.below(3)) & 3);
        }
        batch_.add(read);
        expected_stage_.push_back(mutations);
        origins_.push_back(static_cast<std::uint32_t>(origin));
      }
    }
    for (int n = 0; n < 20; ++n) {
      std::vector<std::uint8_t> read(kLength);
      for (auto& base : read) base = static_cast<std::uint8_t>(rng.below(4));
      batch_.add(read);
      expected_stage_.push_back(StagedReadResult::kUnaligned);
      origins_.push_back(0);
    }
  }

  std::vector<std::uint8_t> genome_;
  std::unique_ptr<FmIndex<RrrWaveletOcc>> index_;
  ReadBatch batch_;
  std::vector<std::uint8_t> expected_stage_;
  std::vector<std::uint32_t> origins_;
};

TEST_F(StagedMapperTest, ReadsAlignAtTheirMutationStage) {
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  const auto results = mapper.map(batch_, &report);
  ASSERT_EQ(results.size(), batch_.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // A mutated read could by chance match elsewhere with fewer mismatches,
    // so the aligned stage is at most the mutation count.
    if (expected_stage_[i] == StagedReadResult::kUnaligned) {
      EXPECT_EQ(results[i].stage, StagedReadResult::kUnaligned) << "read " << i;
    } else {
      ASSERT_NE(results[i].stage, StagedReadResult::kUnaligned) << "read " << i;
      EXPECT_LE(results[i].stage, expected_stage_[i]) << "read " << i;
      // The true origin must be among the reported loci when the stage
      // equals the mutation count.
      if (results[i].stage == expected_stage_[i]) {
        EXPECT_TRUE(std::find(results[i].positions.begin(), results[i].positions.end(),
                              origins_[i]) != results[i].positions.end())
            << "read " << i;
      }
    }
  }
}

TEST_F(StagedMapperTest, StageReportsAccountAllReads) {
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  mapper.map(batch_, &report);
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.stages[0].reads_in, batch_.size());
  for (std::size_t s = 1; s < report.stages.size(); ++s) {
    EXPECT_EQ(report.stages[s].reads_in,
              report.stages[s - 1].reads_in - report.stages[s - 1].reads_aligned);
    EXPECT_GT(report.stages[s].reconfigure_seconds, 0.0);
  }
  // Roughly 30 reads align per stage (some mutated reads luck into earlier
  // stages, so the exact split varies).
  EXPECT_GE(report.stages[0].reads_aligned, 28u);
  EXPECT_GT(report.total_seconds(), 0.0);
}

TEST_F(StagedMapperTest, LaterStagesCostMoreStepsPerRead) {
  const StagedFpgaMapper mapper(*index_);
  StagedMapReport report;
  mapper.map(batch_, &report);
  const auto per_read = [](const StageReport& stage) {
    return stage.reads_in == 0 ? 0.0
                               : static_cast<double>(stage.steps_executed) /
                                     static_cast<double>(stage.reads_in);
  };
  EXPECT_GT(per_read(report.stages[1]), per_read(report.stages[0]));
  EXPECT_GT(per_read(report.stages[2]), per_read(report.stages[1]));
}

TEST_F(StagedMapperTest, SoftwareComparatorMatchesFpgaModel) {
  const StagedFpgaMapper fpga(*index_);
  const auto hw = fpga.map(batch_);
  double seconds = 0.0;
  const auto sw = approx_map_batch(*index_, batch_, 2, 2, &seconds);
  ASSERT_EQ(hw.size(), sw.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    ASSERT_EQ(hw[i].stage, sw[i].stage) << i;
    auto hw_pos = hw[i].positions;
    auto sw_pos = sw[i].positions;
    std::sort(hw_pos.begin(), hw_pos.end());
    std::sort(sw_pos.begin(), sw_pos.end());
    ASSERT_EQ(hw_pos, sw_pos) << i;
  }
  EXPECT_GT(seconds, 0.0);
}

TEST_F(StagedMapperTest, ExactOnlyConfigurationSkipsLaterStages) {
  const StagedFpgaMapper mapper(*index_, DeviceSpec{}, 0);
  StagedMapReport report;
  const auto results = mapper.map(batch_, &report);
  EXPECT_EQ(report.stages.size(), 1u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].stage != StagedReadResult::kUnaligned) {
      EXPECT_EQ(results[i].stage, 0);
    }
  }
}

TEST(StagedMapper, RejectsMoreThanTwoMismatches) {
  GenomeSimConfig config;
  config.length = 1000;
  const auto genome = simulate_genome(config);
  const FmIndex<RrrWaveletOcc> index(genome, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
  EXPECT_THROW(StagedFpgaMapper(index, DeviceSpec{}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace bwaver
