#include "fmindex/suffix_array.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bwaver {
namespace {

void expect_valid_suffix_array(std::span<const std::uint8_t> text,
                               std::span<const std::uint32_t> sa) {
  const std::size_t n = text.size();
  ASSERT_EQ(sa.size(), n + 1);
  ASSERT_EQ(sa[0], n);  // sentinel suffix is always smallest

  // Permutation check.
  std::vector<bool> seen(n + 1, false);
  for (std::uint32_t s : sa) {
    ASSERT_LE(s, n);
    ASSERT_FALSE(seen[s]) << "duplicate suffix index " << s;
    seen[s] = true;
  }

  // Adjacent suffixes must be strictly increasing (sentinel-terminated
  // suffixes are never equal).
  auto suffix_less = [&](std::uint32_t a, std::uint32_t b) {
    while (a < n && b < n) {
      if (text[a] != text[b]) return text[a] < text[b];
      ++a;
      ++b;
    }
    return a == n;  // shorter (sentinel-reaching) suffix is smaller
  };
  for (std::size_t i = 1; i < sa.size(); ++i) {
    ASSERT_TRUE(suffix_less(sa[i - 1], sa[i])) << "order violated at " << i;
  }
}

TEST(SuffixArray, EmptyText) {
  const auto sa = build_suffix_array({});
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0u);
}

TEST(SuffixArray, SingleCharacter) {
  const std::vector<std::uint8_t> text = {2};
  const auto sa = build_suffix_array(text);
  ASSERT_EQ(sa.size(), 2u);
  EXPECT_EQ(sa[0], 1u);
  EXPECT_EQ(sa[1], 0u);
}

TEST(SuffixArray, KnownBanannaLikeCase) {
  // "banana" over alphabet {a=0, b=1, n=2}: SA of banana$ is
  // $ a$ ana$ anana$ banana$ na$ nana$ -> 6 5 3 1 0 4 2.
  const std::vector<std::uint8_t> text = {1, 0, 2, 0, 2, 0};
  const auto sa = build_suffix_array(text, 3);
  const std::vector<std::uint32_t> expected = {6, 5, 3, 1, 0, 4, 2};
  EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, MatchesNaiveOnRandomDna) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const std::size_t size = 1 + (seed * 97) % 600;
    const auto text = testing::random_symbols(size, 4, seed + 1000);
    ASSERT_EQ(build_suffix_array(text), build_suffix_array_naive(text))
        << "seed=" << seed << " size=" << size;
  }
}

TEST(SuffixArray, AllSameCharacter) {
  for (std::size_t n : {1u, 2u, 10u, 100u, 1000u}) {
    const std::vector<std::uint8_t> text(n, 3);
    const auto sa = build_suffix_array(text);
    // Suffixes of T^n$ sort by decreasing start position.
    for (std::size_t i = 0; i <= n; ++i) {
      ASSERT_EQ(sa[i], n - i) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SuffixArray, PeriodicText) {
  std::vector<std::uint8_t> text;
  for (int i = 0; i < 200; ++i) text.push_back(static_cast<std::uint8_t>(i % 3));
  EXPECT_EQ(build_suffix_array(text), build_suffix_array_naive(text));
}

TEST(SuffixArray, FibonacciLikeText) {
  // Fibonacci words stress LMS recursion depth.
  std::vector<std::uint8_t> a = {0}, b = {0, 1};
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> next = b;
    next.insert(next.end(), a.begin(), a.end());
    a = std::move(b);
    b = std::move(next);
  }
  EXPECT_EQ(build_suffix_array(b, 2), build_suffix_array_naive(b));
}

TEST(SuffixArray, ValidOnLargerRandomInput) {
  const auto text = testing::random_symbols(50000, 4, 777);
  const auto sa = build_suffix_array(text);
  expect_valid_suffix_array(text, sa);
}

TEST(SuffixArray, ValidOnRepeatRichInput) {
  auto text = testing::random_symbols(5000, 4, 778);
  // Duplicate a large chunk to force shared LMS substrings and recursion.
  text.insert(text.end(), text.begin(), text.begin() + 2500);
  text.insert(text.end(), text.begin(), text.begin() + 2500);
  const auto sa = build_suffix_array(text);
  expect_valid_suffix_array(text, sa);
}

TEST(SuffixArray, RejectsOutOfRangeSymbols) {
  const std::vector<std::uint8_t> text = {0, 1, 4};
  EXPECT_THROW(build_suffix_array(text, 4), std::invalid_argument);
}

TEST(SuffixArray, LargerAlphabet) {
  const auto text = testing::random_symbols(2000, 100, 9);
  EXPECT_EQ(build_suffix_array(text, 100), build_suffix_array_naive(text));
}

}  // namespace
}  // namespace bwaver
