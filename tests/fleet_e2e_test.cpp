// Fleet end-to-end: real `bwaver serve` replica processes behind a real
// `bwaver router` process, all spawned from the installed binary. Checks
// the full wire path (sharded map is byte-identical to the in-process
// pipeline), failover across a SIGKILLed replica, and the router's
// Prometheus surface. The binary path is injected by CMake.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fleet/http_client.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

#ifndef BWAVER_BIN
#error "BWAVER_BIN must be defined by the build"
#endif

namespace bwaver::fleet {
namespace {

/// One spawned bwaver process with its stdout on a pipe (the startup line
/// carries the ephemeral port).
class ChildProcess {
 public:
  explicit ChildProcess(std::vector<std::string> args) {
    int fds[2];
    if (::pipe(fds) != 0) { ADD_FAILURE() << "pipe: " << std::strerror(errno); return; }
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(BWAVER_BIN));
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(BWAVER_BIN, argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
  }

  ~ChildProcess() { kill_now(); }

  /// Blocks (with a deadline) until the startup banner prints the bound
  /// port; returns 0 on failure.
  std::uint16_t wait_for_port(std::chrono::milliseconds deadline = std::chrono::seconds(20)) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      const std::size_t at = output_.find("http://127.0.0.1:");
      if (at != std::string::npos) {
        const char* digits = output_.c_str() + at + std::strlen("http://127.0.0.1:");
        const unsigned long port = std::strtoul(digits, nullptr, 10);
        if (port > 0 && port <= 65535 &&
            output_.find('/', at + std::strlen("http://127.0.0.1:")) != std::string::npos) {
          return static_cast<std::uint16_t>(port);
        }
      }
      pollfd pfd{out_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) > 0 && (pfd.revents & POLLIN) != 0) {
        char chunk[512];
        const ssize_t n = ::read(out_fd_, chunk, sizeof(chunk));
        if (n <= 0) break;  // child died
        output_.append(chunk, static_cast<std::size_t>(n));
      }
    }
    return 0;
  }

  void kill_now() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
  }

  const std::string& output() const { return output_; }
  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::string output_;
};

class FleetE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenomeSimConfig genome_config;
    genome_config.length = 20000;
    genome_config.seed = 101;
    genome_ = simulate_genome(genome_config);

    ReadSimConfig read_config;
    read_config.num_reads = 30;
    read_config.read_length = 36;
    read_config.mapping_ratio = 1.0;
    reads_ = reads_to_fastq(simulate_reads(genome_, read_config));
    fastq_ = format_fastq(reads_);

    PipelineConfig config;
    config.engine = MappingEngine::kCpu;
    Pipeline pipeline(config);
    pipeline.build_from_sequence("refA", dna_decode_string(genome_));
    expected_sam_ = pipeline.map_records(reads_).sam;
  }

  void upload_ref(std::uint16_t port) {
    FastaRecord record{"refA", dna_decode_string(genome_)};
    const std::string fasta = format_fasta(std::span<const FastaRecord>(&record, 1));
    const ClientResponse response =
        client_.request("127.0.0.1", port, "POST", "/reference?name=refA", fasta);
    ASSERT_EQ(response.status, 200) << response.body;
  }

  std::vector<std::uint8_t> genome_;
  std::vector<FastqRecord> reads_;
  std::string fastq_;
  std::string expected_sam_;
  HttpClient client_;
};

TEST_F(FleetE2eTest, RouterOverRealReplicasSurvivesSigkill) {
  ChildProcess replica_a({"serve", "--port", "0", "--engine", "cpu", "--workers", "2"});
  ChildProcess replica_b({"serve", "--port", "0", "--engine", "cpu", "--workers", "2"});
  const std::uint16_t port_a = replica_a.wait_for_port();
  const std::uint16_t port_b = replica_b.wait_for_port();
  ASSERT_NE(port_a, 0) << replica_a.output();
  ASSERT_NE(port_b, 0) << replica_b.output();
  upload_ref(port_a);
  upload_ref(port_b);

  ChildProcess router({"router",
                       "--backend", "127.0.0.1:" + std::to_string(port_a),
                       "--backend", "127.0.0.1:" + std::to_string(port_b),
                       "--port", "0", "--shard-reads", "8",
                       "--health-interval-ms", "100"});
  const std::uint16_t router_port = router.wait_for_port();
  ASSERT_NE(router_port, 0) << router.output();

  // Sharded map over two real processes == the in-process pipeline.
  ClientResponse response =
      client_.request("127.0.0.1", router_port, "POST", "/map?ref=refA", fastq_);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, expected_sam_);

  // Kill one replica the hard way. The very next request may race the
  // health probe, but failover must carry it: connection-refused attempts
  // move to the surviving ring candidate.
  replica_b.kill_now();
  response = client_.request("127.0.0.1", router_port, "POST", "/map?ref=refA", fastq_);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, expected_sam_);

  // The health loop demotes the corpse (100ms probes, 2 strikes).
  bool saw_down = false;
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!saw_down && std::chrono::steady_clock::now() < until) {
    const ClientResponse backends =
        client_.request("127.0.0.1", router_port, "GET", "/backends");
    saw_down = backends.body.find("\"up\":false") != std::string::npos;
    if (!saw_down) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(saw_down) << "SIGKILLed replica never left the ring";

  // With the fleet degraded, mapping still round-trips byte-identically.
  response = client_.request("127.0.0.1", router_port, "POST", "/map?ref=refA", fastq_);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, expected_sam_);

  // The router's Prometheus surface reflects the topology.
  const ClientResponse metrics =
      client_.request("127.0.0.1", router_port, "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("bwaver_router_backend_up"), std::string::npos);
  EXPECT_NE(metrics.body.find("bwaver_router_requests_total"), std::string::npos);
}

}  // namespace
}  // namespace bwaver::fleet
