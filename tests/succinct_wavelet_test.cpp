#include "succinct/wavelet_tree.hpp"

#include <gtest/gtest.h>

#include "succinct/rank_support.hpp"
#include "succinct/rrr_vector.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

WaveletTree<RrrVector>::Builder rrr_builder(RrrParams params = {15, 50}) {
  return [params](const BitVector& bits) { return RrrVector(bits, params); };
}

WaveletTree<PlainRankBitVector>::Builder plain_builder() {
  return [](const BitVector& bits) { return PlainRankBitVector(BitVector(bits)); };
}

template <typename BV>
typename WaveletTree<BV>::Builder make_builder();

template <>
WaveletTree<RrrVector>::Builder make_builder<RrrVector>() {
  return rrr_builder();
}
template <>
WaveletTree<PlainRankBitVector>::Builder make_builder<PlainRankBitVector>() {
  return plain_builder();
}

template <typename BV>
class WaveletTreeTyped : public ::testing::Test {};

using Backends = ::testing::Types<RrrVector, PlainRankBitVector>;
TYPED_TEST_SUITE(WaveletTreeTyped, Backends);

TYPED_TEST(WaveletTreeTyped, RankMatchesNaiveDnaAlphabet) {
  const auto symbols = testing::random_symbols(2000, 4, 101);
  const WaveletTree<TypeParam> tree(symbols, 4, make_builder<TypeParam>());
  ASSERT_EQ(tree.size(), symbols.size());
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::size_t p = 0; p <= symbols.size(); p += 13) {
      ASSERT_EQ(tree.rank(c, p), testing::naive_rank(symbols, c, p))
          << "c=" << int(c) << " p=" << p;
    }
    ASSERT_EQ(tree.rank(c, symbols.size()),
              testing::naive_rank(symbols, c, symbols.size()));
  }
}

TYPED_TEST(WaveletTreeTyped, AccessReconstructsSequence) {
  const auto symbols = testing::random_symbols(1500, 4, 103);
  const WaveletTree<TypeParam> tree(symbols, 4, make_builder<TypeParam>());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ASSERT_EQ(tree.access(i), symbols[i]) << "i=" << i;
  }
}

TYPED_TEST(WaveletTreeTyped, LargerAlphabets) {
  for (unsigned alphabet : {2u, 3u, 5u, 8u, 16u, 27u, 64u}) {
    const auto symbols = testing::random_symbols(800, alphabet, alphabet * 7);
    const WaveletTree<TypeParam> tree(symbols, alphabet, make_builder<TypeParam>());
    EXPECT_EQ(tree.num_nodes(), alphabet - 1) << "alphabet=" << alphabet;
    for (std::uint8_t c = 0; c < alphabet; ++c) {
      for (std::size_t p = 0; p <= symbols.size(); p += 97) {
        ASSERT_EQ(tree.rank(c, p), testing::naive_rank(symbols, c, p))
            << "alphabet=" << alphabet << " c=" << int(c) << " p=" << p;
      }
    }
    for (std::size_t i = 0; i < symbols.size(); i += 11) {
      ASSERT_EQ(tree.access(i), symbols[i]);
    }
  }
}

TYPED_TEST(WaveletTreeTyped, SingleSymbolRuns) {
  std::vector<std::uint8_t> symbols(500, 2);
  const WaveletTree<TypeParam> tree(symbols, 4, make_builder<TypeParam>());
  EXPECT_EQ(tree.rank(2, 500), 500u);
  EXPECT_EQ(tree.rank(0, 500), 0u);
  EXPECT_EQ(tree.rank(3, 500), 0u);
  EXPECT_EQ(tree.access(250), 2);
}

TEST(WaveletTree, LevelsIsCeilLog2Alphabet) {
  const auto symbols = testing::random_symbols(100, 4, 1);
  const WaveletTree<PlainRankBitVector> tree(symbols, 4, plain_builder());
  EXPECT_EQ(tree.levels(), 2u);
  const auto symbols8 = testing::random_symbols(100, 8, 1);
  const WaveletTree<PlainRankBitVector> tree8(symbols8, 8, plain_builder());
  EXPECT_EQ(tree8.levels(), 3u);
}

TEST(WaveletTree, RejectsBadInputs) {
  const auto symbols = testing::random_symbols(100, 4, 2);
  EXPECT_THROW(WaveletTree<PlainRankBitVector>(symbols, 1, plain_builder()),
               std::invalid_argument);
  std::vector<std::uint8_t> bad = {0, 1, 2, 4};  // 4 outside alphabet of size 4
  EXPECT_THROW(WaveletTree<PlainRankBitVector>(bad, 4, plain_builder()),
               std::invalid_argument);
}

TEST(WaveletTree, DnaTreeHasThreeNodes) {
  // Balanced tree over {A,C,G,T}: root + two children.
  const auto symbols = testing::random_symbols(1000, 4, 3);
  const WaveletTree<RrrVector> tree(symbols, 4, rrr_builder());
  EXPECT_EQ(tree.num_nodes(), 3u);
}

TEST(WaveletTree, SizeInBytesGrowsWithInput) {
  const auto small = testing::random_symbols(1000, 4, 4);
  const auto large = testing::random_symbols(100000, 4, 4);
  const WaveletTree<RrrVector> tree_small(small, 4, rrr_builder());
  const WaveletTree<RrrVector> tree_large(large, 4, rrr_builder());
  EXPECT_GT(tree_large.size_in_bytes(), tree_small.size_in_bytes());
}

TEST(WaveletTree, RrrAndPlainBackendsAgree) {
  const auto symbols = testing::random_symbols(5000, 4, 5);
  const WaveletTree<RrrVector> rrr(symbols, 4, rrr_builder());
  const WaveletTree<PlainRankBitVector> plain(symbols, 4, plain_builder());
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::size_t p = 0; p <= symbols.size(); p += 37) {
      ASSERT_EQ(rrr.rank(c, p), plain.rank(c, p));
    }
  }
}

TEST(WaveletTree, EmptySequence) {
  std::vector<std::uint8_t> empty;
  const WaveletTree<PlainRankBitVector> tree(empty, 4, plain_builder());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.rank(0, 0), 0u);
}

}  // namespace
}  // namespace bwaver
