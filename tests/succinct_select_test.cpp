// Select support across the succinct stack: plain rank directory, RRR
// vector, and wavelet tree. Oracle: linear scan.
#include <gtest/gtest.h>

#include "succinct/rank_support.hpp"
#include "succinct/rrr_vector.hpp"
#include "succinct/wavelet_tree.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

std::vector<std::size_t> naive_positions(const BitVector& bv, bool bit) {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < bv.size(); ++i) {
    if (bv.get(i) == bit) positions.push_back(i);
  }
  return positions;
}

struct SelectCase {
  std::size_t size;
  double density;
};

class PlainSelect : public ::testing::TestWithParam<SelectCase> {};

TEST_P(PlainSelect, MatchesLinearOracle) {
  const auto [size, density] = GetParam();
  const BitVector bv = testing::random_bits(size, density, size * 7 + 3);
  const RankSupport rank(bv);
  const auto ones = naive_positions(bv, true);
  const auto zeros = naive_positions(bv, false);
  for (std::size_t k = 0; k < ones.size(); ++k) {
    ASSERT_EQ(rank.select1(k), ones[k]) << "k=" << k;
  }
  for (std::size_t k = 0; k < zeros.size(); ++k) {
    ASSERT_EQ(rank.select0(k), zeros[k]) << "k=" << k;
  }
  EXPECT_THROW(rank.select1(ones.size()), std::out_of_range);
  EXPECT_THROW(rank.select0(zeros.size()), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PlainSelect,
    ::testing::Values(SelectCase{1, 1.0}, SelectCase{64, 0.5}, SelectCase{65, 0.5},
                      SelectCase{511, 0.9}, SelectCase{512, 0.1},
                      SelectCase{513, 0.5}, SelectCase{5000, 0.01},
                      SelectCase{5000, 0.99}, SelectCase{5000, 0.5}));

TEST(PlainSelect, Select0SkipsWordPadding) {
  // A short all-ones vector: the padding bits of the final word are zeros
  // at the storage level and must never be selected.
  BitVector bv(10, true);
  const RankSupport rank(bv);
  EXPECT_THROW(rank.select0(0), std::out_of_range);
}

class RrrSelect : public ::testing::TestWithParam<SelectCase> {};

TEST_P(RrrSelect, MatchesLinearOracle) {
  const auto [size, density] = GetParam();
  const BitVector bv = testing::random_bits(size, density, size * 13 + 5);
  for (const RrrParams params : {RrrParams{15, 50}, RrrParams{7, 4}}) {
    const RrrVector rrr(bv, params);
    const auto ones = naive_positions(bv, true);
    const auto zeros = naive_positions(bv, false);
    for (std::size_t k = 0; k < ones.size(); k += 3) {
      ASSERT_EQ(rrr.select1(k), ones[k]) << "k=" << k << " b=" << params.block_bits;
    }
    for (std::size_t k = 0; k < zeros.size(); k += 3) {
      ASSERT_EQ(rrr.select0(k), zeros[k]) << "k=" << k << " b=" << params.block_bits;
    }
    if (!ones.empty()) {
      ASSERT_EQ(rrr.select1(ones.size() - 1), ones.back());
    }
    EXPECT_THROW(rrr.select1(ones.size()), std::out_of_range);
    EXPECT_THROW(rrr.select0(zeros.size()), std::out_of_range);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RrrSelect,
    ::testing::Values(SelectCase{1, 1.0}, SelectCase{14, 0.5}, SelectCase{15, 0.5},
                      SelectCase{750, 0.5},  // exactly one superblock at b=15,sf=50
                      SelectCase{751, 0.5}, SelectCase{3000, 0.05},
                      SelectCase{3000, 0.95}, SelectCase{3000, 0.5}));

TEST(RrrSelect, RankSelectInverse) {
  const BitVector bv = testing::random_bits(10000, 0.3, 77);
  const RrrVector rrr(bv, RrrParams{15, 50});
  for (std::size_t k = 0; k < rrr.ones(); k += 17) {
    const std::size_t pos = rrr.select1(k);
    ASSERT_TRUE(bv.get(pos));
    ASSERT_EQ(rrr.rank1(pos), k);
  }
}

TEST(WaveletSelect, InverseOfRankOverDna) {
  const auto symbols = testing::random_symbols(3000, 4, 88);
  const WaveletTree<RrrVector> tree(
      symbols, 4, [](const BitVector& bits) { return RrrVector(bits, {15, 50}); });
  for (std::uint8_t c = 0; c < 4; ++c) {
    const std::size_t occurrences = tree.rank(c, symbols.size());
    for (std::size_t k = 0; k < occurrences; k += 7) {
      const std::size_t pos = tree.select(c, k);
      ASSERT_EQ(symbols[pos], c) << "c=" << int(c) << " k=" << k;
      ASSERT_EQ(tree.rank(c, pos), k);
    }
    EXPECT_THROW(tree.select(c, occurrences), std::out_of_range);
  }
}

TEST(WaveletSelect, WorksOnPlainBackendAndLargerAlphabet) {
  const auto symbols = testing::random_symbols(2000, 11, 89);
  const WaveletTree<PlainRankBitVector> tree(
      symbols, 11,
      [](const BitVector& bits) { return PlainRankBitVector(BitVector(bits)); });
  for (std::uint8_t c = 0; c < 11; ++c) {
    const std::size_t occurrences = tree.rank(c, symbols.size());
    for (std::size_t k = 0; k < occurrences; k += 13) {
      ASSERT_EQ(symbols[tree.select(c, k)], c);
    }
  }
}

TEST(WaveletSelect, FirstAndLastOccurrence) {
  std::vector<std::uint8_t> symbols = {3, 0, 1, 3, 2, 3, 0};
  const WaveletTree<PlainRankBitVector> tree(
      symbols, 4,
      [](const BitVector& bits) { return PlainRankBitVector(BitVector(bits)); });
  EXPECT_EQ(tree.select(3, 0), 0u);
  EXPECT_EQ(tree.select(3, 1), 3u);
  EXPECT_EQ(tree.select(3, 2), 5u);
  EXPECT_EQ(tree.select(0, 1), 6u);
  EXPECT_EQ(tree.select(2, 0), 4u);
}

}  // namespace
}  // namespace bwaver
