#include "io/streaming.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/gzip.hpp"

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_streaming_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& content,
                    bool gzipped = false) {
    const std::string path = (dir_ / name).string();
    if (gzipped) {
      write_file(path, gzip_compress(std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(content.data()),
                           content.size())));
    } else {
      write_file(path, content);
    }
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(StreamingTest, LineSourceSplitsLines) {
  const auto path = write("lines.txt", "one\ntwo\r\nthree");
  LineSource source(path);
  std::string line;
  ASSERT_TRUE(source.next_line(line));
  EXPECT_EQ(line, "one");
  ASSERT_TRUE(source.next_line(line));
  EXPECT_EQ(line, "two");
  ASSERT_TRUE(source.next_line(line));
  EXPECT_EQ(line, "three");  // no trailing newline
  EXPECT_FALSE(source.next_line(line));
}

TEST_F(StreamingTest, LineSourceHandlesLinesAcrossChunkBoundaries) {
  // One very long line that spans multiple 64 KiB refills.
  std::string content(200'000, 'x');
  content += "\nshort\n";
  const auto path = write("long.txt", content);
  LineSource source(path);
  std::string line;
  ASSERT_TRUE(source.next_line(line));
  EXPECT_EQ(line.size(), 200'000u);
  ASSERT_TRUE(source.next_line(line));
  EXPECT_EQ(line, "short");
  EXPECT_FALSE(source.next_line(line));
}

TEST_F(StreamingTest, LineSourceMissingFileThrows) {
  EXPECT_THROW(LineSource((dir_ / "missing.txt").string()), IoError);
}

TEST_F(StreamingTest, FastqStreamingMatchesWholeFileParser) {
  std::string content;
  for (int i = 0; i < 1000; ++i) {
    content += "@read_" + std::to_string(i) + "\nACGTACGT\n+\nIIIIIIII\n";
  }
  const auto path = write("reads.fq", content);

  FastqStreamReader reader(path);
  const auto whole = parse_fastq(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(content.data()), content.size()));

  FastqRecord record;
  std::size_t i = 0;
  while (reader.next(record)) {
    ASSERT_LT(i, whole.size());
    ASSERT_EQ(record.name, whole[i].name);
    ASSERT_EQ(record.sequence, whole[i].sequence);
    ASSERT_EQ(record.quality, whole[i].quality);
    ++i;
  }
  EXPECT_EQ(i, whole.size());
  EXPECT_EQ(reader.records_read(), 1000u);
}

TEST_F(StreamingTest, FastqStreamingFromGzip) {
  const auto path = write("reads.fq.gz", "@a\nACGT\n+\nIIII\n@b\nGG\n+\n!!\n", true);
  FastqStreamReader reader(path);
  FastqRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.name, "a");
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.sequence, "GG");
  EXPECT_FALSE(reader.next(record));
}

TEST_F(StreamingTest, FastqStreamingMalformedThrows) {
  const auto path = write("bad.fq", "@a\nACGT\nIIII\n");  // missing '+'
  FastqStreamReader reader(path);
  FastqRecord record;
  EXPECT_THROW(reader.next(record), IoError);
}

TEST_F(StreamingTest, FastqStreamingTruncatedThrows) {
  const auto path = write("trunc.fq", "@a\nACGT\n+\n");
  FastqStreamReader reader(path);
  FastqRecord record;
  EXPECT_THROW(reader.next(record), IoError);
}

TEST_F(StreamingTest, FastaStreamingMultiRecord) {
  const auto path = write("ref.fa", ">chr1 desc\nACGT\nAC\n>chr2\nTTTT\n");
  FastaStreamReader reader(path);
  FastaRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.name, "chr1 desc");
  EXPECT_EQ(record.sequence, "ACGTAC");
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.name, "chr2");
  EXPECT_EQ(record.sequence, "TTTT");
  EXPECT_FALSE(reader.next(record));
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST_F(StreamingTest, FastaStreamingGzip) {
  const auto path = write("ref.fa.gz", ">g\nACGTACGT\n", true);
  FastaStreamReader reader(path);
  FastaRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.sequence, "ACGTACGT");
}

TEST_F(StreamingTest, FastaStreamingDataBeforeHeaderThrows) {
  const auto path = write("bad.fa", "ACGT\n>late\nAC\n");
  FastaStreamReader reader(path);
  FastaRecord record;
  EXPECT_THROW(reader.next(record), IoError);
}

TEST_F(StreamingTest, FastaStreamingEmptySequenceThrows) {
  const auto path = write("empty.fa", ">a\n>b\nAC\n");
  FastaStreamReader reader(path);
  FastaRecord record;
  EXPECT_THROW(reader.next(record), IoError);
}

TEST_F(StreamingTest, EmptyFileYieldsNothing) {
  const auto path = write("nothing.fq", "");
  FastqStreamReader reader(path);
  FastqRecord record;
  EXPECT_FALSE(reader.next(record));
}

}  // namespace
}  // namespace bwaver
