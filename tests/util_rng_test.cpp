#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace bwaver {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Xoshiro256 rng(11);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.below(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(17);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
  }
}

TEST(Rng, WorksWithStdDistributionInterface) {
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace bwaver
