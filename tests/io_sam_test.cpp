#include "io/sam.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bwaver {
namespace {

TEST(Sam, HeaderContainsReference) {
  const std::string sam = format_sam("chrX", 12345, {});
  EXPECT_NE(sam.find("@HD\tVN:1.6"), std::string::npos);
  EXPECT_NE(sam.find("@SQ\tSN:chrX\tLN:12345"), std::string::npos);
  EXPECT_NE(sam.find("@PG\tID:bwaver"), std::string::npos);
}

TEST(Sam, MappedForwardAlignmentLine) {
  std::vector<SamAlignment> alignments = {
      {"read1", false, "ref", 99, 50, true}};
  const std::string sam = format_sam("ref", 1000, alignments);
  EXPECT_NE(sam.find("read1\t0\tref\t100\t60\t50M"), std::string::npos)
      << sam;  // position converts to 1-based
}

TEST(Sam, ReverseStrandSetsFlag16) {
  std::vector<SamAlignment> alignments = {{"r", true, "ref", 0, 35, true}};
  const std::string sam = format_sam("ref", 1000, alignments);
  EXPECT_NE(sam.find("r\t16\tref\t1\t60\t35M"), std::string::npos) << sam;
}

TEST(Sam, UnmappedReadUsesFlag4AndStars) {
  std::vector<SamAlignment> alignments = {{"lost", false, "ref", 0, 35, false}};
  const std::string sam = format_sam("ref", 1000, alignments);
  EXPECT_NE(sam.find("lost\t4\t*\t0\t0\t*"), std::string::npos) << sam;
}

TEST(Sam, OneLinePerAlignment) {
  std::vector<SamAlignment> alignments = {
      {"a", false, "ref", 1, 10, true},
      {"a", false, "ref", 50, 10, true},
      {"b", true, "ref", 2, 10, true},
  };
  const std::string sam = format_sam("ref", 100, alignments);
  std::istringstream stream(sam);
  std::string line;
  int alignment_lines = 0;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] != '@') ++alignment_lines;
  }
  EXPECT_EQ(alignment_lines, 3);
}

}  // namespace
}  // namespace bwaver
