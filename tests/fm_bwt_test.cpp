#include "fmindex/bwt.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fmindex/dna.hpp"
#include "fmindex/suffix_array.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

/// Oracle: BWT via explicit rotation sort. Returns the full (n+1)-column
/// with 4 marking the sentinel.
std::vector<std::uint8_t> naive_bwt_column(std::span<const std::uint8_t> text) {
  const std::size_t n = text.size();
  std::vector<std::uint8_t> padded(text.begin(), text.end());
  padded.push_back(4);  // sentinel, smaller than nothing here...
  // Build rotations of text+$ with $ encoded as a value smaller than all:
  // shift symbols by +1 and use 0 for $.
  std::vector<std::uint8_t> shifted(n + 1);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = static_cast<std::uint8_t>(text[i] + 1);
  shifted[n] = 0;

  std::vector<std::uint32_t> rotation(n + 1);
  for (std::size_t i = 0; i <= n; ++i) rotation[i] = static_cast<std::uint32_t>(i);
  std::sort(rotation.begin(), rotation.end(), [&](std::uint32_t a, std::uint32_t b) {
    for (std::size_t k = 0; k <= n; ++k) {
      const std::uint8_t ca = shifted[(a + k) % (n + 1)];
      const std::uint8_t cb = shifted[(b + k) % (n + 1)];
      if (ca != cb) return ca < cb;
    }
    return false;
  });

  std::vector<std::uint8_t> column(n + 1);
  for (std::size_t row = 0; row <= n; ++row) {
    const std::uint8_t s = shifted[(rotation[row] + n) % (n + 1)];
    column[row] = s == 0 ? 4 : static_cast<std::uint8_t>(s - 1);
  }
  return column;
}

TEST(Bwt, MatchesRotationSortOracle) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::size_t size = 1 + (seed * 37) % 300;
    const auto text = testing::random_symbols(size, 4, seed + 50);
    const Bwt bwt = build_bwt(text);
    const auto oracle = naive_bwt_column(text);
    ASSERT_EQ(bwt.symbols.size(), size);
    for (std::size_t row = 0; row <= size; ++row) {
      ASSERT_EQ(bwt.column(row), oracle[row]) << "seed=" << seed << " row=" << row;
    }
  }
}

TEST(Bwt, KnownMississippiLikeExample) {
  // Text "ACGACG": verify squeezed symbols + primary against the oracle.
  const auto text = dna_encode_string("ACGACG");
  const Bwt bwt = build_bwt(text);
  const auto oracle = naive_bwt_column(text);
  for (std::size_t row = 0; row < oracle.size(); ++row) {
    EXPECT_EQ(bwt.column(row), oracle[row]);
  }
  EXPECT_EQ(bwt.text_length, 6u);
}

TEST(Bwt, PrimaryIsSentinelRow) {
  const auto text = testing::random_symbols(500, 4, 3);
  const auto sa = build_suffix_array(text);
  const Bwt bwt = build_bwt(text, sa);
  // The primary row is where SA == 0 (suffix starting at 0, preceded by $).
  std::size_t expected = 0;
  for (std::size_t row = 0; row < sa.size(); ++row) {
    if (sa[row] == 0) expected = row;
  }
  EXPECT_EQ(bwt.primary, expected);
  EXPECT_EQ(bwt.column(bwt.primary), 4);
}

TEST(Bwt, RejectsMismatchedSaSize) {
  const auto text = testing::random_symbols(100, 4, 4);
  const std::vector<std::uint32_t> bad_sa(50);
  EXPECT_THROW(build_bwt(text, bad_sa), std::invalid_argument);
}

class BwtRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BwtRoundTrip, InverseBwtRecoversText) {
  const std::size_t size = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto text = testing::random_symbols(size, 4, seed * 11 + size);
    const Bwt bwt = build_bwt(text);
    ASSERT_EQ(inverse_bwt(bwt), text) << "size=" << size << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BwtRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 10u, 63u, 64u, 65u, 255u,
                                           1000u, 10000u));

TEST(Bwt, RoundTripOnRepeatRichText) {
  auto text = testing::random_symbols(2000, 4, 60);
  text.insert(text.end(), text.begin(), text.begin() + 1000);
  const Bwt bwt = build_bwt(text);
  EXPECT_EQ(inverse_bwt(bwt), text);
}

TEST(Bwt, RoundTripOnHomopolymer) {
  const std::vector<std::uint8_t> text(300, 1);
  const Bwt bwt = build_bwt(text);
  EXPECT_EQ(inverse_bwt(bwt), text);
}

TEST(Bwt, BwtOfRepeatsHasLongRuns) {
  // The BWT groups characters by context; a highly repetitive text must
  // produce a runnier BWT than random (the compression premise).
  auto repetitive = testing::random_symbols(1000, 4, 70);
  for (int i = 0; i < 4; ++i) {
    repetitive.insert(repetitive.end(), repetitive.begin(), repetitive.begin() + 1000);
  }
  const auto random_text = testing::random_symbols(repetitive.size(), 4, 71);

  auto count_runs = [](std::span<const std::uint8_t> s) {
    std::size_t runs = s.empty() ? 0 : 1;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i] != s[i - 1]) ++runs;
    }
    return runs;
  };
  const std::size_t runs_rep = count_runs(build_bwt(repetitive).symbols);
  const std::size_t runs_rand = count_runs(build_bwt(random_text).symbols);
  EXPECT_LT(runs_rep * 2, runs_rand);
}

}  // namespace
}  // namespace bwaver
