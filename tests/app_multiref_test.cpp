// Multi-tenant web service tests: several references served side by side
// from a store directory, ?ref= selection, byte-identical SAM versus the
// in-process pipeline, concurrent /map requests racing /evict, and a
// restarted service picking the references back up from their archives.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "app/web_service.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

/// Blocking loopback HTTP client good enough for tests.
std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& path, const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n";
  // These helpers read the response until EOF, so opt out of keep-alive.
  request += "Connection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Strips the status line and headers off an HTTP response.
std::string response_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class MultiRefServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_app_multiref_test");

    config_.engine = MappingEngine::kCpu;

    GenomeSimConfig ga;
    ga.length = 25000;
    ga.seed = 61;
    genome_a_ = simulate_genome(ga);
    GenomeSimConfig gb;
    gb.length = 18000;
    gb.seed = 67;
    genome_b_ = simulate_genome(gb);

    const FastaRecord ref_a{"refA", dna_decode_string(genome_a_)};
    const FastaRecord ref_b{"refB", dna_decode_string(genome_b_)};
    fasta_a_ = format_fasta(std::span<const FastaRecord>(&ref_a, 1));
    fasta_b_ = format_fasta(std::span<const FastaRecord>(&ref_b, 1));

    ReadSimConfig rc;
    rc.num_reads = 40;
    rc.read_length = 36;
    rc.mapping_ratio = 1.0;
    reads_a_ = reads_to_fastq(simulate_reads(genome_a_, rc));
    reads_b_ = reads_to_fastq(simulate_reads(genome_b_, rc));
    fastq_a_ = format_fastq(reads_a_);
    fastq_b_ = format_fastq(reads_b_);

    // Ground truth from the in-process pipeline with the same config — the
    // web service must reproduce these bytes exactly.
    Pipeline pipeline_a(config_);
    pipeline_a.build_from_sequence("refA", dna_decode_string(genome_a_));
    expected_sam_a_ = pipeline_a.map_records(reads_a_).sam;
    Pipeline pipeline_b(config_);
    pipeline_b.build_from_sequence("refB", dna_decode_string(genome_b_));
    expected_sam_b_ = pipeline_b.map_records(reads_b_).sam;

    WebServiceOptions options;
    options.pipeline = config_;
    options.store_dir = (dir_ / "store").string();
    service_ = std::make_unique<WebService>(options);
    service_->start(0);
  }

  void TearDown() override {
    if (service_) service_->stop();
    std::filesystem::remove_all(dir_);
  }

  void upload_both() {
    ASSERT_NE(http_request(service_->port(), "POST", "/reference?name=refA", fasta_a_)
                  .find("200 OK"),
              std::string::npos);
    ASSERT_NE(http_request(service_->port(), "POST", "/reference?name=refB", fasta_b_)
                  .find("200 OK"),
              std::string::npos);
  }

  std::filesystem::path dir_;
  PipelineConfig config_;
  std::vector<std::uint8_t> genome_a_, genome_b_;
  std::vector<FastqRecord> reads_a_, reads_b_;
  std::string fasta_a_, fasta_b_, fastq_a_, fastq_b_;
  std::string expected_sam_a_, expected_sam_b_;
  std::unique_ptr<WebService> service_;
};

TEST_F(MultiRefServiceTest, ListsUploadedReferences) {
  upload_both();

  const std::string json =
      response_body(http_request(service_->port(), "GET", "/references"));
  EXPECT_NE(json.find("\"name\":\"refA\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"refB\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"resident\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"length_bp\":25000"), std::string::npos) << json;

  const std::string status = http_request(service_->port(), "GET", "/status");
  EXPECT_NE(status.find("state: ready"), std::string::npos);
  EXPECT_NE(status.find("references: 2 (2 resident)"), std::string::npos) << status;
  EXPECT_NE(status.find("store_dir:"), std::string::npos);
}

TEST_F(MultiRefServiceTest, MapSelectsReferenceAndMatchesPipelineByteForByte) {
  upload_both();

  const std::string sam_a = response_body(
      http_request(service_->port(), "POST", "/map?ref=refA", fastq_a_));
  EXPECT_EQ(sam_a, expected_sam_a_);

  const std::string sam_b = response_body(
      http_request(service_->port(), "POST", "/map?ref=refB", fastq_b_));
  EXPECT_EQ(sam_b, expected_sam_b_);
}

TEST_F(MultiRefServiceTest, AmbiguousAndUnknownRefsAreRejected) {
  upload_both();

  const std::string ambiguous =
      http_request(service_->port(), "POST", "/map", fastq_a_);
  EXPECT_NE(ambiguous.find("HTTP/1.1 409"), std::string::npos);
  EXPECT_NE(ambiguous.find("multiple references"), std::string::npos);

  const std::string unknown =
      http_request(service_->port(), "POST", "/map?ref=missing", fastq_a_);
  EXPECT_NE(unknown.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(unknown.find("unknown reference 'missing'"), std::string::npos);
}

TEST_F(MultiRefServiceTest, SingleReferenceStillMapsWithoutRefParam) {
  ASSERT_NE(http_request(service_->port(), "POST", "/reference?name=refA", fasta_a_)
                .find("200 OK"),
            std::string::npos);
  const std::string sam =
      response_body(http_request(service_->port(), "POST", "/map", fastq_a_));
  EXPECT_EQ(sam, expected_sam_a_);
}

TEST_F(MultiRefServiceTest, ConcurrentMapsAcrossReferencesWhileEvicting) {
  upload_both();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      const bool use_a = (t % 2 == 0);
      for (int i = 0; i < 4; ++i) {
        const std::string response = http_request(
            service_->port(), "POST", use_a ? "/map?ref=refA" : "/map?ref=refB",
            use_a ? fastq_a_ : fastq_b_);
        if (response.find("200 OK") == std::string::npos ||
            response_body(response) != (use_a ? expected_sam_a_ : expected_sam_b_)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // Evictions race the mapping traffic; in-flight requests keep their
  // handles and later requests transparently reload from the archive.
  std::thread evictor([&] {
    for (int i = 0; i < 10; ++i) {
      http_request(service_->port(), "POST",
                   i % 2 == 0 ? "/evict?ref=refA" : "/evict?ref=refB");
      std::this_thread::yield();
    }
  });
  for (auto& client : clients) client.join();
  evictor.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(MultiRefServiceTest, EvictEndpointDropsResidency) {
  upload_both();
  EXPECT_NE(http_request(service_->port(), "POST", "/evict")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_request(service_->port(), "POST", "/evict?ref=refA")
                .find("evicted: refA"),
            std::string::npos);
  EXPECT_NE(http_request(service_->port(), "POST", "/evict?ref=refA")
                .find("not resident"),
            std::string::npos);
  EXPECT_NE(http_request(service_->port(), "GET", "/status").find("on disk"),
            std::string::npos);

  // Mapping against the evicted reference reloads it from its archive.
  const std::string sam = response_body(
      http_request(service_->port(), "POST", "/map?ref=refA", fastq_a_));
  EXPECT_EQ(sam, expected_sam_a_);
}

TEST_F(MultiRefServiceTest, RestartedServiceServesArchivesFromStore) {
  upload_both();
  service_->stop();
  service_.reset();

  // A brand-new service on the same store directory serves both references
  // straight from their archives, with identical SAM bytes.
  WebServiceOptions options;
  options.pipeline = config_;
  options.store_dir = (dir_ / "store").string();
  WebService restarted(options);
  restarted.start(0);

  const std::string json =
      response_body(http_request(restarted.port(), "GET", "/references"));
  EXPECT_NE(json.find("\"name\":\"refA\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"refB\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"resident\":false"), std::string::npos) << json;

  const std::string sam_b = response_body(
      http_request(restarted.port(), "POST", "/map?ref=refB", fastq_b_));
  EXPECT_EQ(sam_b, expected_sam_b_);
  restarted.stop();
}

}  // namespace
}  // namespace bwaver
