#include "jobs/job_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "fmindex/dna.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {
namespace {

using namespace std::chrono_literals;

JobManagerConfig small_config(std::size_t workers = 2, std::size_t capacity = 8) {
  JobManagerConfig config;
  config.workers = workers;
  config.queue_capacity = capacity;
  return config;
}

TEST(JobManager, CompletesAndRetainsResult) {
  JobManager manager(small_config());
  const auto id = manager.submit("ref", [](const CancelToken&) { return "payload"; });
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kDone);
  EXPECT_TRUE(record.has_result);
  EXPECT_EQ(manager.result(id).value(), "payload");
  EXPECT_EQ(manager.stats().completed.load(), 1u);
  EXPECT_EQ(manager.stats().queue_wait.count(), 1u);
  EXPECT_EQ(manager.stats().map_time.count(), 1u);
}

TEST(JobManager, FailureIsTypedAndCarriesError) {
  JobManager manager(small_config());
  const auto id = manager.submit("ref", [](const CancelToken&) -> std::string {
    throw std::runtime_error("engine exploded");
  });
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kFailed);
  EXPECT_EQ(record.error, "engine exploded");
  EXPECT_EQ(manager.result(id), std::nullopt);
  EXPECT_EQ(manager.stats().failed.load(), 1u);
}

TEST(JobManager, CancelMidRunIsCooperative) {
  JobManager manager(small_config(1));
  std::atomic<bool> started{false};
  const auto id = manager.submit("ref", [&started](const CancelToken& cancel) {
    started.store(true);
    while (true) {
      cancel.throw_if_stopped();
      std::this_thread::sleep_for(1ms);
    }
    return std::string{};
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(manager.cancel(id));
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kCancelled);
  EXPECT_EQ(manager.stats().cancelled.load(), 1u);
}

TEST(JobManager, CancelWhileQueuedNeverRuns) {
  // One worker pinned by a slow job; the second job is cancelled while it
  // is still queued and must transition without ever executing.
  JobManager manager(small_config(1));
  std::atomic<bool> release{false};
  std::atomic<bool> second_ran{false};
  manager.submit("ref", [&release](const CancelToken&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string{};
  });
  const auto id = manager.submit("ref", [&second_ran](const CancelToken&) {
    second_ran.store(true);
    return std::string{};
  });
  EXPECT_TRUE(manager.cancel(id));
  EXPECT_EQ(manager.status(id)->state, JobState::kCancelled);
  release.store(true);
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kCancelled);
  EXPECT_FALSE(second_ran.load());
  EXPECT_FALSE(manager.cancel(id)) << "cancel of a terminal job must return false";
}

TEST(JobManager, TimeoutMidRunBecomesTimedOut) {
  JobManager manager(small_config(1));
  const auto id = manager.submit(
      "ref",
      [](const CancelToken& cancel) {
        while (true) {
          cancel.throw_if_stopped();
          std::this_thread::sleep_for(1ms);
        }
        return std::string{};
      },
      JobPriority::kNormal, 50ms);
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kTimedOut);
  EXPECT_EQ(manager.stats().timed_out.load(), 1u);
}

TEST(JobManager, DeadlineSpentQueuedTimesOutWithoutRunning) {
  JobManager manager(small_config(1));
  std::atomic<bool> release{false};
  std::atomic<bool> victim_ran{false};
  manager.submit("ref", [&release](const CancelToken&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string{};
  });
  const auto id = manager.submit(
      "ref",
      [&victim_ran](const CancelToken&) {
        victim_ran.store(true);
        return std::string{};
      },
      JobPriority::kNormal, 30ms);
  std::this_thread::sleep_for(60ms);
  release.store(true);
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kTimedOut);
  EXPECT_FALSE(victim_ran.load());
}

TEST(JobManager, PriorityJobsJumpTheQueue) {
  JobManager manager(small_config(1, 8));
  std::atomic<bool> release{false};
  std::vector<int> order;
  std::mutex order_mutex;
  manager.submit("ref", [&release](const CancelToken&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string{};
  });
  const auto record_order = [&order, &order_mutex](int tag) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(tag);
  };
  const auto low = manager.submit(
      "ref", [&](const CancelToken&) { record_order(0); return std::string{}; },
      JobPriority::kLow);
  const auto high = manager.submit(
      "ref", [&](const CancelToken&) { record_order(1); return std::string{}; },
      JobPriority::kHigh);
  release.store(true);
  manager.wait(low);
  manager.wait(high);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1) << "high-priority job must run before the earlier low one";
}

TEST(JobManager, QueueFullRejectionIsCountedAndTyped) {
  JobManager manager(small_config(1, 1));
  std::atomic<bool> release{false};
  const auto pin = manager.submit("ref", [&release](const CancelToken&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return std::string{};
  });
  // The pin must be off the queue and on the worker before the accounting
  // below, or all three submissions could be rejected.
  while (manager.status(pin)->state != JobState::kRunning) {
    std::this_thread::sleep_for(1ms);
  }
  // Fill the single queue slot, then overflow it.
  std::uint64_t queued = 0;
  std::size_t rejections = 0;
  for (int i = 0; i < 3; ++i) {
    try {
      queued = manager.submit("ref", [](const CancelToken&) { return std::string{}; });
    } catch (const QueueFull&) {
      ++rejections;
    }
  }
  EXPECT_EQ(rejections, 2u);
  EXPECT_EQ(manager.stats().rejected_full.load(), 2u);
  release.store(true);
  manager.wait(queued);
}

// Satellite requirement: > queue-capacity submissions from many threads
// with exact accept/reject accounting, through the manager (not just the
// bare queue).
TEST(JobManager, ConcurrentSubmitStressExactAccounting) {
  JobManagerConfig config = small_config(4, 16);
  config.max_retained = 100000;  // keep every terminal job waitable
  JobManager manager(config);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> executed{0};
  std::vector<std::thread> submitters;
  std::mutex ids_mutex;
  std::vector<std::uint64_t> ids;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        try {
          const auto id = manager.submit("ref", [&executed](const CancelToken&) {
            executed.fetch_add(1);
            return std::string{};
          });
          accepted.fetch_add(1);
          std::lock_guard<std::mutex> lock(ids_mutex);
          ids.push_back(id);
        } catch (const QueueFull&) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(manager.stats().submitted.load(), accepted.load());
  EXPECT_EQ(manager.stats().rejected_full.load(), rejected.load());

  for (const auto id : ids) {
    const JobRecord record = manager.wait(id);
    EXPECT_EQ(record.state, JobState::kDone);
  }
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_EQ(manager.stats().completed.load(), accepted.load());
  // Ids are unique and dense.
  std::set<std::uint64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
}

TEST(JobManager, RetentionGcDropsOldTerminalJobs) {
  JobManagerConfig config = small_config(2, 8);
  config.retention = 0ms;  // terminal jobs are immediately collectable
  JobManager manager(config);
  const auto id = manager.submit("ref", [](const CancelToken&) { return "x"; });
  manager.wait(id);
  // The next submit sweeps the finished job away.
  const auto id2 = manager.submit("ref", [](const CancelToken&) { return "y"; });
  manager.wait(id2);
  EXPECT_EQ(manager.status(id), std::nullopt) << "terminal job must be GC'd";
}

TEST(JobManager, MaxRetainedCapEvictsOldestTerminal) {
  JobManagerConfig config = small_config(1, 64);
  config.max_retained = 3;
  JobManager manager(config);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const auto id = manager.submit("ref", [](const CancelToken&) { return "x"; });
    manager.wait(id);
    ids.push_back(id);
  }
  manager.submit("ref", [](const CancelToken&) { return "x"; });  // triggers GC
  EXPECT_LE(manager.retained(), config.max_retained + 1);  // +1 for the live job
  EXPECT_EQ(manager.status(ids.front()), std::nullopt);
}

TEST(JobManager, ShutdownDrainsAcceptedWork) {
  std::atomic<std::uint64_t> executed{0};
  {
    JobManager manager(small_config(2, 32));
    for (int i = 0; i < 20; ++i) {
      manager.submit("ref", [&executed](const CancelToken&) {
        executed.fetch_add(1);
        return std::string{};
      });
    }
    manager.shutdown();
    EXPECT_THROW(
        manager.submit("ref", [](const CancelToken&) { return std::string{}; }),
        std::runtime_error);
  }
  EXPECT_EQ(executed.load(), 20u) << "accepted jobs must run before shutdown returns";
}

// ------------------------------------------------ cancellation in map_service

class MapCancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenomeSimConfig genome_config;
    genome_config.length = 30000;
    genome_config.seed = 11;
    const auto genome = simulate_genome(genome_config);
    pipeline_.build_from_sequence("cancel_ref", dna_decode_string(genome));

    ReadSimConfig read_config;
    read_config.num_reads = 5000;  // several cancellable chunks
    read_config.read_length = 36;
    const auto reads = simulate_reads(genome, read_config);
    records_ = reads_to_fastq(reads);
  }

  Pipeline pipeline_{PipelineConfig{}};
  std::vector<FastqRecord> records_;
};

TEST_F(MapCancellationTest, PreCancelledTokenAbortsBeforeMapping) {
  CancelToken cancel;
  cancel.request_cancel();
  EXPECT_THROW(map_records_over(pipeline_.index(), pipeline_.reference(),
                                PipelineConfig{}, records_, nullptr, nullptr, &cancel),
               OperationCancelled);
}

TEST_F(MapCancellationTest, ExpiredDeadlineAbortsMapping) {
  CancelToken cancel;
  cancel.set_deadline(std::chrono::steady_clock::now() - 1ms);
  EXPECT_THROW(map_records_over(pipeline_.index(), pipeline_.reference(),
                                PipelineConfig{}, records_, nullptr, nullptr, &cancel),
               OperationCancelled);
}

TEST_F(MapCancellationTest, CancellationMidMapThroughJobManager) {
  JobManager manager(JobManagerConfig{.workers = 1, .queue_capacity = 4});
  std::atomic<bool> started{false};
  const auto id = manager.submit("cancel_ref", [&](const CancelToken& cancel) {
    started.store(true);
    // Loop the whole batch so the job is guaranteed to still be inside
    // map_records_over whenever the cancel lands.
    for (;;) {
      const auto outcome =
          map_records_over(pipeline_.index(), pipeline_.reference(), PipelineConfig{},
                           records_, nullptr, nullptr, &cancel);
      (void)outcome;
    }
    return std::string{};
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(5ms);  // let it get into the map
  ASSERT_TRUE(manager.cancel(id));
  const JobRecord record = manager.wait(id);
  EXPECT_EQ(record.state, JobState::kCancelled);
}

TEST_F(MapCancellationTest, NullTokenMapsIdenticallyToTokenised) {
  // The chunked (cancellable) execution path must produce byte-identical
  // SAM to the single-batch path.
  CancelToken cancel;  // never triggered
  const auto plain = map_records_over(pipeline_.index(), pipeline_.reference(),
                                      PipelineConfig{}, records_);
  const auto chunked =
      map_records_over(pipeline_.index(), pipeline_.reference(), PipelineConfig{},
                       records_, nullptr, nullptr, &cancel);
  EXPECT_EQ(plain.sam, chunked.sam);
  EXPECT_EQ(plain.reads, chunked.reads);
  EXPECT_EQ(plain.mapped, chunked.mapped);
  EXPECT_EQ(plain.occurrences, chunked.occurrences);
}

}  // namespace
}  // namespace bwaver
