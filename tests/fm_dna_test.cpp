#include "fmindex/dna.hpp"

#include <gtest/gtest.h>

namespace bwaver {
namespace {

TEST(Dna, EncodeCanonicalBases) {
  EXPECT_EQ(dna_encode('A'), 0);
  EXPECT_EQ(dna_encode('C'), 1);
  EXPECT_EQ(dna_encode('G'), 2);
  EXPECT_EQ(dna_encode('T'), 3);
}

TEST(Dna, EncodeLowercaseAndUracil) {
  EXPECT_EQ(dna_encode('a'), 0);
  EXPECT_EQ(dna_encode('c'), 1);
  EXPECT_EQ(dna_encode('g'), 2);
  EXPECT_EQ(dna_encode('t'), 3);
  EXPECT_EQ(dna_encode('U'), 3);
  EXPECT_EQ(dna_encode('u'), 3);
}

TEST(Dna, EncodeInvalidYieldsSentinel) {
  for (char c : {'N', 'n', 'X', '-', ' ', '@', '5'}) {
    EXPECT_EQ(dna_encode(c), kDnaInvalid) << c;
  }
}

TEST(Dna, DecodeRoundTrip) {
  for (std::uint8_t code = 0; code < 4; ++code) {
    EXPECT_EQ(dna_encode(dna_decode(code)), code);
  }
}

TEST(Dna, ComplementPairs) {
  EXPECT_EQ(dna_complement(dna_encode('A')), dna_encode('T'));
  EXPECT_EQ(dna_complement(dna_encode('T')), dna_encode('A'));
  EXPECT_EQ(dna_complement(dna_encode('C')), dna_encode('G'));
  EXPECT_EQ(dna_complement(dna_encode('G')), dna_encode('C'));
}

TEST(Dna, EncodeStringStrictThrowsOnInvalid) {
  EXPECT_THROW(dna_encode_string("ACGTN"), std::invalid_argument);
  EXPECT_THROW(dna_encode_string("XACGT"), std::invalid_argument);
}

TEST(Dna, EncodeStringSubstitutesDeterministically) {
  const auto a = dna_encode_string("ACNNGT", true);
  const auto b = dna_encode_string("ACNNGT", true);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 6u);
  for (std::uint8_t code : a) EXPECT_LT(code, 4);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[4], 2);
  EXPECT_EQ(a[5], 3);
}

TEST(Dna, EncodeDecodeStringRoundTrip) {
  const std::string bases = "ACGTACGTTTGGCCAA";
  EXPECT_EQ(dna_decode_string(dna_encode_string(bases)), bases);
}

TEST(Dna, ReverseComplementKnownCase) {
  EXPECT_EQ(dna_reverse_complement_string("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(dna_reverse_complement_string("AAAA"), "TTTT");
  EXPECT_EQ(dna_reverse_complement_string("ACCTG"), "CAGGT");
}

TEST(Dna, ReverseComplementIsInvolution) {
  const auto codes = dna_encode_string("GATTACAGATTACAGGG");
  EXPECT_EQ(dna_reverse_complement(dna_reverse_complement(codes)), codes);
}

TEST(Dna, EmptyStringHandling) {
  EXPECT_TRUE(dna_encode_string("").empty());
  EXPECT_EQ(dna_decode_string({}), "");
  EXPECT_TRUE(dna_reverse_complement({}).empty());
}

}  // namespace
}  // namespace bwaver
