// End-to-end exercise of the async mapping-job subsystem over loopback
// HTTP: submit -> poll -> fetch, byte-identity with the synchronous path,
// admission control (503 + Retry-After), cancellation, and /stats.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "app/web_service.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {
namespace {

using namespace std::chrono_literals;

struct HttpReply {
  int status = 0;
  std::string headers;
  std::string body;
  std::string raw;
};

/// Blocking loopback HTTP client good enough for tests.
HttpReply http_request(std::uint16_t port, const std::string& method,
                       const std::string& path, const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n";
  // These helpers read the response until EOF, so opt out of keep-alive.
  request += "Connection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpReply reply;
  reply.raw = response;
  if (response.size() > 12) reply.status = std::atoi(response.c_str() + 9);
  const std::size_t split = response.find("\r\n\r\n");
  if (split != std::string::npos) {
    reply.headers = response.substr(0, split);
    reply.body = response.substr(split + 4);
  }
  return reply;
}

std::uint64_t parse_job_id(const std::string& json) {
  const std::size_t pos = json.find("\"id\":");
  EXPECT_NE(pos, std::string::npos) << json;
  return std::strtoull(json.c_str() + pos + 5, nullptr, 10);
}

std::string json_state(const std::string& json) {
  const std::size_t pos = json.find("\"state\":\"");
  if (pos == std::string::npos) return "";
  const std::size_t begin = pos + 9;
  return json.substr(begin, json.find('"', begin) - begin);
}

class JobsHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenomeSimConfig config;
    config.length = 20000;
    config.seed = 5;
    genome_codes_ = simulate_genome(config);

    const FastaRecord ref{"jobs_ref", dna_decode_string(genome_codes_)};
    fasta_text_ = format_fasta(std::span<const FastaRecord>(&ref, 1));

    ReadSimConfig rc;
    rc.num_reads = 80;
    rc.read_length = 40;
    rc.mapping_ratio = 1.0;
    const auto reads = simulate_reads(genome_codes_, rc);
    fastq_text_ = format_fastq(reads_to_fastq(reads));

    WebServiceOptions options;
    options.jobs.workers = 2;
    options.jobs.queue_capacity = 4;
    service_ = std::make_unique<WebService>(options);
    service_->start(0);

    const auto upload =
        http_request(service_->port(), "POST", "/reference", fasta_text_);
    ASSERT_EQ(upload.status, 200) << upload.raw;
  }

  void TearDown() override {
    // Unpin any worker-occupying jobs so shutdown's drain can finish.
    for (const auto& record : service_->jobs().list()) {
      if (!is_terminal(record.state)) service_->jobs().cancel(record.id);
    }
    service_->stop();
  }

  std::string poll_until_done(std::uint64_t id, std::chrono::seconds budget = 10s) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto reply =
          http_request(service_->port(), "GET", "/jobs/" + std::to_string(id));
      EXPECT_EQ(reply.status, 200) << reply.raw;
      const std::string state = json_state(reply.body);
      if (state == "done") return state;
      if (state != "queued" && state != "running") return state;
      std::this_thread::sleep_for(5ms);
    }
    return "poll timeout";
  }

  std::vector<std::uint8_t> genome_codes_;
  std::string fasta_text_;
  std::string fastq_text_;
  std::unique_ptr<WebService> service_;
};

TEST_F(JobsHttpTest, AsyncFlowMatchesSynchronousSamByteForByte) {
  // Async: submit, poll, fetch.
  const auto submit = http_request(service_->port(), "POST", "/jobs", fastq_text_);
  EXPECT_EQ(submit.status, 202) << submit.raw;
  const std::uint64_t id = parse_job_id(submit.body);
  EXPECT_GT(id, 0u);
  EXPECT_EQ(poll_until_done(id), "done");
  const auto result =
      http_request(service_->port(), "GET", "/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(result.status, 200) << result.raw;
  EXPECT_NE(result.headers.find("text/x-sam"), std::string::npos);

  // Sync: same reads through POST /map.
  const auto sync = http_request(service_->port(), "POST", "/map", fastq_text_);
  EXPECT_EQ(sync.status, 200) << sync.raw;

  EXPECT_EQ(result.body, sync.body) << "async and sync SAM must be byte-identical";
  EXPECT_NE(result.body.find("@SQ\tSN:jobs_ref"), std::string::npos);
  EXPECT_NE(result.body.find("40M"), std::string::npos);
}

TEST_F(JobsHttpTest, JobStatusReportsQueueAndRunTimes) {
  const auto submit = http_request(service_->port(), "POST", "/jobs", fastq_text_);
  const std::uint64_t id = parse_job_id(submit.body);
  EXPECT_EQ(poll_until_done(id), "done");
  const auto status =
      http_request(service_->port(), "GET", "/jobs/" + std::to_string(id));
  EXPECT_NE(status.body.find("\"queue_wait_ms\":"), std::string::npos);
  EXPECT_NE(status.body.find("\"run_ms\":"), std::string::npos);
  EXPECT_NE(status.body.find("\"result\":\"/jobs/"), std::string::npos);

  const auto list = http_request(service_->port(), "GET", "/jobs");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("\"id\":" + std::to_string(id)), std::string::npos);
}

TEST_F(JobsHttpTest, UnknownAndMalformedJobIdsAreRejected) {
  EXPECT_EQ(http_request(service_->port(), "GET", "/jobs/999999").status, 404);
  EXPECT_EQ(http_request(service_->port(), "GET", "/jobs/abc").status, 400);
  EXPECT_EQ(http_request(service_->port(), "GET", "/jobs/999999/result").status, 404);
  EXPECT_EQ(http_request(service_->port(), "DELETE", "/jobs/999999").status, 404);
}

TEST_F(JobsHttpTest, ResultBeforeCompletionIs409) {
  // Pin both workers so the job stays queued long enough to poll it.
  std::vector<std::uint64_t> pinned;
  for (int i = 0; i < 2; ++i) {
    pinned.push_back(service_->jobs().submit(
        "pin", [](const CancelToken& cancel) {
          for (int spin = 0; spin < 200 && !cancel.stop_requested(); ++spin) {
            std::this_thread::sleep_for(1ms);
          }
          return std::string{};
        },
        JobPriority::kHigh));
  }
  for (const auto pin : pinned) {
    while (service_->jobs().status(pin)->state != JobState::kRunning) {
      std::this_thread::sleep_for(1ms);
    }
  }
  const auto submit = http_request(service_->port(), "POST", "/jobs", fastq_text_);
  ASSERT_EQ(submit.status, 202);
  const std::uint64_t id = parse_job_id(submit.body);
  const auto early =
      http_request(service_->port(), "GET", "/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(early.status, 409) << early.raw;
  for (const auto pin : pinned) service_->jobs().cancel(pin);
  EXPECT_EQ(poll_until_done(id), "done");
}

TEST_F(JobsHttpTest, FullQueueReturns503WithRetryAfter) {
  // Pin both workers, then fill the queue (capacity 4) and overflow it.
  std::vector<std::uint64_t> pins;
  for (int i = 0; i < 2; ++i) {
    pins.push_back(service_->jobs().submit(
        "pin", [](const CancelToken& cancel) {
          while (!cancel.stop_requested()) std::this_thread::sleep_for(1ms);
          return std::string{};
        },
        JobPriority::kHigh));
  }
  // Both pins must be *running* (not queued) before the queue is counted.
  for (const auto pin : pins) {
    while (service_->jobs().status(pin)->state != JobState::kRunning) {
      std::this_thread::sleep_for(1ms);
    }
  }
  int accepted = 0;
  int rejected = 0;
  HttpReply last_rejection;
  for (int i = 0; i < 10; ++i) {
    const auto reply = http_request(service_->port(), "POST", "/jobs", fastq_text_);
    if (reply.status == 202) {
      ++accepted;
    } else {
      ASSERT_EQ(reply.status, 503) << reply.raw;
      last_rejection = reply;
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4) << "exactly the queue capacity must be admitted";
  EXPECT_EQ(rejected, 6);
  EXPECT_NE(last_rejection.headers.find("Retry-After:"), std::string::npos)
      << last_rejection.raw;
  // The synchronous path shares the same admission control.
  const auto sync = http_request(service_->port(), "POST", "/map", fastq_text_);
  EXPECT_EQ(sync.status, 503) << sync.raw;
  // Stats observed every rejection (7 = 6 async + 1 sync).
  const auto stats = http_request(service_->port(), "GET", "/stats");
  EXPECT_NE(stats.body.find("\"rejected_queue_full\":7"), std::string::npos)
      << stats.body;
}

TEST_F(JobsHttpTest, DeleteCancelsQueuedJob) {
  std::vector<std::uint64_t> pins;
  for (int i = 0; i < 2; ++i) {
    pins.push_back(service_->jobs().submit(
        "pin", [](const CancelToken& cancel) {
          while (!cancel.stop_requested()) std::this_thread::sleep_for(1ms);
          return std::string{};
        },
        JobPriority::kHigh));
  }
  for (const auto pin : pins) {
    while (service_->jobs().status(pin)->state != JobState::kRunning) {
      std::this_thread::sleep_for(1ms);
    }
  }
  const auto submit = http_request(service_->port(), "POST", "/jobs", fastq_text_);
  ASSERT_EQ(submit.status, 202);
  const std::uint64_t id = parse_job_id(submit.body);

  const auto cancelled =
      http_request(service_->port(), "DELETE", "/jobs/" + std::to_string(id));
  EXPECT_EQ(cancelled.status, 202) << cancelled.raw;
  const auto status = http_request(service_->port(), "GET", "/jobs/" + std::to_string(id));
  EXPECT_EQ(json_state(status.body), "cancelled");
  const auto result =
      http_request(service_->port(), "GET", "/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(result.status, 410) << result.raw;
  const auto again =
      http_request(service_->port(), "DELETE", "/jobs/" + std::to_string(id));
  EXPECT_EQ(again.status, 409) << "cancel of a terminal job conflicts";
}

TEST_F(JobsHttpTest, JobTimeoutSurfacesAsTimedOut) {
  const auto submit = http_request(service_->port(), "POST",
                                   "/jobs?timeout-ms=1", fastq_text_);
  ASSERT_EQ(submit.status, 202);
  const std::uint64_t id = parse_job_id(submit.body);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  std::string state;
  while (std::chrono::steady_clock::now() < deadline) {
    state = json_state(
        http_request(service_->port(), "GET", "/jobs/" + std::to_string(id)).body);
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(2ms);
  }
  // A 1 ms budget can expire while queued or at the first in-map
  // checkpoint; either way it must surface as timed_out (done would mean
  // the deadline was ignored — possible only if mapping beat the clock,
  // which 80 reads cannot on this genome... but accept it defensively).
  EXPECT_TRUE(state == "timed_out" || state == "done") << state;
  if (state == "timed_out") {
    const auto result = http_request(service_->port(), "GET",
                                     "/jobs/" + std::to_string(id) + "/result");
    EXPECT_EQ(result.status, 410);
  }
}

TEST_F(JobsHttpTest, StatsReportNonZeroHistogramsAfterLoad) {
  for (int i = 0; i < 3; ++i) {
    const auto sync = http_request(service_->port(), "POST", "/map", fastq_text_);
    ASSERT_EQ(sync.status, 200);
  }
  const auto submit = http_request(service_->port(), "POST", "/jobs", fastq_text_);
  ASSERT_EQ(submit.status, 202);
  EXPECT_EQ(poll_until_done(parse_job_id(submit.body)), "done");

  const auto stats = http_request(service_->port(), "GET", "/stats");
  ASSERT_EQ(stats.status, 200);
  const std::string& json = stats.body;
  EXPECT_NE(json.find("\"submitted\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sync_requests\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"async_requests\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_reference\":{\"jobs_ref\":4}"), std::string::npos) << json;
  // Non-zero queue-wait and map-time histograms.
  const std::size_t qw = json.find("\"queue_wait_ms\":{\"count\":4");
  EXPECT_NE(qw, std::string::npos) << json;
  const std::size_t mt = json.find("\"map_time_ms\":{\"count\":4");
  EXPECT_NE(mt, std::string::npos) << json;
  EXPECT_EQ(json.find("\"sum_ms\":-"), std::string::npos) << "negative histogram sum";
}

TEST_F(JobsHttpTest, OversizedBodyIs413) {
  WebServiceOptions options;
  options.http.max_body_bytes = 1024;
  WebService tiny(options);
  tiny.start(0);
  const std::string big(4096, 'A');
  const auto reply = http_request(tiny.port(), "POST", "/reference", big);
  EXPECT_EQ(reply.status, 413) << reply.raw;
  tiny.stop();
}

TEST_F(JobsHttpTest, BadFastqIsRejectedAtSubmitNotAsFailedJob) {
  const auto reply =
      http_request(service_->port(), "POST", "/jobs", "this is not fastq at all");
  EXPECT_EQ(reply.status, 400) << reply.raw;
}

/// Value of one exposition sample (exact series name incl. labels), or -1.
double metric_value(const std::string& text, const std::string& series) {
  const std::size_t pos = text.find("\n" + series + " ");
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + 1 + series.size() + 1, nullptr);
}

TEST_F(JobsHttpTest, MetricsEndpointServesPrometheusAndCountersMove) {
  const auto before = http_request(service_->port(), "GET", "/metrics");
  ASSERT_EQ(before.status, 200) << before.raw;
  EXPECT_NE(before.headers.find("text/plain; version=0.0.4"), std::string::npos)
      << before.headers;
  const double sync_before =
      metric_value(before.body, "bwaver_map_requests_total{mode=\"sync\"}");

  const auto sync = http_request(service_->port(), "POST", "/map", fastq_text_);
  ASSERT_EQ(sync.status, 200);
  const auto submit = http_request(service_->port(), "POST", "/jobs", fastq_text_);
  ASSERT_EQ(submit.status, 202);
  EXPECT_EQ(poll_until_done(parse_job_id(submit.body)), "done");

  const auto after = http_request(service_->port(), "GET", "/metrics");
  const std::string& text = after.body;
  EXPECT_EQ(metric_value(text, "bwaver_map_requests_total{mode=\"sync\"}"),
            sync_before + 1.0);
  EXPECT_GE(metric_value(text, "bwaver_map_requests_total{mode=\"async\"}"), 1.0);
  EXPECT_GE(metric_value(text, "bwaver_jobs_submitted_total"), 2.0);
  EXPECT_GE(metric_value(text, "bwaver_jobs_finished_total{state=\"done\"}"), 2.0);
  EXPECT_GE(metric_value(text, "bwaver_reads_mapped_total"), 160.0);
  // Queue/admission and registry gauges refreshed at scrape time.
  EXPECT_GE(metric_value(text, "bwaver_queue_capacity"), 4.0);
  EXPECT_GE(metric_value(text, "bwaver_job_workers"), 2.0);
  EXPECT_GE(metric_value(text, "bwaver_registry_heap_bytes"), 0.0);
  EXPECT_GE(metric_value(text, "bwaver_registry_memory_budget_bytes"), 1.0);
  // Latency and per-stage histograms: +Inf bucket == _count, count moved.
  const double run_count = metric_value(text, "bwaver_job_run_seconds_count");
  EXPECT_GE(run_count, 2.0);
  EXPECT_EQ(metric_value(text, "bwaver_job_run_seconds_bucket{le=\"+Inf\"}"),
            run_count);
  const double seed_count =
      metric_value(text,
                   "bwaver_map_stage_seconds_count{engine=\"fpga\","
                   "search_mode=\"per-read\",stage=\"seed\"}");
  EXPECT_GE(seed_count, 2.0);
  EXPECT_EQ(metric_value(text,
                         "bwaver_map_stage_seconds_bucket{engine=\"fpga\","
                         "search_mode=\"per-read\",stage=\"seed\",le=\"+Inf\"}"),
            seed_count);
  for (const char* stage : {"search", "locate", "sam"}) {
    EXPECT_GE(metric_value(text,
                           std::string("bwaver_map_stage_seconds_count{engine=\"fpga\","
                                       "search_mode=\"per-read\",stage=\"") +
                               stage + "\"}"),
              2.0)
        << stage;
  }

  // Minimal grammar sweep: every non-comment line is `series value` with a
  // valid metric name; every family has HELP and TYPE before its samples.
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string name = series.substr(0, series.find('{'));
    EXPECT_TRUE(obs::MetricsRegistry::valid_metric_name(name)) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "bad sample value: " << line;
  }
}

TEST_F(JobsHttpTest, RequestIdIsMintedEchoedAndAttachedToJobs) {
  // No header supplied: the server mints one and echoes it.
  const auto minted = http_request(service_->port(), "GET", "/stats");
  EXPECT_NE(minted.headers.find("X-Request-Id: req-"), std::string::npos)
      << minted.headers;

  // A custom socket request carrying our own id: echoed verbatim.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(service_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string request = "POST /jobs HTTP/1.1\r\nHost: localhost\r\n";
  request += "X-Request-Id: test-req-42\r\n";
  request += "Content-Length: " + std::to_string(fastq_text_.size()) + "\r\n\r\n";
  request += fastq_text_;
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("X-Request-Id: test-req-42"), std::string::npos)
      << response;

  // The id travels into the job object (and is its trace id).
  const std::uint64_t id = parse_job_id(response);
  ASSERT_GT(id, 0u);
  EXPECT_EQ(poll_until_done(id), "done");
  const auto status =
      http_request(service_->port(), "GET", "/jobs/" + std::to_string(id));
  EXPECT_NE(status.body.find("\"request_id\":\"test-req-42\""), std::string::npos)
      << status.body;

  const auto traces = http_request(service_->port(), "GET", "/trace/recent");
  ASSERT_EQ(traces.status, 200);
  EXPECT_NE(traces.body.find("\"trace_id\":\"test-req-42\""), std::string::npos)
      << traces.body;
}

/// dur_ms of the first span named `name` inside a /trace/recent document.
double span_dur_ms(const std::string& json, const std::string& name) {
  const std::size_t at = json.find("\"name\":\"" + name + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t dur = json.find("\"dur_ms\":", at);
  if (dur == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + dur + 9, nullptr);
}

TEST_F(JobsHttpTest, TraceRecentSpanTreeStageSumTracksWall) {
  // A dedicated CPU-engine service: software stage times are real wall
  // time, so at threads == 1 the per-stage sum must track the map span.
  // (The FPGA engine's search span is modeled device time by design.)
  WebServiceOptions options;
  options.pipeline.engine = MappingEngine::kCpu;
  options.jobs.workers = 1;
  WebService service(options);
  service.start(0);
  ASSERT_EQ(
      http_request(service.port(), "POST", "/reference", fasta_text_).status, 200);

  // A heavier batch than the fixture's so the stage sum dwarfs timer
  // granularity: 2000 reads of 40 bp.
  ReadSimConfig rc;
  rc.num_reads = 2000;
  rc.read_length = 40;
  rc.mapping_ratio = 1.0;
  rc.seed = 11;
  const std::string big_fastq =
      format_fastq(reads_to_fastq(simulate_reads(genome_codes_, rc)));
  const auto submit = http_request(service.port(), "POST", "/jobs", big_fastq);
  ASSERT_EQ(submit.status, 202) << submit.raw;
  const std::uint64_t id = parse_job_id(submit.body);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  std::string state;
  do {
    state = json_state(
        http_request(service.port(), "GET", "/jobs/" + std::to_string(id)).body);
    std::this_thread::sleep_for(5ms);
  } while ((state == "queued" || state == "running") &&
           std::chrono::steady_clock::now() < deadline);
  ASSERT_EQ(state, "done");

  const auto traces = http_request(service.port(), "GET", "/trace/recent");
  ASSERT_EQ(traces.status, 200);
  const std::string& json = traces.body;
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos) << json;

  const double map_ms = span_dur_ms(json, "map_records");
  const double stage_sum = span_dur_ms(json, "seed") + span_dur_ms(json, "search") +
                           span_dur_ms(json, "locate") + span_dur_ms(json, "sam");
  ASSERT_GT(map_ms, 0.0) << json;
  ASSERT_GE(stage_sum, 0.0) << json;
  EXPECT_NEAR(stage_sum, map_ms, 0.1 * map_ms)
      << "stage sum " << stage_sum << " ms vs map span " << map_ms << " ms";
  // The job root span and queue wait are present too.
  EXPECT_NE(json.find("\"name\":\"job:"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos) << json;

  // Chrome export: one spliced trace_event array.
  const auto chrome = http_request(service.port(), "GET", "/trace/recent?chrome=1");
  ASSERT_EQ(chrome.status, 200);
  EXPECT_EQ(chrome.body.front(), '[');
  EXPECT_NE(chrome.body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.headers.find("application/json"), std::string::npos);
  service.stop();
}

TEST_F(JobsHttpTest, TraceDisabledServiceReportsDisabled) {
  WebServiceOptions options;
  options.trace.enabled = false;
  WebService service(options);
  service.start(0);
  const auto traces = http_request(service.port(), "GET", "/trace/recent");
  ASSERT_EQ(traces.status, 200);
  EXPECT_NE(traces.body.find("\"enabled\":false"), std::string::npos) << traces.body;
  EXPECT_NE(traces.body.find("\"traces\":[]"), std::string::npos) << traces.body;
  service.stop();
}

}  // namespace
}  // namespace bwaver
