#include "io/gzip.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "io/byte_io.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // The canonical check value.
  EXPECT_EQ(crc32_ieee(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32_ieee({}), 0u);
  EXPECT_EQ(crc32_ieee(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = crc32_ieee(data);
  const std::uint32_t first =
      crc32_ieee(std::span<const std::uint8_t>(data.data(), 10));
  const std::uint32_t continued =
      crc32_ieee(std::span<const std::uint8_t>(data.data() + 10, data.size() - 10), first);
  EXPECT_EQ(continued, whole);
}

TEST(Inflate, HandBuiltStoredBlock) {
  // BFINAL=1, BTYPE=00, aligned, LEN=5, NLEN=~5, "hello".
  std::vector<std::uint8_t> stream = {0x01, 0x05, 0x00, 0xFA, 0xFF, 'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(inflate(stream), bytes_of("hello"));
}

TEST(Inflate, TruncatedStreamThrows) {
  std::vector<std::uint8_t> stream = {0x01, 0x05, 0x00, 0xFA, 0xFF, 'h'};
  EXPECT_THROW(inflate(stream), GzipError);
}

TEST(Inflate, StoredLenMismatchThrows) {
  std::vector<std::uint8_t> stream = {0x01, 0x05, 0x00, 0x00, 0x00, 'h', 'e', 'l', 'l', 'o'};
  EXPECT_THROW(inflate(stream), GzipError);
}

TEST(Inflate, ReservedBlockTypeThrows) {
  std::vector<std::uint8_t> stream = {0x07};  // BFINAL=1, BTYPE=11
  EXPECT_THROW(inflate(stream), GzipError);
}

class DeflateRoundTrip
    : public ::testing::TestWithParam<std::tuple<DeflateMode, std::size_t>> {};

TEST_P(DeflateRoundTrip, InflateRecoversInput) {
  const auto [mode, size] = GetParam();
  Xoshiro256 rng(size + 1);
  std::vector<std::uint8_t> data(size);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.below(256));
  EXPECT_EQ(inflate(deflate(data, mode)), data);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, DeflateRoundTrip,
    ::testing::Combine(::testing::Values(DeflateMode::kStored, DeflateMode::kFixedHuffman),
                       ::testing::Values(0u, 1u, 2u, 100u, 65535u, 65536u, 200000u)));

TEST(Gzip, CompressDecompressRoundTrip) {
  const auto data = bytes_of("GATTACA GATTACA GATTACA\n");
  for (DeflateMode mode : {DeflateMode::kStored, DeflateMode::kFixedHuffman}) {
    EXPECT_EQ(gzip_decompress(gzip_compress(data, mode)), data);
  }
}

TEST(Gzip, LooksLikeGzipDetection) {
  const auto compressed = gzip_compress(bytes_of("x"));
  EXPECT_TRUE(looks_like_gzip(compressed));
  EXPECT_FALSE(looks_like_gzip(bytes_of(">seq\nACGT\n")));
  EXPECT_FALSE(looks_like_gzip({}));
}

TEST(Gzip, BadMagicThrows) {
  auto compressed = gzip_compress(bytes_of("payload"));
  compressed[0] = 0x00;
  EXPECT_THROW(gzip_decompress(compressed), GzipError);
}

TEST(Gzip, CorruptCrcThrows) {
  auto compressed = gzip_compress(bytes_of("payload"));
  compressed[compressed.size() - 5] ^= 0xFF;  // flip a CRC byte
  EXPECT_THROW(gzip_decompress(compressed), GzipError);
}

TEST(Gzip, CorruptSizeThrows) {
  auto compressed = gzip_compress(bytes_of("payload"));
  compressed[compressed.size() - 1] ^= 0xFF;  // flip an ISIZE byte
  EXPECT_THROW(gzip_decompress(compressed), GzipError);
}

TEST(Gzip, TruncatedMemberThrows) {
  auto compressed = gzip_compress(bytes_of("payload"));
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(gzip_decompress(compressed), GzipError);
}

TEST(Gzip, TooShortInputThrows) {
  std::vector<std::uint8_t> tiny = {0x1f, 0x8b, 8};
  EXPECT_THROW(gzip_decompress(tiny), GzipError);
}

TEST(Gzip, SystemGzipInterop) {
  // Round-trip against the system gzip when available: its output uses
  // dynamic Huffman blocks and real LZ77 matches, exercising the inflate
  // paths our own compressor cannot produce.
  if (std::system("command -v gzip > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "system gzip not available";
  }
  const auto dir = std::filesystem::temp_directory_path();
  const std::string raw_path = (dir / "bwaver_gzip_interop.txt").string();
  const std::string gz_path = raw_path + ".gz";

  // Repetitive text forces LZ77 matches and dynamic trees.
  std::string payload;
  for (int i = 0; i < 2000; ++i) {
    payload += "ACGTACGTACGT line " + std::to_string(i % 17) + "\n";
  }
  write_file(raw_path, payload);
  const std::string cmd = "gzip -kf9 " + raw_path;
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  const auto decompressed = gzip_decompress(read_file(gz_path));
  EXPECT_EQ(std::string(decompressed.begin(), decompressed.end()), payload);
  std::remove(raw_path.c_str());
  std::remove(gz_path.c_str());
}

TEST(Gzip, MultiMemberConcatenationDecodes) {
  // `cat a.gz b.gz` (and bgzip output) is a valid gzip stream whose members
  // must be inflated in sequence.
  const auto part1 = bytes_of("first half | ");
  const auto part2 = bytes_of("second half");
  auto concatenated = gzip_compress(part1, DeflateMode::kFixedHuffman);
  const auto second = gzip_compress(part2, DeflateMode::kStored);
  concatenated.insert(concatenated.end(), second.begin(), second.end());

  const auto out = gzip_decompress(concatenated);
  EXPECT_EQ(std::string(out.begin(), out.end()), "first half | second half");
}

TEST(Gzip, ThreeMembersIncludingEmpty) {
  auto stream = gzip_compress(bytes_of("a"));
  const auto empty = gzip_compress({});
  const auto tail = gzip_compress(bytes_of("z"));
  stream.insert(stream.end(), empty.begin(), empty.end());
  stream.insert(stream.end(), tail.begin(), tail.end());
  const auto out = gzip_decompress(stream);
  EXPECT_EQ(std::string(out.begin(), out.end()), "az");
}

TEST(Gzip, GarbageAfterMemberThrows) {
  auto stream = gzip_compress(bytes_of("payload"));
  stream.push_back(0x42);  // trailing junk is not a valid next member
  EXPECT_THROW(gzip_decompress(stream), GzipError);
}

TEST(Inflate, ConsumedReportsStreamEnd) {
  const auto data = bytes_of("hello inflate");
  auto stream = deflate(data, DeflateMode::kFixedHuffman);
  const std::size_t real_size = stream.size();
  stream.push_back(0xAA);  // unrelated trailing bytes
  stream.push_back(0xBB);
  std::size_t consumed = 0;
  const auto out = inflate(stream, &consumed);
  EXPECT_EQ(out, data);
  EXPECT_EQ(consumed, real_size);
}

TEST(Gzip, FnameHeaderFlagIsSkipped) {
  // Hand-build a member with FNAME set.
  const auto data = bytes_of("abc");
  auto body = deflate(data, DeflateMode::kFixedHuffman);
  std::vector<std::uint8_t> member = {0x1f, 0x8b, 8, 0x08, 0, 0, 0, 0, 0, 0xFF};
  const std::string name = "file.txt";
  member.insert(member.end(), name.begin(), name.end());
  member.push_back(0);
  member.insert(member.end(), body.begin(), body.end());
  const std::uint32_t crc = crc32_ieee(data);
  for (int i = 0; i < 4; ++i) member.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  const std::uint32_t isize = 3;
  for (int i = 0; i < 4; ++i) member.push_back(static_cast<std::uint8_t>(isize >> (8 * i)));
  EXPECT_EQ(gzip_decompress(member), data);
}

}  // namespace
}  // namespace bwaver
