// Pooled HTTP client: keep-alive reuse actually reuses, and every transport
// failure mode surfaces as the right typed TransportError — the router keys
// failover decisions on these kinds, so they are contract, not detail.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "app/http_server.hpp"
#include "fleet/http_client.hpp"

namespace bwaver::fleet {
namespace {

/// Raw listening socket driven by a per-connection script, for failure
/// modes a well-behaved HttpServer cannot produce (malformed status lines,
/// mid-body hangups, never-ending header waits).
class ScriptedServer {
 public:
  using Script = std::function<void(int client_fd)>;

  explicit ScriptedServer(Script script) : script_(std::move(script)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 4), 0);
    thread_ = std::thread([this] {
      while (true) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) return;  // listen socket closed -> shut down
        script_(client);
        ::close(client);
      }
    });
  }

  ~ScriptedServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return port_; }

 private:
  Script script_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// Drains the request head so the client's send() is not racing our close.
void read_request_head(int fd) {
  std::string seen;
  char chunk[512];
  while (seen.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;
    seen.append(chunk, static_cast<std::size_t>(n));
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

TransportErrorKind request_error_kind(HttpClient& client, std::uint16_t port,
                                      const std::string& target = "/") {
  try {
    client.request("127.0.0.1", port, "GET", target);
  } catch (const TransportError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "request unexpectedly succeeded";
  return TransportErrorKind::kFailed;
}

TEST(FleetHttpClient, KeepAlivePoolsOneConnectionAcrossRequests) {
  HttpServer server;
  server.route("GET", "/ping", [](const HttpRequest&) { return HttpResponse::text(200, "pong"); });
  server.start(0);

  HttpClient client;
  for (int i = 0; i < 5; ++i) {
    const ClientResponse response = client.request("127.0.0.1", server.port(), "GET", "/ping");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "pong");
  }
  EXPECT_EQ(client.requests_sent(), 5u);
  EXPECT_EQ(client.connections_opened(), 1u) << "sequential requests must reuse the pooled connection";
  server.stop();
}

TEST(FleetHttpClient, KeepAliveDisabledOpensPerRequest) {
  HttpServer server;
  server.route("GET", "/ping", [](const HttpRequest&) { return HttpResponse::text(200, "pong"); });
  server.start(0);

  HttpClientOptions options;
  options.keep_alive = false;
  HttpClient client(options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.request("127.0.0.1", server.port(), "GET", "/ping").status, 200);
  }
  EXPECT_EQ(client.connections_opened(), 3u);
  server.stop();
}

TEST(FleetHttpClient, HttpErrorStatusesAreReturnedNotThrown) {
  HttpServer server;
  server.route("GET", "/missing",
               [](const HttpRequest&) { return HttpResponse::text(404, "not found"); });
  server.start(0);

  HttpClient client;
  const ClientResponse response = client.request("127.0.0.1", server.port(), "GET", "/missing");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.body, "not found");
  server.stop();
}

TEST(FleetHttpClient, ConnectionRefusedIsKConnect) {
  // Grab an ephemeral port and release it so nothing listens there.
  std::uint16_t dead_port = 0;
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    dead_port = ntohs(addr.sin_port);
    ::close(fd);
  }
  HttpClient client;
  EXPECT_EQ(request_error_kind(client, dead_port), TransportErrorKind::kConnect);
}

TEST(FleetHttpClient, MalformedStatusLineIsKProtocol) {
  ScriptedServer server([](int fd) {
    read_request_head(fd);
    send_all(fd, "BOGUS/9.9 banana\r\n\r\n");
  });
  HttpClient client;
  EXPECT_EQ(request_error_kind(client, server.port()), TransportErrorKind::kProtocol);
}

TEST(FleetHttpClient, MidBodyDisconnectIsKReset) {
  ScriptedServer server([](int fd) {
    read_request_head(fd);
    // Promise 100 bytes, deliver 5, hang up.
    send_all(fd, "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello");
  });
  HttpClient client;
  EXPECT_EQ(request_error_kind(client, server.port()), TransportErrorKind::kReset);
}

TEST(FleetHttpClient, OversizedResponseIsKOversize) {
  ScriptedServer server([](int fd) {
    read_request_head(fd);
    send_all(fd, "HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\n");
    send_all(fd, std::string(4096, 'x'));
  });
  HttpClientOptions options;
  options.max_response_bytes = 1024;
  HttpClient client(options);
  EXPECT_EQ(request_error_kind(client, server.port()), TransportErrorKind::kOversize);
}

TEST(FleetHttpClient, SlowHeadersAreKTimeout) {
  ScriptedServer server([](int fd) {
    read_request_head(fd);
    // Never answer; hold the socket open past the client's header budget.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  });
  HttpClientOptions options;
  options.header_timeout = std::chrono::milliseconds(100);
  HttpClient client(options);
  const auto started = std::chrono::steady_clock::now();
  EXPECT_EQ(request_error_kind(client, server.port()), TransportErrorKind::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - started, std::chrono::milliseconds(450))
      << "timeout must fire at header_timeout, not at the server's leisure";
}

TEST(FleetHttpClient, RetryableClassificationMatchesRouterContract) {
  EXPECT_TRUE(is_retryable(TransportErrorKind::kConnect));
  EXPECT_TRUE(is_retryable(TransportErrorKind::kTimeout));
  EXPECT_TRUE(is_retryable(TransportErrorKind::kReset));
  EXPECT_TRUE(is_retryable(TransportErrorKind::kOverload));
  EXPECT_TRUE(is_retryable(TransportErrorKind::kFailed));
  EXPECT_FALSE(is_retryable(TransportErrorKind::kBadRequest))
      << "a bad request is bad on every backend";
  EXPECT_FALSE(is_retryable(TransportErrorKind::kCancelled));
}

}  // namespace
}  // namespace bwaver::fleet
