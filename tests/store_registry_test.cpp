// IndexRegistry tests: manifest persistence across registry instances, LRU
// eviction under a memory budget, handle validity across eviction, and the
// headline concurrency guarantee — many threads mapping against two
// references while a third is being evicted and reloaded.
#include "store/index_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "fmindex/dna.hpp"
#include "io/byte_io.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

/// Builds a complete single-sequence index the way the web service does.
StoredIndex build_stored(const std::string& name,
                         const std::vector<std::uint8_t>& genome) {
  ReferenceSet reference;
  reference.add(name, genome);
  auto sa = build_suffix_array(reference.concatenated());
  Bwt bwt = build_bwt(reference.concatenated(), sa);
  RrrWaveletOcc occ(bwt.symbols, RrrParams{});
  return StoredIndex{std::move(reference),
                     FmIndex<RrrWaveletOcc>(std::move(bwt), std::move(sa), std::move(occ)),
                     nullptr, nullptr, LoadMode::kCopy};
}

std::vector<std::uint8_t> make_genome(std::size_t length, std::uint64_t seed) {
  GenomeSimConfig config;
  config.length = length;
  config.seed = seed;
  return simulate_genome(config);
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_store_registry_test");
    store_ = (dir_ / "store").string();
    genome_a_ = make_genome(30000, 41);
    genome_b_ = make_genome(20000, 43);
    genome_c_ = make_genome(15000, 47);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string store_;
  std::vector<std::uint8_t> genome_a_, genome_b_, genome_c_;
};

TEST_F(RegistryTest, AddPersistsAndReloadsThroughManifest) {
  {
    IndexRegistry registry(store_);
    registry.add("alpha", build_stored("alpha", genome_a_));
    registry.add("beta", build_stored("beta", genome_b_));
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_TRUE(std::filesystem::exists(registry.archive_path("alpha")));
  }
  ASSERT_TRUE(std::filesystem::exists(std::filesystem::path(store_) / "manifest.tsv"));

  // A fresh registry sees both references from the manifest without loading
  // either index.
  IndexRegistry reloaded(store_);
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.contains("alpha"));
  EXPECT_TRUE(reloaded.contains("beta"));
  EXPECT_EQ(reloaded.resident_bytes(), 0u);
  for (const RegistryEntry& entry : reloaded.list()) {
    EXPECT_FALSE(entry.resident);
    EXPECT_GT(entry.archive_bytes, 0u);
    EXPECT_EQ(entry.num_sequences, 1u);
  }

  const IndexRegistry::Handle handle = reloaded.acquire("alpha");
  EXPECT_EQ(handle->reference.concatenated(), genome_a_);
  EXPECT_EQ(handle->index.size(), genome_a_.size());
  const std::span<const std::uint8_t> pattern(genome_a_.data() + 777, 25);
  EXPECT_GE(handle->index.count(pattern).count(), 1u);
  EXPECT_GT(reloaded.resident_bytes(), 0u);
}

TEST_F(RegistryTest, UnknownNamesThrow) {
  IndexRegistry registry(store_);
  EXPECT_THROW(registry.acquire("nope"), std::out_of_range);
  EXPECT_THROW(registry.archive_path("nope"), std::out_of_range);
  EXPECT_FALSE(registry.evict("nope"));
}

TEST_F(RegistryTest, InvalidNamesAreRejected) {
  IndexRegistry registry(store_);
  EXPECT_THROW(registry.add("", build_stored("x", genome_c_)),
               std::invalid_argument);
  EXPECT_THROW(registry.add("has space", build_stored("x", genome_c_)),
               std::invalid_argument);
  EXPECT_THROW(registry.add("a/b", build_stored("x", genome_c_)),
               std::invalid_argument);
}

TEST_F(RegistryTest, EvictionKeepsInFlightHandlesValid) {
  IndexRegistry registry(store_);
  registry.add("alpha", build_stored("alpha", genome_a_));

  const IndexRegistry::Handle handle = registry.acquire("alpha");
  EXPECT_TRUE(registry.evict("alpha"));
  EXPECT_FALSE(registry.evict("alpha"));  // already dropped
  EXPECT_FALSE(registry.list().front().resident);
  EXPECT_EQ(registry.resident_bytes(), 0u);

  // The evicted index stays fully usable through the outstanding handle.
  const std::span<const std::uint8_t> pattern(genome_a_.data() + 123, 30);
  EXPECT_GE(handle->index.count(pattern).count(), 1u);

  // And it is re-acquirable from its archive.
  const IndexRegistry::Handle again = registry.acquire("alpha");
  EXPECT_EQ(again->reference.concatenated(), genome_a_);
  EXPECT_TRUE(registry.list().front().resident);
}

TEST_F(RegistryTest, MemoryOnlyEvictionIsUnrecoverable) {
  IndexRegistry registry;  // no store directory
  registry.add("alpha", build_stored("alpha", genome_c_));
  EXPECT_EQ(registry.archive_path("alpha"), "");
  EXPECT_TRUE(registry.evict("alpha"));
  try {
    registry.acquire("alpha");
    FAIL() << "acquired an evicted memory-only index";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("no archive"), std::string::npos)
        << e.what();
  }
}

TEST_F(RegistryTest, LruEvictionRespectsBudgetAndRecency) {
  StoredIndex a = build_stored("alpha", genome_a_);
  StoredIndex b = build_stored("beta", genome_b_);
  StoredIndex c = build_stored("gamma", genome_c_);
  // Budget fits any two of the three but not all three, so adding the third
  // must evict exactly one: the least recently used.
  const std::size_t budget =
      stored_index_bytes(a) + stored_index_bytes(b) + stored_index_bytes(c) - 1;

  IndexRegistry registry(store_, budget);
  registry.add("alpha", std::move(a));
  registry.add("beta", std::move(b));
  registry.acquire("alpha");  // beta becomes the LRU entry
  registry.add("gamma", std::move(c));

  std::map<std::string, bool> resident;
  for (const RegistryEntry& entry : registry.list()) {
    resident[entry.name] = entry.resident;
  }
  EXPECT_TRUE(resident["alpha"]);
  EXPECT_FALSE(resident["beta"]);
  EXPECT_TRUE(resident["gamma"]);
  EXPECT_LE(registry.resident_bytes(), budget);

  // Acquiring beta again reloads it and evicts the new LRU (alpha).
  registry.acquire("beta");
  resident.clear();
  for (const RegistryEntry& entry : registry.list()) {
    resident[entry.name] = entry.resident;
  }
  EXPECT_FALSE(resident["alpha"]);
  EXPECT_TRUE(resident["beta"]);
}

TEST_F(RegistryTest, TinyBudgetKeepsOnlyTheNewestIndex) {
  IndexRegistry registry(store_, /*memory_budget_bytes=*/1);
  registry.add("alpha", build_stored("alpha", genome_a_));
  registry.add("beta", build_stored("beta", genome_b_));
  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 2u);
  // The entry being added is never its own victim, so exactly the newest
  // index stays resident even though it exceeds the budget alone.
  for (const RegistryEntry& entry : entries) {
    EXPECT_EQ(entry.resident, entry.name == "beta") << entry.name;
  }
}

TEST_F(RegistryTest, ConcurrentMappingWhileEvicting) {
  IndexRegistry registry(store_);
  registry.add("alpha", build_stored("alpha", genome_a_));
  registry.add("beta", build_stored("beta", genome_b_));
  registry.add("gamma", build_stored("gamma", genome_c_));

  PipelineConfig config;
  config.engine = MappingEngine::kCpu;

  // Expected per-reference SAM, computed single-threaded up front.
  std::map<std::string, std::vector<FastqRecord>> reads;
  std::map<std::string, std::string> expected_sam;
  const std::map<std::string, const std::vector<std::uint8_t>*> genomes = {
      {"alpha", &genome_a_}, {"beta", &genome_b_}};
  for (const auto& [name, genome] : genomes) {
    ReadSimConfig rc;
    rc.num_reads = 60;
    rc.read_length = 40;
    rc.mapping_ratio = 1.0;
    reads[name] = reads_to_fastq(simulate_reads(*genome, rc));
    const IndexRegistry::Handle handle = registry.acquire(name);
    expected_sam[name] =
        map_records_over(handle->index, handle->reference, config, reads[name]).sam;
  }

  // 4 mapper threads split across alpha/beta; an evictor thread repeatedly
  // drops all three references, forcing reloads mid-traffic. Every mapping
  // must still produce the exact expected SAM.
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> mappers;
  for (int t = 0; t < 4; ++t) {
    mappers.emplace_back([&, t] {
      const std::string name = (t % 2 == 0) ? "alpha" : "beta";
      for (int i = 0; i < 8; ++i) {
        try {
          const IndexRegistry::Handle handle = registry.acquire(name);
          const MappingOutcome outcome =
              map_records_over(handle->index, handle->reference, config, reads[name]);
          if (outcome.sam != expected_sam[name]) mismatches.fetch_add(1);
        } catch (const std::exception&) {
          errors.fetch_add(1);
        }
      }
    });
  }
  std::thread evictor([&] {
    const char* names[] = {"gamma", "alpha", "beta"};
    for (int i = 0; i < 30; ++i) {
      registry.evict(names[i % 3]);
      std::this_thread::yield();
    }
  });
  for (auto& thread : mappers) thread.join();
  evictor.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(errors.load(), 0);
  // All three references are still acquirable afterwards.
  EXPECT_EQ(registry.acquire("gamma")->reference.concatenated(), genome_c_);
}

TEST_F(RegistryTest, AddReplacesExistingEntry) {
  IndexRegistry registry(store_);
  registry.add("alpha", build_stored("alpha", genome_a_));
  registry.add("alpha", build_stored("alpha", genome_b_));  // re-register
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.acquire("alpha")->reference.concatenated(), genome_b_);

  // The replacement is what a fresh registry loads from disk.
  IndexRegistry reloaded(store_);
  EXPECT_EQ(reloaded.acquire("alpha")->reference.concatenated(), genome_b_);
}

TEST_F(RegistryTest, MalformedManifestThrows) {
  std::filesystem::create_directories(store_);
  std::ofstream((std::filesystem::path(store_) / "manifest.tsv"))
      << "only_one_field\n";
  EXPECT_THROW(IndexRegistry registry(store_), IoError);
}

}  // namespace
}  // namespace bwaver
