#include "sim/read_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fmindex/dna.hpp"
#include "sim/genome_sim.hpp"

namespace bwaver {
namespace {

std::vector<std::uint8_t> test_reference() {
  GenomeSimConfig config;
  config.length = 50000;
  config.seed = 3;
  return simulate_genome(config);
}

TEST(ReadSim, ProducesRequestedCountAndLength) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 500;
  config.read_length = 75;
  const auto reads = simulate_reads(reference, config);
  ASSERT_EQ(reads.size(), 500u);
  for (const auto& read : reads) ASSERT_EQ(read.codes.size(), 75u);
}

TEST(ReadSim, MappingRatioIsExact) {
  const auto reference = test_reference();
  for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ReadSimConfig config;
    config.num_reads = 400;
    config.read_length = 50;
    config.mapping_ratio = ratio;
    const auto reads = simulate_reads(reference, config);
    const auto mapped = std::count_if(reads.begin(), reads.end(), [](const auto& r) {
      return r.origin != SimulatedRead::kUnmapped;
    });
    EXPECT_EQ(mapped, static_cast<long>(ratio * 400 + 0.5)) << "ratio=" << ratio;
  }
}

TEST(ReadSim, ForwardReadsMatchReferenceAtOrigin) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 200;
  config.read_length = 60;
  config.revcomp_fraction = 0.0;  // all forward
  const auto reads = simulate_reads(reference, config);
  for (const auto& read : reads) {
    ASSERT_NE(read.origin, SimulatedRead::kUnmapped);
    ASSERT_FALSE(read.from_reverse_strand);
    for (std::size_t k = 0; k < read.codes.size(); ++k) {
      ASSERT_EQ(read.codes[k], reference[read.origin + k]);
    }
  }
}

TEST(ReadSim, ReverseReadsAreRevcompOfReference) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 200;
  config.read_length = 60;
  config.revcomp_fraction = 1.0;  // all reverse
  const auto reads = simulate_reads(reference, config);
  for (const auto& read : reads) {
    ASSERT_TRUE(read.from_reverse_strand);
    const auto rc = dna_reverse_complement(read.codes);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      ASSERT_EQ(rc[k], reference[read.origin + k]);
    }
  }
}

TEST(ReadSim, DeterministicPerSeed) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 100;
  config.read_length = 40;
  config.mapping_ratio = 0.5;
  const auto a = simulate_reads(reference, config);
  const auto b = simulate_reads(reference, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].codes, b[i].codes);
    ASSERT_EQ(a[i].origin, b[i].origin);
  }
}

TEST(ReadSim, InvalidConfigsThrow) {
  const auto reference = test_reference();
  ReadSimConfig zero_len;
  zero_len.read_length = 0;
  EXPECT_THROW(simulate_reads(reference, zero_len), std::invalid_argument);

  ReadSimConfig too_long;
  too_long.read_length = static_cast<unsigned>(reference.size() + 1);
  EXPECT_THROW(simulate_reads(reference, too_long), std::invalid_argument);

  ReadSimConfig bad_ratio;
  bad_ratio.read_length = 10;
  bad_ratio.mapping_ratio = 1.5;
  EXPECT_THROW(simulate_reads(reference, bad_ratio), std::invalid_argument);

  ReadSimConfig bad_error;
  bad_error.read_length = 10;
  bad_error.error_rate = -0.1;
  EXPECT_THROW(simulate_reads(reference, bad_error), std::invalid_argument);
  bad_error.error_rate = 1.5;
  EXPECT_THROW(simulate_reads(reference, bad_error), std::invalid_argument);
}

TEST(ReadSim, ErrorRateInjectsCountedSubstitutions) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 400;
  config.read_length = 60;
  config.mapping_ratio = 1.0;
  config.revcomp_fraction = 0.0;  // forward-only so the origin check is direct
  config.error_rate = 0.05;
  const auto reads = simulate_reads(reference, config);

  std::size_t total_errors = 0;
  for (const auto& read : reads) {
    ASSERT_NE(read.origin, SimulatedRead::kUnmapped);
    // Every recorded error is a real mismatch against the origin window,
    // and the mismatch count equals the record exactly (errors always
    // rotate to a different base).
    unsigned mismatches = 0;
    for (unsigned k = 0; k < config.read_length; ++k) {
      mismatches += read.codes[k] != reference[read.origin + k];
    }
    EXPECT_EQ(mismatches, read.errors);
    total_errors += read.errors;
  }
  // 400 * 60 * 0.05 = 1200 expected substitutions; allow a generous band.
  EXPECT_GT(total_errors, 800u);
  EXPECT_LT(total_errors, 1600u);
}

TEST(ReadSim, ZeroErrorRateKeepsReadsExact) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 50;
  config.read_length = 40;
  config.error_rate = 0.0;
  for (const auto& read : simulate_reads(reference, config)) {
    EXPECT_EQ(read.errors, 0u);
  }
}

TEST(ReadSim, ErrorsAreDeterministicPerSeed) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 100;
  config.read_length = 50;
  config.error_rate = 0.02;
  config.seed = 99;
  const auto a = simulate_reads(reference, config);
  const auto b = simulate_reads(reference, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].codes, b[i].codes);
    EXPECT_EQ(a[i].errors, b[i].errors);
  }
}

TEST(ReadSim, FastqNameCarriesErrorCount) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 200;
  config.read_length = 60;
  config.error_rate = 0.05;
  const auto reads = simulate_reads(reference, config);
  const auto fastq = reads_to_fastq(reads);
  bool saw_suffix = false;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (reads[i].errors != 0) {
      EXPECT_NE(fastq[i].name.find("_e" + std::to_string(reads[i].errors)),
                std::string::npos)
          << fastq[i].name;
      saw_suffix = true;
    } else {
      EXPECT_EQ(fastq[i].name.find("_e"), std::string::npos) << fastq[i].name;
    }
  }
  EXPECT_TRUE(saw_suffix);
}

TEST(ReadSim, FastqConversionPreservesReads) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 50;
  config.read_length = 30;
  config.mapping_ratio = 0.5;
  const auto reads = simulate_reads(reference, config);
  const auto fastq = reads_to_fastq(reads);
  ASSERT_EQ(fastq.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(fastq[i].sequence, dna_decode_string(reads[i].codes));
    EXPECT_EQ(fastq[i].quality.size(), fastq[i].sequence.size());
    if (reads[i].origin != SimulatedRead::kUnmapped) {
      EXPECT_NE(fastq[i].name.find("pos" + std::to_string(reads[i].origin)),
                std::string::npos);
    } else {
      EXPECT_NE(fastq[i].name.find("random"), std::string::npos);
    }
  }
}

TEST(ReadSim, QualityCharactersInPhredRange) {
  const auto reference = test_reference();
  ReadSimConfig config;
  config.num_reads = 20;
  config.read_length = 30;
  const auto fastq = reads_to_fastq(simulate_reads(reference, config));
  for (const auto& record : fastq) {
    for (char q : record.quality) {
      ASSERT_GE(q, '!' + 30);
      ASSERT_LE(q, '!' + 39);
    }
  }
}

}  // namespace
}  // namespace bwaver
