#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bwaver {
namespace {

TEST(ThreadPool, ZeroRequestBecomesOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) ASSERT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long long> partial(4, 0);
  std::atomic<std::size_t> slot{0};
  pool.parallel_for(100000, [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
    partial[slot.fetch_add(1)] = local;
  });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 100000LL * 99999 / 2);
}

TEST(ThreadPool, ExceptionPropagatesFromTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("chunk failed");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SequentialParallelForsReusePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(50, [&](std::size_t begin, std::size_t end) {
      counter.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(counter.load(), 50);
  }
}

}  // namespace
}  // namespace bwaver
