// MetricsRegistry unit tests plus a parser-level check of the Prometheus
// text exposition GET /metrics serves: HELP/TYPE per family, sample-line
// grammar, label-value escaping, and histogram _bucket/_sum/_count
// consistency. tools/validate_prometheus.py applies the same rules to a
// live scrape in CI.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace bwaver::obs;

TEST(Counter, IncrementsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  EXPECT_EQ(counter.load(), 42u);  // compatibility alias
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(Histogram, CumulativeBuckets) {
  Histogram hist({0.01, 0.1, 1.0});
  hist.observe(0.005);   // bucket 0
  hist.observe(0.05);    // bucket 1
  hist.observe(0.5);     // bucket 2
  hist.observe(50.0);    // +Inf
  hist.observe_ms(5.0);  // 0.005 s -> bucket 0

  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.cumulative_count(0), 2u);
  EXPECT_EQ(hist.cumulative_count(1), 3u);
  EXPECT_EQ(hist.cumulative_count(2), 4u);
  EXPECT_EQ(hist.cumulative_count(3), 5u);  // +Inf == count
  EXPECT_NEAR(hist.sum(), 0.005 + 0.05 + 0.5 + 50.0 + 0.005, 1e-9);
}

TEST(Histogram, ClampsNegativeAndRejectsUnsortedBounds) {
  Histogram hist({1.0});
  hist.observe(-5.0);  // clamped to 0 -> first bucket
  EXPECT_EQ(hist.cumulative_count(0), 1u);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameChild) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test_total", "help");
  Counter& b = registry.counter("test_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& labeled = registry.counter("test_total", "help", {{"k", "v"}});
  EXPECT_NE(&a, &labeled);
  // Label identity is order-insensitive.
  Counter& two = registry.counter("multi_total", "h", {{"a", "1"}, {"b", "2"}});
  Counter& two_swapped = registry.counter("multi_total", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&two, &two_swapped);
}

TEST(MetricsRegistry, RejectsBadNamesAndKindMismatch) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("0bad", "h"), std::invalid_argument);
  EXPECT_THROW(registry.counter("bad-name", "h"), std::invalid_argument);
  EXPECT_THROW(registry.counter("ok_total", "h", {{"0bad", "v"}}),
               std::invalid_argument);
  registry.counter("taken", "h");
  EXPECT_THROW(registry.gauge("taken", "h"), std::logic_error);
  registry.histogram("hist", "h", {1.0});
  EXPECT_THROW(registry.histogram("hist", "h", {2.0}), std::logic_error);
}

TEST(MetricsRegistry, CounterValuesSnapshot) {
  MetricsRegistry registry;
  registry.counter("refs_total", "h", {{"reference", "ecoli"}}).inc(3);
  registry.counter("refs_total", "h", {{"reference", "chr21"}}).inc(1);
  const auto values = registry.counter_values("refs_total");
  ASSERT_EQ(values.size(), 2u);
  std::map<std::string, std::uint64_t> by_ref;
  for (const auto& [labels, value] : values) {
    ASSERT_EQ(labels.size(), 1u);
    by_ref[labels[0].second] = value;
  }
  EXPECT_EQ(by_ref["ecoli"], 3u);
  EXPECT_EQ(by_ref["chr21"], 1u);
  EXPECT_TRUE(registry.counter_values("nonexistent").empty());
}

TEST(MetricsRegistry, EscapesLabelValues) {
  EXPECT_EQ(MetricsRegistry::escape_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
}

// ---------------------------------------------------------------------------
// Parser-level exposition check. Mirrors tools/validate_prometheus.py.
// ---------------------------------------------------------------------------

struct Exposition {
  std::map<std::string, std::string> types;                 // family -> type
  std::map<std::string, std::string> helps;                 // family -> help
  std::map<std::string, double> samples;                    // "name{labels}" -> value
  std::vector<std::string> order;                           // sample keys in order
};

/// Parses (and asserts the grammar of) one exposition document.
void parse_exposition(const std::string& text, Exposition& out) {
  static const std::regex sample_re(
      R"(^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?[ ]([-+0-9eE.na+Inf]+)$)");
  std::istringstream stream(text);
  std::string line;
  std::set<std::string> sampled_families;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      const std::string name = rest.substr(0, space);
      EXPECT_FALSE(out.helps.count(name)) << "duplicate HELP for " << name;
      EXPECT_FALSE(sampled_families.count(name)) << "HELP after samples: " << name;
      out.helps[name] = space == std::string::npos ? "" : rest.substr(space + 1);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, kind;
      fields >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      EXPECT_FALSE(out.types.count(name)) << "duplicate TYPE for " << name;
      EXPECT_FALSE(sampled_families.count(name)) << "TYPE after samples: " << name;
      out.types[name] = kind;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    std::smatch match;
    ASSERT_TRUE(std::regex_match(line, match, sample_re)) << "bad sample: " << line;
    const std::string name = match[1];
    // Resolve the family: histogram series use _bucket/_sum/_count suffixes.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string base = name.substr(0, name.size() - s.size());
        if (out.types.count(base) && out.types[base] == "histogram") family = base;
      }
    }
    EXPECT_TRUE(out.types.count(family)) << "sample without TYPE: " << name;
    EXPECT_TRUE(out.helps.count(family)) << "sample without HELP: " << name;
    sampled_families.insert(family);
    const std::string key = name + std::string(match[2]);
    EXPECT_FALSE(out.samples.count(key)) << "duplicate sample: " << key;
    const std::string value = match[3];
    out.samples[key] =
        value == "+Inf" ? HUGE_VAL : std::stod(value);
    out.order.push_back(key);
  }
}

TEST(RenderPrometheus, GrammarAndHistogramConsistency) {
  MetricsRegistry registry;
  registry.counter("bwaver_test_total", "A counter", {{"mode", "sync"}}).inc(7);
  registry.counter("bwaver_test_total", "A counter", {{"mode", "async"}}).inc(2);
  registry.gauge("bwaver_test_depth", "A gauge").set(3.5);
  Histogram& hist =
      registry.histogram("bwaver_test_seconds", "A histogram", {0.01, 0.1, 1.0});
  hist.observe(0.005);
  hist.observe(0.05);
  hist.observe(5.0);

  const std::string text = registry.render_prometheus();
  Exposition exposition;
  ASSERT_NO_FATAL_FAILURE(parse_exposition(text, exposition));

  EXPECT_EQ(exposition.types.at("bwaver_test_total"), "counter");
  EXPECT_EQ(exposition.types.at("bwaver_test_depth"), "gauge");
  EXPECT_EQ(exposition.types.at("bwaver_test_seconds"), "histogram");
  EXPECT_EQ(exposition.helps.at("bwaver_test_seconds"), "A histogram");

  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_total{mode=\"sync\"}"), 7.0);
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_total{mode=\"async\"}"), 2.0);
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_depth"), 3.5);

  // Histogram series: cumulative buckets, +Inf present and equal to _count.
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_seconds_bucket{le=\"0.01\"}"),
                   1.0);
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_seconds_bucket{le=\"0.1\"}"),
                   2.0);
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_seconds_bucket{le=\"1\"}"), 2.0);
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_seconds_bucket{le=\"+Inf\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(exposition.samples.at("bwaver_test_seconds_count"), 3.0);
  EXPECT_NEAR(exposition.samples.at("bwaver_test_seconds_sum"), 5.055, 1e-9);
}

TEST(RenderPrometheus, EscapesHelpAndLabelValues) {
  MetricsRegistry registry;
  registry.counter("esc_total", "help with \\ and \n newline",
                   {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# HELP esc_total help with \\\\ and \\n newline"),
            std::string::npos);
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos);
  // No raw newline inside any sample line.
  std::istringstream stream(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(stream, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // HELP, TYPE, one sample
}

TEST(RenderPrometheus, FamiliesSortedByName) {
  MetricsRegistry registry;
  registry.counter("zzz_total", "z").inc();
  registry.counter("aaa_total", "a").inc();
  const std::string text = registry.render_prometheus();
  EXPECT_LT(text.find("aaa_total"), text.find("zzz_total"));
}

TEST(MetricsRegistry, NameValidators) {
  EXPECT_TRUE(MetricsRegistry::valid_metric_name("bwaver_jobs_total"));
  EXPECT_TRUE(MetricsRegistry::valid_metric_name("a:b_c9"));
  EXPECT_FALSE(MetricsRegistry::valid_metric_name("9lead"));
  EXPECT_FALSE(MetricsRegistry::valid_metric_name(""));
  EXPECT_TRUE(MetricsRegistry::valid_label_name("mode"));
  EXPECT_FALSE(MetricsRegistry::valid_label_name("with:colon"));
}

}  // namespace
