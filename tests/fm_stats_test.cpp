#include "fmindex/index_stats.hpp"

#include <gtest/gtest.h>

#include "sim/genome_sim.hpp"
#include "test_util.hpp"

namespace bwaver {
namespace {

FmIndex<RrrWaveletOcc> make_index(std::span<const std::uint8_t> text,
                                  RrrParams params = {15, 50}) {
  return FmIndex<RrrWaveletOcc>(text, [params](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, params);
  });
}

TEST(SequenceStats, UniformSequenceHasMaxEntropy) {
  std::vector<std::uint8_t> codes;
  for (int i = 0; i < 40000; ++i) codes.push_back(static_cast<std::uint8_t>(i % 4));
  const SequenceStats stats = compute_sequence_stats(codes);
  EXPECT_EQ(stats.length, 40000u);
  EXPECT_DOUBLE_EQ(stats.entropy_bits_per_symbol, 2.0);
  EXPECT_DOUBLE_EQ(stats.gc_content, 0.5);
  EXPECT_EQ(stats.runs, 40000u);  // no two adjacent symbols equal
}

TEST(SequenceStats, HomopolymerHasZeroEntropy) {
  const std::vector<std::uint8_t> codes(1000, 2);
  const SequenceStats stats = compute_sequence_stats(codes);
  EXPECT_DOUBLE_EQ(stats.entropy_bits_per_symbol, 0.0);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_run_length, 1000.0);
  EXPECT_DOUBLE_EQ(stats.gc_content, 1.0);  // all G
}

TEST(SequenceStats, EmptySequence) {
  const SequenceStats stats = compute_sequence_stats({});
  EXPECT_EQ(stats.length, 0u);
  EXPECT_EQ(stats.runs, 0u);
}

TEST(SequenceStats, BaseCountsAreExact) {
  std::vector<std::uint8_t> codes = {0, 0, 1, 2, 2, 2, 3};
  const SequenceStats stats = compute_sequence_stats(codes);
  EXPECT_EQ(stats.base_counts[0], 2u);
  EXPECT_EQ(stats.base_counts[1], 1u);
  EXPECT_EQ(stats.base_counts[2], 3u);
  EXPECT_EQ(stats.base_counts[3], 1u);
}

TEST(IndexStats, BwtIsRunnierThanText) {
  GenomeSimConfig config;
  config.length = 100000;
  config.seed = 800;
  config.repeat_fraction = 0.4;
  const auto genome = simulate_genome(config);
  const auto index = make_index(genome);
  const IndexStats stats = compute_index_stats(index);
  // The BWT groups symbols by context: longer runs than the raw text.
  EXPECT_GT(stats.bwt.mean_run_length, stats.text.mean_run_length);
  EXPECT_EQ(stats.text.length, genome.size());
  EXPECT_EQ(stats.bwt.length, genome.size());
}

TEST(IndexStats, BreakdownSumsToStructureSize) {
  const auto genome = testing::random_symbols(80000, 4, 801);
  const auto index = make_index(genome);
  const IndexStats stats = compute_index_stats(index);
  EXPECT_EQ(stats.structure.total_bytes() - stats.structure.shared_table_bytes,
            index.occ_size_in_bytes());
  EXPECT_GT(stats.structure.offsets_bytes, 0u);
  EXPECT_GT(stats.structure.classes_bytes, 0u);
  EXPECT_EQ(stats.suffix_array_bytes, (genome.size() + 1) * 4);
}

TEST(IndexStats, CompressionReportedAgainstRawBwt) {
  // Large enough that the fixed 2^16-byte shared table amortizes (it costs
  // 0.33 B/base at 200 kbp but only 0.07 B/base at 1 Mbp).
  GenomeSimConfig config;
  config.length = 1'000'000;
  config.seed = 802;
  const auto genome = simulate_genome(config);
  const auto index = make_index(genome, {15, 100});
  const IndexStats stats = compute_index_stats(index);
  // The paper reports up to 68.3% savings at b=15, sf=100 (full-size refs).
  EXPECT_GT(stats.saved_vs_raw, 0.5);
  EXPECT_LT(stats.bytes_per_base, 0.5);
  EXPECT_TRUE(stats.fits_on_device);
}

TEST(IndexStats, OversizedStructureReportedAsNotFitting) {
  const auto genome = testing::random_symbols(50000, 4, 803);
  const auto index = make_index(genome);
  DeviceSpec tiny;
  tiny.bram_bytes = 100;
  tiny.uram_bytes = 0;
  const IndexStats stats = compute_index_stats(index, tiny);
  EXPECT_FALSE(stats.fits_on_device);
}

TEST(IndexStats, FormatContainsKeyFigures) {
  const auto genome = testing::random_symbols(30000, 4, 804);
  const auto index = make_index(genome);
  const std::string report = format_index_stats(compute_index_stats(index));
  EXPECT_NE(report.find("reference:"), std::string::npos);
  EXPECT_NE(report.find("BWT runs:"), std::string::npos);
  EXPECT_NE(report.find("shared tables:"), std::string::npos);
  EXPECT_NE(report.find("device fit:"), std::string::npos);
  EXPECT_NE(report.find("30000 bp"), std::string::npos);
}

}  // namespace
}  // namespace bwaver
