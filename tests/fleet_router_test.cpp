// Router/gateway behaviour against real WebService replicas: sharded
// byte-identity with the single-replica document, failover when a replica
// dies, hedging with loser cancellation (against a scripted slow backend),
// per-tenant 429s, and zero-5xx index rollover under live mapping load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "app/http_server.hpp"
#include "app/web_service.hpp"
#include "fleet/hash_ring.hpp"
#include "fleet/http_client.hpp"
#include "fleet/router.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace bwaver::fleet {
namespace {

std::vector<std::uint8_t> make_genome(std::size_t length, std::uint64_t seed) {
  GenomeSimConfig config;
  config.length = length;
  config.seed = seed;
  return simulate_genome(config);
}

std::string fasta_for(const std::string& name, const std::vector<std::uint8_t>& genome) {
  FastaRecord record{name, dna_decode_string(genome)};
  return format_fasta(std::span<const FastaRecord>(&record, 1));
}

class FleetRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.engine = MappingEngine::kCpu;
    genome_ = make_genome(20000, 83);

    ReadSimConfig read_config;
    read_config.num_reads = 30;
    read_config.read_length = 36;
    read_config.mapping_ratio = 1.0;
    reads_ = reads_to_fastq(simulate_reads(genome_, read_config));
    fastq_ = format_fastq(reads_);

    Pipeline pipeline(config_);
    pipeline.build_from_sequence("refA", dna_decode_string(genome_));
    expected_sam_ = pipeline.map_records(reads_).sam;

    client_ = std::make_shared<HttpClient>();
  }

  /// Starts a replica and registers refA (and the caller's extras) on it.
  std::unique_ptr<WebService> start_replica() {
    WebServiceOptions options;
    options.pipeline = config_;
    options.jobs.workers = 2;
    auto replica = std::make_unique<WebService>(options);
    replica->start(0);
    upload(*replica, "refA", genome_);
    return replica;
  }

  void upload(WebService& replica, const std::string& name,
              const std::vector<std::uint8_t>& genome) {
    const ClientResponse response = client_->request(
        "127.0.0.1", replica.port(), "POST", "/reference?name=" + name, fasta_for(name, genome));
    ASSERT_EQ(response.status, 200) << response.body;
  }

  RouterOptions router_options(const std::vector<std::uint16_t>& ports) {
    RouterOptions options;
    for (const std::uint16_t port : ports) {
      options.backends.push_back(BackendAddress{"127.0.0.1", port});
    }
    // Tests drive health state explicitly via check_health_now().
    options.health_interval = std::chrono::seconds(10);
    return options;
  }

  ClientResponse router_map(const RouterService& router, const std::string& ref,
                            const std::string& body,
                            const std::vector<std::pair<std::string, std::string>>& headers = {}) {
    return client_->request("127.0.0.1", router.port(), "POST", "/map?ref=" + ref, body, headers);
  }

  PipelineConfig config_;
  std::vector<std::uint8_t> genome_;
  std::vector<FastqRecord> reads_;
  std::string fastq_;
  std::string expected_sam_;
  std::shared_ptr<HttpClient> client_;
};

TEST_F(FleetRouterTest, ShardedMapIsByteIdenticalToSingleReplica) {
  auto replica_a = start_replica();
  auto replica_b = start_replica();

  RouterOptions options = router_options({replica_a->port(), replica_b->port()});
  options.shard_reads = 8;  // 30 reads -> 4 shards, spread across both
  RouterService router(options);
  router.start(0);

  const ClientResponse response = router_map(router, "refA", fastq_);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.header("x-bwaver-shards"), "4");
  EXPECT_EQ(response.body, expected_sam_)
      << "spliced shard SAM must match the single-replica document byte for byte";

  router.stop();
  replica_a->stop();
  replica_b->stop();
}

TEST_F(FleetRouterTest, FailsOverWhenAReplicaDies) {
  auto replica_a = start_replica();
  auto replica_b = start_replica();

  RouterOptions options = router_options({replica_a->port(), replica_b->port()});
  options.shard_reads = 8;
  RouterService router(options);
  router.start(0);

  replica_b->stop();
  // Demotion needs unhealthy_after (2) consecutive probe failures.
  router.check_health_now();
  router.check_health_now();

  bool saw_down = false;
  for (const BackendSnapshot& backend : router.backends()) {
    if (!backend.up) saw_down = true;
  }
  EXPECT_TRUE(saw_down) << "stopped replica must leave the ring";

  const ClientResponse response = router_map(router, "refA", fastq_);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, expected_sam_) << "all shards must land on the surviving replica";

  router.stop();
  replica_a->stop();
}

TEST_F(FleetRouterTest, NoHealthyBackendsIsAnUpstreamError) {
  auto replica = start_replica();
  RouterOptions options = router_options({replica->port()});
  RouterService router(options);
  router.start(0);

  replica->stop();
  router.check_health_now();
  router.check_health_now();

  const ClientResponse response = router_map(router, "refA", fastq_);
  EXPECT_GE(response.status, 500);
  router.stop();
}

TEST_F(FleetRouterTest, HedgesSlowPrimaryAndCancelsTheLoser) {
  auto fast_replica = start_replica();

  // A scripted backend that speaks just enough of the jobs API to accept a
  // mapping job and then never finish it; DELETE records the cancellation.
  std::atomic<int> cancels{0};
  std::string cancel_reason;
  std::mutex reason_mutex;
  HttpServer slow_backend;
  slow_backend.route("GET", "/healthz",
                     [](const HttpRequest&) { return HttpResponse::text(200, "ok\n"); });
  slow_backend.route("GET", "/stats", [](const HttpRequest&) {
    return HttpResponse::json(200, "{\"queue\":{\"depth\":0}}\n");
  });
  slow_backend.route("POST", "/jobs", [](const HttpRequest&) {
    return HttpResponse::json(202, "{\"id\":1}\n");
  });
  slow_backend.route("GET", "/jobs/{id}", [](const HttpRequest&) {
    return HttpResponse::json(200, "{\"id\":1,\"state\":\"running\"}\n");
  });
  slow_backend.route("DELETE", "/jobs/{id}",
                     [&cancels, &cancel_reason, &reason_mutex](const HttpRequest& request) {
                       cancels.fetch_add(1);
                       std::lock_guard<std::mutex> lock(reason_mutex);
                       cancel_reason = request.query_param("reason");
                       return HttpResponse::json(200, "{\"cancelled\":true}\n");
                     });
  slow_backend.start(0);

  RouterOptions options = router_options({fast_replica->port(), slow_backend.port()});
  options.hedge_min_delay = std::chrono::milliseconds(10);
  options.max_attempts = 2;
  RouterService router(options);
  router.start(0);

  // Find a reference name whose single-shard key hashes onto the *slow*
  // backend, so the hedge (not plain routing) is what reaches the fast one.
  HashRing ring(options.vnodes);
  ring.add("127.0.0.1:" + std::to_string(fast_replica->port()));
  const std::string slow_key = "127.0.0.1:" + std::to_string(slow_backend.port());
  ring.add(slow_key);
  std::string ref;
  for (int i = 0; i < 256 && ref.empty(); ++i) {
    const std::string candidate = "hedged" + std::to_string(i);
    if (ring.pick(candidate + "/0") == slow_key) ref = candidate;
  }
  ASSERT_FALSE(ref.empty()) << "no candidate name routed to the slow backend";

  const auto genome = make_genome(15000, 89);
  upload(*fast_replica, ref, genome);
  ReadSimConfig read_config;
  read_config.num_reads = 10;
  read_config.read_length = 36;
  read_config.mapping_ratio = 1.0;
  const auto reads = reads_to_fastq(simulate_reads(genome, read_config));

  Pipeline pipeline(config_);
  pipeline.build_from_sequence(ref, dna_decode_string(genome));
  const std::string expected = pipeline.map_records(reads).sam;

  const ClientResponse response = router_map(router, ref, format_fastq(reads));
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, expected) << "the hedge winner's SAM is the answer";

  EXPECT_GE(cancels.load(), 1) << "the losing attempt must cancel its replica-side job";
  {
    std::lock_guard<std::mutex> lock(reason_mutex);
    EXPECT_EQ(cancel_reason, "hedge-lost");
  }
  const ClientResponse metrics =
      client_->request("127.0.0.1", router.port(), "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("bwaver_router_hedges_total 1"), std::string::npos)
      << metrics.body;

  router.stop();
  slow_backend.stop();
  fast_replica->stop();
}

TEST_F(FleetRouterTest, TenantOverRateLimitGets429WithRetryAfter) {
  auto replica = start_replica();
  RouterOptions options = router_options({replica->port()});
  options.tenant_rate = 0.5;  // one request per two seconds
  options.tenant_burst = 1.0;
  RouterService router(options);
  router.start(0);

  const std::vector<std::pair<std::string, std::string>> alice{{"X-Tenant", "alice"}};
  const std::vector<std::pair<std::string, std::string>> bob{{"X-Tenant", "bob"}};

  EXPECT_EQ(router_map(router, "refA", fastq_, alice).status, 200);
  const ClientResponse limited = router_map(router, "refA", fastq_, alice);
  EXPECT_EQ(limited.status, 429);
  EXPECT_FALSE(limited.header("retry-after").empty()) << "429 must carry Retry-After";

  // Buckets are per tenant: bob is unaffected by alice's burn.
  EXPECT_EQ(router_map(router, "refA", fastq_, bob).status, 200);

  const ClientResponse metrics =
      client_->request("127.0.0.1", router.port(), "GET", "/metrics");
  EXPECT_NE(metrics.body.find("bwaver_router_tenant_rejections_total{tenant=\"alice\"} 1"),
            std::string::npos)
      << metrics.body;

  router.stop();
  replica->stop();
}

TEST_F(FleetRouterTest, RolloverServesZero5xxUnderLiveLoad) {
  auto replica_a = start_replica();
  auto replica_b = start_replica();

  RouterOptions options = router_options({replica_a->port(), replica_b->port()});
  options.shard_reads = 8;
  // The router's own replica hops must also outlast a rebuild.
  options.client.header_timeout = std::chrono::seconds(120);
  options.client.body_timeout = std::chrono::seconds(120);
  RouterService router(options);
  router.start(0);

  // Hammer /map from two tenants' worth of threads while the fleet rolls
  // refA over to a new genome. Every response must be a success: mapping
  // keeps running on generation 1 until generation 2 is proven loadable.
  // The replicas' index rebuilds are CPU-heavy, so every client here gets
  // patient timeouts: a *slow* response is fine, only a failed one counts.
  HttpClientOptions patient;
  patient.header_timeout = std::chrono::seconds(120);
  patient.body_timeout = std::chrono::seconds(120);

  std::atomic<bool> stop_load{false};
  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 2; ++t) {
    load.emplace_back([this, &router, &stop_load, &failures, &completed, patient] {
      HttpClient local_client(patient);
      while (!stop_load.load()) {
        try {
          const ClientResponse response = local_client.request(
              "127.0.0.1", router.port(), "POST", "/map?ref=refA", fastq_);
          if (response.status < 200 || response.status >= 300) failures.fetch_add(1);
        } catch (const TransportError&) {
          failures.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }

  const auto new_genome = make_genome(20000, 97);
  HttpClient rollover_client(patient);
  const ClientResponse rollover = rollover_client.request(
      "127.0.0.1", router.port(), "POST", "/admin/rollover?ref=refA",
      fasta_for("refA", new_genome));
  EXPECT_EQ(rollover.status, 200) << rollover.body;
  EXPECT_NE(rollover.body.find("\"ok\":true"), std::string::npos) << rollover.body;

  // Keep load flowing a beat past the flip, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop_load.store(true);
  for (std::thread& thread : load) thread.join();

  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(failures.load(), 0) << "rollover must not surface any failed mapping request";

  // Both replicas now serve generation 2...
  for (const WebService* replica : {replica_a.get(), replica_b.get()}) {
    const ClientResponse references =
        client_->request("127.0.0.1", replica->port(), "GET", "/references");
    EXPECT_NE(references.body.find("\"generation\":2"), std::string::npos) << references.body;
  }

  // ...and a post-rollover map matches the new genome's direct pipeline.
  ReadSimConfig read_config;
  read_config.num_reads = 20;
  read_config.read_length = 36;
  read_config.mapping_ratio = 1.0;
  const auto new_reads = reads_to_fastq(simulate_reads(new_genome, read_config));
  Pipeline pipeline(config_);
  pipeline.build_from_sequence("refA", dna_decode_string(new_genome));
  const std::string expected = pipeline.map_records(new_reads).sam;
  const ClientResponse after = router_map(router, "refA", format_fastq(new_reads));
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, expected);

  router.stop();
  replica_a->stop();
  replica_b->stop();
}

}  // namespace
}  // namespace bwaver::fleet
