#include "fmindex/approx_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fmindex/occ_backends.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

FmIndex<RrrWaveletOcc> make_index(std::span<const std::uint8_t> text) {
  return FmIndex<RrrWaveletOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}

/// Oracle: positions where `text` matches `pattern` with <= k substitutions.
std::set<std::pair<std::uint32_t, std::uint8_t>> naive_approx(
    std::span<const std::uint8_t> text, std::span<const std::uint8_t> pattern,
    unsigned k) {
  std::set<std::pair<std::uint32_t, std::uint8_t>> hits;
  if (pattern.empty() || pattern.size() > text.size()) return hits;
  for (std::size_t pos = 0; pos + pattern.size() <= text.size(); ++pos) {
    unsigned mismatches = 0;
    for (std::size_t i = 0; i < pattern.size() && mismatches <= k; ++i) {
      mismatches += text[pos + i] != pattern[i];
    }
    if (mismatches <= k) {
      hits.emplace(static_cast<std::uint32_t>(pos),
                   static_cast<std::uint8_t>(mismatches));
    }
  }
  return hits;
}

class ApproxSearchK : public ::testing::TestWithParam<unsigned> {};

TEST_P(ApproxSearchK, LocateMatchesBruteForce) {
  const unsigned k = GetParam();
  const auto text = testing::random_symbols(2000, 4, 400 + k);
  const auto index = make_index(text);
  Xoshiro256 rng(401 + k);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t len = 6 + rng.below(15);
    std::vector<std::uint8_t> pattern;
    if (trial % 2 == 0) {
      const std::size_t start = rng.below(text.size() - len);
      pattern.assign(text.begin() + start, text.begin() + start + len);
      // Inject up to k mutations so approximate paths are exercised.
      for (unsigned m = 0; m < k && !pattern.empty(); ++m) {
        const std::size_t at = rng.below(pattern.size());
        pattern[at] = static_cast<std::uint8_t>((pattern[at] + 1) & 3);
      }
    } else {
      pattern = testing::random_symbols(len, 4, rng());
    }
    const auto expected = naive_approx(text, pattern, k);
    const auto found = approx_locate(index, pattern, k);
    std::set<std::pair<std::uint32_t, std::uint8_t>> got(found.begin(), found.end());
    ASSERT_EQ(got, expected) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ApproxSearchK, ::testing::Values(0u, 1u, 2u));

TEST(ApproxSearch, ZeroBudgetEqualsExactCount) {
  const auto text = testing::random_symbols(3000, 4, 410);
  const auto index = make_index(text);
  std::vector<std::uint8_t> pattern(text.begin() + 100, text.begin() + 130);
  const auto hits = approx_count(index, pattern, 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].interval, index.count(pattern));
  EXPECT_EQ(hits[0].mismatches, 0);
}

TEST(ApproxSearch, IntervalsAreDisjoint) {
  const auto text = testing::random_symbols(5000, 4, 411);
  const auto index = make_index(text);
  std::vector<std::uint8_t> pattern(text.begin() + 700, text.begin() + 716);
  const auto hits = approx_count(index, pattern, 2);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  for (const auto& hit : hits) ranges.emplace_back(hit.interval.lo, hit.interval.hi);
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    ASSERT_LE(ranges[i - 1].second, ranges[i].first) << "overlapping intervals";
  }
}

TEST(ApproxSearch, EmptyPatternYieldsNothing) {
  const auto text = testing::random_symbols(100, 4, 412);
  const auto index = make_index(text);
  EXPECT_TRUE(approx_count(index, {}, 2).empty());
}

TEST(ApproxSearch, StatsCountWork) {
  const auto text = testing::random_symbols(3000, 4, 413);
  const auto index = make_index(text);
  std::vector<std::uint8_t> pattern(text.begin() + 50, text.begin() + 80);

  ApproxStats k0, k2;
  approx_count(index, pattern, 0, &k0);
  approx_count(index, pattern, 2, &k2);
  // A bigger budget explores strictly more of the search tree.
  EXPECT_GT(k2.steps_executed, k0.steps_executed);
  EXPECT_GE(k2.hits, k0.hits);
  EXPECT_GT(k2.branches_pruned, 0u);
}

TEST(ApproxSearch, BestStratumStopsAtExact) {
  const auto text = testing::random_symbols(4000, 4, 414);
  const auto index = make_index(text);
  std::vector<std::uint8_t> pattern(text.begin() + 900, text.begin() + 930);
  const auto best = approx_count_best(index, pattern, 2);
  ASSERT_FALSE(best.empty());
  for (const auto& hit : best) EXPECT_EQ(hit.mismatches, 0);
}

TEST(ApproxSearch, BestStratumFindsOneMismatchWhenExactFails) {
  const auto text = testing::random_symbols(4000, 4, 415);
  const auto index = make_index(text);
  std::vector<std::uint8_t> pattern(text.begin() + 1200, text.begin() + 1240);
  pattern[20] = static_cast<std::uint8_t>((pattern[20] + 2) & 3);
  // The mutated 40-mer almost surely does not occur exactly.
  if (!index.count(pattern).empty()) GTEST_SKIP() << "unlucky: mutation still exact";
  const auto best = approx_count_best(index, pattern, 2);
  ASSERT_FALSE(best.empty());
  for (const auto& hit : best) EXPECT_EQ(hit.mismatches, 1);
  // The original locus must be among the 1-mismatch hits.
  bool found = false;
  for (const auto& hit : best) {
    for (std::uint32_t row = hit.interval.lo; row < hit.interval.hi; ++row) {
      if (index.suffix_array()[row] == 1200) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ApproxSearch, WorksOverSampledOccToo) {
  const auto text = testing::random_symbols(2000, 4, 416);
  const FmIndex<SampledOcc> index(
      text, [](std::span<const std::uint8_t> bwt) { return SampledOcc(bwt); });
  const auto rrr_index = make_index(text);
  std::vector<std::uint8_t> pattern(text.begin() + 10, text.begin() + 30);
  pattern[5] = static_cast<std::uint8_t>((pattern[5] + 1) & 3);
  const auto a = approx_locate(index, pattern, 2);
  const auto b = approx_locate(rrr_index, pattern, 2);
  std::set<std::pair<std::uint32_t, std::uint8_t>> sa(a.begin(), a.end());
  std::set<std::pair<std::uint32_t, std::uint8_t>> sb(b.begin(), b.end());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace bwaver
