// Load-mode tests for the v3 zero-copy archive path: the full
// version x mode matrix (v1/v2/v3, copy/mmap) must produce identical
// structures and byte-identical SAM; corruption must be rejected at open in
// mmap mode too; and the heap/mapped footprint split must be deterministic
// so registry budgets and /references stay truthful.
#include "store/index_archive.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fmindex/dna.hpp"
#include "io/byte_io.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "store/index_registry.hpp"

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

class MmapLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::unique_test_dir("bwaver_store_mmap_test");

    GenomeSimConfig gconfig;
    gconfig.length = 20000;
    gconfig.seed = 53;
    genome_ = simulate_genome(gconfig);

    ReadSimConfig rconfig;
    rconfig.num_reads = 120;
    rconfig.read_length = 40;
    rconfig.mapping_ratio = 0.7;
    reads_ = reads_to_fastq(simulate_reads(genome_, rconfig));

    PipelineConfig config;
    config.engine = MappingEngine::kCpu;
    pipeline_ = std::make_unique<Pipeline>(config);
    const std::string bases = dna_decode_string(genome_);
    pipeline_->build_from_records(
        {{"chrA", bases.substr(0, 12000)}, {"chrB", bases.substr(12000)}});

    for (std::uint32_t version = 1; version <= 4; ++version) {
      path_[version] =
          (dir_ / ("ref_v" + std::to_string(version) + ".bwva")).string();
      write_index_archive(path_[version], pipeline_->reference(),
                          pipeline_->index(), version);
    }
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_variant(const std::string& name,
                            const std::vector<std::uint8_t>& bytes) {
    const std::string path = (dir_ / name).string();
    write_file(path, bytes);
    return path;
  }

  std::filesystem::path dir_;
  std::vector<std::uint8_t> genome_;
  std::vector<FastqRecord> reads_;
  std::unique_ptr<Pipeline> pipeline_;
  std::string path_[5];
};

TEST_F(MmapLoadTest, VersionModeMatrixRebuildsIdenticalStructures) {
  for (std::uint32_t version = 1; version <= 4; ++version) {
    for (const LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
      SCOPED_TRACE("v" + std::to_string(version) + " " + load_mode_name(mode));
      const StoredIndex stored = read_index_archive(path_[version], mode);

      // Only v3+ archives can actually be mapped; older formats silently
      // fall back to the deserializing copy path.
      const bool mapped = version >= 3 && mode == LoadMode::kMmap;
      EXPECT_EQ(stored.load_mode,
                mapped ? LoadMode::kMmap : LoadMode::kCopy);
      EXPECT_EQ(stored.backing != nullptr, mapped);

      // The EPR dictionary section exists from v4 on, and must agree with
      // the BWT whichever way it was materialized.
      EXPECT_EQ(stored.epr != nullptr, version >= 4);
      if (stored.epr != nullptr) {
        ASSERT_EQ(stored.epr->size(), stored.index.bwt().symbols.size());
        for (std::size_t i = 0; i < stored.epr->size(); i += 997) {
          EXPECT_EQ(stored.epr->access(i), stored.index.bwt().symbols[i]);
        }
      }

      EXPECT_EQ(stored.reference.concatenated(), genome_);
      EXPECT_EQ(stored.index.bwt().symbols, pipeline_->index().bwt().symbols);
      EXPECT_EQ(stored.index.bwt().primary, pipeline_->index().bwt().primary);
      EXPECT_EQ(stored.index.suffix_array(), pipeline_->index().suffix_array());
      const std::span<const std::uint8_t> pattern(genome_.data() + 500, 28);
      EXPECT_EQ(stored.index.locate(pattern), pipeline_->index().locate(pattern));
    }
  }
}

TEST_F(MmapLoadTest, VersionModeMatrixProducesByteIdenticalSam) {
  const std::string want = pipeline_->map_records(reads_).sam;
  PipelineConfig config;
  config.engine = MappingEngine::kCpu;
  for (std::uint32_t version = 1; version <= 4; ++version) {
    for (const LoadMode mode : {LoadMode::kCopy, LoadMode::kMmap}) {
      SCOPED_TRACE("v" + std::to_string(version) + " " + load_mode_name(mode));
      Pipeline loaded = Pipeline::from_archive(path_[version], config, mode);
      ASSERT_TRUE(loaded.ready());
      EXPECT_EQ(loaded.map_records(reads_).sam, want);
    }
  }
}

TEST_F(MmapLoadTest, MmapRejectsFlippedPayloadByteInEverySection) {
  const auto original = read_file(path_[3]);
  const ArchiveInfo info = read_index_archive_info(path_[3]);
  ASSERT_EQ(info.sections.size(), 6u);
  for (const ArchiveSection& section : info.sections) {
    auto bytes = original;
    bytes[section.offset + section.length / 2] ^= 0x01;
    const std::string path = write_variant(section.name + "_flip.bwva", bytes);
    try {
      read_index_archive(path, LoadMode::kMmap);
      FAIL() << "mmap served a flipped byte in section '" << section.name << "'";
    } catch (const IoError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("checksum"), std::string::npos) << what;
      EXPECT_NE(what.find(section.name), std::string::npos) << what;
    }
  }
}

TEST_F(MmapLoadTest, MmapRejectsTruncatedSectionAndBadHeaderCrc) {
  const auto original = read_file(path_[3]);

  // Cut into the final section's payload: the CRC scan must fail before the
  // loader adopts anything.
  auto clipped = original;
  clipped.resize(original.size() - 16);
  EXPECT_THROW(
      read_index_archive(write_variant("clipped.bwva", clipped), LoadMode::kMmap),
      IoError);

  // Damage inside the section table fails the header CRC.
  auto header = original;
  header[12] ^= 0x01;
  EXPECT_THROW(
      read_index_archive(write_variant("header.bwva", header), LoadMode::kMmap),
      IoError);
}

TEST_F(MmapLoadTest, FootprintSplitsHeapAndMappedDeterministically) {
  const StoredIndex copy = read_index_archive(path_[3], LoadMode::kCopy);
  const IndexFootprint copy_fp = stored_index_footprint(copy);
  EXPECT_EQ(copy_fp.mapped_bytes, 0u);
  EXPECT_GT(copy_fp.heap_bytes, genome_.size());
  EXPECT_EQ(copy_fp.total(), stored_index_bytes(copy));

  const StoredIndex mapped = read_index_archive(path_[3], LoadMode::kMmap);
  const IndexFootprint mapped_fp = stored_index_footprint(mapped);
  EXPECT_GT(mapped_fp.mapped_bytes, 0u);
  // The bulk payloads (text, BWT, SA, bitvector words) live in the mapping;
  // only rank superstructures and the sequence table stay on the heap.
  EXPECT_LT(mapped_fp.heap_bytes, copy_fp.heap_bytes);
  EXPECT_EQ(mapped_fp.total(), stored_index_bytes(mapped));
  // Identical structures => identical combined footprint in both modes.
  EXPECT_EQ(mapped_fp.total(), copy_fp.total());
}

TEST_F(MmapLoadTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_load_mode("copy"), LoadMode::kCopy);
  EXPECT_EQ(parse_load_mode("mmap"), LoadMode::kMmap);
  EXPECT_EQ(parse_load_mode("turbo"), std::nullopt);
  EXPECT_EQ(parse_load_mode(""), std::nullopt);
  EXPECT_STREQ(load_mode_name(LoadMode::kCopy), "copy");
  EXPECT_STREQ(load_mode_name(LoadMode::kMmap), "mmap");
}

TEST_F(MmapLoadTest, RegistryMmapModeCountsAndUnmapsOnEviction) {
  const std::string store = (dir_ / "store").string();
  {
    // Seed the store through a copy-mode registry (add() persists archives).
    IndexRegistry seeder(store, IndexRegistry::kDefaultMemoryBudget,
                         LoadMode::kCopy);
    seeder.add("ref", read_index_archive(path_[3], LoadMode::kCopy));
  }

  IndexRegistry registry(store, IndexRegistry::kDefaultMemoryBudget,
                         LoadMode::kMmap);
  EXPECT_EQ(registry.load_mode(), LoadMode::kMmap);
  EXPECT_EQ(registry.loads_mmap(), 0u);
  EXPECT_EQ(registry.mapped_bytes(), 0u);

  const IndexRegistry::Handle handle = registry.acquire("ref");
  EXPECT_EQ(handle->load_mode, LoadMode::kMmap);
  EXPECT_EQ(registry.loads_mmap(), 1u);
  EXPECT_EQ(registry.loads_copy(), 0u);
  EXPECT_GT(registry.mapped_bytes(), 0u);
  EXPECT_EQ(registry.heap_bytes() + registry.mapped_bytes(),
            registry.resident_bytes());
  const RegistryEntry entry = registry.list().front();
  EXPECT_GT(entry.mapped_bytes, 0u);
  EXPECT_EQ(entry.heap_bytes + entry.mapped_bytes, entry.resident_bytes);

  // The mmap-served index answers exactly like the in-memory build.
  PipelineConfig config;
  config.engine = MappingEngine::kCpu;
  EXPECT_EQ(map_records_over(handle->index, handle->reference, config, reads_).sam,
            pipeline_->map_records(reads_).sam);

  // Eviction drops the registry's reference; once the last handle dies the
  // mapping goes with it, and the accounting returns to zero immediately.
  EXPECT_TRUE(registry.evict("ref"));
  EXPECT_EQ(registry.mapped_bytes(), 0u);
  EXPECT_EQ(registry.heap_bytes(), 0u);
  EXPECT_EQ(registry.resident_bytes(), 0u);

  // Reacquiring maps it again.
  registry.acquire("ref");
  EXPECT_EQ(registry.loads_mmap(), 2u);
  EXPECT_GT(registry.mapped_bytes(), 0u);
}

TEST_F(MmapLoadTest, RegistryBudgetChargesMappedBytesAtReducedWeight) {
  const std::string store = (dir_ / "budget_store").string();
  const IndexFootprint fp =
      stored_index_footprint(read_index_archive(path_[4], LoadMode::kMmap));
  // Room for TWO weighted mmap charges but well under two full footprints:
  // with mapped bytes charged at 1/kMappedWeight both indexes stay resident,
  // whereas unweighted (copy-style) accounting would evict the first.
  const std::size_t charge =
      fp.heap_bytes + fp.mapped_bytes / IndexRegistry::kMappedWeight;
  const std::size_t budget = 2 * charge + 4096;
  ASSERT_LT(budget, 2 * fp.total());

  {
    IndexRegistry seeder(store, IndexRegistry::kDefaultMemoryBudget,
                         LoadMode::kCopy);
    seeder.add("a", read_index_archive(path_[4], LoadMode::kCopy));
    seeder.add("b", read_index_archive(path_[4], LoadMode::kCopy));
  }
  IndexRegistry registry(store, budget, LoadMode::kMmap);
  registry.acquire("a");
  registry.acquire("b");
  for (const RegistryEntry& entry : registry.list()) {
    EXPECT_TRUE(entry.resident) << entry.name;
    EXPECT_GT(entry.mapped_bytes, 0u) << entry.name;
  }
}

}  // namespace
}  // namespace bwaver
