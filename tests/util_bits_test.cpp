#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bwaver {
namespace {

TEST(Bits, Popcount64Basics) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(1), 1);
  EXPECT_EQ(popcount64(~std::uint64_t{0}), 64);
  EXPECT_EQ(popcount64(0x5555555555555555ULL), 32);
  EXPECT_EQ(popcount64(0x8000000000000001ULL), 2);
}

TEST(Bits, RankInWordMatchesManualCount) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t word = rng();
    for (unsigned n = 0; n <= 64; ++n) {
      int expected = 0;
      for (unsigned i = 0; i < n; ++i) expected += (word >> i) & 1;
      ASSERT_EQ(rank_in_word(word, n), expected) << "word=" << word << " n=" << n;
    }
  }
}

TEST(Bits, RankInWordBoundaries) {
  EXPECT_EQ(rank_in_word(~std::uint64_t{0}, 0), 0);
  EXPECT_EQ(rank_in_word(~std::uint64_t{0}, 64), 64);
  EXPECT_EQ(rank_in_word(~std::uint64_t{0}, 1), 1);
  EXPECT_EQ(rank_in_word(0, 64), 0);
}

TEST(Bits, SelectInWordInvertsRank) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t word = rng();
    const int ones = popcount64(word);
    for (int k = 0; k < ones; ++k) {
      const int pos = select_in_word(word, static_cast<unsigned>(k));
      ASSERT_LT(pos, 64);
      ASSERT_TRUE((word >> pos) & 1);
      ASSERT_EQ(rank_in_word(word, static_cast<unsigned>(pos)), k);
    }
    EXPECT_EQ(select_in_word(word, static_cast<unsigned>(ones)), 64);
  }
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1ull << 40), 40u);
  EXPECT_EQ(ceil_log2((1ull << 40) + 1), 41u);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(~std::uint64_t{0}), 63u);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(Bits, DivCeil) {
  EXPECT_EQ(div_ceil(0, 3), 0u);
  EXPECT_EQ(div_ceil(1, 3), 1u);
  EXPECT_EQ(div_ceil(3, 3), 1u);
  EXPECT_EQ(div_ceil(4, 3), 2u);
  EXPECT_EQ(div_ceil(100, 15), 7u);
}

TEST(Bits, BitsExtract) {
  const std::uint64_t x = 0xDEADBEEFCAFEBABEULL;
  EXPECT_EQ(bits_extract(x, 0, 8), 0xBEu);
  EXPECT_EQ(bits_extract(x, 8, 8), 0xBAu);
  EXPECT_EQ(bits_extract(x, 0, 64), x);
  EXPECT_EQ(bits_extract(x, 60, 4), 0xDu);
  EXPECT_EQ(bits_extract(x, 0, 0), 0u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
  EXPECT_EQ(reverse_bits(0b01, 2), 0b10u);
  EXPECT_EQ(reverse_bits(0b0011, 4), 0b1100u);
  // Involution.
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t x = rng() & 0xFFFFF;
    EXPECT_EQ(reverse_bits(reverse_bits(x, 20), 20), x);
  }
}

}  // namespace
}  // namespace bwaver
