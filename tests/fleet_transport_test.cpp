// MapTransport contract: InProcessTransport and HttpMapTransport produce
// byte-identical SAM for the same request, fail with the same typed
// errors, and both honor the hedge give-up flag by cancelling the backend
// job (the replica's cancel accounting must move — that is how the fleet
// returns capacity instead of leaking it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "app/web_service.hpp"
#include "fleet/http_client.hpp"
#include "fleet/map_transport.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "jobs/job_manager.hpp"
#include "mapper/map_service.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "store/index_registry.hpp"

namespace bwaver::fleet {
namespace {

StoredIndex build_stored(const std::string& name, const std::vector<std::uint8_t>& genome) {
  ReferenceSet reference;
  reference.add(name, genome);
  auto sa = build_suffix_array(reference.concatenated());
  Bwt bwt = build_bwt(reference.concatenated(), sa);
  RrrWaveletOcc occ(bwt.symbols, RrrParams{});
  return StoredIndex{std::move(reference),
                     FmIndex<RrrWaveletOcc>(std::move(bwt), std::move(sa), std::move(occ)),
                     nullptr, nullptr, LoadMode::kCopy};
}

class FleetTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.engine = MappingEngine::kCpu;

    GenomeSimConfig genome_config;
    genome_config.length = 20000;
    genome_config.seed = 71;
    genome_ = simulate_genome(genome_config);

    ReadSimConfig read_config;
    read_config.num_reads = 30;
    read_config.read_length = 36;
    read_config.mapping_ratio = 1.0;
    reads_ = reads_to_fastq(simulate_reads(genome_, read_config));
    fastq_ = format_fastq(reads_);

    Pipeline pipeline(config_);
    pipeline.build_from_sequence("refA", dna_decode_string(genome_));
    expected_sam_ = pipeline.map_records(reads_).sam;
  }

  MapRequest request(const std::string& ref) const {
    MapRequest req;
    req.ref = ref;
    req.fastq = fastq_;
    req.request_id = "fleet-transport-test";
    return req;
  }

  PipelineConfig config_;
  std::vector<std::uint8_t> genome_;
  std::vector<FastqRecord> reads_;
  std::string fastq_;
  std::string expected_sam_;
};

TEST_F(FleetTransportTest, InProcessMatchesDirectPipeline) {
  IndexRegistry registry;
  registry.add("refA", build_stored("refA", genome_));
  JobManager jobs;
  InProcessTransport transport(registry, jobs, config_);

  EXPECT_EQ(transport.map(request("refA")), expected_sam_);
  EXPECT_EQ(transport.name(), "inproc");
}

TEST_F(FleetTransportTest, InProcessUnknownRefIsKBadRequest) {
  IndexRegistry registry;
  registry.add("refA", build_stored("refA", genome_));
  JobManager jobs;
  InProcessTransport transport(registry, jobs, config_);

  try {
    transport.map(request("nope"));
    FAIL() << "unknown reference must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportErrorKind::kBadRequest);
    EXPECT_FALSE(error.retryable()) << "another replica has the same registry view";
  }
}

TEST_F(FleetTransportTest, InProcessMalformedFastqIsKBadRequest) {
  IndexRegistry registry;
  registry.add("refA", build_stored("refA", genome_));
  JobManager jobs;
  InProcessTransport transport(registry, jobs, config_);

  MapRequest bad = request("refA");
  bad.fastq = "this is not fastq\n";
  try {
    transport.map(bad);
    FAIL() << "malformed FASTQ must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportErrorKind::kBadRequest);
  }
}

TEST_F(FleetTransportTest, InProcessGiveUpCancelsTheJob) {
  IndexRegistry registry;
  registry.add("refA", build_stored("refA", genome_));
  JobManagerConfig jobs_config;
  jobs_config.workers = 1;
  JobManager jobs(jobs_config);

  // Pin the single worker so the transport's job stays queued; give_up then
  // cancels it deterministically before it can run.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  jobs.submit("blocker", [released](const CancelToken&) {
    released.wait();
    return std::string{};
  });

  InProcessTransport transport(registry, jobs, config_);
  std::atomic<bool> give_up{true};
  try {
    transport.map(request("refA"), &give_up);
    FAIL() << "a given-up attempt must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportErrorKind::kCancelled);
  }
  release.set_value();

  EXPECT_EQ(jobs.stats().cancelled.value(), 1u);
  const auto retained = jobs.list();
  bool saw_hedge_lost = false;
  for (const auto& record : retained) {
    if (record.cancel_reason == "hedge-lost") saw_hedge_lost = true;
  }
  EXPECT_TRUE(saw_hedge_lost) << "the cancel must be attributed to the hedge";
}

class FleetHttpTransportTest : public FleetTransportTest {
 protected:
  void SetUp() override {
    FleetTransportTest::SetUp();
    WebServiceOptions options;
    options.pipeline = config_;
    options.jobs.workers = 2;
    service_ = std::make_unique<WebService>(options);
    service_->start(0);

    client_ = std::make_shared<HttpClient>();
    FastaRecord ref{"refA", dna_decode_string(genome_)};
    const std::string fasta = format_fasta(std::span<const FastaRecord>(&ref, 1));
    const ClientResponse upload =
        client_->request("127.0.0.1", service_->port(), "POST", "/reference?name=refA", fasta);
    ASSERT_EQ(upload.status, 200);
  }

  void TearDown() override { service_->stop(); }

  std::unique_ptr<WebService> service_;
  std::shared_ptr<HttpClient> client_;
};

TEST_F(FleetHttpTransportTest, HttpMatchesInProcessByteForByte) {
  HttpMapTransport transport(client_, "127.0.0.1", service_->port());
  transport.set_poll_interval(std::chrono::milliseconds(1), std::chrono::milliseconds(5));
  EXPECT_EQ(transport.map(request("refA")), expected_sam_)
      << "replica-mapped SAM must match the local pipeline byte for byte";
}

TEST_F(FleetHttpTransportTest, HttpUnknownRefIsKBadRequestWith404) {
  HttpMapTransport transport(client_, "127.0.0.1", service_->port());
  try {
    transport.map(request("nope"));
    FAIL() << "unknown reference must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportErrorKind::kBadRequest);
    EXPECT_EQ(error.http_status(), 404);
  }
}

TEST_F(FleetHttpTransportTest, HttpGiveUpCancelsTheReplicaJob) {
  // Pin both replica workers so the submitted job stays queued until the
  // give-up DELETE lands.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  for (int i = 0; i < 2; ++i) {
    service_->jobs().submit("blocker", [released](const CancelToken&) {
      released.wait();
      return std::string{};
    });
  }

  HttpMapTransport transport(client_, "127.0.0.1", service_->port());
  transport.set_poll_interval(std::chrono::milliseconds(1), std::chrono::milliseconds(5));
  std::atomic<bool> give_up{true};
  try {
    transport.map(request("refA"), &give_up);
    FAIL() << "a given-up attempt must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportErrorKind::kCancelled);
  }
  release.set_value();

  // The acceptance check: the replica's cancel accounting moved, tagged
  // with the hedge reason.
  const ClientResponse metrics =
      client_->request("127.0.0.1", service_->port(), "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("bwaver_jobs_cancel_requests_total{reason=\"hedge-lost\"}"),
            std::string::npos)
      << metrics.body;
}

}  // namespace
}  // namespace bwaver::fleet
