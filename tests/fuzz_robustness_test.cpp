// Failure-injection / fuzz robustness: malformed and random inputs into
// every parser and loader must raise typed exceptions (IoError/GzipError /
// std::invalid_argument), never crash, hang, or silently succeed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fpga/query_packet.hpp"
#include "io/byte_io.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "io/gzip.hpp"
#include "mapper/pipeline.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

TEST(Fuzz, InflateRandomGarbageThrowsOrReturns) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto garbage = random_bytes(1 + seed % 300, seed);
    try {
      const auto out = inflate(garbage);
      // Rarely, random bytes form a tiny valid stream — that is fine.
      (void)out;
    } catch (const GzipError&) {
      // expected for almost all inputs
    }
  }
}

TEST(Fuzz, GzipRandomGarbageThrows) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    auto garbage = random_bytes(20 + seed % 200, seed + 1000);
    EXPECT_THROW(gzip_decompress(garbage), GzipError) << "seed=" << seed;
    // With valid magic bytes the parser must still fail cleanly.
    garbage[0] = 0x1f;
    garbage[1] = 0x8b;
    garbage[2] = 8;
    try {
      gzip_decompress(garbage);
    } catch (const GzipError&) {
    }
  }
}

TEST(Fuzz, TruncatedValidGzipAlwaysThrows) {
  const auto payload = random_bytes(5000, 42);
  const auto compressed = gzip_compress(payload);
  for (std::size_t cut = 1; cut < compressed.size(); cut += 7) {
    std::vector<std::uint8_t> truncated(compressed.begin(), compressed.begin() + cut);
    EXPECT_THROW(gzip_decompress(truncated), GzipError) << "cut=" << cut;
  }
}

TEST(Fuzz, BitflippedGzipNeverSucceedsSilently) {
  const auto payload = random_bytes(2000, 43);
  const auto compressed = gzip_compress(payload);
  Xoshiro256 rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = compressed;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      const auto out = gzip_decompress(corrupted);
      // If decode "succeeded", CRC must have caught any payload change —
      // so the output must equal the original (the flip hit a headers-only
      // bit that decodes identically, which cannot alter the payload).
      ASSERT_EQ(out, payload);
    } catch (const GzipError&) {
      // expected for most flips
    }
  }
}

TEST(Fuzz, FastaParserRandomGarbage) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto garbage = random_bytes(200, seed + 2000);
    try {
      const auto records = parse_fasta(garbage);
      for (const auto& record : records) {
        ASSERT_FALSE(record.sequence.empty());
      }
    } catch (const IoError&) {
    }
  }
}

TEST(Fuzz, FastqParserRandomGarbage) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto garbage = random_bytes(200, seed + 3000);
    try {
      const auto records = parse_fastq(garbage);
      for (const auto& record : records) {
        ASSERT_EQ(record.sequence.size(), record.quality.size());
      }
    } catch (const IoError&) {
    }
  }
}

TEST(Fuzz, IndexLoadRandomGarbage) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto garbage = random_bytes(100 + seed, seed + 4000);
    ByteReader reader(garbage);
    EXPECT_THROW(FmIndex<SampledOcc>::load(reader), IoError) << "seed=" << seed;
  }
}

TEST(Fuzz, RrrLoadRandomGarbage) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto garbage = random_bytes(64, seed + 5000);
    ByteReader reader(garbage);
    try {
      RrrVector::load(reader);
    } catch (const IoError&) {
    }
  }
}

TEST(Fuzz, QueryPacketRandomRawDecode) {
  Xoshiro256 rng(6000);
  for (int trial = 0; trial < 500; ++trial) {
    QueryPacket packet;
    for (auto& byte : packet.raw) byte = static_cast<std::uint8_t>(rng.below(256));
    try {
      const auto codes = packet.decode();
      ASSERT_GE(codes.size(), 1u);
      ASSERT_LE(codes.size(), QueryPacket::kMaxBases);
      for (std::uint8_t c : codes) ASSERT_LT(c, 4);
    } catch (const std::invalid_argument&) {
      // malformed length field
    }
  }
}

TEST(Fuzz, SearchNeverReadsOutOfBoundsOnAdversarialPatterns) {
  // Patterns of extreme composition against extreme references.
  const std::vector<std::uint8_t> homopolymer(2000, 0);
  const FmIndex<RrrWaveletOcc> index(
      homopolymer, [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  // All-A pattern: n - p + 1 occurrences.
  for (std::size_t len : {1u, 2u, 1999u, 2000u}) {
    const std::vector<std::uint8_t> pattern(len, 0);
    EXPECT_EQ(index.count(pattern).count(), homopolymer.size() - len + 1);
  }
  // Any pattern containing a non-A never matches.
  const std::vector<std::uint8_t> probe = {0, 0, 3, 0};
  EXPECT_TRUE(index.count(probe).empty());
}

TEST(Fuzz, PipelineRejectsTamperedIndexFiles) {
  // A structurally valid header with absurd counts must be rejected, not
  // trigger a gigantic allocation-and-crash.
  ByteWriter writer;
  writer.u32(0x52565742);
  writer.u32(2);
  writer.u64(1);  // one sequence
  writer.str("seq");
  writer.u32(0);
  writer.u32(1000);
  writer.u32(1000);   // text_length
  writer.u32(0);      // primary
  writer.u64(1u << 30);  // claims a gigabyte of BWT symbols follow

  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "bwaver_tampered.bwvr").string();
  write_file(path, writer.data());
  Pipeline pipeline;
  EXPECT_THROW(pipeline.encode(path), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bwaver
