// BidirFmIndex tests: synchronized extension against direct counting on
// both indexes, and the search-scheme engine differentially fuzzed against
// the branch recursion AND a naive text scan for k in {0, 1, 2}.
#include "fmindex/bidir_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "fmindex/approx_search.hpp"
#include "fmindex/occ_backends.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bwaver {
namespace {

BidirFmIndex<RrrWaveletOcc> make_bidir(std::span<const std::uint8_t> text) {
  return BidirFmIndex<RrrWaveletOcc>(text, [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  });
}

/// Sorted (position, mismatches) pairs from a hit list — interval order is
/// an implementation detail, the located set is the contract.
std::set<std::pair<std::uint32_t, std::uint8_t>> locate_hits(
    const FmIndex<RrrWaveletOcc>& index, std::span<const ApproxHit> hits) {
  std::set<std::pair<std::uint32_t, std::uint8_t>> out;
  for (const ApproxHit& hit : hits) {
    for (std::uint32_t row = hit.interval.lo; row < hit.interval.hi; ++row) {
      out.emplace(index.suffix_array()[row], hit.mismatches);
    }
  }
  return out;
}

/// Oracle: positions where text matches pattern with EXACTLY k substitutions.
std::set<std::pair<std::uint32_t, std::uint8_t>> naive_exact_k(
    std::span<const std::uint8_t> text, std::span<const std::uint8_t> pattern,
    unsigned k) {
  std::set<std::pair<std::uint32_t, std::uint8_t>> out;
  for (std::size_t pos = 0; pos + pattern.size() <= text.size(); ++pos) {
    unsigned mm = 0;
    for (std::size_t i = 0; i < pattern.size() && mm <= k; ++i) {
      mm += text[pos + i] != pattern[i];
    }
    if (mm == k) out.emplace(static_cast<std::uint32_t>(pos),
                             static_cast<std::uint8_t>(k));
  }
  return out;
}

TEST(BidirIndex, ExtensionMatchesDirectCountBothDirections) {
  const auto text = testing::random_symbols(4000, 4, 70);
  const auto bidir = make_bidir(text);
  Xoshiro256 rng(71);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t len = 3 + rng.below(12);
    const std::size_t start = rng.below(text.size() - len);
    const std::vector<std::uint8_t> pattern(text.begin() + start,
                                            text.begin() + start + len);
    // Grow the pattern character by character, alternating sides randomly,
    // tracking which substring [lo, hi) of `pattern` is matched so far.
    std::size_t lo = rng.below(len), hi = lo;
    BiInterval iv = bidir.full_interval();
    while (lo > 0 || hi < len) {
      const bool go_left = hi == len || (lo > 0 && rng.chance(0.5));
      if (go_left) {
        iv = bidir.extend_left(iv, pattern[--lo]);
      } else {
        iv = bidir.extend_right(iv, pattern[hi++]);
      }
      const std::span<const std::uint8_t> sub(pattern.data() + lo, hi - lo);
      ASSERT_EQ(iv.count(), bidir.forward().count(sub).count())
          << "trial " << trial << " [" << lo << ", " << hi << ")";
      // The reverse interval tracks reverse(sub) in the reverse index and
      // must always stay width-synchronized.
      ASSERT_EQ(iv.rev.count(), iv.fwd.count());
      std::vector<std::uint8_t> rsub(sub.rbegin(), sub.rend());
      ASSERT_EQ(iv.rev.count(), bidir.reverse().count(rsub).count());
    }
  }
}

TEST(BidirIndex, ExtendingByAnAbsentCharacterEmpties) {
  // Single-symbol text: extending by any other symbol must go empty, and
  // further extensions must stay empty.
  const std::vector<std::uint8_t> text(200, 2);
  const auto bidir = make_bidir(text);
  BiInterval iv = bidir.extend_left(bidir.full_interval(), 2);
  EXPECT_EQ(iv.count(), text.size());
  iv = bidir.extend_left(iv, 1);
  EXPECT_TRUE(iv.empty());
  EXPECT_TRUE(bidir.extend_right(iv, 2).empty());
}

TEST(BidirIndex, BorrowingConstructorRejectsSizeMismatch) {
  const auto text = testing::random_symbols(500, 4, 72);
  const auto builder = [](std::span<const std::uint8_t> bwt) {
    return RrrWaveletOcc(bwt, RrrParams{15, 50});
  };
  const FmIndex<RrrWaveletOcc> fwd(text, builder);
  const auto wrong = testing::random_symbols(499, 4, 73);
  EXPECT_THROW(BidirFmIndex<RrrWaveletOcc>(fwd, wrong, builder),
               std::invalid_argument);
}

TEST(BidirIndex, SchemesForExactRejectsLargeK) {
  EXPECT_EQ(schemes_for_exact(0).size(), 1u);
  EXPECT_EQ(schemes_for_exact(1).size(), 2u);
  EXPECT_EQ(schemes_for_exact(2).size(), 3u);
  EXPECT_THROW(schemes_for_exact(3), std::invalid_argument);
}

class SchemeFuzzK : public ::testing::TestWithParam<unsigned> {};

TEST_P(SchemeFuzzK, SchemeMatchesBranchAndNaiveScan) {
  const unsigned k = GetParam();
  const auto text = testing::random_symbols(3000, 4, 80 + k);
  const auto bidir = make_bidir(text);
  const FmIndex<RrrWaveletOcc>& fwd = bidir.forward();

  Xoshiro256 rng(81 + k);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = 1 + rng.below(24);
    std::vector<std::uint8_t> pattern;
    if (trial % 2 == 0 && len <= text.size()) {
      const std::size_t start = rng.below(text.size() - len + 1);
      pattern.assign(text.begin() + start, text.begin() + start + len);
      for (unsigned m = 0; m < k && !pattern.empty(); ++m) {
        const std::size_t at = rng.below(pattern.size());
        pattern[at] = static_cast<std::uint8_t>((pattern[at] + 1 + rng.below(3)) & 3);
      }
    } else {
      pattern = testing::random_symbols(len, 4, rng());
    }

    // Exactly-k strata one at a time...
    for (unsigned stratum = 0; stratum <= k; ++stratum) {
      std::vector<ApproxHit> scheme_hits;
      scheme_count_exact(bidir, pattern, stratum, scheme_hits);
      for (const ApproxHit& hit : scheme_hits) {
        EXPECT_EQ(hit.mismatches, stratum);
      }
      EXPECT_EQ(locate_hits(fwd, scheme_hits), naive_exact_k(text, pattern, stratum))
          << "trial " << trial << " stratum " << stratum << " len " << len;
    }

    // ...and the all-strata entry point against the branch recursion.
    const std::vector<ApproxHit> branch_hits = approx_count(fwd, pattern, k);
    const std::vector<ApproxHit> scheme_all = scheme_count(bidir, pattern, k);
    EXPECT_EQ(locate_hits(fwd, scheme_all), locate_hits(fwd, branch_hits))
        << "trial " << trial << " len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, SchemeFuzzK, ::testing::Values(0u, 1u, 2u));

TEST(BidirIndex, SchemeStatsCountStepsAndHits) {
  const auto text = testing::random_symbols(4000, 4, 90);
  const auto bidir = make_bidir(text);
  const std::size_t start = 1234;
  std::vector<std::uint8_t> pattern(text.begin() + start, text.begin() + start + 30);
  pattern[7] = static_cast<std::uint8_t>((pattern[7] + 1) & 3);

  ApproxStats branch_stats, scheme_stats;
  const auto branch = approx_count(bidir.forward(), pattern, 2, &branch_stats);
  const auto scheme = scheme_count(bidir, pattern, 2, &scheme_stats);
  EXPECT_EQ(locate_hits(bidir.forward(), scheme),
            locate_hits(bidir.forward(), branch));
  EXPECT_EQ(scheme_stats.hits, scheme.size());
  EXPECT_GT(scheme_stats.steps_executed, 0u);
  // The whole point: anchored schemes execute far fewer steps than the
  // branch-everywhere recursion on a mutated read.
  EXPECT_LT(scheme_stats.steps_executed, branch_stats.steps_executed);
}

TEST(BidirIndex, SchemeHitCapTruncatesAndFlags) {
  // Plant three DISTINCT 1-mismatch neighbors of the pattern (different
  // mutated positions => different strings => separate SA intervals), so
  // the exactly-1 stratum holds three hits and a cap of one must drop two.
  const auto pattern = testing::random_symbols(20, 4, 95);
  std::vector<std::uint8_t> text;
  Xoshiro256 rng(96);
  for (const std::size_t at : {std::size_t{3}, std::size_t{10}, std::size_t{15}}) {
    std::vector<std::uint8_t> neighbor(pattern.begin(), pattern.end());
    neighbor[at] = static_cast<std::uint8_t>((neighbor[at] + 1) & 3);
    text.insert(text.end(), neighbor.begin(), neighbor.end());
    for (int j = 0; j < 40; ++j) {
      text.push_back(static_cast<std::uint8_t>(rng.below(4)));
    }
  }
  const auto bidir = make_bidir(text);

  ApproxStats uncapped_stats;
  std::vector<ApproxHit> uncapped;
  scheme_count_exact(bidir, pattern, 1, uncapped, &uncapped_stats);
  ASSERT_GE(uncapped.size(), 3u);
  EXPECT_FALSE(uncapped_stats.truncated);

  ApproxStats stats;
  std::vector<ApproxHit> hits;
  scheme_count_exact(bidir, pattern, 1, hits, &stats, /*hit_cap=*/1);
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_TRUE(stats.truncated);
}

}  // namespace
}  // namespace bwaver
