#include "io/byte_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(reader.done());
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter writer;
  writer.u32(0x01020304);
  ASSERT_EQ(writer.data().size(), 4u);
  EXPECT_EQ(writer.data()[0], 0x04);
  EXPECT_EQ(writer.data()[3], 0x01);
}

TEST(ByteIo, VectorRoundTrip) {
  ByteWriter writer;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 255};
  const std::vector<std::uint32_t> ints = {0, 42, 0xFFFFFFFF};
  writer.vec_u8(bytes);
  writer.vec_u32(ints);
  writer.str("hello world");

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.vec_u8(), bytes);
  EXPECT_EQ(reader.vec_u32(), ints);
  EXPECT_EQ(reader.str(), "hello world");
  EXPECT_TRUE(reader.done());
}

TEST(ByteIo, EmptyVectorsRoundTrip) {
  ByteWriter writer;
  writer.vec_u8({});
  writer.vec_u32({});
  writer.str("");
  ByteReader reader(writer.data());
  EXPECT_TRUE(reader.vec_u8().empty());
  EXPECT_TRUE(reader.vec_u32().empty());
  EXPECT_TRUE(reader.str().empty());
}

TEST(ByteIo, TruncationThrows) {
  ByteWriter writer;
  writer.u32(7);
  {
    ByteReader reader(writer.data());
    reader.u16();
    EXPECT_THROW(reader.u32(), IoError);
  }
  {
    ByteReader reader(writer.data());
    EXPECT_THROW(reader.u64(), IoError);
  }
}

TEST(ByteIo, TruncatedVectorThrows) {
  ByteWriter writer;
  writer.u64(1000);  // claims 1000 bytes follow, none do
  ByteReader reader(writer.data());
  EXPECT_THROW(reader.vec_u8(), IoError);
}

TEST(ByteIo, BytesReadsExactSpan) {
  ByteWriter writer;
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  writer.bytes(payload);
  ByteReader reader(writer.data());
  std::vector<std::uint8_t> out(4);
  reader.bytes(out);
  EXPECT_EQ(out, payload);
}

TEST(ByteIo, FileRoundTrip) {
  const std::string path =
      (test::unique_test_dir("bwaver_byte_io_test") / "byte_io.bin").string();
  const std::vector<std::uint8_t> payload = {0, 1, 2, 3, 0xFF, 0x80};
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::remove(path.c_str());
}

TEST(ByteIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/not/here.bin"), IoError);
}

TEST(ByteIo, WriteToBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent/dir/file.bin",
                          std::span<const std::uint8_t>{}),
               IoError);
}

TEST(ByteIo, TakeMovesBuffer) {
  ByteWriter writer;
  writer.u32(5);
  auto data = writer.take();
  EXPECT_EQ(data.size(), 4u);
}

}  // namespace
}  // namespace bwaver
