#include "io/byte_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "io/checksum.hpp"
#include "io/mapped_file.hpp"
#include "test_temp_dir.hpp"

namespace bwaver {
namespace {

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(reader.done());
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter writer;
  writer.u32(0x01020304);
  ASSERT_EQ(writer.data().size(), 4u);
  EXPECT_EQ(writer.data()[0], 0x04);
  EXPECT_EQ(writer.data()[3], 0x01);
}

TEST(ByteIo, VectorRoundTrip) {
  ByteWriter writer;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 255};
  const std::vector<std::uint32_t> ints = {0, 42, 0xFFFFFFFF};
  writer.vec_u8(bytes);
  writer.vec_u32(ints);
  writer.str("hello world");

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.vec_u8(), bytes);
  EXPECT_EQ(reader.vec_u32(), ints);
  EXPECT_EQ(reader.str(), "hello world");
  EXPECT_TRUE(reader.done());
}

TEST(ByteIo, EmptyVectorsRoundTrip) {
  ByteWriter writer;
  writer.vec_u8({});
  writer.vec_u32({});
  writer.str("");
  ByteReader reader(writer.data());
  EXPECT_TRUE(reader.vec_u8().empty());
  EXPECT_TRUE(reader.vec_u32().empty());
  EXPECT_TRUE(reader.str().empty());
}

TEST(ByteIo, TruncationThrows) {
  ByteWriter writer;
  writer.u32(7);
  {
    ByteReader reader(writer.data());
    reader.u16();
    EXPECT_THROW(reader.u32(), IoError);
  }
  {
    ByteReader reader(writer.data());
    EXPECT_THROW(reader.u64(), IoError);
  }
}

TEST(ByteIo, TruncatedVectorThrows) {
  ByteWriter writer;
  writer.u64(1000);  // claims 1000 bytes follow, none do
  ByteReader reader(writer.data());
  EXPECT_THROW(reader.vec_u8(), IoError);
}

TEST(ByteIo, BytesReadsExactSpan) {
  ByteWriter writer;
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  writer.bytes(payload);
  ByteReader reader(writer.data());
  std::vector<std::uint8_t> out(4);
  reader.bytes(out);
  EXPECT_EQ(out, payload);
}

TEST(ByteIo, FileRoundTrip) {
  const std::string path =
      (test::unique_test_dir("bwaver_byte_io_test") / "byte_io.bin").string();
  const std::vector<std::uint8_t> payload = {0, 1, 2, 3, 0xFF, 0x80};
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::remove(path.c_str());
}

TEST(ByteIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/not/here.bin"), IoError);
}

TEST(ByteIo, WriteToBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent/dir/file.bin",
                          std::span<const std::uint8_t>{}),
               IoError);
}

TEST(ByteIo, TakeMovesBuffer) {
  ByteWriter writer;
  writer.u32(5);
  auto data = writer.take();
  EXPECT_EQ(data.size(), 4u);
}

TEST(ByteIo, PadAndAlignRoundTripFlatArrays) {
  // The archive v3 layout: scalars, zero padding to 64, then raw elements.
  std::vector<std::uint32_t> values(37);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  ByteWriter writer;
  writer.u64(values.size());
  writer.pad_to(64);
  ASSERT_EQ(writer.size() % 64, 0u);
  writer.raw_u32(values);

  ByteReader reader(writer.data());
  const std::uint64_t count = reader.u64();
  reader.align_to(64);
  EXPECT_EQ(reader.offset() % 64, 0u);
  const std::span<const std::uint32_t> view =
      reader.span_u32(static_cast<std::size_t>(count));
  ASSERT_EQ(view.size(), values.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), values.begin()));
  EXPECT_TRUE(reader.done());
}

TEST(ByteIo, MisalignedSpanThrows) {
  ByteWriter writer;
  writer.u8(1);  // position 1: not 4-byte aligned
  writer.raw_u32(std::vector<std::uint32_t>{42});
  ByteReader reader(writer.data(), "bwt", 640);
  reader.u8();
  try {
    reader.span_u32(1);
    FAIL() << "misaligned span_u32 accepted";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("misaligned"), std::string::npos) << what;
    EXPECT_NE(what.find("bwt"), std::string::npos) << what;
  }
}

TEST(ByteIo, ContextualErrorsNameSectionAndFileOffset) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  ByteReader reader(bytes, "kmer", 1024);
  reader.u16();  // pos 2, absolute offset 1026
  try {
    reader.u32();
    FAIL() << "truncated read accepted";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("section 'kmer'"), std::string::npos) << what;
    EXPECT_NE(what.find("1026"), std::string::npos) << what;
  }

  // Without a context the message stays the plain legacy form.
  ByteReader plain(bytes);
  try {
    plain.u64();
    FAIL() << "truncated read accepted";
  } catch (const IoError& e) {
    EXPECT_EQ(std::string(e.what()).find("section"), std::string::npos)
        << e.what();
  }
}

TEST(ByteIo, AlignPastEndThrows) {
  const std::vector<std::uint8_t> bytes(10);
  ByteReader reader(bytes, "sa", 0);
  reader.bytes(std::span<std::uint8_t>());
  reader.u64();
  EXPECT_THROW(reader.align_to(64), IoError);
}

TEST(Checksum, AcceleratedKernelMatchesPortableAcrossSizes) {
  // Sizes straddle the >=128-byte dispatch threshold of the PCLMULQDQ
  // folding kernel, plus every small tail length after the folded body.
  std::vector<std::uint8_t> data(4096 + 3);
  std::uint32_t state = 0x9E3779B9u;
  for (auto& byte : data) {
    state = state * 1664525u + 1013904223u;
    byte = static_cast<std::uint8_t>(state >> 24);
  }
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{63},
        std::size_t{64}, std::size_t{127}, std::size_t{128}, std::size_t{129},
        std::size_t{255}, std::size_t{256}, std::size_t{1000},
        std::size_t{4096}, data.size()}) {
    const std::span<const std::uint8_t> span(data.data(), size);
    EXPECT_EQ(crc32_ieee(span), crc32_ieee_portable(span)) << "size " << size;
    // Seeded/incremental form must agree too.
    EXPECT_EQ(crc32_ieee(span, 0xDEADBEEFu),
              crc32_ieee_portable(span, 0xDEADBEEFu))
        << "size " << size;
  }
}

TEST(Checksum, UnalignedStartMatchesPortable) {
  std::vector<std::uint8_t> data(512);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (std::size_t shift = 1; shift < 16; ++shift) {
    const std::span<const std::uint8_t> span(data.data() + shift,
                                             data.size() - shift);
    EXPECT_EQ(crc32_ieee(span), crc32_ieee_portable(span)) << "shift " << shift;
  }
}

TEST(MappedFileTest, MapsBytesIdenticallyToRead) {
  const auto dir = test::unique_test_dir("bwaver_mapped_file_test");
  const std::string path = (dir / "blob.bin").string();
  std::vector<std::uint8_t> payload(8192);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 7));
  }
  write_file(path, payload);

  MappedFile file(path);
  ASSERT_EQ(file.size(), payload.size());
  EXPECT_EQ(std::memcmp(file.bytes().data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(file.path(), path);
  file.advise(MappedFile::Advice::kSequential);
  file.advise(MappedFile::Advice::kRandom);

  // Moving transfers the mapping; the source becomes empty.
  MappedFile moved(std::move(file));
  EXPECT_EQ(moved.size(), payload.size());
  EXPECT_EQ(file.size(), 0u);

  std::filesystem::remove_all(dir);
}

TEST(MappedFileTest, MissingFileThrowsAndEmptyFileMapsEmpty) {
  EXPECT_THROW(MappedFile("/nonexistent/definitely/not/here.bin"), IoError);

  const auto dir = test::unique_test_dir("bwaver_mapped_file_test");
  const std::string path = (dir / "empty.bin").string();
  write_file(path, std::span<const std::uint8_t>{});
  MappedFile file(path);
  EXPECT_EQ(file.size(), 0u);
  EXPECT_TRUE(file.bytes().empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bwaver
