#include "jobs/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace bwaver {
namespace {

TEST(JobQueue, PushPopFifoWithinBand) {
  JobQueue<int> queue(8);
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(JobQueue, PriorityBandsServedInOrder) {
  JobQueue<int> queue(8);
  queue.push(30, JobPriority::kLow);
  queue.push(20, JobPriority::kNormal);
  queue.push(10, JobPriority::kHigh);
  queue.push(21, JobPriority::kNormal);
  queue.push(11, JobPriority::kHigh);
  EXPECT_EQ(queue.pop().value(), 10);
  EXPECT_EQ(queue.pop().value(), 11);
  EXPECT_EQ(queue.pop().value(), 20);
  EXPECT_EQ(queue.pop().value(), 21);
  EXPECT_EQ(queue.pop().value(), 30);
}

TEST(JobQueue, CapacityIsHardAcrossBands) {
  JobQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1, JobPriority::kHigh));
  EXPECT_TRUE(queue.try_push(2, JobPriority::kLow));
  EXPECT_FALSE(queue.try_push(3, JobPriority::kHigh));
  EXPECT_THROW(queue.push(3), QueueFull);
  // The typed error carries the capacity for the Retry-After message.
  try {
    queue.push(3);
    FAIL() << "expected QueueFull";
  } catch (const QueueFull& e) {
    EXPECT_EQ(e.capacity, 2u);
  }
  queue.pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(JobQueue, ZeroCapacityClampsToOne) {
  JobQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_FALSE(queue.try_push(2));
}

TEST(JobQueue, CloseWakesBlockedPopAndDrains) {
  JobQueue<int> queue(4);
  queue.push(7);
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  EXPECT_EQ(queue.pop().value(), 7);  // item before close
  EXPECT_EQ(queue.pop(), std::nullopt);  // blocked until close fires
  closer.join();
  EXPECT_THROW(queue.push(8), std::runtime_error);
}

TEST(JobQueue, TryPopNonBlocking) {
  JobQueue<int> queue(4);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  queue.push(5);
  EXPECT_EQ(queue.try_pop().value(), 5);
}

// Satellite requirement: many producers push far beyond capacity while
// consumers drain; accepted + rejected must account for every attempt and
// every accepted item must be popped exactly once.
TEST(JobQueue, MpmcStressExactAccounting) {
  constexpr std::size_t kCapacity = 16;
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 500;

  JobQueue<std::uint64_t> queue(kCapacity);
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t token = p * kPerProducer + i;
        const auto priority = static_cast<JobPriority>(token % 3);
        if (queue.try_push(token, priority)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }

  std::mutex popped_mutex;
  std::set<std::uint64_t> popped;
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        std::lock_guard<std::mutex> lock(popped_mutex);
        EXPECT_TRUE(popped.insert(*item).second) << "duplicate pop of " << *item;
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_GT(rejected.load(), 0u) << "stress never saturated the queue";
  EXPECT_EQ(popped.size(), accepted.load());
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace bwaver
