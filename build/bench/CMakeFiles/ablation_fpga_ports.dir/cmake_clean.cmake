file(REMOVE_RECURSE
  "CMakeFiles/ablation_fpga_ports.dir/ablation_fpga_ports.cpp.o"
  "CMakeFiles/ablation_fpga_ports.dir/ablation_fpga_ports.cpp.o.d"
  "ablation_fpga_ports"
  "ablation_fpga_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fpga_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
