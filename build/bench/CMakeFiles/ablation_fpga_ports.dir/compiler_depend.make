# Empty compiler generated dependencies file for ablation_fpga_ports.
# This may be replaced when dependencies are built.
