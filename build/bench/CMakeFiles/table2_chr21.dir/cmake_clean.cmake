file(REMOVE_RECURSE
  "CMakeFiles/table2_chr21.dir/table2_chr21.cpp.o"
  "CMakeFiles/table2_chr21.dir/table2_chr21.cpp.o.d"
  "table2_chr21"
  "table2_chr21.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_chr21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
