# Empty dependencies file for table2_chr21.
# This may be replaced when dependencies are built.
