file(REMOVE_RECURSE
  "CMakeFiles/ablation_locate.dir/ablation_locate.cpp.o"
  "CMakeFiles/ablation_locate.dir/ablation_locate.cpp.o.d"
  "ablation_locate"
  "ablation_locate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
