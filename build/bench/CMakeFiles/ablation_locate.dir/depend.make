# Empty dependencies file for ablation_locate.
# This may be replaced when dependencies are built.
