# Empty dependencies file for table1_ecoli.
# This may be replaced when dependencies are built.
