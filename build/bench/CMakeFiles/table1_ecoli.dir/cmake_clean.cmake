file(REMOVE_RECURSE
  "CMakeFiles/table1_ecoli.dir/table1_ecoli.cpp.o"
  "CMakeFiles/table1_ecoli.dir/table1_ecoli.cpp.o.d"
  "table1_ecoli"
  "table1_ecoli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ecoli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
