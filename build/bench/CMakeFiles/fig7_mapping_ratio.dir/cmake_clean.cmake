file(REMOVE_RECURSE
  "CMakeFiles/fig7_mapping_ratio.dir/fig7_mapping_ratio.cpp.o"
  "CMakeFiles/fig7_mapping_ratio.dir/fig7_mapping_ratio.cpp.o.d"
  "fig7_mapping_ratio"
  "fig7_mapping_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mapping_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
