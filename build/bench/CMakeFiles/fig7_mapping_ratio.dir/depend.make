# Empty dependencies file for fig7_mapping_ratio.
# This may be replaced when dependencies are built.
