# Empty dependencies file for fig6_build_time.
# This may be replaced when dependencies are built.
