# Empty dependencies file for fig5_structure_size.
# This may be replaced when dependencies are built.
