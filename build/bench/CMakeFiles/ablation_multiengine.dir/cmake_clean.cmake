file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiengine.dir/ablation_multiengine.cpp.o"
  "CMakeFiles/ablation_multiengine.dir/ablation_multiengine.cpp.o.d"
  "ablation_multiengine"
  "ablation_multiengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
