# Empty compiler generated dependencies file for ablation_multiengine.
# This may be replaced when dependencies are built.
