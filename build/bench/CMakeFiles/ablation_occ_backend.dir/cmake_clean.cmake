file(REMOVE_RECURSE
  "CMakeFiles/ablation_occ_backend.dir/ablation_occ_backend.cpp.o"
  "CMakeFiles/ablation_occ_backend.dir/ablation_occ_backend.cpp.o.d"
  "ablation_occ_backend"
  "ablation_occ_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_occ_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
