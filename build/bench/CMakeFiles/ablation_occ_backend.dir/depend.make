# Empty dependencies file for ablation_occ_backend.
# This may be replaced when dependencies are built.
