
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_occ_backend.cpp" "bench/CMakeFiles/ablation_occ_backend.dir/ablation_occ_backend.cpp.o" "gcc" "bench/CMakeFiles/ablation_occ_backend.dir/ablation_occ_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/bwaver_app.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/bwaver_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bwaver_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/bwaver_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/fmindex/CMakeFiles/bwaver_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/succinct/CMakeFiles/bwaver_succinct.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bwaver_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwaver_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
