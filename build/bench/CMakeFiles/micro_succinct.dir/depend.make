# Empty dependencies file for micro_succinct.
# This may be replaced when dependencies are built.
