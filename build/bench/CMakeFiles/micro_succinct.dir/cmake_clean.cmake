file(REMOVE_RECURSE
  "CMakeFiles/micro_succinct.dir/micro_succinct.cpp.o"
  "CMakeFiles/micro_succinct.dir/micro_succinct.cpp.o.d"
  "micro_succinct"
  "micro_succinct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_succinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
