# Empty dependencies file for ablation_approx.
# This may be replaced when dependencies are built.
