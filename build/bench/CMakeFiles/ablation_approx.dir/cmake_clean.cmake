file(REMOVE_RECURSE
  "CMakeFiles/ablation_approx.dir/ablation_approx.cpp.o"
  "CMakeFiles/ablation_approx.dir/ablation_approx.cpp.o.d"
  "ablation_approx"
  "ablation_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
