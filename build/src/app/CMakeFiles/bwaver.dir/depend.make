# Empty dependencies file for bwaver.
# This may be replaced when dependencies are built.
