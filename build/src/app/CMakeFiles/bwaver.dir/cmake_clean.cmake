file(REMOVE_RECURSE
  "CMakeFiles/bwaver.dir/bwaver_main.cpp.o"
  "CMakeFiles/bwaver.dir/bwaver_main.cpp.o.d"
  "bwaver"
  "bwaver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
