# Empty compiler generated dependencies file for bwaver_app.
# This may be replaced when dependencies are built.
