file(REMOVE_RECURSE
  "CMakeFiles/bwaver_app.dir/cli.cpp.o"
  "CMakeFiles/bwaver_app.dir/cli.cpp.o.d"
  "CMakeFiles/bwaver_app.dir/http_server.cpp.o"
  "CMakeFiles/bwaver_app.dir/http_server.cpp.o.d"
  "CMakeFiles/bwaver_app.dir/web_service.cpp.o"
  "CMakeFiles/bwaver_app.dir/web_service.cpp.o.d"
  "libbwaver_app.a"
  "libbwaver_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
