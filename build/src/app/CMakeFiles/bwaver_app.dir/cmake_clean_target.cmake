file(REMOVE_RECURSE
  "libbwaver_app.a"
)
