file(REMOVE_RECURSE
  "CMakeFiles/bwaver_sim.dir/genome_sim.cpp.o"
  "CMakeFiles/bwaver_sim.dir/genome_sim.cpp.o.d"
  "CMakeFiles/bwaver_sim.dir/read_sim.cpp.o"
  "CMakeFiles/bwaver_sim.dir/read_sim.cpp.o.d"
  "libbwaver_sim.a"
  "libbwaver_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
