file(REMOVE_RECURSE
  "libbwaver_sim.a"
)
