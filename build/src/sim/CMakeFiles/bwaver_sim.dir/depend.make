# Empty dependencies file for bwaver_sim.
# This may be replaced when dependencies are built.
