file(REMOVE_RECURSE
  "CMakeFiles/bwaver_fm.dir/bwt.cpp.o"
  "CMakeFiles/bwaver_fm.dir/bwt.cpp.o.d"
  "CMakeFiles/bwaver_fm.dir/dna.cpp.o"
  "CMakeFiles/bwaver_fm.dir/dna.cpp.o.d"
  "CMakeFiles/bwaver_fm.dir/index_stats.cpp.o"
  "CMakeFiles/bwaver_fm.dir/index_stats.cpp.o.d"
  "CMakeFiles/bwaver_fm.dir/occ_backends.cpp.o"
  "CMakeFiles/bwaver_fm.dir/occ_backends.cpp.o.d"
  "CMakeFiles/bwaver_fm.dir/reference_set.cpp.o"
  "CMakeFiles/bwaver_fm.dir/reference_set.cpp.o.d"
  "CMakeFiles/bwaver_fm.dir/suffix_array.cpp.o"
  "CMakeFiles/bwaver_fm.dir/suffix_array.cpp.o.d"
  "libbwaver_fm.a"
  "libbwaver_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
