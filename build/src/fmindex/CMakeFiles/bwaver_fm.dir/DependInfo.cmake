
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fmindex/bwt.cpp" "src/fmindex/CMakeFiles/bwaver_fm.dir/bwt.cpp.o" "gcc" "src/fmindex/CMakeFiles/bwaver_fm.dir/bwt.cpp.o.d"
  "/root/repo/src/fmindex/dna.cpp" "src/fmindex/CMakeFiles/bwaver_fm.dir/dna.cpp.o" "gcc" "src/fmindex/CMakeFiles/bwaver_fm.dir/dna.cpp.o.d"
  "/root/repo/src/fmindex/index_stats.cpp" "src/fmindex/CMakeFiles/bwaver_fm.dir/index_stats.cpp.o" "gcc" "src/fmindex/CMakeFiles/bwaver_fm.dir/index_stats.cpp.o.d"
  "/root/repo/src/fmindex/occ_backends.cpp" "src/fmindex/CMakeFiles/bwaver_fm.dir/occ_backends.cpp.o" "gcc" "src/fmindex/CMakeFiles/bwaver_fm.dir/occ_backends.cpp.o.d"
  "/root/repo/src/fmindex/reference_set.cpp" "src/fmindex/CMakeFiles/bwaver_fm.dir/reference_set.cpp.o" "gcc" "src/fmindex/CMakeFiles/bwaver_fm.dir/reference_set.cpp.o.d"
  "/root/repo/src/fmindex/suffix_array.cpp" "src/fmindex/CMakeFiles/bwaver_fm.dir/suffix_array.cpp.o" "gcc" "src/fmindex/CMakeFiles/bwaver_fm.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/succinct/CMakeFiles/bwaver_succinct.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwaver_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bwaver_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
