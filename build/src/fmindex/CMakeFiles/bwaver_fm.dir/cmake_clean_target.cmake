file(REMOVE_RECURSE
  "libbwaver_fm.a"
)
