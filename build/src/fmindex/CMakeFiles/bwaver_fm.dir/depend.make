# Empty dependencies file for bwaver_fm.
# This may be replaced when dependencies are built.
