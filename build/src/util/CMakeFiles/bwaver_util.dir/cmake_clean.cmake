file(REMOVE_RECURSE
  "CMakeFiles/bwaver_util.dir/binomial.cpp.o"
  "CMakeFiles/bwaver_util.dir/binomial.cpp.o.d"
  "CMakeFiles/bwaver_util.dir/logging.cpp.o"
  "CMakeFiles/bwaver_util.dir/logging.cpp.o.d"
  "CMakeFiles/bwaver_util.dir/thread_pool.cpp.o"
  "CMakeFiles/bwaver_util.dir/thread_pool.cpp.o.d"
  "libbwaver_util.a"
  "libbwaver_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
