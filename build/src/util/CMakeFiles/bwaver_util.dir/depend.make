# Empty dependencies file for bwaver_util.
# This may be replaced when dependencies are built.
