file(REMOVE_RECURSE
  "libbwaver_util.a"
)
