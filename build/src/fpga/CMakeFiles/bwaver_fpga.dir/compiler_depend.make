# Empty compiler generated dependencies file for bwaver_fpga.
# This may be replaced when dependencies are built.
