file(REMOVE_RECURSE
  "libbwaver_fpga.a"
)
