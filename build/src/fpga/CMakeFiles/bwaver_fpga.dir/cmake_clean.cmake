file(REMOVE_RECURSE
  "CMakeFiles/bwaver_fpga.dir/bram.cpp.o"
  "CMakeFiles/bwaver_fpga.dir/bram.cpp.o.d"
  "CMakeFiles/bwaver_fpga.dir/hls_kernel.cpp.o"
  "CMakeFiles/bwaver_fpga.dir/hls_kernel.cpp.o.d"
  "CMakeFiles/bwaver_fpga.dir/runtime.cpp.o"
  "CMakeFiles/bwaver_fpga.dir/runtime.cpp.o.d"
  "libbwaver_fpga.a"
  "libbwaver_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
