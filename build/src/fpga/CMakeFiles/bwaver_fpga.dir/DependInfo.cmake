
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bram.cpp" "src/fpga/CMakeFiles/bwaver_fpga.dir/bram.cpp.o" "gcc" "src/fpga/CMakeFiles/bwaver_fpga.dir/bram.cpp.o.d"
  "/root/repo/src/fpga/hls_kernel.cpp" "src/fpga/CMakeFiles/bwaver_fpga.dir/hls_kernel.cpp.o" "gcc" "src/fpga/CMakeFiles/bwaver_fpga.dir/hls_kernel.cpp.o.d"
  "/root/repo/src/fpga/runtime.cpp" "src/fpga/CMakeFiles/bwaver_fpga.dir/runtime.cpp.o" "gcc" "src/fpga/CMakeFiles/bwaver_fpga.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fmindex/CMakeFiles/bwaver_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwaver_util.dir/DependInfo.cmake"
  "/root/repo/build/src/succinct/CMakeFiles/bwaver_succinct.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bwaver_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
