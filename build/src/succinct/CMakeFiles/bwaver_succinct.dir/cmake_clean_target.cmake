file(REMOVE_RECURSE
  "libbwaver_succinct.a"
)
