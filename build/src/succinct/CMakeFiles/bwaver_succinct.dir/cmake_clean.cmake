file(REMOVE_RECURSE
  "CMakeFiles/bwaver_succinct.dir/bitvector.cpp.o"
  "CMakeFiles/bwaver_succinct.dir/bitvector.cpp.o.d"
  "CMakeFiles/bwaver_succinct.dir/global_rank_table.cpp.o"
  "CMakeFiles/bwaver_succinct.dir/global_rank_table.cpp.o.d"
  "CMakeFiles/bwaver_succinct.dir/header_body_vector.cpp.o"
  "CMakeFiles/bwaver_succinct.dir/header_body_vector.cpp.o.d"
  "CMakeFiles/bwaver_succinct.dir/int_vector.cpp.o"
  "CMakeFiles/bwaver_succinct.dir/int_vector.cpp.o.d"
  "CMakeFiles/bwaver_succinct.dir/rank_support.cpp.o"
  "CMakeFiles/bwaver_succinct.dir/rank_support.cpp.o.d"
  "CMakeFiles/bwaver_succinct.dir/rrr_vector.cpp.o"
  "CMakeFiles/bwaver_succinct.dir/rrr_vector.cpp.o.d"
  "libbwaver_succinct.a"
  "libbwaver_succinct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_succinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
