# Empty dependencies file for bwaver_succinct.
# This may be replaced when dependencies are built.
