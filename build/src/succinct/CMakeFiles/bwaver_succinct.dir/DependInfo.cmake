
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/succinct/bitvector.cpp" "src/succinct/CMakeFiles/bwaver_succinct.dir/bitvector.cpp.o" "gcc" "src/succinct/CMakeFiles/bwaver_succinct.dir/bitvector.cpp.o.d"
  "/root/repo/src/succinct/global_rank_table.cpp" "src/succinct/CMakeFiles/bwaver_succinct.dir/global_rank_table.cpp.o" "gcc" "src/succinct/CMakeFiles/bwaver_succinct.dir/global_rank_table.cpp.o.d"
  "/root/repo/src/succinct/header_body_vector.cpp" "src/succinct/CMakeFiles/bwaver_succinct.dir/header_body_vector.cpp.o" "gcc" "src/succinct/CMakeFiles/bwaver_succinct.dir/header_body_vector.cpp.o.d"
  "/root/repo/src/succinct/int_vector.cpp" "src/succinct/CMakeFiles/bwaver_succinct.dir/int_vector.cpp.o" "gcc" "src/succinct/CMakeFiles/bwaver_succinct.dir/int_vector.cpp.o.d"
  "/root/repo/src/succinct/rank_support.cpp" "src/succinct/CMakeFiles/bwaver_succinct.dir/rank_support.cpp.o" "gcc" "src/succinct/CMakeFiles/bwaver_succinct.dir/rank_support.cpp.o.d"
  "/root/repo/src/succinct/rrr_vector.cpp" "src/succinct/CMakeFiles/bwaver_succinct.dir/rrr_vector.cpp.o" "gcc" "src/succinct/CMakeFiles/bwaver_succinct.dir/rrr_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/bwaver_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwaver_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
