# CMake generated Testfile for 
# Source directory: /root/repo/src/succinct
# Build directory: /root/repo/build/src/succinct
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
