# Empty dependencies file for bwaver_io.
# This may be replaced when dependencies are built.
