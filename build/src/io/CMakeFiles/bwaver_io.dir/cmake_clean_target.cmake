file(REMOVE_RECURSE
  "libbwaver_io.a"
)
