
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/byte_io.cpp" "src/io/CMakeFiles/bwaver_io.dir/byte_io.cpp.o" "gcc" "src/io/CMakeFiles/bwaver_io.dir/byte_io.cpp.o.d"
  "/root/repo/src/io/fasta.cpp" "src/io/CMakeFiles/bwaver_io.dir/fasta.cpp.o" "gcc" "src/io/CMakeFiles/bwaver_io.dir/fasta.cpp.o.d"
  "/root/repo/src/io/fastq.cpp" "src/io/CMakeFiles/bwaver_io.dir/fastq.cpp.o" "gcc" "src/io/CMakeFiles/bwaver_io.dir/fastq.cpp.o.d"
  "/root/repo/src/io/gzip.cpp" "src/io/CMakeFiles/bwaver_io.dir/gzip.cpp.o" "gcc" "src/io/CMakeFiles/bwaver_io.dir/gzip.cpp.o.d"
  "/root/repo/src/io/sam.cpp" "src/io/CMakeFiles/bwaver_io.dir/sam.cpp.o" "gcc" "src/io/CMakeFiles/bwaver_io.dir/sam.cpp.o.d"
  "/root/repo/src/io/streaming.cpp" "src/io/CMakeFiles/bwaver_io.dir/streaming.cpp.o" "gcc" "src/io/CMakeFiles/bwaver_io.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bwaver_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
