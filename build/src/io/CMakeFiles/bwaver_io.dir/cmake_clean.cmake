file(REMOVE_RECURSE
  "CMakeFiles/bwaver_io.dir/byte_io.cpp.o"
  "CMakeFiles/bwaver_io.dir/byte_io.cpp.o.d"
  "CMakeFiles/bwaver_io.dir/fasta.cpp.o"
  "CMakeFiles/bwaver_io.dir/fasta.cpp.o.d"
  "CMakeFiles/bwaver_io.dir/fastq.cpp.o"
  "CMakeFiles/bwaver_io.dir/fastq.cpp.o.d"
  "CMakeFiles/bwaver_io.dir/gzip.cpp.o"
  "CMakeFiles/bwaver_io.dir/gzip.cpp.o.d"
  "CMakeFiles/bwaver_io.dir/sam.cpp.o"
  "CMakeFiles/bwaver_io.dir/sam.cpp.o.d"
  "CMakeFiles/bwaver_io.dir/streaming.cpp.o"
  "CMakeFiles/bwaver_io.dir/streaming.cpp.o.d"
  "libbwaver_io.a"
  "libbwaver_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
