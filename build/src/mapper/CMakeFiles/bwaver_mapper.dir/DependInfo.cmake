
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/fpga_mapper.cpp" "src/mapper/CMakeFiles/bwaver_mapper.dir/fpga_mapper.cpp.o" "gcc" "src/mapper/CMakeFiles/bwaver_mapper.dir/fpga_mapper.cpp.o.d"
  "/root/repo/src/mapper/paired_end.cpp" "src/mapper/CMakeFiles/bwaver_mapper.dir/paired_end.cpp.o" "gcc" "src/mapper/CMakeFiles/bwaver_mapper.dir/paired_end.cpp.o.d"
  "/root/repo/src/mapper/pipeline.cpp" "src/mapper/CMakeFiles/bwaver_mapper.dir/pipeline.cpp.o" "gcc" "src/mapper/CMakeFiles/bwaver_mapper.dir/pipeline.cpp.o.d"
  "/root/repo/src/mapper/read_batch.cpp" "src/mapper/CMakeFiles/bwaver_mapper.dir/read_batch.cpp.o" "gcc" "src/mapper/CMakeFiles/bwaver_mapper.dir/read_batch.cpp.o.d"
  "/root/repo/src/mapper/software_mapper.cpp" "src/mapper/CMakeFiles/bwaver_mapper.dir/software_mapper.cpp.o" "gcc" "src/mapper/CMakeFiles/bwaver_mapper.dir/software_mapper.cpp.o.d"
  "/root/repo/src/mapper/staged_mapper.cpp" "src/mapper/CMakeFiles/bwaver_mapper.dir/staged_mapper.cpp.o" "gcc" "src/mapper/CMakeFiles/bwaver_mapper.dir/staged_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/bwaver_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/fmindex/CMakeFiles/bwaver_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bwaver_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bwaver_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwaver_util.dir/DependInfo.cmake"
  "/root/repo/build/src/succinct/CMakeFiles/bwaver_succinct.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
