# Empty compiler generated dependencies file for bwaver_mapper.
# This may be replaced when dependencies are built.
