file(REMOVE_RECURSE
  "libbwaver_mapper.a"
)
