file(REMOVE_RECURSE
  "CMakeFiles/bwaver_mapper.dir/fpga_mapper.cpp.o"
  "CMakeFiles/bwaver_mapper.dir/fpga_mapper.cpp.o.d"
  "CMakeFiles/bwaver_mapper.dir/paired_end.cpp.o"
  "CMakeFiles/bwaver_mapper.dir/paired_end.cpp.o.d"
  "CMakeFiles/bwaver_mapper.dir/pipeline.cpp.o"
  "CMakeFiles/bwaver_mapper.dir/pipeline.cpp.o.d"
  "CMakeFiles/bwaver_mapper.dir/read_batch.cpp.o"
  "CMakeFiles/bwaver_mapper.dir/read_batch.cpp.o.d"
  "CMakeFiles/bwaver_mapper.dir/software_mapper.cpp.o"
  "CMakeFiles/bwaver_mapper.dir/software_mapper.cpp.o.d"
  "CMakeFiles/bwaver_mapper.dir/staged_mapper.cpp.o"
  "CMakeFiles/bwaver_mapper.dir/staged_mapper.cpp.o.d"
  "libbwaver_mapper.a"
  "libbwaver_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwaver_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
