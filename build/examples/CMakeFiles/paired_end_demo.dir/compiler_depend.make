# Empty compiler generated dependencies file for paired_end_demo.
# This may be replaced when dependencies are built.
