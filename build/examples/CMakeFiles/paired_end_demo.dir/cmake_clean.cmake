file(REMOVE_RECURSE
  "CMakeFiles/paired_end_demo.dir/paired_end_demo.cpp.o"
  "CMakeFiles/paired_end_demo.dir/paired_end_demo.cpp.o.d"
  "paired_end_demo"
  "paired_end_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paired_end_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
