# Empty dependencies file for web_server_demo.
# This may be replaced when dependencies are built.
