file(REMOVE_RECURSE
  "CMakeFiles/web_server_demo.dir/web_server_demo.cpp.o"
  "CMakeFiles/web_server_demo.dir/web_server_demo.cpp.o.d"
  "web_server_demo"
  "web_server_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
