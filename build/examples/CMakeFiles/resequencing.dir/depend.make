# Empty dependencies file for resequencing.
# This may be replaced when dependencies are built.
