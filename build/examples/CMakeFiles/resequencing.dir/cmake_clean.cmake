file(REMOVE_RECURSE
  "CMakeFiles/resequencing.dir/resequencing.cpp.o"
  "CMakeFiles/resequencing.dir/resequencing.cpp.o.d"
  "resequencing"
  "resequencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resequencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
