# Empty dependencies file for seed_and_extend.
# This may be replaced when dependencies are built.
