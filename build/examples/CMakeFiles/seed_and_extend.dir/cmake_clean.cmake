file(REMOVE_RECURSE
  "CMakeFiles/seed_and_extend.dir/seed_and_extend.cpp.o"
  "CMakeFiles/seed_and_extend.dir/seed_and_extend.cpp.o.d"
  "seed_and_extend"
  "seed_and_extend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_and_extend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
