# Empty dependencies file for succinct_huffman_test.
# This may be replaced when dependencies are built.
