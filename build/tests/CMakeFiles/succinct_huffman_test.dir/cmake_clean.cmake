file(REMOVE_RECURSE
  "CMakeFiles/succinct_huffman_test.dir/succinct_huffman_test.cpp.o"
  "CMakeFiles/succinct_huffman_test.dir/succinct_huffman_test.cpp.o.d"
  "succinct_huffman_test"
  "succinct_huffman_test.pdb"
  "succinct_huffman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_huffman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
