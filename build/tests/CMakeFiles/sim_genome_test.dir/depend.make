# Empty dependencies file for sim_genome_test.
# This may be replaced when dependencies are built.
