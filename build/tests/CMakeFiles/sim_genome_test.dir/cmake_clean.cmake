file(REMOVE_RECURSE
  "CMakeFiles/sim_genome_test.dir/sim_genome_test.cpp.o"
  "CMakeFiles/sim_genome_test.dir/sim_genome_test.cpp.o.d"
  "sim_genome_test"
  "sim_genome_test.pdb"
  "sim_genome_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_genome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
