file(REMOVE_RECURSE
  "CMakeFiles/io_byte_test.dir/io_byte_test.cpp.o"
  "CMakeFiles/io_byte_test.dir/io_byte_test.cpp.o.d"
  "io_byte_test"
  "io_byte_test.pdb"
  "io_byte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_byte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
