# Empty dependencies file for io_byte_test.
# This may be replaced when dependencies are built.
