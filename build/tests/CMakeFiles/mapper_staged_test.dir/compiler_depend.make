# Empty compiler generated dependencies file for mapper_staged_test.
# This may be replaced when dependencies are built.
