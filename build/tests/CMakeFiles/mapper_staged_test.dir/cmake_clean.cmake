file(REMOVE_RECURSE
  "CMakeFiles/mapper_staged_test.dir/mapper_staged_test.cpp.o"
  "CMakeFiles/mapper_staged_test.dir/mapper_staged_test.cpp.o.d"
  "mapper_staged_test"
  "mapper_staged_test.pdb"
  "mapper_staged_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_staged_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
