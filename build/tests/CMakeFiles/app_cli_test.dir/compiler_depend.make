# Empty compiler generated dependencies file for app_cli_test.
# This may be replaced when dependencies are built.
