file(REMOVE_RECURSE
  "CMakeFiles/app_cli_test.dir/app_cli_test.cpp.o"
  "CMakeFiles/app_cli_test.dir/app_cli_test.cpp.o.d"
  "app_cli_test"
  "app_cli_test.pdb"
  "app_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
