file(REMOVE_RECURSE
  "CMakeFiles/succinct_header_body_test.dir/succinct_header_body_test.cpp.o"
  "CMakeFiles/succinct_header_body_test.dir/succinct_header_body_test.cpp.o.d"
  "succinct_header_body_test"
  "succinct_header_body_test.pdb"
  "succinct_header_body_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_header_body_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
