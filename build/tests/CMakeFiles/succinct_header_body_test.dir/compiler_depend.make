# Empty compiler generated dependencies file for succinct_header_body_test.
# This may be replaced when dependencies are built.
