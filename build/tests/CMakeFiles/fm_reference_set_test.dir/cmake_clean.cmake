file(REMOVE_RECURSE
  "CMakeFiles/fm_reference_set_test.dir/fm_reference_set_test.cpp.o"
  "CMakeFiles/fm_reference_set_test.dir/fm_reference_set_test.cpp.o.d"
  "fm_reference_set_test"
  "fm_reference_set_test.pdb"
  "fm_reference_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_reference_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
