# Empty dependencies file for fm_reference_set_test.
# This may be replaced when dependencies are built.
