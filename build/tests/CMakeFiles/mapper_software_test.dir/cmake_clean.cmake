file(REMOVE_RECURSE
  "CMakeFiles/mapper_software_test.dir/mapper_software_test.cpp.o"
  "CMakeFiles/mapper_software_test.dir/mapper_software_test.cpp.o.d"
  "mapper_software_test"
  "mapper_software_test.pdb"
  "mapper_software_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_software_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
