# Empty dependencies file for mapper_software_test.
# This may be replaced when dependencies are built.
