file(REMOVE_RECURSE
  "CMakeFiles/sim_read_test.dir/sim_read_test.cpp.o"
  "CMakeFiles/sim_read_test.dir/sim_read_test.cpp.o.d"
  "sim_read_test"
  "sim_read_test.pdb"
  "sim_read_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
