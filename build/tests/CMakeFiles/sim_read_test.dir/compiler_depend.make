# Empty compiler generated dependencies file for sim_read_test.
# This may be replaced when dependencies are built.
