file(REMOVE_RECURSE
  "CMakeFiles/app_http_test.dir/app_http_test.cpp.o"
  "CMakeFiles/app_http_test.dir/app_http_test.cpp.o.d"
  "app_http_test"
  "app_http_test.pdb"
  "app_http_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
