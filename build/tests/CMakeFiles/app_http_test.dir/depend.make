# Empty dependencies file for app_http_test.
# This may be replaced when dependencies are built.
