# Empty dependencies file for io_fasta_test.
# This may be replaced when dependencies are built.
