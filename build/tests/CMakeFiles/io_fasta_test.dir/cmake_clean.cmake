file(REMOVE_RECURSE
  "CMakeFiles/io_fasta_test.dir/io_fasta_test.cpp.o"
  "CMakeFiles/io_fasta_test.dir/io_fasta_test.cpp.o.d"
  "io_fasta_test"
  "io_fasta_test.pdb"
  "io_fasta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_fasta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
