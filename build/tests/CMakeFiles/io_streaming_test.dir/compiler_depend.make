# Empty compiler generated dependencies file for io_streaming_test.
# This may be replaced when dependencies are built.
