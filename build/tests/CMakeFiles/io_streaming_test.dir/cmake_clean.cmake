file(REMOVE_RECURSE
  "CMakeFiles/io_streaming_test.dir/io_streaming_test.cpp.o"
  "CMakeFiles/io_streaming_test.dir/io_streaming_test.cpp.o.d"
  "io_streaming_test"
  "io_streaming_test.pdb"
  "io_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
