# Empty compiler generated dependencies file for succinct_wavelet_test.
# This may be replaced when dependencies are built.
