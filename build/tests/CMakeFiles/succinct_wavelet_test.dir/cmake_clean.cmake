file(REMOVE_RECURSE
  "CMakeFiles/succinct_wavelet_test.dir/succinct_wavelet_test.cpp.o"
  "CMakeFiles/succinct_wavelet_test.dir/succinct_wavelet_test.cpp.o.d"
  "succinct_wavelet_test"
  "succinct_wavelet_test.pdb"
  "succinct_wavelet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_wavelet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
