file(REMOVE_RECURSE
  "CMakeFiles/fpga_kernel_test.dir/fpga_kernel_test.cpp.o"
  "CMakeFiles/fpga_kernel_test.dir/fpga_kernel_test.cpp.o.d"
  "fpga_kernel_test"
  "fpga_kernel_test.pdb"
  "fpga_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
