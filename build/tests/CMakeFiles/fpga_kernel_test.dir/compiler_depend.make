# Empty compiler generated dependencies file for fpga_kernel_test.
# This may be replaced when dependencies are built.
