file(REMOVE_RECURSE
  "CMakeFiles/fpga_bram_test.dir/fpga_bram_test.cpp.o"
  "CMakeFiles/fpga_bram_test.dir/fpga_bram_test.cpp.o.d"
  "fpga_bram_test"
  "fpga_bram_test.pdb"
  "fpga_bram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_bram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
