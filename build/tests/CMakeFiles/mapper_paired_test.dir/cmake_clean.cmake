file(REMOVE_RECURSE
  "CMakeFiles/mapper_paired_test.dir/mapper_paired_test.cpp.o"
  "CMakeFiles/mapper_paired_test.dir/mapper_paired_test.cpp.o.d"
  "mapper_paired_test"
  "mapper_paired_test.pdb"
  "mapper_paired_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_paired_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
