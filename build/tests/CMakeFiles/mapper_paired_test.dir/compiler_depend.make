# Empty compiler generated dependencies file for mapper_paired_test.
# This may be replaced when dependencies are built.
