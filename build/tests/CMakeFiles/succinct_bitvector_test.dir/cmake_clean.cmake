file(REMOVE_RECURSE
  "CMakeFiles/succinct_bitvector_test.dir/succinct_bitvector_test.cpp.o"
  "CMakeFiles/succinct_bitvector_test.dir/succinct_bitvector_test.cpp.o.d"
  "succinct_bitvector_test"
  "succinct_bitvector_test.pdb"
  "succinct_bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
