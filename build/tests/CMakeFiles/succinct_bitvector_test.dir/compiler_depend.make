# Empty compiler generated dependencies file for succinct_bitvector_test.
# This may be replaced when dependencies are built.
