# Empty dependencies file for io_gzip_test.
# This may be replaced when dependencies are built.
