file(REMOVE_RECURSE
  "CMakeFiles/io_gzip_test.dir/io_gzip_test.cpp.o"
  "CMakeFiles/io_gzip_test.dir/io_gzip_test.cpp.o.d"
  "io_gzip_test"
  "io_gzip_test.pdb"
  "io_gzip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_gzip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
