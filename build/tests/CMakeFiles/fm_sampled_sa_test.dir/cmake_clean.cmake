file(REMOVE_RECURSE
  "CMakeFiles/fm_sampled_sa_test.dir/fm_sampled_sa_test.cpp.o"
  "CMakeFiles/fm_sampled_sa_test.dir/fm_sampled_sa_test.cpp.o.d"
  "fm_sampled_sa_test"
  "fm_sampled_sa_test.pdb"
  "fm_sampled_sa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_sampled_sa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
