# Empty compiler generated dependencies file for fm_sampled_sa_test.
# This may be replaced when dependencies are built.
