file(REMOVE_RECURSE
  "CMakeFiles/io_sam_test.dir/io_sam_test.cpp.o"
  "CMakeFiles/io_sam_test.dir/io_sam_test.cpp.o.d"
  "io_sam_test"
  "io_sam_test.pdb"
  "io_sam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_sam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
