# Empty dependencies file for io_sam_test.
# This may be replaced when dependencies are built.
