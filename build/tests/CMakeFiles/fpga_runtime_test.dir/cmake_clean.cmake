file(REMOVE_RECURSE
  "CMakeFiles/fpga_runtime_test.dir/fpga_runtime_test.cpp.o"
  "CMakeFiles/fpga_runtime_test.dir/fpga_runtime_test.cpp.o.d"
  "fpga_runtime_test"
  "fpga_runtime_test.pdb"
  "fpga_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
