# Empty compiler generated dependencies file for fpga_runtime_test.
# This may be replaced when dependencies are built.
