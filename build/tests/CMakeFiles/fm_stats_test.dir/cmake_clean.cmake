file(REMOVE_RECURSE
  "CMakeFiles/fm_stats_test.dir/fm_stats_test.cpp.o"
  "CMakeFiles/fm_stats_test.dir/fm_stats_test.cpp.o.d"
  "fm_stats_test"
  "fm_stats_test.pdb"
  "fm_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
