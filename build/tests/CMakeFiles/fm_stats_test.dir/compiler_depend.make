# Empty compiler generated dependencies file for fm_stats_test.
# This may be replaced when dependencies are built.
