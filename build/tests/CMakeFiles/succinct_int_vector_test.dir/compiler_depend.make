# Empty compiler generated dependencies file for succinct_int_vector_test.
# This may be replaced when dependencies are built.
