file(REMOVE_RECURSE
  "CMakeFiles/succinct_int_vector_test.dir/succinct_int_vector_test.cpp.o"
  "CMakeFiles/succinct_int_vector_test.dir/succinct_int_vector_test.cpp.o.d"
  "succinct_int_vector_test"
  "succinct_int_vector_test.pdb"
  "succinct_int_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_int_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
