file(REMOVE_RECURSE
  "CMakeFiles/succinct_select_test.dir/succinct_select_test.cpp.o"
  "CMakeFiles/succinct_select_test.dir/succinct_select_test.cpp.o.d"
  "succinct_select_test"
  "succinct_select_test.pdb"
  "succinct_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
