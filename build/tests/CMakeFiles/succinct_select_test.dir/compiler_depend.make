# Empty compiler generated dependencies file for succinct_select_test.
# This may be replaced when dependencies are built.
