file(REMOVE_RECURSE
  "CMakeFiles/mapper_pipeline_test.dir/mapper_pipeline_test.cpp.o"
  "CMakeFiles/mapper_pipeline_test.dir/mapper_pipeline_test.cpp.o.d"
  "mapper_pipeline_test"
  "mapper_pipeline_test.pdb"
  "mapper_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
