file(REMOVE_RECURSE
  "CMakeFiles/io_fastq_test.dir/io_fastq_test.cpp.o"
  "CMakeFiles/io_fastq_test.dir/io_fastq_test.cpp.o.d"
  "io_fastq_test"
  "io_fastq_test.pdb"
  "io_fastq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_fastq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
