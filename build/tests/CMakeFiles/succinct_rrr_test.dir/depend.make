# Empty dependencies file for succinct_rrr_test.
# This may be replaced when dependencies are built.
