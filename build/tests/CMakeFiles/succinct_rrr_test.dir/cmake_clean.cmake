file(REMOVE_RECURSE
  "CMakeFiles/succinct_rrr_test.dir/succinct_rrr_test.cpp.o"
  "CMakeFiles/succinct_rrr_test.dir/succinct_rrr_test.cpp.o.d"
  "succinct_rrr_test"
  "succinct_rrr_test.pdb"
  "succinct_rrr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_rrr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
