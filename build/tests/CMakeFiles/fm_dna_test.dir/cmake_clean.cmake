file(REMOVE_RECURSE
  "CMakeFiles/fm_dna_test.dir/fm_dna_test.cpp.o"
  "CMakeFiles/fm_dna_test.dir/fm_dna_test.cpp.o.d"
  "fm_dna_test"
  "fm_dna_test.pdb"
  "fm_dna_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_dna_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
