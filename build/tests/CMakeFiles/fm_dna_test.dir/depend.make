# Empty dependencies file for fm_dna_test.
# This may be replaced when dependencies are built.
