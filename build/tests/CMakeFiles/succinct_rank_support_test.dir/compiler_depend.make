# Empty compiler generated dependencies file for succinct_rank_support_test.
# This may be replaced when dependencies are built.
