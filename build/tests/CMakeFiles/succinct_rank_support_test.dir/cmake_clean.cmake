file(REMOVE_RECURSE
  "CMakeFiles/succinct_rank_support_test.dir/succinct_rank_support_test.cpp.o"
  "CMakeFiles/succinct_rank_support_test.dir/succinct_rank_support_test.cpp.o.d"
  "succinct_rank_support_test"
  "succinct_rank_support_test.pdb"
  "succinct_rank_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_rank_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
