# Empty compiler generated dependencies file for fm_approx_test.
# This may be replaced when dependencies are built.
