file(REMOVE_RECURSE
  "CMakeFiles/fm_approx_test.dir/fm_approx_test.cpp.o"
  "CMakeFiles/fm_approx_test.dir/fm_approx_test.cpp.o.d"
  "fm_approx_test"
  "fm_approx_test.pdb"
  "fm_approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
