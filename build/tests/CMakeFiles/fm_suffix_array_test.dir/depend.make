# Empty dependencies file for fm_suffix_array_test.
# This may be replaced when dependencies are built.
