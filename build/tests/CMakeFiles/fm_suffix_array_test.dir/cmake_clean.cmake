file(REMOVE_RECURSE
  "CMakeFiles/fm_suffix_array_test.dir/fm_suffix_array_test.cpp.o"
  "CMakeFiles/fm_suffix_array_test.dir/fm_suffix_array_test.cpp.o.d"
  "fm_suffix_array_test"
  "fm_suffix_array_test.pdb"
  "fm_suffix_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_suffix_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
