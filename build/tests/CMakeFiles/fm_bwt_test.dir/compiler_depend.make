# Empty compiler generated dependencies file for fm_bwt_test.
# This may be replaced when dependencies are built.
