file(REMOVE_RECURSE
  "CMakeFiles/fm_bwt_test.dir/fm_bwt_test.cpp.o"
  "CMakeFiles/fm_bwt_test.dir/fm_bwt_test.cpp.o.d"
  "fm_bwt_test"
  "fm_bwt_test.pdb"
  "fm_bwt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_bwt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
