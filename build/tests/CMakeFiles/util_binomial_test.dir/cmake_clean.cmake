file(REMOVE_RECURSE
  "CMakeFiles/util_binomial_test.dir/util_binomial_test.cpp.o"
  "CMakeFiles/util_binomial_test.dir/util_binomial_test.cpp.o.d"
  "util_binomial_test"
  "util_binomial_test.pdb"
  "util_binomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_binomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
