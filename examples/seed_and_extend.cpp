// Seed-and-extend scenario (paper introduction: "most of the existing
// aligners ... rely on a seed-and-extend strategy where the mapping of
// short DNA fragments is used to determine candidate loci").
//
// Long reads with sequencing errors cannot exact-match, so we:
//   1. chop each read into short seeds,
//   2. exact-map the seeds with BWaveR (the accelerated stage),
//   3. vote on candidate loci and verify each with a banded
//      Smith-Waterman-style extension on the host.
//
//   $ ./seed_and_extend [--reads N] [--error-rate F]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "app/cli.hpp"
#include "fmindex/dna.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/genome_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace bwaver;

/// Banded alignment score of `read` against reference[pos..]: match +2,
/// mismatch -1, gaps -2, band +-8. Good enough to verify a candidate locus.
int banded_extend(std::span<const std::uint8_t> reference, std::size_t pos,
                  std::span<const std::uint8_t> read) {
  constexpr int kBand = 8, kMatch = 2, kMismatch = -1, kGap = -2;
  const std::size_t m = read.size();
  const std::size_t n = std::min(reference.size() - pos, m + kBand);
  const int kNegInf = -1'000'000;

  std::vector<int> prev(n + 1, kNegInf), curr(n + 1, kNegInf);
  for (std::size_t j = 0; j <= std::min<std::size_t>(n, kBand); ++j) {
    prev[j] = static_cast<int>(j) * kGap;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t lo = i > kBand ? i - kBand : 0;
    const std::size_t hi = std::min(n, i + kBand);
    std::fill(curr.begin(), curr.end(), kNegInf);
    if (lo == 0) curr[0] = static_cast<int>(i) * kGap;
    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      const int diag = prev[j - 1] == kNegInf
                           ? kNegInf
                           : prev[j - 1] + (read[i - 1] == reference[pos + j - 1]
                                                ? kMatch
                                                : kMismatch);
      const int up = prev[j] == kNegInf ? kNegInf : prev[j] + kGap;
      const int left = curr[j - 1] == kNegInf ? kNegInf : curr[j - 1] + kGap;
      curr[j] = std::max({diag, up, left});
    }
    std::swap(prev, curr);
  }
  return *std::max_element(prev.begin(), prev.end());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::size_t num_reads = static_cast<std::size_t>(args.get_int("reads", 500));
  const double error_rate = args.get_double("error-rate", 0.03);
  constexpr unsigned kReadLength = 600;
  constexpr unsigned kSeedLength = 24;
  constexpr unsigned kSeedStride = 50;

  GenomeSimConfig gconfig;
  gconfig.length = 1'000'000;
  gconfig.seed = 3;
  const auto genome = simulate_genome(gconfig);
  const BwaverCpuMapper mapper(genome, RrrParams{15, 50});
  BwaverFpgaMapper fpga(mapper.index());
  std::printf("reference: %zu bp; %zu long reads x %u bp at %.1f%% error\n",
              genome.size(), num_reads, kReadLength, error_rate * 100);

  // Simulate error-ridden long reads.
  Xoshiro256 rng(17);
  struct LongRead {
    std::vector<std::uint8_t> codes;
    std::uint32_t origin;
  };
  std::vector<LongRead> reads(num_reads);
  for (auto& read : reads) {
    read.origin = static_cast<std::uint32_t>(rng.below(genome.size() - kReadLength));
    read.codes.assign(genome.begin() + read.origin,
                      genome.begin() + read.origin + kReadLength);
    for (auto& base : read.codes) {
      if (rng.chance(error_rate)) {
        base = static_cast<std::uint8_t>((base + 1 + rng.below(3)) & 3);
      }
    }
  }

  // Stage 1+2: chop into seeds and exact-map them on the FPGA model.
  ReadBatch seeds;
  std::vector<std::size_t> seed_owner;  // read index per seed
  std::vector<unsigned> seed_offset;    // seed start within its read
  for (std::size_t r = 0; r < reads.size(); ++r) {
    for (unsigned off = 0; off + kSeedLength <= kReadLength; off += kSeedStride) {
      seeds.add(std::span<const std::uint8_t>(reads[r].codes.data() + off, kSeedLength));
      seed_owner.push_back(r);
      seed_offset.push_back(off);
    }
  }
  FpgaMapReport report;
  const auto seed_hits = fpga.map(seeds, &report);
  std::printf("seeding: %zu seeds, %llu mapped, modeled FPGA time %.3f ms\n",
              seeds.size(), static_cast<unsigned long long>(report.mapped),
              report.mapping_seconds() * 1e3);

  // Stage 3: vote on candidate loci and verify by banded extension.
  const auto& sa = mapper.index().suffix_array();
  std::size_t recovered = 0;
  constexpr std::uint32_t kMaxHitsPerSeed = 16;  // skip repetitive seeds
  for (std::size_t r = 0; r < reads.size(); ++r) {
    std::map<std::uint32_t, unsigned> votes;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      if (seed_owner[s] != r) continue;
      const auto& hit = seed_hits[s];
      if (!hit.fwd_mapped() || hit.fwd_hi - hit.fwd_lo > kMaxHitsPerSeed) continue;
      for (std::uint32_t row = hit.fwd_lo; row < hit.fwd_hi; ++row) {
        const std::uint32_t locus =
            sa[row] >= seed_offset[s] ? sa[row] - seed_offset[s] : 0;
        ++votes[locus];
      }
    }
    // Extend the best-voted locus.
    std::uint32_t best_locus = 0;
    unsigned best_votes = 0;
    for (const auto& [locus, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_locus = locus;
      }
    }
    if (best_votes == 0) continue;
    const int score = banded_extend(genome, best_locus, reads[r].codes);
    const int accept = static_cast<int>(kReadLength);  // >= half of perfect 2L
    if (score >= accept && best_locus == reads[r].origin) ++recovered;
  }
  std::printf("extension: %zu/%zu long reads recovered at their true locus\n",
              recovered, num_reads);
  return recovered * 100 >= num_reads * 90 ? 0 : 1;  // expect >=90% recovery
}
