// Quickstart: index a reference, map a handful of reads on the FPGA model,
// print where they land. Everything in ~40 lines of API use.
//
//   $ ./quickstart
#include <cstdio>

#include "fmindex/dna.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"
#include "sim/genome_sim.hpp"

int main() {
  using namespace bwaver;

  // 1. A reference sequence (here: simulated; normally read from FASTA).
  GenomeSimConfig config;
  config.length = 100'000;
  config.seed = 1;
  const std::vector<std::uint8_t> reference = simulate_genome(config);
  std::printf("reference: %zu bp\n", reference.size());

  // 2. Build the BWaveR index: suffix array + BWT + RRR-encoded wavelet
  //    tree (b=15, sf=50 — the paper's hardware configuration).
  const BwaverCpuMapper cpu(reference, RrrParams{15, 50});
  std::printf("succinct structure: %.2f KB (vs %.2f KB raw BWT)\n",
              cpu.index().occ_size_in_bytes() / 1e3, reference.size() / 1e3);

  // 3. Reads: two true substrings (one reverse-complemented) and one random.
  ReadBatch reads;
  std::vector<std::uint8_t> fwd(reference.begin() + 5000, reference.begin() + 5060);
  reads.add(fwd);
  reads.add(dna_reverse_complement(
      std::span<const std::uint8_t>(reference.data() + 70'000, 60)));
  std::vector<std::uint8_t> random_read(60);
  for (std::size_t i = 0; i < random_read.size(); ++i) {
    random_read[i] = static_cast<std::uint8_t>((i * 2654435761u) % 4);
  }
  reads.add(random_read);

  // 4. Map on the FPGA device model and resolve positions on the host.
  BwaverFpgaMapper fpga(cpu.index());
  FpgaMapReport report;
  const auto results = fpga.map(reads, &report);

  const auto& sa = cpu.index().suffix_array();
  for (const auto& result : results) {
    std::printf("read %u: ", result.id);
    if (!result.mapped()) {
      std::printf("unmapped\n");
      continue;
    }
    for (std::uint32_t row = result.fwd_lo; row < result.fwd_hi; ++row) {
      std::printf("+%u ", sa[row]);
    }
    for (std::uint32_t row = result.rev_lo; row < result.rev_hi; ++row) {
      std::printf("-%u ", sa[row]);
    }
    std::printf("\n");
  }

  std::printf("modeled FPGA time: %.3f ms (program %.3f ms, kernel %.6f ms)\n",
              report.total_seconds() * 1e3, report.program_seconds * 1e3,
              report.kernel_seconds * 1e3);
  return 0;
}
