// Web application demo (paper Sec. III-D): starts the BWaveR web service,
// uploads a reference and a read set to it over loopback HTTP, and prints
// the SAM it returns — the full "accessible hybrid mapper" workflow without
// any knowledge of the underlying hardware.
//
//   $ ./web_server_demo            # self-driving demo, exits when done
//   $ ./web_server_demo --serve    # keep serving on the printed port
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include "app/cli.hpp"
#include "app/web_service.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace {

std::string http_post(std::uint16_t port, const std::string& path,
                      const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n" +
                        "Connection: close\r\n" +
                        "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
                        body;
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bwaver;
  ArgParser args(argc, argv);

  WebService service;
  service.start(static_cast<std::uint16_t>(args.get_int("port", 0)));
  std::printf("BWaveR web service listening on http://127.0.0.1:%u/\n",
              service.port());

  if (args.has("serve")) {
    std::printf("serving until interrupted (Ctrl-C)...\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  // Self-driving demo: build inputs, upload, map, show the SAM head.
  GenomeSimConfig gconfig;
  gconfig.length = 50'000;
  gconfig.seed = 23;
  const auto genome = simulate_genome(gconfig);
  const FastaRecord ref{"demo_ref", dna_decode_string(genome)};
  const std::string fasta = format_fasta(std::span<const FastaRecord>(&ref, 1));

  ReadSimConfig rconfig;
  rconfig.num_reads = 100;
  rconfig.read_length = 60;
  rconfig.mapping_ratio = 0.9;
  const std::string fastq = format_fastq(reads_to_fastq(simulate_reads(genome, rconfig)));

  std::printf("\nPOST /reference (%zu bytes of FASTA)...\n", fasta.size());
  const std::string upload = http_post(service.port(), "/reference", fasta);
  std::printf("%s", upload.substr(upload.find("\r\n\r\n") + 4).c_str());

  std::printf("POST /map (%zu bytes of FASTQ)...\n", fastq.size());
  const std::string mapped = http_post(service.port(), "/map", fastq);
  const std::string sam = mapped.substr(mapped.find("\r\n\r\n") + 4);
  std::printf("SAM response, first lines:\n");
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const std::size_t eol = sam.find('\n', pos);
    std::printf("  %s\n", sam.substr(pos, eol - pos).c_str());
    pos = eol == std::string::npos ? eol : eol + 1;
  }
  std::printf("  ... (%zu bytes total)\n", sam.size());

  service.stop();
  return 0;
}
