// Genome resequencing scenario (the paper's motivating workload): map a
// large simulated read set from a "sample" back to a reference genome
// through the full 3-step file-based pipeline, then compare the FPGA model
// with the software engines.
//
//   $ ./resequencing [--reads N] [--read-length L] [--ref-length R]
#include <cstdio>
#include <filesystem>

#include "app/cli.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/pipeline.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  ArgParser args(argc, argv);
  const std::size_t ref_length =
      static_cast<std::size_t>(args.get_int("ref-length", 500'000));
  const std::size_t num_reads = static_cast<std::size_t>(args.get_int("reads", 20'000));
  const unsigned read_length = static_cast<unsigned>(args.get_int("read-length", 100));

  const auto dir = std::filesystem::temp_directory_path() / "bwaver_resequencing";
  std::filesystem::create_directories(dir);

  // Simulate the reference and a 95%-mappable read set (gzipped FASTQ, as a
  // sequencer delivers it).
  GenomeSimConfig gconfig;
  gconfig.length = ref_length;
  gconfig.seed = 11;
  const auto genome = simulate_genome(gconfig);
  const FastaRecord ref{"sample_ref", dna_decode_string(genome)};
  const std::string fasta = (dir / "ref.fa").string();
  write_fasta(fasta, std::span<const FastaRecord>(&ref, 1));

  ReadSimConfig rconfig;
  rconfig.num_reads = num_reads;
  rconfig.read_length = read_length;
  rconfig.mapping_ratio = 0.95;
  const auto reads = simulate_reads(genome, rconfig);
  const std::string fastq = (dir / "reads.fq.gz").string();
  write_fastq(fastq, reads_to_fastq(reads), /*gzipped=*/true);
  std::printf("workload: %zu bp reference, %zu reads x %u bp (gzipped FASTQ)\n",
              genome.size(), num_reads, read_length);

  // Full pipeline per engine.
  struct EngineRun {
    const char* name;
    MappingEngine engine;
  };
  const EngineRun engines[] = {
      {"FPGA model", MappingEngine::kFpga},
      {"BWaveR CPU", MappingEngine::kCpu},
      {"Bowtie2-like", MappingEngine::kBowtie2Like},
  };
  std::printf("\n%-14s %12s %12s %12s %10s\n", "engine", "step1 [ms]", "step2 [ms]",
              "step3 [ms]", "mapped");
  for (const auto& run : engines) {
    PipelineConfig config;
    config.engine = run.engine;
    config.threads = 4;
    Pipeline pipeline(config);
    const std::string index_path = (dir / "ref.bwvr").string();
    pipeline.compute_bwt_sa(fasta, index_path);
    pipeline.encode(index_path);
    const std::string sam = (dir / (std::string(run.name) + ".sam")).string();
    const MappingOutcome outcome = pipeline.map_reads(fastq, sam);
    std::printf("%-14s %12.1f %12.1f %12.3f %7llu/%zu\n", run.name,
                pipeline.timings().bwt_sa_seconds * 1e3,
                pipeline.timings().encode_seconds * 1e3,
                pipeline.timings().mapping_seconds * 1e3,
                static_cast<unsigned long long>(outcome.mapped), num_reads);
  }
  std::printf("\nSAM files in %s\n", dir.c_str());
  return 0;
}
