// Paired-end resequencing scenario: simulate FR read pairs from a fragment
// library, map both mates, and classify pairs by orientation and insert
// size — how short-read pipelines disambiguate repetitive placements.
//
//   $ ./paired_end_demo [--pairs N] [--insert MEAN] [--spread S]
#include <cstdio>

#include "app/cli.hpp"
#include "mapper/paired_end.hpp"
#include "sim/genome_sim.hpp"

int main(int argc, char** argv) {
  using namespace bwaver;
  ArgParser args(argc, argv);
  const std::size_t num_pairs = static_cast<std::size_t>(args.get_int("pairs", 5000));
  const auto mean_insert = static_cast<std::uint32_t>(args.get_int("insert", 350));
  const auto spread = static_cast<std::uint32_t>(args.get_int("spread", 60));
  constexpr unsigned kReadLength = 75;

  GenomeSimConfig gconfig;
  gconfig.length = 2'000'000;
  gconfig.seed = 31;
  gconfig.repeat_fraction = 0.3;  // repeats make single-end placement ambiguous
  const auto genome = simulate_genome(gconfig);
  ReferenceSet reference;
  reference.add("chr_demo", genome);
  const FmIndex<RrrWaveletOcc> index(
      reference.concatenated(), [](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, RrrParams{15, 50});
      });
  std::printf("reference: %zu bp (30%% repeats); %zu pairs, %u bp mates, "
              "insert %u +- %u\n",
              genome.size(), num_pairs, kReadLength, mean_insert, spread);

  const auto sim = simulate_read_pairs(genome, num_pairs, kReadLength, mean_insert,
                                       spread, 7);
  ReadBatch mates1, mates2;
  for (const auto& pair : sim) {
    mates1.add(pair.mate1);
    mates2.add(pair.mate2);
  }

  PairedEndConfig config;
  config.min_insert = mean_insert > 4 * spread ? mean_insert - 4 * spread : 0;
  config.max_insert = mean_insert + 4 * spread;
  const auto pairs = map_pairs(index, reference, mates1, mates2, config, 4);

  std::size_t counts[4] = {0, 0, 0, 0};
  std::size_t correct_locus = 0;
  double insert_sum = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    counts[static_cast<int>(pairs[i].pair_class)]++;
    if (pairs[i].pair_class == PairClass::kProperPair) {
      insert_sum += pairs[i].insert_size;
      const std::uint32_t fwd_pos =
          pairs[i].mate1_is_forward ? pairs[i].mate1_pos : pairs[i].mate2_pos;
      if (fwd_pos == sim[i].fragment_start) ++correct_locus;
    }
  }
  std::printf("\npair classes:\n  proper:       %zu\n  discordant:   %zu\n"
              "  one unmapped: %zu\n  unmapped:     %zu\n",
              counts[0], counts[1], counts[2], counts[3]);
  if (counts[0] > 0) {
    std::printf("mean accepted insert: %.1f bp (library mean %u)\n",
                insert_sum / static_cast<double>(counts[0]), mean_insert);
    std::printf("proper pairs anchored at their true fragment start: %zu/%zu\n",
                correct_locus, counts[0]);
  }
  return counts[0] * 100 >= num_pairs * 95 ? 0 : 1;  // expect >=95% proper
}
