// Deterministic, fast pseudo-random generator (xoshiro256**) used by the
// genome/read simulators and the property tests. Deterministic seeding keeps
// every benchmark and test reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace bwaver {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 expansion of the seed into the four lanes.
    std::uint64_t z = seed;
    for (auto& lane : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
      lane = w ^ (w >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free-enough reduction.
    unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace bwaver
