// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace bwaver {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bwaver
