// Bit-level primitives used throughout the succinct data structures.
//
// All functions are constexpr-friendly, branch-light and operate on 64-bit
// words; they are the software analogue of the LUT/popcount units that the
// FPGA design instantiates in fabric.
#pragma once

#include <bit>
#include <cstdint>

namespace bwaver {

/// Number of set bits in `x`.
inline constexpr int popcount64(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// Number of set bits among the `n` lowest-order bits of `x` (n in [0,64]).
inline constexpr int rank_in_word(std::uint64_t x, unsigned n) noexcept {
  if (n == 0) return 0;
  if (n >= 64) return std::popcount(x);
  return std::popcount(x & ((std::uint64_t{1} << n) - 1));
}

/// Position (0-based) of the (k+1)-th set bit of `x`; 64 if there is none.
inline constexpr int select_in_word(std::uint64_t x, unsigned k) noexcept {
  for (unsigned i = 0; i < 64; ++i) {
    if (x & (std::uint64_t{1} << i)) {
      if (k == 0) return static_cast<int>(i);
      --k;
    }
  }
  return 64;
}

/// ceil(log2(x)) for x >= 1; 0 for x <= 1.
inline constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<unsigned>(64 - std::countl_zero(x - 1));
}

/// floor(log2(x)) for x >= 1.
inline constexpr unsigned floor_log2(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  return static_cast<unsigned>(63 - std::countl_zero(x));
}

/// True if x is a power of two (x > 0).
inline constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two >= x.
inline constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  return std::uint64_t{1} << ceil_log2(x);
}

/// ceil(a / b) for b > 0.
inline constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Extract `width` bits of `x` starting at bit `lsb` (low-order first).
inline constexpr std::uint64_t bits_extract(std::uint64_t x, unsigned lsb,
                                            unsigned width) noexcept {
  if (width == 0) return 0;
  x >>= lsb;
  if (width >= 64) return x;
  return x & ((std::uint64_t{1} << width) - 1);
}

/// Reverse the `n` lowest-order bits of `x` (others dropped).
inline constexpr std::uint64_t reverse_bits(std::uint64_t x, unsigned n) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < n; ++i) {
    r = (r << 1) | ((x >> i) & 1);
  }
  return r;
}

}  // namespace bwaver
