// Binomial coefficient tables for RRR block encoding.
//
// An RRR block of b bits with class c (= number of 1s) is identified inside
// its class by an offset in [0, C(b,c)), stored in ceil(log2(C(b,c))) bits.
// The paper fixes b = 15 in hardware but keeps the structure parametrizable;
// we support b in [1, kMaxBlockBits].
#pragma once

#include <array>
#include <cstdint>

namespace bwaver {

/// Largest supported RRR block size. Class numbers are stored in 4-bit
/// fields (paper, Sec. III-B), so blocks can hold at most 15 ones.
inline constexpr unsigned kMaxBlockBits = 15;

/// Table of binomial coefficients C(n, k) for n, k in [0, kMaxBlockBits].
class BinomialTable {
 public:
  BinomialTable();

  /// C(n, k); 0 when k > n.
  std::uint32_t choose(unsigned n, unsigned k) const noexcept {
    if (k > n || n > kMaxBlockBits) return 0;
    return table_[n][k];
  }

  /// Bits needed to store an offset within class k of blocks of n bits:
  /// ceil(log2(C(n, k))), with the convention that a 1-element class
  /// needs 0 bits.
  unsigned offset_width(unsigned n, unsigned k) const noexcept {
    if (k > n || n > kMaxBlockBits) return 0;
    return widths_[n][k];
  }

  /// Process-wide shared instance.
  static const BinomialTable& instance();

 private:
  std::array<std::array<std::uint32_t, kMaxBlockBits + 1>, kMaxBlockBits + 1> table_{};
  std::array<std::array<std::uint8_t, kMaxBlockBits + 1>, kMaxBlockBits + 1> widths_{};
};

}  // namespace bwaver
