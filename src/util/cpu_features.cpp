#include "util/cpu_features.hpp"

#include <cstdlib>

namespace bwaver {

CpuFeatures detect_cpu_features() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(_M_X64)
  features.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.pclmul = __builtin_cpu_supports("pclmul") != 0 &&
                    __builtin_cpu_supports("sse4.1") != 0;
  if (features.avx2) {
    features.best = SimdLevel::kAvx2;
  } else if (features.sse42) {
    features.best = SimdLevel::kSse42;
  }
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  features.neon = true;
  features.best = SimdLevel::kNeon;
#endif
  return features;
}

CpuFeatures cap_cpu_features(CpuFeatures detected, SimdLevel cap) {
  CpuFeatures capped = detected;
  if (cap == SimdLevel::kNeon) {
    // NEON is the only vector tier on aarch64; on x86 the cap degrades to
    // portable because the requested ISA does not exist there.
    capped.sse42 = false;
    capped.avx2 = false;
    capped.pclmul = false;
    capped.best = detected.neon ? SimdLevel::kNeon : SimdLevel::kPortable;
    return capped;
  }
  capped.neon = false;
  if (cap < SimdLevel::kAvx2) capped.avx2 = false;
  if (cap < SimdLevel::kSse42) {
    capped.sse42 = false;
    capped.pclmul = false;
  }
  if (capped.avx2) {
    capped.best = SimdLevel::kAvx2;
  } else if (capped.sse42) {
    capped.best = SimdLevel::kSse42;
  } else {
    capped.best = SimdLevel::kPortable;
  }
  return capped;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures detected = detect_cpu_features();
    if (const char* env = std::getenv("BWAVER_CPU_FEATURES")) {
      if (const auto cap = parse_simd_level(env)) {
        detected = cap_cpu_features(detected, *cap);
      }
    }
    return detected;
  }();
  return features;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kPortable:
      return "portable";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "portable";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) {
  if (name == "portable" || name == "scalar" || name == "swar") {
    return SimdLevel::kPortable;
  }
  if (name == "sse42" || name == "sse4.2") return SimdLevel::kSse42;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "neon") return SimdLevel::kNeon;
  return std::nullopt;
}

std::string cpu_features_string(const CpuFeatures& features) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (features.avx2) add("avx2");
  if (features.sse42) add("sse42");
  if (features.neon) add("neon");
  if (features.pclmul) add("pclmul");
  if (out.empty()) out = "portable";
  return out;
}

}  // namespace bwaver
