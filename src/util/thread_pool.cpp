#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

namespace bwaver {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> result = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::post(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: post after shutdown");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Wait for EVERY chunk before rethrowing: bailing on the first failure
  // would unwind the caller (and the `fn` the queued tasks still reference)
  // while chunks are in flight.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace bwaver
