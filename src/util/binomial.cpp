#include "util/binomial.hpp"

#include "util/bits.hpp"

namespace bwaver {

BinomialTable::BinomialTable() {
  for (unsigned n = 0; n <= kMaxBlockBits; ++n) {
    table_[n][0] = 1;
    for (unsigned k = 1; k <= n; ++k) {
      table_[n][k] = (k == n) ? 1 : table_[n - 1][k - 1] + table_[n - 1][k];
    }
    for (unsigned k = 0; k <= n; ++k) {
      widths_[n][k] = static_cast<std::uint8_t>(ceil_log2(table_[n][k]));
    }
  }
}

const BinomialTable& BinomialTable::instance() {
  static const BinomialTable table;
  return table;
}

}  // namespace bwaver
