// Fixed-size thread pool with a blocking task queue and a chunked
// parallel_for helper. Used by the multithreaded software mappers
// (BWaveR-CPU with T threads and the Bowtie2-like baseline), the HTTP
// server's bounded connection workers, and the mapping-job worker pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bwaver {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Fire-and-forget enqueue (no future allocated). The destructor still
  /// drains the queue, so posted tasks always run.
  void post(std::function<void()> task);

  /// Tasks enqueued but not yet picked up by a worker.
  std::size_t pending() const;

  /// Run fn(begin, end) over [0, n) split into roughly equal contiguous
  /// chunks, one per worker, and wait for completion. Exceptions from the
  /// chunks are rethrown (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace bwaver
