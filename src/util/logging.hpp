// Minimal leveled logger. Severity is filtered at runtime; output goes to
// stderr so benchmark tables on stdout stay machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace bwaver {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define BWAVER_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::bwaver::log_level())) { \
  } else                                                    \
    ::bwaver::detail::LogLine(level)

#define LOG_DEBUG BWAVER_LOG(::bwaver::LogLevel::kDebug)
#define LOG_INFO BWAVER_LOG(::bwaver::LogLevel::kInfo)
#define LOG_WARN BWAVER_LOG(::bwaver::LogLevel::kWarn)
#define LOG_ERROR BWAVER_LOG(::bwaver::LogLevel::kError)

}  // namespace bwaver
