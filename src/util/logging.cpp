#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace bwaver {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[bwaver %-5s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace bwaver
