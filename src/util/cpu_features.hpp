// Runtime CPU-feature detection for the SIMD kernel dispatch.
//
// One process-wide cached snapshot answers "which vector ISA may this
// binary use?" for every dispatcher in the tree (the rank kernels in
// src/kernels/, the PCLMULQDQ CRC32 fold in src/io/checksum.cpp). The
// snapshot is the intersection of what the hardware reports and an
// optional operator cap: $BWAVER_CPU_FEATURES=portable|sse42|avx2|neon
// restricts dispatch to at most that level (it can never enable an ISA the
// CPU lacks), which is how CI exercises the fallback paths on wide
// machines.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace bwaver {

/// Vector ISA tiers the dispatchers understand, in preference order.
/// kNeon is its own tier (aarch64); on x86 the order is
/// portable < sse42 < avx2.
enum class SimdLevel { kPortable = 0, kSse42 = 1, kAvx2 = 2, kNeon = 3 };

struct CpuFeatures {
  bool sse42 = false;
  bool avx2 = false;
  bool neon = false;
  bool pclmul = false;  ///< PCLMULQDQ + SSE4.1 (the CRC32 folding pair)
  /// Highest tier the dispatchers may select.
  SimdLevel best = SimdLevel::kPortable;
};

/// Raw hardware capabilities (no environment cap applied).
CpuFeatures detect_cpu_features();

/// `detected` restricted to at most `cap`: every flag above the cap is
/// cleared and `best` is lowered. Capping to a level the hardware lacks
/// degrades to the best level actually present.
CpuFeatures cap_cpu_features(CpuFeatures detected, SimdLevel cap);

/// The process-wide snapshot: detect_cpu_features() capped by
/// $BWAVER_CPU_FEATURES (unknown values are ignored). Computed once and
/// cached — consistent for the process lifetime regardless of later
/// setenv() calls.
const CpuFeatures& cpu_features();

/// "portable" / "sse42" / "avx2" / "neon".
const char* simd_level_name(SimdLevel level);

/// Inverse of simd_level_name(); nullopt for anything else.
std::optional<SimdLevel> parse_simd_level(std::string_view name);

/// Human/JSON summary of a feature set, e.g. "avx2+sse42+pclmul" or
/// "portable" when nothing vectorized is usable.
std::string cpu_features_string(const CpuFeatures& features);

}  // namespace bwaver
