// Cooperative cancellation for long-running work (mapping jobs, shutdown).
//
// A CancelToken carries two independent stop reasons: an explicit cancel
// request (DELETE /jobs/{id}, operator shutdown) and a wall-clock deadline
// (per-job timeout). Workers poll stop_requested() at checkpoints — between
// engine dispatch and per chunk of result resolution — and unwind with
// OperationCancelled; the job layer then classifies the outcome as
// cancelled vs timed-out by asking which reason fired. Tokens are shared
// between the requesting thread and the worker, so all state is atomic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace bwaver {

/// Thrown from a cancellation checkpoint once a stop has been requested.
struct OperationCancelled : std::runtime_error {
  OperationCancelled() : std::runtime_error("operation cancelled") {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms the deadline; passing a time in the past makes the token expired
  /// immediately.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  bool deadline_passed() const noexcept {
    const std::int64_t armed = deadline_ns_.load(std::memory_order_relaxed);
    if (armed == kNoDeadline) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >= armed;
  }

  bool stop_requested() const noexcept {
    return cancel_requested() || deadline_passed();
  }

  /// Checkpoint: throws OperationCancelled once a stop has been requested.
  void throw_if_stopped() const {
    if (stop_requested()) throw OperationCancelled{};
  }

 private:
  static constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace bwaver
