// Owning-or-borrowing flat array for succinct-structure payloads.
//
// Archive format v3 lays every large array out verbatim (64-byte aligned,
// little-endian) inside the `.bwva` file so a memory-mapped load can adopt
// the bytes in place instead of deserializing them. FlatArray is the storage
// type that makes that possible: it either owns a std::vector<T> (indexes
// built in memory, or archives loaded with LoadMode::kCopy) or borrows a
// read-only span whose lifetime is guaranteed by the caller (the MappedFile
// backing held alive by StoredIndex). Read access is identical in both modes;
// mutation detaches a borrowed view into owned storage first, so structures
// under construction behave exactly like they did when the member was a
// plain vector.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace bwaver {

template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatArray payloads are raw archive bytes");

 public:
  FlatArray() = default;

  // Implicit on purpose: call sites that used to assign a std::vector to the
  // member keep compiling unchanged.
  FlatArray(std::vector<T> values) : owned_(std::move(values)) {}
  FlatArray& operator=(std::vector<T> values) {
    owned_ = std::move(values);
    view_data_ = nullptr;
    view_size_ = 0;
    return *this;
  }

  /// Borrows `elements` without copying. The caller owns the bytes and must
  /// keep them alive (and unchanged) for the lifetime of this array.
  static FlatArray view_of(std::span<const T> elements) {
    FlatArray array;
    array.view_data_ = elements.data();
    array.view_size_ = elements.size();
    return array;
  }

  const T* data() const noexcept {
    return view_data_ != nullptr ? view_data_ : owned_.data();
  }
  std::size_t size() const noexcept {
    return view_data_ != nullptr ? view_size_ : owned_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  const T& operator[](std::size_t index) const noexcept { return data()[index]; }
  const T& back() const noexcept { return data()[size() - 1]; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size(); }
  operator std::span<const T>() const noexcept { return {data(), size()}; }

  bool is_view() const noexcept { return view_data_ != nullptr; }
  /// Payload bytes regardless of where they live.
  std::size_t bytes() const noexcept { return size() * sizeof(T); }
  /// Bytes charged to the heap: zero for a borrowed view.
  std::size_t heap_bytes() const noexcept {
    return is_view() ? 0 : owned_.capacity() * sizeof(T);
  }

  // Mutators. A borrowed view is detached (copied into owned storage) first;
  // loaded read-only structures never hit these in practice.
  void push_back(const T& value) {
    detach();
    owned_.push_back(value);
  }
  void reserve(std::size_t count) {
    detach();
    owned_.reserve(count);
  }
  void resize(std::size_t count) {
    detach();
    owned_.resize(count);
  }
  void assign(std::size_t count, const T& value) {
    owned_.assign(count, value);
    view_data_ = nullptr;
    view_size_ = 0;
  }
  void clear() noexcept {
    owned_.clear();
    view_data_ = nullptr;
    view_size_ = 0;
  }
  void append(std::span<const T> tail) {
    detach();
    owned_.insert(owned_.end(), tail.begin(), tail.end());
  }
  T* mutable_data() {
    detach();
    return owned_.data();
  }
  T& mut(std::size_t index) {
    detach();
    return owned_[index];
  }

  friend bool operator==(const FlatArray& a, const FlatArray& b) noexcept {
    return a.size() == b.size() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.bytes()) == 0);
  }
  friend bool operator==(const FlatArray& a, const std::vector<T>& b) noexcept {
    return a.size() == b.size() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.bytes()) == 0);
  }
  friend bool operator==(const std::vector<T>& a, const FlatArray& b) noexcept {
    return b == a;
  }

 private:
  void detach() {
    if (view_data_ != nullptr) {
      owned_.assign(view_data_, view_data_ + view_size_);
      view_data_ = nullptr;
      view_size_ = 0;
    }
  }

  std::vector<T> owned_;
  const T* view_data_ = nullptr;
  std::size_t view_size_ = 0;
};

}  // namespace bwaver
