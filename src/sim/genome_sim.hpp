// Synthetic reference-genome generator.
//
// Substitute for the paper's real references (E. coli U00096.3 and human
// chr21 GRCh38.p12), which are not available offline. The generator controls
// the properties that the succinct structure actually responds to:
//
//   * length             — drives structure size and BRAM fit;
//   * GC content         — zero-order composition;
//   * Markov persistence — short-range correlation (homopolymer runs);
//   * repeat families    — long-range self-similarity. Repeats make the BWT
//                          runnier, lowering the zero-order entropy of the
//                          wavelet-tree bit-vectors and hence the RRR offset
//                          size, which is exactly the effect the paper's
//                          Fig. 5 compression numbers rely on.
//
// Presets `ecoli_like` and `chr21_like` match the paper's reference lengths
// (raw BWT ~4.64 MB and ~40.1 MB at 1 byte/char).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bwaver {

struct GenomeSimConfig {
  std::size_t length = 1 << 20;
  double gc_content = 0.5;          ///< P(base is G or C)
  double markov_persistence = 0.2;  ///< P(repeat the previous base verbatim)
  double repeat_fraction = 0.25;    ///< target fraction of positions inside repeat copies
  std::size_t repeat_unit_min = 200;
  std::size_t repeat_unit_max = 2000;
  double repeat_divergence = 0.02;  ///< point-mutation rate applied to repeat copies
  std::uint64_t seed = 42;
};

/// E. coli-sized preset: 4,641,652 bp, ~50.8% GC.
GenomeSimConfig ecoli_like_config(std::uint64_t seed = 42);

/// Human chr21-sized preset: 40,088,619 bp, ~41% GC, heavier repeats.
GenomeSimConfig chr21_like_config(std::uint64_t seed = 42);

/// Generates a genome as 2-bit codes.
std::vector<std::uint8_t> simulate_genome(const GenomeSimConfig& config);

/// Convenience: generate and return as an ACGT string (e.g. to write FASTA).
std::string simulate_genome_string(const GenomeSimConfig& config);

}  // namespace bwaver
