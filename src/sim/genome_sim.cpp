#include "sim/genome_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "fmindex/dna.hpp"
#include "util/rng.hpp"

namespace bwaver {

GenomeSimConfig ecoli_like_config(std::uint64_t seed) {
  GenomeSimConfig config;
  config.length = 4'641'652;
  config.gc_content = 0.508;
  config.markov_persistence = 0.18;
  config.repeat_fraction = 0.12;  // bacterial genomes are repeat-poor
  config.repeat_unit_min = 300;
  config.repeat_unit_max = 1500;
  config.repeat_divergence = 0.02;
  config.seed = seed;
  return config;
}

GenomeSimConfig chr21_like_config(std::uint64_t seed) {
  GenomeSimConfig config;
  config.length = 40'088'619;
  config.gc_content = 0.41;
  config.markov_persistence = 0.25;
  config.repeat_fraction = 0.40;  // mammalian chromosomes are repeat-rich
  config.repeat_unit_min = 300;
  config.repeat_unit_max = 6000;
  config.repeat_divergence = 0.05;
  config.seed = seed;
  return config;
}

std::vector<std::uint8_t> simulate_genome(const GenomeSimConfig& config) {
  if (config.length == 0) {
    throw std::invalid_argument("simulate_genome: length must be > 0");
  }
  if (config.gc_content < 0.0 || config.gc_content > 1.0 ||
      config.repeat_fraction < 0.0 || config.repeat_fraction >= 1.0 ||
      config.repeat_unit_min == 0 || config.repeat_unit_min > config.repeat_unit_max) {
    throw std::invalid_argument("simulate_genome: invalid configuration");
  }
  Xoshiro256 rng(config.seed);

  // Background composition: cumulative probabilities over A, C, G, T with
  // optional persistence of the previous base.
  const double p_at = (1.0 - config.gc_content) / 2.0;
  const double p_gc = config.gc_content / 2.0;
  const double cum[4] = {p_at, p_at + p_gc, p_at + 2 * p_gc, 1.0};  // A C G T

  std::vector<std::uint8_t> genome(config.length);
  std::uint8_t prev = 0;
  for (std::size_t i = 0; i < config.length; ++i) {
    if (i > 0 && rng.chance(config.markov_persistence)) {
      genome[i] = prev;
      continue;
    }
    const double u = rng.uniform();
    std::uint8_t base = 3;
    for (std::uint8_t c = 0; c < 3; ++c) {
      if (u < cum[c]) {
        base = c;
        break;
      }
    }
    genome[i] = base;
    prev = base;
  }

  // Repeat families: copy already-generated regions elsewhere with point
  // mutations until the target coverage is met.
  const auto target = static_cast<std::size_t>(
      config.repeat_fraction * static_cast<double>(config.length));
  std::size_t covered = 0;
  while (covered < target) {
    const std::size_t span = config.repeat_unit_min +
                             rng.below(config.repeat_unit_max - config.repeat_unit_min + 1);
    const std::size_t unit = std::min(span, config.length / 2);
    if (unit == 0) break;
    const std::size_t src = rng.below(config.length - unit + 1);
    const std::size_t dst = rng.below(config.length - unit + 1);
    for (std::size_t k = 0; k < unit; ++k) {
      std::uint8_t base = genome[src + k];
      if (rng.chance(config.repeat_divergence)) {
        base = static_cast<std::uint8_t>((base + 1 + rng.below(3)) & 3);
      }
      genome[dst + k] = base;
    }
    covered += unit;
  }
  return genome;
}

std::string simulate_genome_string(const GenomeSimConfig& config) {
  return dna_decode_string(simulate_genome(config));
}

}  // namespace bwaver
