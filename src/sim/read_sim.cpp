#include "sim/read_sim.hpp"

#include <stdexcept>

#include "fmindex/dna.hpp"
#include "util/rng.hpp"

namespace bwaver {

std::vector<SimulatedRead> simulate_reads(std::span<const std::uint8_t> reference,
                                          const ReadSimConfig& config) {
  if (config.read_length == 0) {
    throw std::invalid_argument("simulate_reads: read_length must be > 0");
  }
  if (config.read_length > reference.size()) {
    throw std::invalid_argument("simulate_reads: read longer than reference");
  }
  if (config.mapping_ratio < 0.0 || config.mapping_ratio > 1.0) {
    throw std::invalid_argument("simulate_reads: mapping_ratio must be in [0, 1]");
  }
  if (config.error_rate < 0.0 || config.error_rate > 1.0) {
    throw std::invalid_argument("simulate_reads: error_rate must be in [0, 1]");
  }
  Xoshiro256 rng(config.seed);

  std::vector<SimulatedRead> reads;
  reads.reserve(config.num_reads);
  const std::size_t positions = reference.size() - config.read_length + 1;
  // Deterministic mapped count (not Bernoulli per read) so the requested
  // ratio holds exactly — Fig. 7's x-axis values are exact percentages.
  const auto num_mapping = static_cast<std::size_t>(
      config.mapping_ratio * static_cast<double>(config.num_reads) + 0.5);

  for (std::size_t r = 0; r < config.num_reads; ++r) {
    SimulatedRead read;
    read.codes.resize(config.read_length);
    if (r < num_mapping) {
      const auto origin = static_cast<std::uint32_t>(rng.below(positions));
      read.origin = origin;
      read.from_reverse_strand = rng.chance(config.revcomp_fraction);
      if (read.from_reverse_strand) {
        for (unsigned k = 0; k < config.read_length; ++k) {
          read.codes[k] =
              dna_complement(reference[origin + config.read_length - 1 - k]);
        }
      } else {
        for (unsigned k = 0; k < config.read_length; ++k) {
          read.codes[k] = reference[origin + k];
        }
      }
      if (config.error_rate > 0.0) {
        // Substitution errors: rotate to one of the three OTHER bases, so
        // every applied error is a guaranteed mismatch against the origin.
        for (unsigned k = 0; k < config.read_length; ++k) {
          if (rng.chance(config.error_rate)) {
            read.codes[k] = static_cast<std::uint8_t>(
                (read.codes[k] + 1 + rng.below(3)) & 3);
            ++read.errors;
          }
        }
      }
    } else {
      for (auto& code : read.codes) {
        code = static_cast<std::uint8_t>(rng.below(4));
      }
    }
    reads.push_back(std::move(read));
  }

  // Shuffle so mapped/unmapped reads interleave like a real run.
  for (std::size_t i = reads.size(); i > 1; --i) {
    std::swap(reads[i - 1], reads[rng.below(i)]);
  }
  return reads;
}

std::vector<FastqRecord> reads_to_fastq(std::span<const SimulatedRead> reads) {
  std::vector<FastqRecord> records;
  records.reserve(reads.size());
  Xoshiro256 rng(0xC0FFEE);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto& read = reads[i];
    FastqRecord record;
    record.name = "read_" + std::to_string(i);
    if (read.origin != SimulatedRead::kUnmapped) {
      record.name += "_pos" + std::to_string(read.origin);
      record.name += read.from_reverse_strand ? "_rev" : "_fwd";
      if (read.errors != 0) record.name += "_e" + std::to_string(read.errors);
    } else {
      record.name += "_random";
    }
    record.sequence = dna_decode_string(read.codes);
    record.quality.resize(read.codes.size());
    for (auto& q : record.quality) {
      q = static_cast<char>('!' + 30 + rng.below(10));  // plausible Phred 30-39
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace bwaver
