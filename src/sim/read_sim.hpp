// Short-read simulator with mapping-ratio control.
//
// Substitute for the paper's real NGS read sets. "Mapping" reads are exact
// substrings of the reference sampled from either strand; "non-mapping"
// reads are uniform-random sequences, which for the read lengths used
// (35-100 bp) occur in a <= 100 Mbp reference with probability ~ N * 4^-L,
// i.e. never in practice. The paper's Fig. 7 sweeps the mapping ratio, and
// Sec. IV notes that search time depends only on read count and mapping
// ratio — this generator reproduces exactly those two knobs.
//
// error_rate adds per-base substitution errors to the mapping reads
// (always to a DIFFERENT base, so every draw is a real mismatch),
// deterministic per seed — the workload the approximate-mapping stages and
// bench_approx_search exercise. SimulatedRead::errors records how many
// were applied and the FASTQ name carries an _eN suffix.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "io/fastq.hpp"

namespace bwaver {

struct ReadSimConfig {
  std::size_t num_reads = 1000;
  unsigned read_length = 100;
  double mapping_ratio = 1.0;     ///< fraction of reads that occur in the reference
  double revcomp_fraction = 0.5;  ///< of mapping reads, fraction drawn from the - strand
  double error_rate = 0.0;        ///< per-base substitution probability (mapping reads)
  std::uint64_t seed = 7;
};

struct SimulatedRead {
  static constexpr std::uint32_t kUnmapped = std::numeric_limits<std::uint32_t>::max();

  std::vector<std::uint8_t> codes;  ///< 2-bit DNA codes
  std::uint32_t origin = kUnmapped; ///< sampled forward-strand position, or kUnmapped
  bool from_reverse_strand = false; ///< read equals revcomp of reference[origin, +len)
  unsigned errors = 0;              ///< substitutions applied to a mapping read
};

/// Simulates reads against `reference` (2-bit codes). read_length must not
/// exceed the reference length.
std::vector<SimulatedRead> simulate_reads(std::span<const std::uint8_t> reference,
                                          const ReadSimConfig& config);

/// Packages simulated reads as FASTQ records (names record the origin for
/// accuracy checks; qualities are synthetic).
std::vector<FastqRecord> reads_to_fastq(std::span<const SimulatedRead> reads);

}  // namespace bwaver
