// Router/gateway for a shard-routed replica fleet.
//
// One router process fronts N `bwaver serve` replicas (a static backend
// list today). A POST /map request is parsed once, split into contiguous
// read shards, and each shard is routed onto a replica by consistent-
// hashing its "(reference, shard index)" key — the same shard keeps
// hitting the same replica while it is healthy, so that replica's index
// stays resident and hot. Per-shard SAM documents are spliced back into
// one response that is byte-identical to what a single replica would have
// produced for the whole batch.
//
// Reliability mechanics, all surfaced in /metrics:
//   - active health checks (GET /healthz + queue depth from /stats) with
//     up/down hysteresis; down replicas leave the ring, their keys
//     redistribute, and passive failures demote a replica without waiting
//     for the next probe;
//   - failover: a retryable shard failure moves to the next ring
//     candidate (bwaver_router_retries_total);
//   - hedging: once a shard's primary attempt outlives a configurable
//     quantile of recently observed shard latencies, a second attempt
//     starts on the next candidate; the first winner cancels the loser's
//     replica-side job — DELETE /jobs/{id}?reason=hedge-lost — so fleet
//     capacity is returned, not leaked (bwaver_router_hedges_total);
//   - per-tenant token-bucket admission (X-Tenant header): 429 +
//     Retry-After before any replica is touched;
//   - zero-downtime index rollover: POST /admin/rollover fans the new
//     FASTA out to every up replica, which rebuilds off the serving path
//     and flips generations atomically.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "app/http_server.hpp"
#include "fleet/hash_ring.hpp"
#include "fleet/http_client.hpp"
#include "fleet/map_transport.hpp"
#include "fleet/token_bucket.hpp"
#include "obs/metrics.hpp"

namespace bwaver::fleet {

struct BackendAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string key() const { return host + ":" + std::to_string(port); }
};

/// Parses a --backend spec: "host:port" or bare "port" (host defaults to
/// 127.0.0.1). Throws std::invalid_argument on malformed input.
BackendAddress parse_backend(const std::string& spec);

struct RouterOptions {
  std::vector<BackendAddress> backends;
  HttpServerOptions http{};
  HttpClientOptions client{};
  std::size_t vnodes = 64;

  /// Active health probing cadence and up/down hysteresis.
  std::chrono::milliseconds health_interval{250};
  int unhealthy_after = 2;  ///< consecutive failures before leaving the ring
  int healthy_after = 1;    ///< consecutive successes before rejoining

  /// Reads per shard (a request with fewer reads stays one shard).
  std::size_t shard_reads = 256;

  /// Hedging: second attempt once the primary outlives this quantile of
  /// recent shard latencies (0 disables). Until enough samples exist —
  /// and never below it — `hedge_min_delay` is the trigger delay.
  double hedge_quantile = 0.95;
  std::chrono::milliseconds hedge_min_delay{20};
  /// Attempts per shard across failover + hedging (>= 1).
  std::size_t max_attempts = 3;

  /// Per-tenant admission: sustained requests/second and burst size
  /// (0 rate = unlimited; 0 burst = max(rate, 1)).
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;

  /// Per-job deadline forwarded to replicas (0 = replica default).
  std::chrono::milliseconds map_timeout{0};
};

/// Operator-facing view of one backend (GET /backends, tests).
struct BackendSnapshot {
  std::string key;
  bool up = false;
  std::size_t queue_depth = 0;
  std::uint64_t errors = 0;
};

class RouterService {
 public:
  explicit RouterService(RouterOptions options);
  ~RouterService();
  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the health loop.
  void start(std::uint16_t port = 0);
  void stop();

  std::uint16_t port() const noexcept { return server_.port(); }
  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  std::vector<BackendSnapshot> backends() const;

  /// Runs one synchronous probe round (tests pin health state with this
  /// instead of sleeping through health_interval).
  void check_health_now();

 private:
  struct Backend;
  struct Race;

  HttpResponse handle_map(const HttpRequest& request);
  HttpResponse handle_rollover(const HttpRequest& request);
  HttpResponse handle_backends() const;
  HttpResponse handle_metrics();

  void health_loop();
  void probe(Backend& backend);
  void set_up_state(Backend& backend, bool up);
  void note_failure(Backend& backend, TransportErrorKind kind);
  void note_success(Backend& backend);

  /// Healthy ring candidates for a shard key, load-aware tiebreak applied,
  /// capped at max_attempts.
  std::vector<std::shared_ptr<Backend>> pick_candidates(const std::string& key);

  /// Maps one shard with failover + hedging. Returns the SAM document or
  /// throws the decisive TransportError.
  std::string map_shard(const MapRequest& request, std::size_t shard_index);

  /// Current hedge trigger delay from the recent-latency window.
  std::chrono::milliseconds hedge_delay_now();
  void record_shard_latency(double seconds);

  RouterOptions options_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<HttpClient> client_;
  HttpServer server_;

  mutable std::mutex state_mutex_;  ///< ring_ + backend up/down flips
  HashRing ring_;
  std::vector<std::shared_ptr<Backend>> backends_;
  std::map<std::string, std::shared_ptr<Backend>> by_key_;

  std::mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<TokenBucket>> tenants_;

  std::mutex latency_mutex_;
  std::deque<double> recent_latencies_;  ///< seconds, newest at back

  std::thread health_thread_;
  std::mutex health_mutex_;  ///< serializes probe rounds (loop vs tests)
  std::condition_variable health_cv_;
  std::atomic<bool> running_{false};

  // Hot counters (label-free ones cached at construction).
  obs::Counter& requests_total_;
  obs::Counter& shards_total_;
  obs::Counter& hedges_total_;
  obs::Counter& retries_total_;
  obs::Counter& rate_limited_total_;
  obs::Histogram& request_latency_;
};

}  // namespace bwaver::fleet
