// Pooled blocking HTTP/1.1 client for router -> replica hops.
//
// The router/gateway makes many small localhost requests per mapped batch
// (submit, poll, fetch, cancel, health); paying a TCP connect for each one
// dominates the hop cost. This client keeps a per-host:port pool of
// kept-alive connections (idle timeout + max-requests-per-connection cap,
// mirroring the server's keep-alive grant) and surfaces every failure mode
// as a *typed* TransportError so callers can count errors and route around
// sick backends instead of pattern-matching message strings.
//
// Not a general-purpose client: Content-Length framing only (no chunked
// encoding — the bwaver server never emits it), loopback/IPv4, blocking
// with poll()-based deadlines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bwaver::fleet {

/// Failure classification the router keys retry/failover decisions on.
enum class TransportErrorKind {
  kConnect,     ///< refused, unreachable, or connect timeout
  kTimeout,     ///< slow headers/body, or a remote job deadline
  kReset,       ///< peer disconnected mid-response
  kOversize,    ///< response exceeded max_response_bytes
  kProtocol,    ///< malformed status line / headers / framing
  kOverload,    ///< remote admission control said 503-retry-later
  kBadRequest,  ///< the request itself is invalid (4xx-class, not retryable)
  kFailed,      ///< remote processing failed (5xx-class / job failed)
  kCancelled,   ///< attempt abandoned on purpose (hedge loser, give-up)
};

const char* to_string(TransportErrorKind kind);

/// True for errors a *different* backend might not reproduce (connectivity,
/// overload, remote failure); false for caller mistakes and cancellations.
bool is_retryable(TransportErrorKind kind);

class TransportError : public std::runtime_error {
 public:
  TransportError(TransportErrorKind kind, const std::string& message, int http_status = 0)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind),
        http_status_(http_status) {}

  TransportErrorKind kind() const noexcept { return kind_; }
  /// HTTP status attached to kOverload/kBadRequest/kFailed (0 elsewhere).
  int http_status() const noexcept { return http_status_; }
  bool retryable() const noexcept { return is_retryable(kind_); }

 private:
  TransportErrorKind kind_;
  int http_status_;
};

struct HttpClientOptions {
  std::chrono::milliseconds connect_timeout{1000};
  /// Budget from sending the request to having the full response head.
  std::chrono::milliseconds header_timeout{5000};
  /// Per-poll budget while streaming the response body.
  std::chrono::milliseconds body_timeout{10000};
  std::size_t max_response_bytes = std::size_t{256} << 20;
  /// Pool kept-alive connections and reuse them (false = one connection
  /// per request, Connection: close).
  bool keep_alive = true;
  /// Idle pooled connections older than this are closed, not reused.
  std::chrono::milliseconds pool_idle_timeout{10000};
  /// Pooled connections kept per host:port beyond in-flight ones.
  std::size_t max_pool_per_host = 8;
  /// Requests sent over one connection before it is retired (client-side
  /// mirror of the server's Keep-Alive max).
  std::size_t max_requests_per_connection = 1000;
};

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;

  std::string header(const std::string& name, const std::string& fallback = "") const {
    const auto it = headers.find(name);
    return it == headers.end() ? fallback : it->second;
  }
};

class HttpClient {
 public:
  explicit HttpClient(HttpClientOptions options = HttpClientOptions{});
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Performs one request and returns the parsed response (any status,
  /// including 4xx/5xx — HTTP-level errors are NOT thrown; only transport
  /// failures throw TransportError: kConnect/kTimeout/kReset/kOversize/
  /// kProtocol). A reused pooled connection that dies before yielding a
  /// single response byte is retried once on a fresh connection.
  ClientResponse request(const std::string& host, std::uint16_t port,
                         const std::string& method, const std::string& target,
                         const std::string& body = "",
                         const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Drops every pooled idle connection.
  void close_idle();

  /// Lifetime telemetry (tests assert pooling actually pools).
  std::uint64_t connections_opened() const noexcept {
    return connections_opened_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_sent() const noexcept {
    return requests_sent_.load(std::memory_order_relaxed);
  }

  const HttpClientOptions& options() const noexcept { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::size_t requests = 0;
    std::chrono::steady_clock::time_point last_used{};
  };

  /// Pops a fresh-enough pooled connection or opens a new one (throws
  /// TransportError{kConnect}). `reused` reports which happened.
  Connection checkout(const std::string& host, std::uint16_t port, bool& reused);
  void checkin(const std::string& key, Connection connection, bool reusable);
  Connection open_connection(const std::string& host, std::uint16_t port);
  ClientResponse roundtrip(Connection& connection, const std::string& host,
                           const std::string& method, const std::string& target,
                           const std::string& body,
                           const std::vector<std::pair<std::string, std::string>>& headers,
                           bool& connection_reusable, bool& peer_died_early);

  HttpClientOptions options_;
  std::mutex mutex_;
  std::map<std::string, std::vector<Connection>> pool_;  ///< key: host:port
  std::atomic<std::uint64_t> connections_opened_{0};
  std::atomic<std::uint64_t> requests_sent_{0};
};

}  // namespace bwaver::fleet
