// Token-bucket rate limiter for per-tenant admission at the router.
//
// Classic continuous-refill bucket: capacity `burst` tokens, refilled at
// `rate` tokens/second, one token per admitted request. Bursts up to
// `burst` pass immediately; sustained traffic is clamped to `rate`. The
// router keeps one bucket per tenant (X-Tenant header) and answers 429 +
// Retry-After when a bucket runs dry, so one chatty tenant cannot starve
// the replicas for everyone else.
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>

namespace bwaver::fleet {

class TokenBucket {
 public:
  TokenBucket(double rate_per_second, double burst)
      : rate_(rate_per_second),
        burst_(burst),
        tokens_(burst),
        last_(std::chrono::steady_clock::now()) {}

  /// Consumes `tokens` if available right now; never blocks.
  bool try_acquire(double tokens = 1.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    refill_locked();
    if (tokens_ < tokens) return false;
    tokens_ -= tokens;
    return true;
  }

  /// Seconds until one token will be available (0 when one already is).
  /// The router rounds this up into a Retry-After hint.
  double seconds_until_available() {
    std::lock_guard<std::mutex> lock(mutex_);
    refill_locked();
    if (tokens_ >= 1.0) return 0.0;
    return rate_ <= 0.0 ? 1.0 : (1.0 - tokens_) / rate_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill_locked() {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  }

  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
  std::mutex mutex_;
};

}  // namespace bwaver::fleet
