#include "fleet/map_transport.hpp"

#include <cctype>
#include <stdexcept>
#include <thread>
#include <utility>

#include "io/fastq.hpp"
#include "kernels/registry.hpp"
#include "mapper/map_service.hpp"

namespace bwaver::fleet {

namespace {

/// Percent-encodes a query-string value (reference names are usually plain
/// tokens, but user-supplied ones may not be).
std::string url_encode(const std::string& value) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(value.size());
  for (const unsigned char c : value) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    }
  }
  return out;
}

/// Minimal field extraction from the replica's flat JSON documents
/// ({"id":7,...} / {"state":"running",...}); not a general parser.
bool json_uint_field(const std::string& json, const std::string& key, std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  if (pos >= json.size() || !std::isdigit(static_cast<unsigned char>(json[pos]))) {
    return false;
  }
  out = 0;
  while (pos < json.size() && std::isdigit(static_cast<unsigned char>(json[pos]))) {
    out = out * 10 + static_cast<std::uint64_t>(json[pos] - '0');
    ++pos;
  }
  return true;
}

bool json_string_field(const std::string& json, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = json.find('"', start);
  if (end == std::string::npos) return false;
  out = json.substr(start, end - start);
  return true;
}

}  // namespace

JobManager::JobFn make_map_job(IndexRegistry& registry, PipelineConfig config,
                               ServerStats& stats, std::string ref,
                               std::shared_ptr<const std::vector<FastqRecord>> records) {
  return [&registry, config = std::move(config), &stats, ref = std::move(ref),
          records = std::move(records)](const CancelToken& cancel) {
    const IndexRegistry::Handle handle = registry.acquire(ref);
    const MappingOutcome outcome =
        map_records_over(handle->index, handle->reference, config, *records,
                         /*bowtie=*/nullptr, /*mapping_seconds=*/nullptr, &cancel);
    stats.reads_mapped.inc(outcome.reads);
    stats.map_shards.inc(outcome.shards);
    return outcome.sam;
  };
}

std::string InProcessTransport::map(const MapRequest& request,
                                    const std::atomic<bool>* give_up) {
  std::shared_ptr<const std::vector<FastqRecord>> records;
  try {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(request.fastq.data());
    records = std::make_shared<const std::vector<FastqRecord>>(
        parse_fastq(std::span<const std::uint8_t>(bytes, request.fastq.size())));
  } catch (const std::exception& e) {
    throw TransportError(TransportErrorKind::kBadRequest,
                         std::string("bad FASTQ: ") + e.what(), 400);
  }
  if (!registry_.contains(request.ref)) {
    throw TransportError(TransportErrorKind::kBadRequest,
                         "unknown reference '" + request.ref + "'", 404);
  }

  PipelineConfig config = config_;
  if (!request.engine.empty()) {
    const auto engine = kernels::parse_engine_name(request.engine);
    if (!engine) {
      throw TransportError(TransportErrorKind::kBadRequest,
                           "unknown engine '" + request.engine + "'", 400);
    }
    config.engine = *engine;
  }
  if (!request.search_mode.empty()) {
    const auto mode = parse_search_mode(request.search_mode);
    if (!mode) {
      throw TransportError(TransportErrorKind::kBadRequest,
                           "unknown search_mode '" + request.search_mode + "'", 400);
    }
    config.search_mode = *mode;
  }

  std::optional<std::chrono::milliseconds> timeout;
  if (request.timeout.count() > 0) timeout = request.timeout;
  std::uint64_t id = 0;
  try {
    id = jobs_.submit(request.ref,
                      make_map_job(registry_, config, jobs_.stats(), request.ref, records),
                      JobPriority::kHigh, timeout, request.request_id);
  } catch (const QueueFull&) {
    throw TransportError(TransportErrorKind::kOverload, "mapping queue full", 503);
  }
  jobs_.stats().record_reference(request.ref);

  // Poll rather than JobManager::wait() so a hedge loser can be abandoned
  // (and its queued/running work cancelled) mid-wait.
  bool cancel_sent = false;
  for (;;) {
    const auto record = jobs_.status(id);
    if (!record) {
      throw TransportError(TransportErrorKind::kFailed,
                           "job " + std::to_string(id) + " vanished (GC'd?)");
    }
    if (is_terminal(record->state)) {
      switch (record->state) {
        case JobState::kDone: {
          auto sam = jobs_.result(id);
          if (!sam) {
            throw TransportError(TransportErrorKind::kFailed, "result no longer retained");
          }
          return *std::move(sam);
        }
        case JobState::kTimedOut:
          throw TransportError(TransportErrorKind::kTimeout, "mapping job timed out");
        case JobState::kCancelled:
          throw TransportError(TransportErrorKind::kCancelled, "mapping job cancelled");
        default:
          throw TransportError(TransportErrorKind::kFailed, record->error, 500);
      }
    }
    if (give_up != nullptr && give_up->load(std::memory_order_relaxed) && !cancel_sent) {
      jobs_.cancel(id, "hedge-lost");
      cancel_sent = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

HttpMapTransport::HttpMapTransport(std::shared_ptr<HttpClient> client, std::string host,
                                   std::uint16_t port)
    : client_(std::move(client)), host_(std::move(host)), port_(port) {}

void HttpMapTransport::throw_http(const ClientResponse& response, const std::string& what) {
  const std::string detail =
      what + " -> HTTP " + std::to_string(response.status) + " from " + name();
  if (response.status == 503 || response.status == 429) {
    throw TransportError(TransportErrorKind::kOverload, detail, response.status);
  }
  if (response.status >= 400 && response.status < 500) {
    throw TransportError(TransportErrorKind::kBadRequest, detail, response.status);
  }
  throw TransportError(TransportErrorKind::kFailed, detail, response.status);
}

std::string HttpMapTransport::map(const MapRequest& request,
                                  const std::atomic<bool>* give_up) {
  std::string target = "/jobs?ref=" + url_encode(request.ref) + "&priority=high";
  if (!request.engine.empty()) {
    target += "&engine=" + url_encode(request.engine);
  }
  if (!request.search_mode.empty()) {
    target += "&search_mode=" + url_encode(request.search_mode);
  }
  if (request.timeout.count() > 0) {
    target += "&timeout-ms=" + std::to_string(request.timeout.count());
  }
  std::vector<std::pair<std::string, std::string>> headers;
  if (!request.request_id.empty()) headers.emplace_back("X-Request-Id", request.request_id);
  if (!request.tenant.empty()) headers.emplace_back("X-Tenant", request.tenant);

  const ClientResponse submitted =
      client_->request(host_, port_, "POST", target, request.fastq, headers);
  if (submitted.status != 202) throw_http(submitted, "submit");
  std::uint64_t id = 0;
  if (!json_uint_field(submitted.body, "id", id)) {
    throw TransportError(TransportErrorKind::kProtocol,
                         "submit accepted but no job id in: " + submitted.body.substr(0, 128));
  }
  const std::string job_path = "/jobs/" + std::to_string(id);

  auto interval = poll_initial_;
  for (;;) {
    if (give_up != nullptr && give_up->load(std::memory_order_relaxed)) {
      // Lost the hedge race: free the replica's worker/queue slot. Best
      // effort — the loser's outcome no longer matters to the caller.
      try {
        client_->request(host_, port_, "DELETE", job_path + "?reason=hedge-lost");
      } catch (const TransportError&) {
      }
      throw TransportError(TransportErrorKind::kCancelled, "hedge lost; job " +
                                                               std::to_string(id) +
                                                               " cancelled on " + name());
    }

    const ClientResponse polled = client_->request(host_, port_, "GET", job_path);
    if (polled.status != 200) throw_http(polled, "poll " + job_path);
    std::string state;
    if (!json_string_field(polled.body, "state", state)) {
      throw TransportError(TransportErrorKind::kProtocol,
                           "no state in poll response: " + polled.body.substr(0, 128));
    }
    if (state == "done") break;
    if (state == "failed") {
      std::string error;
      json_string_field(polled.body, "error", error);
      throw TransportError(TransportErrorKind::kFailed,
                           "job " + std::to_string(id) + " failed on " + name() + ": " + error,
                           500);
    }
    if (state == "cancelled") {
      throw TransportError(TransportErrorKind::kCancelled,
                           "job " + std::to_string(id) + " cancelled on " + name());
    }
    if (state == "timed_out") {
      throw TransportError(TransportErrorKind::kTimeout,
                           "job " + std::to_string(id) + " timed out on " + name());
    }

    std::this_thread::sleep_for(interval);
    interval = std::min(poll_max_, interval + interval / 2 + std::chrono::milliseconds(1));
  }

  const ClientResponse result = client_->request(host_, port_, "GET", job_path + "/result");
  if (result.status != 200) throw_http(result, "fetch " + job_path + "/result");
  return result.body;
}

}  // namespace bwaver::fleet
