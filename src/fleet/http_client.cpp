#include "fleet/http_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace bwaver::fleet {

namespace {

using Clock = std::chrono::steady_clock;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Milliseconds left until `deadline`, clamped to >= 0.
int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(left.count(), 0));
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* to_string(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kConnect: return "connect";
    case TransportErrorKind::kTimeout: return "timeout";
    case TransportErrorKind::kReset: return "reset";
    case TransportErrorKind::kOversize: return "oversize";
    case TransportErrorKind::kProtocol: return "protocol";
    case TransportErrorKind::kOverload: return "overload";
    case TransportErrorKind::kBadRequest: return "bad_request";
    case TransportErrorKind::kFailed: return "failed";
    case TransportErrorKind::kCancelled: return "cancelled";
  }
  return "?";
}

bool is_retryable(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kConnect:
    case TransportErrorKind::kTimeout:
    case TransportErrorKind::kReset:
    case TransportErrorKind::kOversize:
    case TransportErrorKind::kProtocol:
    case TransportErrorKind::kOverload:
    case TransportErrorKind::kFailed:
      return true;
    case TransportErrorKind::kBadRequest:
    case TransportErrorKind::kCancelled:
      return false;
  }
  return false;
}

HttpClient::HttpClient(HttpClientOptions options) : options_(options) {}

HttpClient::~HttpClient() { close_idle(); }

void HttpClient::close_idle() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, connections] : pool_) {
    for (Connection& connection : connections) ::close(connection.fd);
    connections.clear();
  }
  pool_.clear();
}

HttpClient::Connection HttpClient::open_connection(const std::string& host,
                                                   std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError(TransportErrorKind::kConnect, "socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError(TransportErrorKind::kConnect, "bad address: " + host);
  }

  // Non-blocking connect with a poll() deadline, then back to blocking
  // (reads are paced by poll() anyway).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      const std::string detail = std::strerror(errno);
      ::close(fd);
      throw TransportError(TransportErrorKind::kConnect,
                           host + ":" + std::to_string(port) + ": " + detail);
    }
    pollfd waiter{};
    waiter.fd = fd;
    waiter.events = POLLOUT;
    const int ready =
        ::poll(&waiter, 1, static_cast<int>(options_.connect_timeout.count()));
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      if (ready <= 0) {
        throw TransportError(TransportErrorKind::kConnect,
                             host + ":" + std::to_string(port) + ": connect timeout");
      }
      throw TransportError(TransportErrorKind::kConnect,
                           host + ":" + std::to_string(port) + ": " + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  Connection connection;
  connection.fd = fd;
  connection.last_used = Clock::now();
  return connection;
}

HttpClient::Connection HttpClient::checkout(const std::string& host, std::uint16_t port,
                                            bool& reused) {
  const std::string key = host + ":" + std::to_string(port);
  if (options_.keep_alive) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& connections = pool_[key];
    const auto now = Clock::now();
    while (!connections.empty()) {
      Connection connection = connections.back();
      connections.pop_back();
      if (now - connection.last_used > options_.pool_idle_timeout) {
        ::close(connection.fd);
        continue;
      }
      reused = true;
      return connection;
    }
  }
  reused = false;
  return open_connection(host, port);
}

void HttpClient::checkin(const std::string& key, Connection connection, bool reusable) {
  if (!reusable || !options_.keep_alive ||
      connection.requests >= options_.max_requests_per_connection) {
    ::close(connection.fd);
    return;
  }
  connection.last_used = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  auto& connections = pool_[key];
  if (connections.size() >= options_.max_pool_per_host) {
    ::close(connection.fd);
    return;
  }
  connections.push_back(connection);
}

ClientResponse HttpClient::roundtrip(
    Connection& connection, const std::string& host, const std::string& method,
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    bool& connection_reusable, bool& peer_died_early) {
  connection_reusable = false;
  peer_died_early = false;

  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " + host + "\r\n";
  request += options_.keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  if (!send_all(connection.fd, request.data(), request.size())) {
    peer_died_early = true;  // a stale pooled connection dies on send
    throw TransportError(TransportErrorKind::kReset, "send failed: " + std::string(std::strerror(errno)));
  }
  connection.requests++;
  requests_sent_.fetch_add(1, std::memory_order_relaxed);

  // Response head, under the header deadline.
  const auto header_deadline = Clock::now() + options_.header_timeout;
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[8192];
  while (header_end == std::string::npos) {
    pollfd waiter{};
    waiter.fd = connection.fd;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, remaining_ms(header_deadline));
    if (ready <= 0) {
      throw TransportError(TransportErrorKind::kTimeout,
                           "response headers not received within " +
                               std::to_string(options_.header_timeout.count()) + " ms");
    }
    const ssize_t n = ::recv(connection.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (buffer.empty()) {
        // Not one response byte: indistinguishable from a keep-alive race
        // on a reused connection; the caller may retry once.
        peer_died_early = true;
      }
      throw TransportError(TransportErrorKind::kReset,
                           "peer closed before response headers completed");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (header_end == std::string::npos && buffer.size() > (1u << 20)) {
      throw TransportError(TransportErrorKind::kProtocol, "response headers exceed 1 MiB");
    }
  }

  // Status line: "HTTP/1.1 NNN Reason".
  ClientResponse response;
  {
    const std::size_t eol = buffer.find("\r\n");
    const std::string status_line = buffer.substr(0, eol);
    if (status_line.compare(0, 5, "HTTP/") != 0) {
      throw TransportError(TransportErrorKind::kProtocol,
                           "bad status line: " + status_line.substr(0, 64));
    }
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string::npos || sp + 4 > status_line.size() ||
        !std::isdigit(static_cast<unsigned char>(status_line[sp + 1])) ||
        !std::isdigit(static_cast<unsigned char>(status_line[sp + 2])) ||
        !std::isdigit(static_cast<unsigned char>(status_line[sp + 3]))) {
      throw TransportError(TransportErrorKind::kProtocol,
                           "bad status line: " + status_line.substr(0, 64));
    }
    response.status = std::stoi(status_line.substr(sp + 1, 3));

    std::size_t pos = eol + 2;
    while (pos < header_end) {
      std::size_t line_end = buffer.find("\r\n", pos);
      if (line_end == std::string::npos || line_end > header_end) line_end = header_end;
      const std::string line = buffer.substr(pos, line_end - pos);
      pos = line_end + 2;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(value.begin());
      response.headers[lower(line.substr(0, colon))] = value;
    }
  }

  // Body framing: Content-Length (ours always sends it) or read-to-EOF.
  std::size_t content_length = 0;
  bool has_length = false;
  if (const auto it = response.headers.find("content-length"); it != response.headers.end()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(it->second));
      has_length = true;
    } catch (const std::exception&) {
      throw TransportError(TransportErrorKind::kProtocol,
                           "bad Content-Length: " + it->second.substr(0, 64));
    }
  }
  if (has_length && content_length > options_.max_response_bytes) {
    throw TransportError(TransportErrorKind::kOversize,
                         "response of " + std::to_string(content_length) +
                             " bytes exceeds cap of " +
                             std::to_string(options_.max_response_bytes));
  }

  response.body = buffer.substr(header_end + 4);
  while (!has_length || response.body.size() < content_length) {
    if (response.body.size() > options_.max_response_bytes) {
      throw TransportError(TransportErrorKind::kOversize,
                           "response exceeds cap of " +
                               std::to_string(options_.max_response_bytes) + " bytes");
    }
    pollfd waiter{};
    waiter.fd = connection.fd;
    waiter.events = POLLIN;
    const int ready =
        ::poll(&waiter, 1, static_cast<int>(options_.body_timeout.count()));
    if (ready <= 0) {
      throw TransportError(TransportErrorKind::kTimeout,
                           "response body stalled beyond " +
                               std::to_string(options_.body_timeout.count()) + " ms");
    }
    const ssize_t n = ::recv(connection.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (!has_length) break;  // EOF terminates an unframed body
      throw TransportError(TransportErrorKind::kReset,
                           "peer closed mid-body (" +
                               std::to_string(response.body.size()) + "/" +
                               std::to_string(content_length) + " bytes)");
    }
    response.body.append(chunk, static_cast<std::size_t>(n));
  }
  if (has_length && response.body.size() > content_length) {
    // Pipelined surplus would desynchronize the pooled connection; we never
    // pipeline, so surplus bytes mean broken framing.
    throw TransportError(TransportErrorKind::kProtocol, "response longer than Content-Length");
  }

  connection_reusable = has_length && options_.keep_alive &&
                        lower(response.header("connection")) == "keep-alive";
  return response;
}

ClientResponse HttpClient::request(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string key = host + ":" + std::to_string(port);
  for (int attempt = 0;; ++attempt) {
    bool reused = false;
    Connection connection = checkout(host, port, reused);
    bool reusable = false;
    bool died_early = false;
    try {
      ClientResponse response = roundtrip(connection, host, method, target, body,
                                          headers, reusable, died_early);
      checkin(key, connection, reusable);
      return response;
    } catch (const TransportError&) {
      ::close(connection.fd);
      // One silent retry for the classic keep-alive race: the server closed
      // the pooled connection while our request was in flight. Only when the
      // connection was reused and not a single response byte arrived.
      if (reused && died_early && attempt == 0) continue;
      throw;
    }
  }
}

}  // namespace bwaver::fleet
