#include "fleet/router.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "io/fastq.hpp"

namespace bwaver::fleet {

namespace {

constexpr std::size_t kLatencyWindow = 256;  ///< shard latencies kept for quantiles
constexpr std::size_t kMinHedgeSamples = 16;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Splits a SAM document into its leading header block ('@' lines) and the
/// alignment lines that follow.
void split_sam(const std::string& sam, std::string& header, std::string& body) {
  std::size_t pos = 0;
  while (pos < sam.size() && sam[pos] == '@') {
    const std::size_t eol = sam.find('\n', pos);
    if (eol == std::string::npos) {
      pos = sam.size();
      break;
    }
    pos = eol + 1;
  }
  header = sam.substr(0, pos);
  body = sam.substr(pos);
}

/// Pulls `"queue":{"depth":N` out of a replica /stats document.
bool parse_queue_depth(const std::string& json, std::size_t& depth) {
  const std::size_t block = json.find("\"queue\":{");
  if (block == std::string::npos) return false;
  const std::string needle = "\"depth\":";
  const std::size_t at = json.find(needle, block);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  if (pos >= json.size() || !std::isdigit(static_cast<unsigned char>(json[pos]))) {
    return false;
  }
  depth = 0;
  while (pos < json.size() && std::isdigit(static_cast<unsigned char>(json[pos]))) {
    depth = depth * 10 + static_cast<std::size_t>(json[pos] - '0');
    ++pos;
  }
  return true;
}

}  // namespace

BackendAddress parse_backend(const std::string& spec) {
  BackendAddress address;
  std::string port_part = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) address.host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty() ||
      port_part.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("bad backend spec '" + spec + "' (want host:port)");
  }
  const unsigned long port = std::stoul(port_part);
  if (port == 0 || port > 65535) {
    throw std::invalid_argument("bad backend port in '" + spec + "'");
  }
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

struct RouterService::Backend {
  BackendAddress address;
  std::shared_ptr<HttpMapTransport> transport;
  std::atomic<bool> up{true};  ///< optimistic until the first probe says otherwise
  std::atomic<int> consecutive_failures{0};
  std::atomic<int> consecutive_successes{0};
  std::atomic<std::size_t> queue_depth{0};
  std::atomic<std::uint64_t> errors{0};
  obs::Gauge* up_gauge = nullptr;
  obs::Gauge* depth_gauge = nullptr;
  obs::Histogram* latency = nullptr;  ///< successful shard round-trips
};

RouterService::RouterService(RouterOptions options)
    : options_(std::move(options)),
      metrics_(std::make_shared<obs::MetricsRegistry>()),
      client_(std::make_shared<HttpClient>(options_.client)),
      server_(options_.http),
      ring_(options_.vnodes),
      requests_total_(metrics_->counter("bwaver_router_requests_total",
                                        "Mapping requests accepted by the router")),
      shards_total_(metrics_->counter("bwaver_router_shards_total",
                                      "Shards dispatched to replicas")),
      hedges_total_(metrics_->counter("bwaver_router_hedges_total",
                                      "Hedge attempts launched after the latency "
                                      "quantile trigger")),
      retries_total_(metrics_->counter("bwaver_router_retries_total",
                                       "Failover attempts after a retryable shard "
                                       "failure")),
      rate_limited_total_(metrics_->counter("bwaver_router_rate_limited_total",
                                            "Requests answered 429 by per-tenant "
                                            "admission control")),
      request_latency_(metrics_->histogram("bwaver_router_request_seconds",
                                           "End-to-end router mapping latency",
                                           obs::Histogram::default_time_bounds())) {
  if (options_.backends.empty()) {
    throw std::invalid_argument("RouterService: at least one backend required");
  }
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  for (const BackendAddress& address : options_.backends) {
    auto backend = std::make_shared<Backend>();
    backend->address = address;
    backend->transport =
        std::make_shared<HttpMapTransport>(client_, address.host, address.port);
    const obs::Labels labels{{"backend", address.key()}};
    backend->up_gauge = &metrics_->gauge("bwaver_router_backend_up",
                                         "1 when the backend is in the ring", labels);
    backend->depth_gauge =
        &metrics_->gauge("bwaver_router_backend_queue_depth",
                         "Replica job-queue depth at the last probe", labels);
    backend->latency = &metrics_->histogram("bwaver_router_backend_seconds",
                                            "Successful shard round-trip latency",
                                            obs::Histogram::default_time_bounds(), labels);
    backend->up_gauge->set(1.0);
    if (by_key_.count(address.key()) != 0) {
      throw std::invalid_argument("RouterService: duplicate backend " + address.key());
    }
    ring_.add(address.key());
    by_key_[address.key()] = backend;
    backends_.push_back(std::move(backend));
  }

  server_.route("GET", "/healthz",
                [](const HttpRequest&) { return HttpResponse::text(200, "ok\n"); });
  server_.route("GET", "/readyz", [this](const HttpRequest&) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return ring_.size() > 0 ? HttpResponse::text(200, "ok\n")
                            : HttpResponse::text(503, "no healthy backends\n");
  });
  server_.route("GET", "/backends",
                [this](const HttpRequest&) { return handle_backends(); });
  server_.route("GET", "/metrics",
                [this](const HttpRequest&) { return handle_metrics(); });
  server_.route("POST", "/map",
                [this](const HttpRequest& request) { return handle_map(request); });
  server_.route("POST", "/admin/rollover",
                [this](const HttpRequest& request) { return handle_rollover(request); });
  server_.route("GET", "/", [this](const HttpRequest&) {
    std::string text = "bwaver router: " + std::to_string(backends_.size()) +
                       " backend(s)\nPOST /map?ref=NAME with a FASTQ body; see "
                       "/backends, /metrics\n";
    return HttpResponse::text(200, text);
  });
}

RouterService::~RouterService() { stop(); }

void RouterService::start(std::uint16_t port) {
  server_.start(port);
  running_.store(true);
  health_thread_ = std::thread([this] { health_loop(); });
}

void RouterService::stop() {
  if (running_.exchange(false)) {
    health_cv_.notify_all();
    if (health_thread_.joinable()) health_thread_.join();
  }
  server_.stop();
  client_->close_idle();
}

void RouterService::health_loop() {
  std::unique_lock<std::mutex> lock(health_mutex_);
  while (running_.load()) {
    for (const auto& backend : backends_) {
      if (!running_.load()) return;
      probe(*backend);
    }
    health_cv_.wait_for(lock, options_.health_interval,
                        [this] { return !running_.load(); });
  }
}

void RouterService::check_health_now() {
  std::lock_guard<std::mutex> lock(health_mutex_);
  for (const auto& backend : backends_) probe(*backend);
}

void RouterService::probe(Backend& backend) {
  bool alive = false;
  try {
    const ClientResponse health = client_->request(backend.address.host,
                                                   backend.address.port, "GET", "/healthz");
    alive = health.status == 200;
    if (alive) {
      // Queue depth is advisory (load-aware tiebreak); a failed stats read
      // does not demote a live backend.
      try {
        const ClientResponse stats = client_->request(backend.address.host,
                                                      backend.address.port, "GET", "/stats");
        std::size_t depth = 0;
        if (stats.status == 200 && parse_queue_depth(stats.body, depth)) {
          backend.queue_depth.store(depth, std::memory_order_relaxed);
          backend.depth_gauge->set(static_cast<double>(depth));
        }
      } catch (const TransportError&) {
      }
    }
  } catch (const TransportError&) {
    alive = false;
  }
  if (alive) {
    note_success(backend);
  } else {
    note_failure(backend, TransportErrorKind::kConnect);
  }
}

void RouterService::note_success(Backend& backend) {
  backend.consecutive_failures.store(0, std::memory_order_relaxed);
  const int streak = backend.consecutive_successes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!backend.up.load(std::memory_order_relaxed) && streak >= options_.healthy_after) {
    set_up_state(backend, true);
  }
}

void RouterService::note_failure(Backend& backend, TransportErrorKind kind) {
  backend.errors.fetch_add(1, std::memory_order_relaxed);
  metrics_
      ->counter("bwaver_router_backend_errors_total", "Backend failures, by kind",
                {{"backend", backend.address.key()}, {"kind", to_string(kind)}})
      .inc();
  backend.consecutive_successes.store(0, std::memory_order_relaxed);
  const int streak = backend.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (backend.up.load(std::memory_order_relaxed) && streak >= options_.unhealthy_after) {
    set_up_state(backend, false);
  }
}

void RouterService::set_up_state(Backend& backend, bool up) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (backend.up.exchange(up) == up) return;
  if (up) {
    ring_.add(backend.address.key());
  } else {
    ring_.remove(backend.address.key());
  }
  backend.up_gauge->set(up ? 1.0 : 0.0);
  metrics_
      ->counter("bwaver_router_backend_transitions_total",
                "Backend up/down transitions",
                {{"backend", backend.address.key()}, {"to", up ? "up" : "down"}})
      .inc();
}

std::vector<std::shared_ptr<RouterService::Backend>> RouterService::pick_candidates(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<std::shared_ptr<Backend>> out;
  for (const std::string& node : ring_.candidates(key, backends_.size())) {
    out.push_back(by_key_.at(node));
  }
  // Load-aware tiebreak: prefer the first failover candidate when it is
  // strictly less loaded than the hash-chosen primary.
  if (out.size() >= 2 &&
      out[1]->queue_depth.load(std::memory_order_relaxed) <
          out[0]->queue_depth.load(std::memory_order_relaxed)) {
    std::swap(out[0], out[1]);
  }
  if (out.size() > options_.max_attempts) out.resize(options_.max_attempts);
  return out;
}

std::chrono::milliseconds RouterService::hedge_delay_now() {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (recent_latencies_.size() < kMinHedgeSamples) return options_.hedge_min_delay;
  std::vector<double> sorted(recent_latencies_.begin(), recent_latencies_.end());
  const double q = std::clamp(options_.hedge_quantile, 0.0, 1.0);
  const std::size_t rank = std::min(
      sorted.size() - 1, static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.end());
  const auto delay = std::chrono::milliseconds(
      static_cast<std::int64_t>(sorted[rank] * 1000.0));
  return std::max(options_.hedge_min_delay, delay);
}

void RouterService::record_shard_latency(double seconds) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  recent_latencies_.push_back(seconds);
  while (recent_latencies_.size() > kLatencyWindow) recent_latencies_.pop_front();
}

struct RouterService::Race {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::string sam;
  std::size_t failed = 0;
  std::vector<TransportError> errors;
  std::atomic<bool> give_up{false};
};

std::string RouterService::map_shard(const MapRequest& request, std::size_t shard_index) {
  const std::string key = request.ref + "/" + std::to_string(shard_index);
  const auto candidates = pick_candidates(key);
  if (candidates.empty()) {
    throw TransportError(TransportErrorKind::kConnect, "no healthy backends", 503);
  }
  shards_total_.inc();

  const auto race = std::make_shared<Race>();
  std::vector<std::thread> attempts;
  const auto started = std::chrono::steady_clock::now();

  auto launch = [&](std::size_t attempt_index) {
    const std::shared_ptr<Backend> backend = candidates[attempt_index];
    MapRequest attempt = request;
    attempt.request_id += "-a" + std::to_string(attempt_index);
    attempts.emplace_back([this, backend, attempt = std::move(attempt), race] {
      const auto t0 = std::chrono::steady_clock::now();
      try {
        std::string sam = backend->transport->map(attempt, &race->give_up);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        backend->latency->observe(seconds);
        note_success(*backend);
        bool won = false;
        {
          std::lock_guard<std::mutex> lock(race->m);
          if (!race->done) {
            race->done = true;
            race->sam = std::move(sam);
            won = true;
          }
        }
        if (won) race->give_up.store(true, std::memory_order_relaxed);
        race->cv.notify_all();
      } catch (const TransportError& error) {
        // A kCancelled loss is this race's own doing, not a backend fault.
        if (error.kind() != TransportErrorKind::kCancelled) {
          note_failure(*backend, error.kind());
        }
        {
          std::lock_guard<std::mutex> lock(race->m);
          ++race->failed;
          race->errors.push_back(error);
        }
        race->cv.notify_all();
      } catch (const std::exception& e) {
        note_failure(*backend, TransportErrorKind::kFailed);
        {
          std::lock_guard<std::mutex> lock(race->m);
          ++race->failed;
          race->errors.emplace_back(TransportErrorKind::kFailed, e.what());
        }
        race->cv.notify_all();
      }
    });
  };

  const bool hedging = options_.hedge_quantile > 0.0 && candidates.size() > 1;
  const auto hedge_after = hedging ? hedge_delay_now() : std::chrono::milliseconds(0);
  launch(0);
  std::size_t launched = 1;
  bool hedged = false;

  {
    std::unique_lock<std::mutex> lock(race->m);
    while (!race->done) {
      if (race->failed == launched) {
        // Every in-flight attempt has failed. Fail over while the last
        // error is worth retrying elsewhere and candidates remain.
        if (launched < candidates.size() && race->errors.back().retryable()) {
          lock.unlock();
          launch(launched);
          lock.lock();
          ++launched;
          retries_total_.inc();
          continue;
        }
        break;
      }
      if (hedging && !hedged && launched < candidates.size()) {
        const bool settled = race->cv.wait_for(
            lock, hedge_after, [&] { return race->done || race->failed == launched; });
        if (!settled) {
          lock.unlock();
          launch(launched);
          lock.lock();
          ++launched;
          hedged = true;
          hedges_total_.inc();
        }
      } else {
        race->cv.wait(lock, [&] { return race->done || race->failed == launched; });
      }
    }
  }

  // Tell losers to cancel their replica-side jobs, then join every attempt
  // (losers abandon within one poll interval).
  race->give_up.store(true, std::memory_order_relaxed);
  race->cv.notify_all();
  for (std::thread& attempt : attempts) attempt.join();

  std::lock_guard<std::mutex> lock(race->m);
  if (race->done) {
    record_shard_latency(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count());
    return std::move(race->sam);
  }
  // Prefer the non-retryable error (it describes the request, not the
  // fleet); otherwise the most recent failure.
  for (const TransportError& error : race->errors) {
    if (!error.retryable()) throw error;
  }
  if (!race->errors.empty()) throw race->errors.back();
  throw TransportError(TransportErrorKind::kFailed, "shard failed with no diagnosis");
}

HttpResponse RouterService::handle_map(const HttpRequest& request) {
  requests_total_.inc();
  const auto started = std::chrono::steady_clock::now();

  std::string tenant = "anonymous";
  if (const auto it = request.headers.find("x-tenant"); it != request.headers.end()) {
    if (!it->second.empty()) tenant = it->second;
  }
  if (options_.tenant_rate > 0.0) {
    TokenBucket* bucket = nullptr;
    {
      std::lock_guard<std::mutex> lock(tenants_mutex_);
      auto& slot = tenants_[tenant];
      if (!slot) {
        const double burst = options_.tenant_burst > 0.0
                                 ? options_.tenant_burst
                                 : std::max(options_.tenant_rate, 1.0);
        slot = std::make_unique<TokenBucket>(options_.tenant_rate, burst);
      }
      bucket = slot.get();
    }
    if (!bucket->try_acquire()) {
      rate_limited_total_.inc();
      metrics_
          ->counter("bwaver_router_tenant_rejections_total",
                    "429s issued, by tenant", {{"tenant", tenant}})
          .inc();
      const auto retry_after =
          static_cast<long>(std::ceil(bucket->seconds_until_available()));
      HttpResponse response =
          HttpResponse::text(429, "tenant '" + tenant + "' over rate limit\n");
      response.with_header("Retry-After", std::to_string(std::max(1L, retry_after)));
      return response;
    }
  }

  const std::string ref = request.query_param("ref");
  if (ref.empty()) {
    return HttpResponse::text(400, "select a reference with ?ref=NAME\n");
  }
  // The client's engine and search-mode choices are forwarded verbatim to
  // every shard's backend (which validates them); the router itself is
  // engine-agnostic.
  const std::string engine = request.query_param("engine");
  const std::string search_mode = request.query_param("search_mode");
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty read upload\n");
  }
  std::vector<FastqRecord> records;
  try {
    records = parse_fastq(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::text(400, std::string("bad FASTQ: ") + e.what() + "\n");
  }

  const std::size_t per_shard = std::max<std::size_t>(1, options_.shard_reads);
  const std::size_t shard_count = (records.size() + per_shard - 1) / per_shard;
  std::vector<std::string> results(shard_count);
  std::vector<std::string> failures(shard_count);
  std::vector<int> failure_status(shard_count, 0);
  std::vector<std::thread> shard_threads;
  shard_threads.reserve(shard_count);

  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const std::size_t begin = shard * per_shard;
    const std::size_t end = std::min(records.size(), begin + per_shard);
    MapRequest shard_request;
    shard_request.ref = ref;
    shard_request.fastq = format_fastq(
        std::span<const FastqRecord>(records.data() + begin, end - begin));
    shard_request.request_id = request.request_id() + "-s" + std::to_string(shard);
    shard_request.tenant = tenant;
    shard_request.engine = engine;
    shard_request.search_mode = search_mode;
    shard_request.timeout = options_.map_timeout;
    shard_threads.emplace_back([this, shard, shard_request = std::move(shard_request),
                                &results, &failures, &failure_status] {
      try {
        results[shard] = map_shard(shard_request, shard);
      } catch (const TransportError& error) {
        failures[shard] = error.what();
        switch (error.kind()) {
          case TransportErrorKind::kBadRequest:
            failure_status[shard] = error.http_status() != 0 ? error.http_status() : 400;
            break;
          case TransportErrorKind::kOverload:
            failure_status[shard] = 503;
            break;
          case TransportErrorKind::kTimeout:
            failure_status[shard] = 504;
            break;
          default:
            failure_status[shard] = 502;
            break;
        }
      } catch (const std::exception& e) {
        failures[shard] = e.what();
        failure_status[shard] = 502;
      }
    });
  }
  for (std::thread& thread : shard_threads) thread.join();

  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    if (failure_status[shard] != 0) {
      metrics_
          ->counter("bwaver_router_request_errors_total",
                    "Mapping requests failed at the router, by status",
                    {{"status", std::to_string(failure_status[shard])}})
          .inc();
      return HttpResponse::text(failure_status[shard],
                                "shard " + std::to_string(shard) +
                                    " failed: " + failures[shard] + "\n");
    }
  }

  // Splice: the deterministic header comes from shard 0; alignment lines
  // concatenate in shard (== read) order, which reproduces the single-
  // replica document byte for byte.
  std::string merged_header;
  std::string merged;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    std::string header, body;
    split_sam(results[shard], header, body);
    if (shard == 0) merged_header = std::move(header);
    merged += body;
  }
  merged.insert(0, merged_header);

  request_latency_.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count());
  HttpResponse response =
      HttpResponse::bytes("text/x-sam", std::vector<std::uint8_t>(merged.begin(), merged.end()));
  response.with_header("X-Bwaver-Shards", std::to_string(shard_count));
  return response;
}

HttpResponse RouterService::handle_rollover(const HttpRequest& request) {
  const std::string ref = request.query_param("ref");
  if (ref.empty()) {
    return HttpResponse::text(400, "select a reference with ?ref=NAME\n");
  }
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty reference upload\n");
  }
  const std::string body(request.body.begin(), request.body.end());
  const std::string target = "/admin/rollover?ref=" + ref;
  const std::vector<std::pair<std::string, std::string>> headers{
      {"X-Request-Id", request.request_id()}};

  // Sequential fan-out: replicas rebuild one at a time, so at every moment
  // all but one replica serve at full speed and a bad FASTA stops after
  // the first failure instead of poisoning the whole fleet.
  std::string detail = "[";
  bool first = true;
  bool all_ok = true;
  for (const auto& backend : backends_) {
    if (!backend->up.load(std::memory_order_relaxed)) continue;
    std::string entry = "{\"backend\":\"" + json_escape(backend->address.key()) + "\",";
    try {
      const ClientResponse response = client_->request(
          backend->address.host, backend->address.port, "POST", target, body, headers);
      entry += "\"status\":" + std::to_string(response.status);
      if (response.status != 200) {
        all_ok = false;
        entry += ",\"error\":\"" + json_escape(response.body.substr(0, 200)) + "\"";
      }
    } catch (const TransportError& error) {
      all_ok = false;
      entry += "\"status\":0,\"error\":\"" + json_escape(error.what()) + "\"";
    }
    entry += "}";
    if (!first) detail += ",";
    first = false;
    detail += entry;
    if (!all_ok) break;  // don't roll the rest of the fleet onto a bad build
  }
  detail += "]";
  metrics_
      ->counter("bwaver_router_rollovers_total", "Fleet rollover fan-outs, by outcome",
                {{"outcome", all_ok ? "ok" : "failed"}})
      .inc();
  const std::string json =
      "{\"ref\":\"" + json_escape(ref) + "\",\"ok\":" + (all_ok ? "true" : "false") +
      ",\"backends\":" + detail + "}\n";
  return HttpResponse::json(all_ok ? 200 : 502, json);
}

HttpResponse RouterService::handle_backends() const {
  std::string json = "[";
  bool first = true;
  for (const BackendSnapshot& snapshot : backends()) {
    if (!first) json += ",";
    first = false;
    json += "{\"backend\":\"" + json_escape(snapshot.key) + "\"";
    json += ",\"up\":" + std::string(snapshot.up ? "true" : "false");
    json += ",\"queue_depth\":" + std::to_string(snapshot.queue_depth);
    json += ",\"errors\":" + std::to_string(snapshot.errors);
    json += "}";
  }
  json += "]\n";
  return HttpResponse::json(200, json);
}

HttpResponse RouterService::handle_metrics() {
  metrics_->gauge("bwaver_router_backends", "Configured backends")
      .set(static_cast<double>(backends_.size()));
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  const std::string text = metrics_->render_prometheus();
  response.body.assign(text.begin(), text.end());
  return response;
}

std::vector<BackendSnapshot> RouterService::backends() const {
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    BackendSnapshot snapshot;
    snapshot.key = backend->address.key();
    snapshot.up = backend->up.load(std::memory_order_relaxed);
    snapshot.queue_depth = backend->queue_depth.load(std::memory_order_relaxed);
    snapshot.errors = backend->errors.load(std::memory_order_relaxed);
    out.push_back(std::move(snapshot));
  }
  return out;
}

}  // namespace bwaver::fleet
