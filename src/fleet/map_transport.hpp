// The map-serving surface, extracted behind a transport.
//
// Everything above this interface (router, tests, future clients) speaks
// one verb — "map this FASTQ against that reference" — and everything
// below it is a deployment choice: InProcessTransport drives the local
// JobManager/IndexRegistry directly (exactly the path POST /map takes
// today), HttpMapTransport drives a remote replica over the job API
// (submit, poll, fetch). Both produce byte-identical SAM for the same
// request, which is what lets the router fan shards across replicas and
// splice the results back together.
//
// Failure is uniform too: every transport throws TransportError (typed —
// see http_client.hpp) so the router can decide retry/failover/hedge from
// the kind alone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/http_client.hpp"
#include "io/fastq.hpp"
#include "jobs/job_manager.hpp"
#include "mapper/pipeline.hpp"
#include "store/index_registry.hpp"

namespace bwaver::fleet {

/// One mapping request as the transport sees it.
struct MapRequest {
  std::string ref;            ///< registry name of the reference
  std::string fastq;          ///< FASTQ text (uncompressed)
  std::string request_id;     ///< correlation id, forwarded end to end
  std::string tenant;         ///< admission-control identity ("" = anonymous)
  /// Registry engine name overriding the backend's configured engine
  /// ("" = backend default); forwarded end to end like the request id.
  std::string engine;
  /// Search-scheduling name ("per-read"/"sweep") overriding the backend's
  /// configured mode ("" = backend default); forwarded like `engine`.
  std::string search_mode;
  /// Per-job deadline forwarded to the backend (0 = backend default).
  std::chrono::milliseconds timeout{0};
};

class MapTransport {
 public:
  virtual ~MapTransport() = default;

  /// Blocks until the request is mapped and returns the SAM document.
  /// Throws TransportError on any failure. A non-null `give_up` flag is
  /// polled while waiting; once another thread sets it (this attempt lost
  /// a hedge race) the transport cancels the backend job — so the
  /// replica's cancel counters move and its worker frees up — and throws
  /// TransportError{kCancelled}.
  virtual std::string map(const MapRequest& request,
                          const std::atomic<bool>* give_up = nullptr) = 0;

  /// Stable identity for logs/metrics ("inproc", "127.0.0.1:8081").
  virtual std::string name() const = 0;
};

/// Builds the mapping-job closure shared by every in-process submitter
/// (WebService's /map and /jobs handlers, InProcessTransport): acquire the
/// registry handle at *run* time (an index evicted between submit and
/// pickup is transparently reloaded), map with cooperative cancellation,
/// account reads/shards into `stats`.
JobManager::JobFn make_map_job(IndexRegistry& registry, PipelineConfig config,
                               ServerStats& stats, std::string ref,
                               std::shared_ptr<const std::vector<FastqRecord>> records);

/// Transport over the local JobManager — the single-process deployment.
/// Requests ride the same bounded queue and worker pool as HTTP traffic,
/// so admission control and metrics see them identically.
class InProcessTransport : public MapTransport {
 public:
  InProcessTransport(IndexRegistry& registry, JobManager& jobs, PipelineConfig config)
      : registry_(registry), jobs_(jobs), config_(std::move(config)) {}

  std::string map(const MapRequest& request,
                  const std::atomic<bool>* give_up = nullptr) override;
  std::string name() const override { return "inproc"; }

 private:
  IndexRegistry& registry_;
  JobManager& jobs_;
  PipelineConfig config_;
};

/// Transport over a replica's HTTP job API: POST /jobs, poll /jobs/{id}
/// with a growing interval, fetch /jobs/{id}/result; DELETE the job when
/// told to give up. HTTP statuses and terminal job states are folded into
/// TransportErrorKind so callers never parse replica responses.
class HttpMapTransport : public MapTransport {
 public:
  /// `client` is shared so every transport to every backend draws from one
  /// keep-alive connection pool.
  HttpMapTransport(std::shared_ptr<HttpClient> client, std::string host,
                   std::uint16_t port);

  std::string map(const MapRequest& request,
                  const std::atomic<bool>* give_up = nullptr) override;
  std::string name() const override { return host_ + ":" + std::to_string(port_); }

  /// Poll pacing (exposed for tests; defaults grow 2ms -> 50ms).
  void set_poll_interval(std::chrono::milliseconds initial, std::chrono::milliseconds max) {
    poll_initial_ = initial;
    poll_max_ = max;
  }

 private:
  /// Maps a non-2xx submit/poll/fetch response onto a typed throw.
  [[noreturn]] void throw_http(const ClientResponse& response, const std::string& what);

  std::shared_ptr<HttpClient> client_;
  std::string host_;
  std::uint16_t port_;
  std::chrono::milliseconds poll_initial_{2};
  std::chrono::milliseconds poll_max_{50};
};

}  // namespace bwaver::fleet
