// Consistent-hash ring with virtual nodes for shard -> replica routing.
//
// The router keys each unit of work by "(reference, shard index)" so the
// same shard of the same reference lands on the same replica while that
// replica is healthy — its index stays hot, its page cache stays warm —
// and only ~1/N of keys move when a replica joins or leaves (the property
// a modulo scheme lacks). Virtual nodes smooth the per-replica share.
//
// Not thread-safe; the router guards its ring with the fleet-state mutex.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace bwaver::fleet {

class HashRing {
 public:
  /// `vnodes` points per node; 64 keeps the max/min share spread under
  /// ~20% for small fleets without bloating the ring map.
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  void add(const std::string& node);
  void remove(const std::string& node);
  bool contains(const std::string& node) const { return nodes_.count(node) != 0; }
  std::size_t size() const { return nodes_.size(); }

  /// Distinct nodes in ring order from `key`'s position: the primary
  /// owner first, then the natural failover sequence. At most `limit`
  /// entries; empty when the ring is empty.
  std::vector<std::string> candidates(const std::string& key, std::size_t limit) const;

  /// The primary owner for `key` ("" when the ring is empty).
  std::string pick(const std::string& key) const;

  /// The hash used for both keys and vnode points (FNV-1a folded through
  /// a splitmix64 finisher to de-correlate sequential suffixes). Exposed
  /// for distribution tests.
  static std::uint64_t hash(const std::string& value);

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> ring_;  ///< point -> node
  std::set<std::string> nodes_;
};

}  // namespace bwaver::fleet
