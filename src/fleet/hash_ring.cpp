#include "fleet/hash_ring.hpp"

namespace bwaver::fleet {

namespace {

/// splitmix64 finisher: FNV-1a alone leaves sequential inputs ("node-1",
/// "node-2") clustered; this mixes every input bit into every output bit.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t HashRing::hash(const std::string& value) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const unsigned char c : value) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix(h);
}

void HashRing::add(const std::string& node) {
  if (!nodes_.insert(node).second) return;
  for (std::size_t i = 0; i < vnodes_; ++i) {
    ring_.emplace(hash(node + "#" + std::to_string(i)), node);
  }
}

void HashRing::remove(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == node ? ring_.erase(it) : std::next(it);
  }
}

std::vector<std::string> HashRing::candidates(const std::string& key,
                                              std::size_t limit) const {
  std::vector<std::string> out;
  if (ring_.empty() || limit == 0) return out;
  std::set<std::string> seen;
  auto it = ring_.lower_bound(hash(key));
  // Walk the ring once, wrapping at the end, collecting distinct owners.
  for (std::size_t step = 0; step < ring_.size() && out.size() < limit; ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (seen.insert(it->second).second) out.push_back(it->second);
    ++it;
  }
  return out;
}

std::string HashRing::pick(const std::string& key) const {
  const auto owners = candidates(key, 1);
  return owners.empty() ? "" : owners.front();
}

}  // namespace bwaver::fleet
