// Fixed-width packed integer vector: n integers of `width` bits each,
// densely packed into 64-bit words. Used for the 4-bit RRR class array and
// for sampled suffix-array values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "io/byte_io.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

class IntVector {
 public:
  IntVector() = default;

  /// n entries of `width` bits (1 <= width <= 64), zero-initialized.
  IntVector(std::size_t n, unsigned width);

  std::size_t size() const noexcept { return size_; }
  unsigned width() const noexcept { return width_; }
  bool empty() const noexcept { return size_ == 0; }

  std::uint64_t get(std::size_t i) const noexcept;
  void set(std::size_t i, std::uint64_t value);

  std::uint64_t operator[](std::size_t i) const noexcept { return get(i); }

  /// Payload bytes (wherever they live — heap or mapped archive).
  std::size_t size_in_bytes() const noexcept { return words_.bytes(); }

  /// Bytes actually charged to the heap (0 for a mapped view).
  std::size_t heap_size_in_bytes() const noexcept { return words_.heap_bytes(); }

  void save(ByteWriter& writer) const;
  static IntVector load(ByteReader& reader);

  /// Flat 64-byte-aligned layout (archive format v3); adopt=true borrows the
  /// words from the reader's backing buffer instead of copying them.
  void save_flat(ByteWriter& writer) const;
  static IntVector load_flat(ByteReader& reader, bool adopt);

 private:
  FlatArray<std::uint64_t> words_;
  std::size_t size_ = 0;
  unsigned width_ = 0;
};

}  // namespace bwaver
