// Fixed-width packed integer vector: n integers of `width` bits each,
// densely packed into 64-bit words. Used for the 4-bit RRR class array and
// for sampled suffix-array values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "io/byte_io.hpp"

namespace bwaver {

class IntVector {
 public:
  IntVector() = default;

  /// n entries of `width` bits (1 <= width <= 64), zero-initialized.
  IntVector(std::size_t n, unsigned width);

  std::size_t size() const noexcept { return size_; }
  unsigned width() const noexcept { return width_; }
  bool empty() const noexcept { return size_ == 0; }

  std::uint64_t get(std::size_t i) const noexcept;
  void set(std::size_t i, std::uint64_t value) noexcept;

  std::uint64_t operator[](std::size_t i) const noexcept { return get(i); }

  std::size_t size_in_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

  void save(ByteWriter& writer) const;
  static IntVector load(ByteReader& reader);

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  unsigned width_ = 0;
};

}  // namespace bwaver
