// Huffman-shaped wavelet tree.
//
// The paper uses a *balanced* tree (optimal for the near-uniform DNA
// alphabet); SDSL — which the BWT-WT related work builds on — defaults to a
// Huffman-shaped tree, where frequent symbols sit near the root, total
// stored bits = sum_c freq(c) * codelen(c) <= N * ceil(log2 |alphabet|),
// and expected rank cost follows the code length instead of log2|alphabet|.
// Implemented here as the ablation comparator for skewed compositions.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "succinct/bitvector.hpp"

namespace bwaver {

template <typename BV>
class HuffmanWaveletTree {
 public:
  using Builder = std::function<BV(const BitVector&)>;

  HuffmanWaveletTree() = default;

  HuffmanWaveletTree(std::span<const std::uint8_t> symbols, unsigned alphabet_size,
                     Builder builder)
      : size_(symbols.size()), alphabet_size_(alphabet_size) {
    if (alphabet_size < 2 || alphabet_size > 256) {
      throw std::invalid_argument("HuffmanWaveletTree: alphabet size out of range");
    }
    std::vector<std::uint64_t> freq(alphabet_size, 0);
    for (std::uint8_t s : symbols) {
      if (s >= alphabet_size) {
        throw std::invalid_argument("HuffmanWaveletTree: symbol out of range");
      }
      ++freq[s];
    }
    build_codes(freq);
    if (distinct_ <= 1) return;  // degenerate: no bit-vectors needed
    std::vector<std::uint8_t> work(symbols.begin(), symbols.end());
    root_ = build_node(work, 0, builder);
  }

  std::size_t size() const noexcept { return size_; }
  unsigned alphabet_size() const noexcept { return alphabet_size_; }

  /// Code length assigned to symbol c (0 if c does not occur).
  unsigned code_length(std::uint8_t c) const noexcept { return code_len_[c]; }

  /// Frequency-weighted mean code length (bits per symbol actually stored).
  double average_code_length() const noexcept { return average_code_length_; }

  /// Occurrences of c in [0, p).
  std::size_t rank(std::uint8_t c, std::size_t p) const noexcept {
    if (code_len_[c] == 0) {
      // Absent symbol — or the degenerate single-symbol sequence.
      return (distinct_ == 1 && c == single_symbol_) ? p : 0;
    }
    const Node* node = root_.get();
    for (unsigned depth = 0; depth < code_len_[c]; ++depth) {
      const bool bit = (code_[c] >> (code_len_[c] - 1 - depth)) & 1;
      p = bit ? node->bits.rank1(p) : node->bits.rank0(p);
      node = (bit ? node->child1 : node->child0).get();
    }
    return p;
  }

  std::uint8_t access(std::size_t i) const noexcept {
    if (distinct_ <= 1) return single_symbol_;
    const Node* node = root_.get();
    for (;;) {
      const bool bit = node->bits.access(i);
      i = bit ? node->bits.rank1(i) : node->bits.rank0(i);
      const Node* next = (bit ? node->child1 : node->child0).get();
      if (!next) return bit ? node->sym1 : node->sym0;
      node = next;
    }
  }

  std::size_t num_nodes() const noexcept { return count_nodes(root_.get()); }

  std::size_t size_in_bytes() const noexcept { return node_bytes(root_.get()); }

  /// Total bits stored across all node bit-vectors (= sum freq * codelen).
  std::size_t stored_bits() const noexcept { return stored_bits_(root_.get()); }

 private:
  struct Node {
    BV bits;
    std::unique_ptr<Node> child0;
    std::unique_ptr<Node> child1;
    std::uint8_t sym0 = 0;  ///< leaf symbol when child0 is null
    std::uint8_t sym1 = 0;
  };

  void build_codes(const std::vector<std::uint64_t>& freq) {
    code_.fill(0);
    code_len_.fill(0);

    // Huffman merge with deterministic tie-breaking (frequency, then
    // smallest contained symbol).
    struct Item {
      std::uint64_t freq;
      std::uint8_t min_symbol;
      int id;
    };
    auto cmp = [](const Item& a, const Item& b) {
      if (a.freq != b.freq) return a.freq > b.freq;
      return a.min_symbol > b.min_symbol;
    };
    std::priority_queue<Item, std::vector<Item>, decltype(cmp)> queue(cmp);

    struct TreeNode {
      int left = -1, right = -1;
      int symbol = -1;
    };
    std::vector<TreeNode> nodes;
    for (unsigned c = 0; c < freq.size(); ++c) {
      if (freq[c] == 0) continue;
      const int id = static_cast<int>(nodes.size());
      nodes.push_back(TreeNode{-1, -1, static_cast<int>(c)});
      queue.push(Item{freq[c], static_cast<std::uint8_t>(c), id});
      ++distinct_;
      single_symbol_ = static_cast<std::uint8_t>(c);
    }
    if (distinct_ <= 1) return;
    while (queue.size() > 1) {
      const Item a = queue.top();
      queue.pop();
      const Item b = queue.top();
      queue.pop();
      const int id = static_cast<int>(nodes.size());
      nodes.push_back(TreeNode{a.id, b.id, -1});
      queue.push(Item{a.freq + b.freq, std::min(a.min_symbol, b.min_symbol), id});
    }

    // Depth-first assignment of code bits (left = 0, right = 1).
    std::uint64_t total_bits = 0;
    std::uint64_t total_symbols = 0;
    assign(nodes, queue.top().id, 0, 0);
    for (unsigned c = 0; c < freq.size(); ++c) {
      total_bits += freq[c] * code_len_[c];
      total_symbols += freq[c];
    }
    average_code_length_ = total_symbols == 0
                               ? 0.0
                               : static_cast<double>(total_bits) /
                                     static_cast<double>(total_symbols);
  }

  template <typename Nodes>
  void assign(const Nodes& nodes, int id, std::uint64_t code, unsigned depth) {
    const auto& node = nodes[static_cast<std::size_t>(id)];
    if (node.symbol >= 0) {
      code_[node.symbol] = code;
      code_len_[node.symbol] = static_cast<std::uint8_t>(std::max(1u, depth));
      if (depth == 0) code_len_[node.symbol] = 1;  // only with distinct_==1
      return;
    }
    assign(nodes, node.left, code << 1, depth + 1);
    assign(nodes, node.right, (code << 1) | 1, depth + 1);
  }

  std::unique_ptr<Node> build_node(const std::vector<std::uint8_t>& symbols,
                                   unsigned depth, const Builder& builder) {
    BitVector bits;
    std::vector<std::uint8_t> left, right;
    std::uint8_t sym0 = 0, sym1 = 0;
    bool left_is_leaf = true, right_is_leaf = true;
    for (std::uint8_t s : symbols) {
      const bool bit = (code_[s] >> (code_len_[s] - 1 - depth)) & 1;
      bits.push_back(bit);
      (bit ? right : left).push_back(s);
      if (bit) {
        sym1 = s;
        if (code_len_[s] != depth + 1) right_is_leaf = false;
      } else {
        sym0 = s;
        if (code_len_[s] != depth + 1) left_is_leaf = false;
      }
    }
    auto node = std::make_unique<Node>();
    node->bits = builder(bits);
    node->sym0 = sym0;
    node->sym1 = sym1;
    if (!left_is_leaf) node->child0 = build_node(left, depth + 1, builder);
    if (!right_is_leaf) node->child1 = build_node(right, depth + 1, builder);
    return node;
  }

  static std::size_t count_nodes(const Node* node) noexcept {
    if (!node) return 0;
    return 1 + count_nodes(node->child0.get()) + count_nodes(node->child1.get());
  }
  static std::size_t node_bytes(const Node* node) noexcept {
    if (!node) return 0;
    return sizeof(Node) + node->bits.size_in_bytes() + node_bytes(node->child0.get()) +
           node_bytes(node->child1.get());
  }
  static std::size_t stored_bits_(const Node* node) noexcept {
    if (!node) return 0;
    return node->bits.size() + stored_bits_(node->child0.get()) +
           stored_bits_(node->child1.get());
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  unsigned alphabet_size_ = 0;
  unsigned distinct_ = 0;
  std::uint8_t single_symbol_ = 0;
  double average_code_length_ = 0.0;
  std::array<std::uint64_t, 256> code_{};
  std::array<std::uint8_t, 256> code_len_{};
};

}  // namespace bwaver
