// RRR-encoded bit vector, following the paper's concrete layout (Sec. III-B,
// Fig. 3, Algorithm 1):
//
//   * `classes`      — ceil(N/b) 4-bit fields: ones-count of each b-bit block;
//   * `partial_sum`  — one 32-bit absolute rank per superblock boundary
//                      (a superblock spans sf blocks = sf*b bits);
//   * `offsets`      — a bit-vector of variable-width fields; block i's field
//                      is ceil(log2(C(b, class_i))) bits wide and holds the
//                      block's index within its class in the shared
//                      GlobalRankTable;
//   * `offset_sum`   — one 32-bit field per superblock: the bit position in
//                      `offsets` of the superblock's first block field;
//   * N, b, sf       — the three scalar parameters.
//
// rank1(p) costs O(sf): one superblock lookup plus a scan of at most sf
// class fields, plus a single Global-Rank-Table lookup for the trailing
// partial block. The hardware implementation turns the class scan into an
// adder tree; the software here is the faithful sequential version.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "succinct/bitvector.hpp"
#include "succinct/global_rank_table.hpp"
#include "succinct/int_vector.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

/// How the encoder maps a block value to its in-class offset.
enum class RrrEncodeMode {
  kInverseTable,  ///< O(1) host-side inverse table (default)
  kTableScan,     ///< O(C(b,c)) scan of the shared table — models encoders
                  ///< without the inverse table; build time grows with b,
                  ///< reproducing the paper's Fig. 6 trend
};

struct RrrParams {
  unsigned block_bits = 15;         ///< b, in [1, 15]
  unsigned superblock_factor = 50;  ///< sf, blocks per superblock, >= 1
  RrrEncodeMode encode_mode = RrrEncodeMode::kInverseTable;
};

class RrrVector {
 public:
  RrrVector() = default;

  /// Encodes `bv`. Throws std::invalid_argument for out-of-range parameters
  /// and std::length_error if the vector exceeds the 32-bit superblock
  /// counters (the paper caps references at ~100 Mbp for the same reason).
  RrrVector(const BitVector& bv, RrrParams params);

  std::size_t size() const noexcept { return n_; }
  unsigned block_bits() const noexcept { return params_.block_bits; }
  unsigned superblock_factor() const noexcept { return params_.superblock_factor; }

  /// Number of 1s in B[0, p), p in [0, size()].
  std::size_t rank1(std::size_t p) const noexcept;
  std::size_t rank0(std::size_t p) const noexcept { return p - rank1(p); }

  /// rank1 at both ends of an interval, p1 <= p2. When both positions fall
  /// in the same superblock (the common case for the narrow SA intervals of
  /// a backward search past its first steps) the O(sf) class scan is paid
  /// once instead of twice; otherwise falls back to two rank1 calls.
  std::pair<std::size_t, std::size_t> rank1_pair(std::size_t p1,
                                                 std::size_t p2) const noexcept;

  /// Bit at position i, decoded from the class/offset pair.
  bool access(std::size_t i) const noexcept;

  /// Position of the (k+1)-th 1-bit (0-based k); O(log n + sf). Throws
  /// std::out_of_range when k >= ones().
  std::size_t select1(std::size_t k) const;

  /// Position of the (k+1)-th 0-bit.
  std::size_t select0(std::size_t k) const;

  /// Total number of 1s.
  std::size_t ones() const noexcept { return total_ones_; }

  /// Payload bytes of the per-instance arrays (classes, partial sums,
  /// offset bits, offset sums, scalars); excludes the shared tables.
  std::size_t size_in_bytes() const noexcept;

  /// Bytes of those arrays actually on the heap — ~0 when the vector was
  /// adopted from a memory-mapped archive (load_flat with adopt=true).
  std::size_t heap_size_in_bytes() const noexcept;

  /// The paper's closed-form size estimate in bytes:
  ///   (sf+16)N/(2*sf*b) + 2^{b+1} + 4b + 7 + lambda/8
  /// where lambda is the total offset-field length in bits. The 2^{b+1}+4b+7
  /// tail counts the shared tables and scalars once.
  double paper_size_in_bytes() const noexcept;

  /// Total offset bit-vector length lambda in bits.
  std::size_t offset_bits() const noexcept { return offsets_.size(); }

  /// Number of b-bit blocks / superblocks.
  std::size_t num_blocks() const noexcept { return classes_.size(); }
  std::size_t num_superblocks() const noexcept { return partial_sum_.size(); }

  const GlobalRankTable& table() const noexcept { return *table_; }

  /// Binary (de)serialization; the shared Global Rank Table is re-attached
  /// (not stored) on load.
  void save(ByteWriter& writer) const;
  static RrrVector load(ByteReader& reader);

  /// Flat 64-byte-aligned layout (archive format v3); adopt=true borrows all
  /// arrays from the reader's backing buffer. The shared Global Rank Table
  /// is re-attached either way.
  void save_flat(ByteWriter& writer) const;
  static RrrVector load_flat(ByteReader& reader, bool adopt);

 private:
  RrrParams params_{};
  std::size_t n_ = 0;
  std::size_t total_ones_ = 0;
  IntVector classes_;                       // 4-bit class per block
  FlatArray<std::uint32_t> partial_sum_;    // per superblock
  FlatArray<std::uint32_t> offset_sum_;     // per superblock
  BitVector offsets_;                       // variable-width offset fields
  const GlobalRankTable* table_ = nullptr;
};

}  // namespace bwaver
