#include "succinct/rank_support.hpp"

#include <stdexcept>

namespace bwaver {

RankSupport::RankSupport(const BitVector& bv) : bv_(&bv) {
  const std::size_t words = bv.word_count();
  const std::size_t supers = words / kWordsPerSuper + 1;
  super_.assign(supers, 0);
  block_.assign(words + 1, 0);

  std::uint64_t total = 0;
  std::uint16_t in_super = 0;
  for (std::size_t w = 0; w < words; ++w) {
    if (w % kWordsPerSuper == 0) {
      super_[w / kWordsPerSuper] = total;
      in_super = 0;
    }
    block_[w] = in_super;
    const int ones = popcount64(bv.words()[w]);
    total += static_cast<std::uint64_t>(ones);
    in_super = static_cast<std::uint16_t>(in_super + ones);
  }
  // Sentinel entry so rank1(size) works when size is word-aligned: word
  // index `words` either starts a fresh superblock (absolute count = total,
  // relative count = 0) or sits inside the last one.
  if (words % kWordsPerSuper == 0) {
    super_[words / kWordsPerSuper] = total;
    block_[words] = 0;
  } else {
    block_[words] = in_super;
  }
}

std::size_t RankSupport::select1(std::size_t k) const {
  const std::size_t words = bv_->word_count();
  const std::size_t total = rank1(bv_->size());
  if (k >= total) {
    throw std::out_of_range("RankSupport::select1: k >= number of ones");
  }
  // Binary search for the superblock holding the (k+1)-th one.
  std::size_t lo = 0, hi = super_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (super_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  std::size_t remaining = k - super_[lo];
  for (std::size_t w = lo * kWordsPerSuper; w < words; ++w) {
    const int ones = popcount64(bv_->words()[w]);
    if (remaining < static_cast<std::size_t>(ones)) {
      return w * 64 +
             static_cast<std::size_t>(
                 select_in_word(bv_->words()[w], static_cast<unsigned>(remaining)));
    }
    remaining -= static_cast<std::size_t>(ones);
  }
  throw std::out_of_range("RankSupport::select1: inconsistent directory");
}

std::size_t RankSupport::select0(std::size_t k) const {
  const std::size_t size = bv_->size();
  if (k >= size - rank1(size)) {
    throw std::out_of_range("RankSupport::select0: k >= number of zeros");
  }
  // Zeros before superblock s = bits before it minus ones before it.
  std::size_t lo = 0, hi = super_.size() - 1;
  auto zeros_before = [&](std::size_t s) { return s * kWordsPerSuper * 64 - super_[s]; };
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (zeros_before(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  std::size_t remaining = k - zeros_before(lo);
  const std::size_t words = bv_->word_count();
  for (std::size_t w = lo * kWordsPerSuper; w < words; ++w) {
    // Bits past size() are zero-padding; mask them in the final word so
    // they are not selectable.
    std::uint64_t word = ~bv_->words()[w];
    if ((w + 1) * 64 > size) {
      const unsigned valid = static_cast<unsigned>(size - w * 64);
      word &= (valid == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << valid) - 1);
    }
    const int zeros = popcount64(word);
    if (remaining < static_cast<std::size_t>(zeros)) {
      return w * 64 +
             static_cast<std::size_t>(select_in_word(word, static_cast<unsigned>(remaining)));
    }
    remaining -= static_cast<std::size_t>(zeros);
  }
  throw std::out_of_range("RankSupport::select0: inconsistent directory");
}

std::size_t RankSupport::rank1(std::size_t p) const noexcept {
  const std::size_t word = p >> 6;
  std::size_t result = super_[word / kWordsPerSuper] + block_[word];
  const unsigned rem = p & 63;
  if (rem != 0) {
    result += static_cast<std::size_t>(rank_in_word(bv_->words()[word], rem));
  }
  return result;
}

}  // namespace bwaver
