#include "succinct/int_vector.hpp"

namespace bwaver {

IntVector::IntVector(std::size_t n, unsigned width) : size_(n), width_(width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("IntVector: width must be in [1, 64]");
  }
  words_.assign((n * width + 63) / 64, 0);
}

void IntVector::save(ByteWriter& writer) const {
  writer.u64(size_);
  writer.u32(width_);
  for (std::uint64_t word : words_) writer.u64(word);
}

IntVector IntVector::load(ByteReader& reader) {
  IntVector v;
  v.size_ = reader.u64();
  v.width_ = reader.u32();
  if (v.size_ > 0 && (v.width_ == 0 || v.width_ > 64)) {
    throw IoError("IntVector::load: corrupt width field");
  }
  std::vector<std::uint64_t> words((v.size_ * v.width_ + 63) / 64);
  for (auto& word : words) word = reader.u64();
  v.words_ = std::move(words);
  return v;
}

void IntVector::save_flat(ByteWriter& writer) const {
  writer.u64(size_);
  writer.u32(width_);
  writer.pad_to(64);
  writer.raw_u64(words_);
}

IntVector IntVector::load_flat(ByteReader& reader, bool adopt) {
  IntVector v;
  v.size_ = reader.u64();
  v.width_ = reader.u32();
  if (v.size_ > 0 && (v.width_ == 0 || v.width_ > 64)) {
    throw IoError("IntVector::load_flat: corrupt width field");
  }
  reader.align_to(64);
  const auto words = reader.span_u64((v.size_ * v.width_ + 63) / 64);
  if (adopt) {
    v.words_ = FlatArray<std::uint64_t>::view_of(words);
  } else {
    v.words_ = std::vector<std::uint64_t>(words.begin(), words.end());
  }
  return v;
}

std::uint64_t IntVector::get(std::size_t i) const noexcept {
  const std::size_t bit = i * width_;
  const std::size_t word = bit >> 6;
  const unsigned shift = bit & 63;
  std::uint64_t value = words_[word] >> shift;
  if (shift + width_ > 64) {
    value |= words_[word + 1] << (64 - shift);
  }
  if (width_ < 64) value &= (std::uint64_t{1} << width_) - 1;
  return value;
}

void IntVector::set(std::size_t i, std::uint64_t value) {
  if (width_ < 64) value &= (std::uint64_t{1} << width_) - 1;
  const std::size_t bit = i * width_;
  const std::size_t word = bit >> 6;
  const unsigned shift = bit & 63;
  std::uint64_t* words = words_.mutable_data();
  words[word] &= ~(((width_ < 64 ? (std::uint64_t{1} << width_) - 1 : ~std::uint64_t{0})) << shift);
  words[word] |= value << shift;
  if (shift + width_ > 64) {
    const unsigned spill = shift + width_ - 64;
    words[word + 1] &= ~((std::uint64_t{1} << spill) - 1);
    words[word + 1] |= value >> (64 - shift);
  }
}

}  // namespace bwaver
