#include "succinct/int_vector.hpp"

namespace bwaver {

IntVector::IntVector(std::size_t n, unsigned width) : size_(n), width_(width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("IntVector: width must be in [1, 64]");
  }
  words_.assign((n * width + 63) / 64, 0);
}

void IntVector::save(ByteWriter& writer) const {
  writer.u64(size_);
  writer.u32(width_);
  for (std::uint64_t word : words_) writer.u64(word);
}

IntVector IntVector::load(ByteReader& reader) {
  IntVector v;
  v.size_ = reader.u64();
  v.width_ = reader.u32();
  if (v.size_ > 0 && (v.width_ == 0 || v.width_ > 64)) {
    throw IoError("IntVector::load: corrupt width field");
  }
  v.words_.resize((v.size_ * v.width_ + 63) / 64);
  for (auto& word : v.words_) word = reader.u64();
  return v;
}

std::uint64_t IntVector::get(std::size_t i) const noexcept {
  const std::size_t bit = i * width_;
  const std::size_t word = bit >> 6;
  const unsigned shift = bit & 63;
  std::uint64_t value = words_[word] >> shift;
  if (shift + width_ > 64) {
    value |= words_[word + 1] << (64 - shift);
  }
  if (width_ < 64) value &= (std::uint64_t{1} << width_) - 1;
  return value;
}

void IntVector::set(std::size_t i, std::uint64_t value) noexcept {
  if (width_ < 64) value &= (std::uint64_t{1} << width_) - 1;
  const std::size_t bit = i * width_;
  const std::size_t word = bit >> 6;
  const unsigned shift = bit & 63;
  words_[word] &= ~(((width_ < 64 ? (std::uint64_t{1} << width_) - 1 : ~std::uint64_t{0})) << shift);
  words_[word] |= value << shift;
  if (shift + width_ > 64) {
    const unsigned spill = shift + width_ - 64;
    words_[word + 1] &= ~((std::uint64_t{1} << spill) - 1);
    words_[word + 1] |= value >> (64 - shift);
  }
}

}  // namespace bwaver
