// Plain uncompressed bit vector backed by 64-bit words, with append and
// random access. This is the construction-time representation from which the
// RRR sequence and the plain rank baseline are built.
//
// The word storage is a FlatArray: archive format v3 can adopt the words
// in place from a memory-mapped file (load_flat with adopt=true), in which
// case the vector is a read-only view and heap_size_in_bytes() is ~0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "io/byte_io.hpp"
#include "util/bits.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `n` bits, all set to `value`.
  explicit BitVector(std::size_t n, bool value = false);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  bool operator[](std::size_t i) const noexcept { return get(i); }

  void set(std::size_t i, bool value) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_.mut(i >> 6) |= mask;
    } else {
      words_.mut(i >> 6) &= ~mask;
    }
  }

  /// Appends one bit.
  void push_back(bool bit);

  /// Appends the `width` low-order bits of `bits`, LSB first (width <= 64).
  void append_bits(std::uint64_t bits, unsigned width);

  /// Reads `width` bits starting at bit position `pos`, LSB first
  /// (width <= 64, pos + width <= size()).
  std::uint64_t get_bits(std::size_t pos, unsigned width) const noexcept;

  /// Number of 1s in the whole vector (linear scan).
  std::size_t count_ones() const noexcept;

  /// Number of 1s in [0, p) by linear word scan — the brute-force oracle
  /// used when no rank structure is attached.
  std::size_t rank1_linear(std::size_t p) const noexcept;

  const std::uint64_t* words() const noexcept { return words_.data(); }
  std::size_t word_count() const noexcept { return words_.size(); }

  /// Payload bytes (wherever they live — heap or mapped archive).
  std::size_t size_in_bytes() const noexcept { return words_.bytes(); }

  /// Bytes actually charged to the heap (0 for a mapped view).
  std::size_t heap_size_in_bytes() const noexcept { return words_.heap_bytes(); }

  bool operator==(const BitVector& other) const noexcept;

  /// Binary (de)serialization (element-wise, archive formats v1/v2).
  void save(ByteWriter& writer) const;
  static BitVector load(ByteReader& reader);

  /// Flat 64-byte-aligned layout (archive format v3). With adopt=true the
  /// words are borrowed from the reader's backing buffer instead of copied;
  /// the caller must keep that buffer alive.
  void save_flat(ByteWriter& writer) const;
  static BitVector load_flat(ByteReader& reader, bool adopt);

 private:
  FlatArray<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace bwaver
