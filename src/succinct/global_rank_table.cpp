#include "succinct/global_rank_table.hpp"

#include <array>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/bits.hpp"

namespace bwaver {

GlobalRankTable::GlobalRankTable(unsigned b) : b_(b) {
  const std::uint32_t universe = std::uint32_t{1} << b;
  permutations_.resize(universe);
  offset_of_.resize(universe);
  class_offsets_.assign(b + 1, 0);

  // Counting sort by class: first the class sizes / offsets...
  const BinomialTable& binom = BinomialTable::instance();
  std::uint32_t running = 0;
  for (unsigned c = 0; c <= b; ++c) {
    class_offsets_[c] = running;
    running += binom.choose(b, c);
  }
  // ...then place every block; ascending value order within a class falls
  // out of the ascending enumeration.
  std::vector<std::uint32_t> cursor(class_offsets_.begin(), class_offsets_.end());
  for (std::uint32_t value = 0; value < universe; ++value) {
    const unsigned c = static_cast<unsigned>(popcount64(value));
    const std::uint32_t index = cursor[c]++;
    permutations_[index] = static_cast<std::uint16_t>(value);
    offset_of_[value] = static_cast<std::uint16_t>(index - class_offsets_[c]);
  }
}

std::uint32_t GlobalRankTable::offset_of_by_search(std::uint16_t block) const noexcept {
  const unsigned c = static_cast<unsigned>(popcount64(block));
  const std::uint32_t begin = class_offsets_[c];
  const std::uint32_t end =
      c == b_ ? static_cast<std::uint32_t>(permutations_.size()) : class_offsets_[c + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    if (permutations_[i] == block) return i - begin;
  }
  return 0;  // unreachable: every b-bit value is in the table
}

const GlobalRankTable& GlobalRankTable::get(unsigned b) {
  if (b == 0 || b > kMaxBlockBits) {
    throw std::invalid_argument("GlobalRankTable: block size must be in [1, 15]");
  }
  static std::array<std::unique_ptr<GlobalRankTable>, kMaxBlockBits + 1> tables;
  static std::array<std::once_flag, kMaxBlockBits + 1> flags;
  std::call_once(flags[b], [b] { tables[b].reset(new GlobalRankTable(b)); });
  return *tables[b];
}

}  // namespace bwaver
