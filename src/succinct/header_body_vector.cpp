#include "succinct/header_body_vector.hpp"

#include <algorithm>

namespace bwaver {

HeaderBodyVector::HeaderBodyVector(const BitVector& bits, HeaderBodyParams params)
    : params_(params), n_(bits.size()) {
  if (params.body_bits == 0 || params.body_bits % 64 != 0) {
    throw std::invalid_argument(
        "HeaderBodyVector: body_bits must be a positive multiple of 64");
  }
  words_per_body_ = params.body_bits / 64;
  const std::size_t codewords = div_ceil(std::max<std::size_t>(n_, 1), params.body_bits);
  headers_.assign(codewords, 0);
  body_.assign(codewords * words_per_body_, 0);

  std::uint32_t running = 0;
  for (std::size_t codeword = 0; codeword < codewords; ++codeword) {
    headers_[codeword] = running;
    const std::size_t start = codeword * params.body_bits;
    for (unsigned w = 0; w < words_per_body_; ++w) {
      const std::size_t bit_pos = start + w * 64;
      if (bit_pos >= n_) break;
      const unsigned width = static_cast<unsigned>(std::min<std::size_t>(64, n_ - bit_pos));
      const std::uint64_t word = bits.get_bits(bit_pos, width);
      body_[codeword * words_per_body_ + w] = word;
      running += static_cast<std::uint32_t>(popcount64(word));
    }
  }
  total_ones_ = running;
}

std::size_t HeaderBodyVector::rank1(std::size_t p) const noexcept {
  if (p >= n_) return total_ones_;
  const std::size_t codeword = p / params_.body_bits;
  const std::size_t bit = p % params_.body_bits;
  std::size_t count = headers_[codeword];
  const std::size_t base = codeword * words_per_body_;
  const std::size_t full_words = bit >> 6;
  for (std::size_t w = 0; w < full_words; ++w) {
    count += static_cast<std::size_t>(popcount64(body_[base + w]));
  }
  const unsigned rem = bit & 63;
  if (rem != 0) {
    count += static_cast<std::size_t>(rank_in_word(body_[base + full_words], rem));
  }
  return count;
}

std::size_t HeaderBodyVector::select1(std::size_t k) const {
  if (k >= total_ones_) {
    throw std::out_of_range("HeaderBodyVector::select1: k >= number of ones");
  }
  std::size_t lo = 0, hi = headers_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (headers_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  std::size_t remaining = k - headers_[lo];
  const std::size_t base = lo * words_per_body_;
  for (unsigned w = 0; w < words_per_body_; ++w) {
    const int ones = popcount64(body_[base + w]);
    if (remaining < static_cast<std::size_t>(ones)) {
      return lo * params_.body_bits + w * 64 +
             static_cast<std::size_t>(
                 select_in_word(body_[base + w], static_cast<unsigned>(remaining)));
    }
    remaining -= static_cast<std::size_t>(ones);
  }
  throw std::out_of_range("HeaderBodyVector::select1: inconsistent headers");
}

std::size_t HeaderBodyVector::select0(std::size_t k) const {
  if (k >= n_ - total_ones_) {
    throw std::out_of_range("HeaderBodyVector::select0: k >= number of zeros");
  }
  auto zeros_before = [&](std::size_t codeword) {
    return std::min(codeword * static_cast<std::size_t>(params_.body_bits), n_) -
           headers_[codeword];
  };
  std::size_t lo = 0, hi = headers_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (zeros_before(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  std::size_t remaining = k - zeros_before(lo);
  const std::size_t base = lo * words_per_body_;
  for (unsigned w = 0; w < words_per_body_; ++w) {
    const std::size_t bit_pos = lo * params_.body_bits + w * 64;
    if (bit_pos >= n_) break;
    const unsigned valid = static_cast<unsigned>(std::min<std::size_t>(64, n_ - bit_pos));
    std::uint64_t inverted = ~body_[base + w];
    if (valid < 64) inverted &= (std::uint64_t{1} << valid) - 1;
    const int zeros = popcount64(inverted);
    if (remaining < static_cast<std::size_t>(zeros)) {
      return bit_pos + static_cast<std::size_t>(
                           select_in_word(inverted, static_cast<unsigned>(remaining)));
    }
    remaining -= static_cast<std::size_t>(zeros);
  }
  throw std::out_of_range("HeaderBodyVector::select0: inconsistent headers");
}

void HeaderBodyVector::save(ByteWriter& writer) const {
  writer.u32(params_.body_bits);
  writer.u64(n_);
  writer.u64(total_ones_);
  writer.vec_u32(headers_);
  writer.u64(body_.size());
  for (std::uint64_t word : body_) writer.u64(word);
}

HeaderBodyVector HeaderBodyVector::load(ByteReader& reader) {
  HeaderBodyVector v;
  v.params_.body_bits = reader.u32();
  if (v.params_.body_bits == 0 || v.params_.body_bits % 64 != 0) {
    throw IoError("HeaderBodyVector::load: corrupt body width");
  }
  v.words_per_body_ = v.params_.body_bits / 64;
  v.n_ = reader.u64();
  v.total_ones_ = reader.u64();
  v.headers_ = reader.vec_u32();
  v.body_.resize(reader.u64());
  for (auto& word : v.body_) word = reader.u64();
  return v;
}

}  // namespace bwaver
