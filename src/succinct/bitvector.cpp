#include "succinct/bitvector.hpp"

namespace bwaver {

BitVector::BitVector(std::size_t n, bool value) : size_(n) {
  words_.assign((n + 63) / 64, value ? ~std::uint64_t{0} : 0);
  if (value && (n & 63) != 0) {
    // Clear the bits beyond size so count_ones() stays exact.
    words_.mut(words_.size() - 1) &= (std::uint64_t{1} << (n & 63)) - 1;
  }
}

void BitVector::push_back(bool bit) {
  if ((size_ & 63) == 0) words_.push_back(0);
  if (bit) words_.mut(size_ >> 6) |= std::uint64_t{1} << (size_ & 63);
  ++size_;
}

void BitVector::append_bits(std::uint64_t bits, unsigned width) {
  if (width == 0) return;
  if (width < 64) bits &= (std::uint64_t{1} << width) - 1;
  const unsigned in_word = size_ & 63;
  if (in_word == 0) words_.push_back(0);
  words_.mut(size_ >> 6) |= bits << in_word;
  const unsigned fit = 64 - in_word;
  if (width > fit) {
    words_.push_back(bits >> fit);
  }
  size_ += width;
}

std::uint64_t BitVector::get_bits(std::size_t pos, unsigned width) const noexcept {
  if (width == 0) return 0;
  const std::size_t word = pos >> 6;
  const unsigned shift = pos & 63;
  std::uint64_t value = words_[word] >> shift;
  if (shift + width > 64) {
    value |= words_[word + 1] << (64 - shift);
  }
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  return value;
}

std::size_t BitVector::count_ones() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t word : words_) total += static_cast<std::size_t>(popcount64(word));
  return total;
}

std::size_t BitVector::rank1_linear(std::size_t p) const noexcept {
  std::size_t total = 0;
  const std::size_t full_words = p >> 6;
  for (std::size_t w = 0; w < full_words; ++w) {
    total += static_cast<std::size_t>(popcount64(words_[w]));
  }
  const unsigned rem = p & 63;
  if (rem != 0) {
    total += static_cast<std::size_t>(rank_in_word(words_[full_words], rem));
  }
  return total;
}

void BitVector::save(ByteWriter& writer) const {
  writer.u64(size_);
  for (std::uint64_t word : words_) writer.u64(word);
}

BitVector BitVector::load(ByteReader& reader) {
  BitVector bv;
  bv.size_ = reader.u64();
  std::vector<std::uint64_t> words((bv.size_ + 63) / 64);
  for (auto& word : words) word = reader.u64();
  bv.words_ = std::move(words);
  return bv;
}

void BitVector::save_flat(ByteWriter& writer) const {
  writer.u64(size_);
  writer.pad_to(64);
  writer.raw_u64(words_);
}

BitVector BitVector::load_flat(ByteReader& reader, bool adopt) {
  BitVector bv;
  bv.size_ = reader.u64();
  reader.align_to(64);
  const auto words = reader.span_u64((bv.size_ + 63) / 64);
  if (adopt) {
    bv.words_ = FlatArray<std::uint64_t>::view_of(words);
  } else {
    bv.words_ = std::vector<std::uint64_t>(words.begin(), words.end());
  }
  return bv;
}

bool BitVector::operator==(const BitVector& other) const noexcept {
  if (size_ != other.size_) return false;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != other.words_[w]) return false;
  }
  return true;
}

}  // namespace bwaver
