#include "succinct/rrr_vector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/bits.hpp"

namespace bwaver {

RrrVector::RrrVector(const BitVector& bv, RrrParams params)
    : params_(params), n_(bv.size()) {
  const unsigned b = params.block_bits;
  const unsigned sf = params.superblock_factor;
  if (b == 0 || b > kMaxBlockBits) {
    throw std::invalid_argument("RrrVector: block_bits must be in [1, 15]");
  }
  if (sf == 0) {
    throw std::invalid_argument("RrrVector: superblock_factor must be >= 1");
  }
  table_ = &GlobalRankTable::get(b);

  const std::size_t num_blocks = div_ceil(n_, b);
  const std::size_t num_supers = div_ceil(num_blocks, sf);
  if (n_ > std::numeric_limits<std::uint32_t>::max() / 2) {
    throw std::length_error("RrrVector: sequence exceeds 32-bit counters");
  }

  classes_ = IntVector(num_blocks, 4);
  partial_sum_.assign(num_supers, 0);
  offset_sum_.assign(num_supers, 0);

  std::uint32_t running_ones = 0;
  for (std::size_t block = 0; block < num_blocks; ++block) {
    if (block % sf == 0) {
      const std::size_t super = block / sf;
      partial_sum_.mut(super) = running_ones;
      offset_sum_.mut(super) = static_cast<std::uint32_t>(offsets_.size());
    }
    const std::size_t bit_pos = block * b;
    const unsigned width = static_cast<unsigned>(
        bit_pos + b <= n_ ? b : n_ - bit_pos);
    const auto value = static_cast<std::uint16_t>(bv.get_bits(bit_pos, width));
    const unsigned cls = static_cast<unsigned>(popcount64(value));
    classes_.set(block, cls);
    const std::uint32_t offset = params.encode_mode == RrrEncodeMode::kInverseTable
                                     ? table_->offset_of(value)
                                     : table_->offset_of_by_search(value);
    offsets_.append_bits(offset, table_->offset_width(cls));
    running_ones += cls;
  }
  total_ones_ = running_ones;
}

std::size_t RrrVector::rank1(std::size_t p) const noexcept {
  const unsigned b = params_.block_bits;
  const unsigned sf = params_.superblock_factor;
  const std::size_t super = p / (static_cast<std::size_t>(sf) * b);
  if (super >= partial_sum_.size()) {
    // Only reachable when p == size() lands exactly on a superblock
    // boundary (or the vector is empty).
    return total_ones_;
  }
  std::size_t count = partial_sum_[super];
  const std::size_t first_block = super * sf;
  const std::size_t last_block = p / b;
  const unsigned rem = static_cast<unsigned>(p % b);

  if (rem == 0) {
    for (std::size_t i = first_block; i < last_block; ++i) {
      count += classes_.get(i);
    }
    return count;
  }

  std::size_t offset_pos = offset_sum_[super];
  for (std::size_t i = first_block; i < last_block; ++i) {
    const unsigned cls = static_cast<unsigned>(classes_.get(i));
    count += cls;
    offset_pos += table_->offset_width(cls);
  }
  const unsigned cls = static_cast<unsigned>(classes_.get(last_block));
  const std::uint64_t off = offsets_.get_bits(offset_pos, table_->offset_width(cls));
  const std::uint16_t block_value =
      table_->permutation(table_->class_offset(cls) + static_cast<std::uint32_t>(off));
  count += static_cast<std::size_t>(rank_in_word(block_value, rem));
  return count;
}

std::pair<std::size_t, std::size_t> RrrVector::rank1_pair(
    std::size_t p1, std::size_t p2) const noexcept {
  const unsigned b = params_.block_bits;
  const unsigned sf = params_.superblock_factor;
  const std::size_t super_span = static_cast<std::size_t>(sf) * b;
  const std::size_t super = p1 / super_span;
  if (p1 > p2 || super != p2 / super_span || super >= partial_sum_.size()) {
    return {rank1(p1), rank1(p2)};
  }

  const std::size_t block1 = p1 / b;
  const std::size_t block2 = p2 / b;
  const unsigned rem1 = static_cast<unsigned>(p1 % b);
  const unsigned rem2 = static_cast<unsigned>(p2 % b);

  // One scan from the superblock start to block2, capturing the running
  // state as it passes block1.
  std::size_t count = partial_sum_[super];
  std::size_t offset_pos = offset_sum_[super];
  std::size_t count1 = count;
  std::size_t offset_pos1 = offset_pos;
  for (std::size_t i = super * sf; i < block2; ++i) {
    if (i == block1) {
      count1 = count;
      offset_pos1 = offset_pos;
    }
    const unsigned cls = static_cast<unsigned>(classes_.get(i));
    count += cls;
    offset_pos += table_->offset_width(cls);
  }
  if (block1 == block2) {
    count1 = count;
    offset_pos1 = offset_pos;
  }

  const auto finish = [&](std::size_t block, std::size_t pos, unsigned rem,
                          std::size_t base) {
    if (rem == 0) return base;
    const unsigned cls = static_cast<unsigned>(classes_.get(block));
    const std::uint64_t off = offsets_.get_bits(pos, table_->offset_width(cls));
    const std::uint16_t value =
        table_->permutation(table_->class_offset(cls) + static_cast<std::uint32_t>(off));
    return base + static_cast<std::size_t>(rank_in_word(value, rem));
  };
  return {finish(block1, offset_pos1, rem1, count1),
          finish(block2, offset_pos, rem2, count)};
}

bool RrrVector::access(std::size_t i) const noexcept {
  const unsigned b = params_.block_bits;
  const unsigned sf = params_.superblock_factor;
  const std::size_t block = i / b;
  const std::size_t super = block / sf;

  std::size_t offset_pos = offset_sum_[super];
  for (std::size_t j = super * sf; j < block; ++j) {
    offset_pos += table_->offset_width(static_cast<unsigned>(classes_.get(j)));
  }
  const unsigned cls = static_cast<unsigned>(classes_.get(block));
  const std::uint64_t off = offsets_.get_bits(offset_pos, table_->offset_width(cls));
  const std::uint16_t block_value =
      table_->permutation(table_->class_offset(cls) + static_cast<std::uint32_t>(off));
  return (block_value >> (i % b)) & 1;
}

std::size_t RrrVector::select1(std::size_t k) const {
  if (k >= total_ones_) {
    throw std::out_of_range("RrrVector::select1: k >= number of ones");
  }
  const unsigned b = params_.block_bits;
  const unsigned sf = params_.superblock_factor;
  // Superblock with the largest partial sum <= k.
  std::size_t lo = 0, hi = partial_sum_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (partial_sum_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  std::size_t remaining = k - partial_sum_[lo];
  std::size_t offset_pos = offset_sum_[lo];
  for (std::size_t block = lo * sf; block < classes_.size(); ++block) {
    const unsigned cls = static_cast<unsigned>(classes_.get(block));
    if (remaining < cls) {
      const std::uint64_t off = offsets_.get_bits(offset_pos, table_->offset_width(cls));
      const std::uint16_t value = table_->permutation(
          table_->class_offset(cls) + static_cast<std::uint32_t>(off));
      return block * b +
             static_cast<std::size_t>(select_in_word(value, static_cast<unsigned>(remaining)));
    }
    remaining -= cls;
    offset_pos += table_->offset_width(cls);
  }
  throw std::out_of_range("RrrVector::select1: inconsistent structure");
}

std::size_t RrrVector::select0(std::size_t k) const {
  if (k >= n_ - total_ones_) {
    throw std::out_of_range("RrrVector::select0: k >= number of zeros");
  }
  const unsigned b = params_.block_bits;
  const unsigned sf = params_.superblock_factor;
  const std::size_t super_span = static_cast<std::size_t>(sf) * b;
  // Zeros before superblock s: bits before it minus ones before it (the
  // final superblock may be short, but it is never *before* a probe).
  auto zeros_before = [&](std::size_t s) {
    return std::min(s * super_span, n_) - partial_sum_[s];
  };
  std::size_t lo = 0, hi = partial_sum_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (zeros_before(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  std::size_t remaining = k - zeros_before(lo);
  std::size_t offset_pos = offset_sum_[lo];
  for (std::size_t block = lo * sf; block < classes_.size(); ++block) {
    const std::size_t bit_pos = block * b;
    const unsigned width = static_cast<unsigned>(bit_pos + b <= n_ ? b : n_ - bit_pos);
    const unsigned cls = static_cast<unsigned>(classes_.get(block));
    const unsigned zeros = width - cls;
    if (remaining < zeros) {
      const std::uint64_t off = offsets_.get_bits(offset_pos, table_->offset_width(cls));
      const std::uint16_t value = table_->permutation(
          table_->class_offset(cls) + static_cast<std::uint32_t>(off));
      // Select within the inverted block, masked to its width.
      std::uint64_t inverted = ~static_cast<std::uint64_t>(value);
      inverted &= (width == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
      return bit_pos +
             static_cast<std::size_t>(select_in_word(inverted, static_cast<unsigned>(remaining)));
    }
    remaining -= zeros;
    offset_pos += table_->offset_width(cls);
  }
  throw std::out_of_range("RrrVector::select0: inconsistent structure");
}

std::size_t RrrVector::size_in_bytes() const noexcept {
  return classes_.size_in_bytes() + partial_sum_.bytes() + offset_sum_.bytes() +
         offsets_.size_in_bytes() + 3 * sizeof(std::uint32_t);  // N, b, sf
}

std::size_t RrrVector::heap_size_in_bytes() const noexcept {
  return classes_.heap_size_in_bytes() + partial_sum_.heap_bytes() +
         offset_sum_.heap_bytes() + offsets_.heap_size_in_bytes() +
         3 * sizeof(std::uint32_t);
}

void RrrVector::save(ByteWriter& writer) const {
  writer.u32(params_.block_bits);
  writer.u32(params_.superblock_factor);
  writer.u64(n_);
  writer.u64(total_ones_);
  classes_.save(writer);
  writer.vec_u32(partial_sum_);
  writer.vec_u32(offset_sum_);
  offsets_.save(writer);
}

RrrVector RrrVector::load(ByteReader& reader) {
  RrrVector rrr;
  rrr.params_.block_bits = reader.u32();
  rrr.params_.superblock_factor = reader.u32();
  if (rrr.params_.block_bits == 0 || rrr.params_.block_bits > kMaxBlockBits ||
      rrr.params_.superblock_factor == 0) {
    throw IoError("RrrVector::load: corrupt parameters");
  }
  rrr.n_ = reader.u64();
  rrr.total_ones_ = reader.u64();
  rrr.classes_ = IntVector::load(reader);
  rrr.partial_sum_ = reader.vec_u32();
  rrr.offset_sum_ = reader.vec_u32();
  rrr.offsets_ = BitVector::load(reader);
  rrr.table_ = &GlobalRankTable::get(rrr.params_.block_bits);
  return rrr;
}

void RrrVector::save_flat(ByteWriter& writer) const {
  writer.u32(params_.block_bits);
  writer.u32(params_.superblock_factor);
  writer.u64(n_);
  writer.u64(total_ones_);
  classes_.save_flat(writer);
  writer.u64(partial_sum_.size());
  writer.pad_to(64);
  writer.raw_u32(partial_sum_);
  writer.u64(offset_sum_.size());
  writer.pad_to(64);
  writer.raw_u32(offset_sum_);
  offsets_.save_flat(writer);
}

RrrVector RrrVector::load_flat(ByteReader& reader, bool adopt) {
  RrrVector rrr;
  rrr.params_.block_bits = reader.u32();
  rrr.params_.superblock_factor = reader.u32();
  if (rrr.params_.block_bits == 0 || rrr.params_.block_bits > kMaxBlockBits ||
      rrr.params_.superblock_factor == 0) {
    throw IoError("RrrVector::load_flat: corrupt parameters");
  }
  rrr.n_ = reader.u64();
  rrr.total_ones_ = reader.u64();
  rrr.classes_ = IntVector::load_flat(reader, adopt);
  const auto load_u32 = [&reader, adopt]() {
    const std::uint64_t count = reader.u64();
    reader.align_to(64);
    const auto values = reader.span_u32(count);
    return adopt ? FlatArray<std::uint32_t>::view_of(values)
                 : FlatArray<std::uint32_t>(
                       std::vector<std::uint32_t>(values.begin(), values.end()));
  };
  rrr.partial_sum_ = load_u32();
  rrr.offset_sum_ = load_u32();
  rrr.offsets_ = BitVector::load_flat(reader, adopt);
  rrr.table_ = &GlobalRankTable::get(rrr.params_.block_bits);
  return rrr;
}

double RrrVector::paper_size_in_bytes() const noexcept {
  const double b = params_.block_bits;
  const double sf = params_.superblock_factor;
  const double n = static_cast<double>(n_);
  const double lambda = static_cast<double>(offsets_.size());
  return (sf + 16.0) * n / (2.0 * sf * b) + std::pow(2.0, b + 1) + 4.0 * b + 7.0 +
         lambda / 8.0;
}

}  // namespace bwaver
