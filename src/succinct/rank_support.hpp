// Two-level (Jacobson-style) rank directory over a plain BitVector:
// 64-bit superblock absolute counts every 512 bits plus 16-bit in-superblock
// counts every 64-bit word, answered with one popcount. This is the
// uncompressed baseline the paper's software comparison ("re-sampling of the
// index data") corresponds to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "succinct/bitvector.hpp"

namespace bwaver {

class RankSupport {
 public:
  RankSupport() = default;

  /// Builds the directory; the caller keeps `bv` alive and unmodified.
  explicit RankSupport(const BitVector& bv);

  /// Number of 1s in bv[0, p), p in [0, size].
  std::size_t rank1(std::size_t p) const noexcept;

  std::size_t rank0(std::size_t p) const noexcept { return p - rank1(p); }

  /// Position of the (k+1)-th 1-bit (0-based k). Throws std::out_of_range
  /// when k >= total ones. O(log n) superblock search + word scan.
  std::size_t select1(std::size_t k) const;

  /// Position of the (k+1)-th 0-bit.
  std::size_t select0(std::size_t k) const;

  std::size_t size_in_bytes() const noexcept {
    return super_.size() * sizeof(std::uint64_t) + block_.size() * sizeof(std::uint16_t);
  }

 private:
  static constexpr std::size_t kWordsPerSuper = 8;  // 512 bits per superblock

  const BitVector* bv_ = nullptr;
  std::vector<std::uint64_t> super_;
  std::vector<std::uint16_t> block_;
};

/// Plain bitvector bundled with its rank directory, presenting the same
/// interface as RrrVector so the wavelet tree can be instantiated over
/// either representation.
class PlainRankBitVector {
 public:
  PlainRankBitVector() = default;
  explicit PlainRankBitVector(BitVector bits)
      : bits_(std::make_unique<BitVector>(std::move(bits))), rank_(*bits_) {}

  std::size_t size() const noexcept { return bits_ ? bits_->size() : 0; }
  bool access(std::size_t i) const noexcept { return bits_->get(i); }
  std::size_t rank1(std::size_t p) const noexcept { return rank_.rank1(p); }
  std::size_t rank0(std::size_t p) const noexcept { return rank_.rank0(p); }
  std::size_t select1(std::size_t k) const { return rank_.select1(k); }
  std::size_t select0(std::size_t k) const { return rank_.select0(k); }

  std::size_t size_in_bytes() const noexcept {
    return (bits_ ? bits_->size_in_bytes() : 0) + rank_.size_in_bytes();
  }

  /// Binary (de)serialization; the rank directory is rebuilt on load.
  void save(ByteWriter& writer) const {
    if (bits_) {
      bits_->save(writer);
    } else {
      BitVector{}.save(writer);
    }
  }
  static PlainRankBitVector load(ByteReader& reader) {
    return PlainRankBitVector(BitVector::load(reader));
  }

 private:
  std::unique_ptr<BitVector> bits_;  // stable address for the rank directory
  RankSupport rank_;
};

}  // namespace bwaver
