// Header/body codeword bit-vector — the related-work structure of
// Waidyasooriya et al. (PDPTA'15), which the paper contrasts with its RRR
// encoding (Sec. II): the bit sequence is cut into fixed-size codewords,
// each storing a *header* with the absolute rank at the codeword start and
// a *body* with the raw bits. Rank needs one codeword fetch plus a popcount
// — no class/offset decode and no superblock scan — at the cost of storing
// the bits uncompressed plus the header overhead (their reported figure:
// ~5.5% over the raw data for their parameters).
//
// Exposed with the same interface as RrrVector/PlainRankBitVector so it can
// back the wavelet tree and the FM-index as an ablation Occ backend.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "io/byte_io.hpp"
#include "succinct/bitvector.hpp"
#include "util/bits.hpp"

namespace bwaver {

struct HeaderBodyParams {
  /// Body bits per codeword; headers are 32 bits. Overhead = 32/body_bits
  /// (e.g. 512 -> 6.3%, 1024 -> 3.1%).
  unsigned body_bits = 512;
};

class HeaderBodyVector {
 public:
  HeaderBodyVector() = default;

  HeaderBodyVector(const BitVector& bits, HeaderBodyParams params = {});

  std::size_t size() const noexcept { return n_; }
  unsigned body_bits() const noexcept { return params_.body_bits; }
  std::size_t ones() const noexcept { return total_ones_; }

  /// Number of 1s in [0, p): one header read + <= body_bits/64 popcounts.
  std::size_t rank1(std::size_t p) const noexcept;
  std::size_t rank0(std::size_t p) const noexcept { return p - rank1(p); }

  bool access(std::size_t i) const noexcept {
    const std::size_t codeword = i / params_.body_bits;
    const std::size_t bit = i % params_.body_bits;
    const std::size_t word = codeword * words_per_body_ + (bit >> 6);
    return (body_[word] >> (bit & 63)) & 1;
  }

  /// Position of the (k+1)-th 1-bit; binary search over headers.
  std::size_t select1(std::size_t k) const;
  std::size_t select0(std::size_t k) const;

  std::size_t size_in_bytes() const noexcept {
    return headers_.size() * sizeof(std::uint32_t) +
           body_.size() * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t);
  }

  /// Fractional space overhead vs. the raw bits (the related work's 5.5%).
  double overhead_fraction() const noexcept {
    return n_ == 0 ? 0.0
                   : static_cast<double>(size_in_bytes()) * 8.0 /
                             static_cast<double>(n_) -
                         1.0;
  }

  void save(ByteWriter& writer) const;
  static HeaderBodyVector load(ByteReader& reader);

 private:
  HeaderBodyParams params_{};
  std::size_t n_ = 0;
  std::size_t total_ones_ = 0;
  unsigned words_per_body_ = 8;
  std::vector<std::uint32_t> headers_;  // absolute rank at codeword start
  std::vector<std::uint64_t> body_;     // raw bits, words_per_body_ per codeword
};

}  // namespace bwaver
