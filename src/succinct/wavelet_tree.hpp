// Balanced wavelet tree (paper, Sec. III-B, Fig. 1-2).
//
// The tree stores a sequence over a small integer alphabet as one bit-vector
// per node: at each node, symbols in the lower half of the node's alphabet
// emit a 0, symbols in the upper half a 1, and are routed to the
// corresponding child. rank_c(p) then costs log2(|alphabet|) binary ranks.
//
// The node bit-vector representation is a template parameter so the same
// tree runs over the paper's RRR encoding (`RrrVector`) or the uncompressed
// two-level rank baseline (`PlainRankBitVector`); both expose
// size()/access()/rank0()/rank1()/size_in_bytes().
//
// Mirroring the paper's struct layout, every node carries its two child
// alphabets; with the contiguous integer alphabets we use, those are the
// sub-ranges [lo, mid) and [mid, hi).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/byte_io.hpp"
#include "succinct/bitvector.hpp"
#include "util/bits.hpp"

namespace bwaver {

template <typename BV>
class WaveletTree {
 public:
  /// Builds the node representation from a construction-time plain
  /// bit-vector (e.g. attaches rank structures or RRR-encodes it).
  using Builder = std::function<BV(const BitVector&)>;

  WaveletTree() = default;

  /// Builds the tree over `symbols`, each in [0, alphabet_size).
  /// alphabet_size must be >= 2. The paper optimizes for power-of-two
  /// alphabets (DNA: 4); other sizes yield a slightly unbalanced last level.
  WaveletTree(std::span<const std::uint8_t> symbols, unsigned alphabet_size,
              Builder builder)
      : size_(symbols.size()), alphabet_size_(alphabet_size) {
    if (alphabet_size < 2 || alphabet_size > 256) {
      throw std::invalid_argument("WaveletTree: alphabet size must be in [2, 256]");
    }
    std::vector<std::uint8_t> work(symbols.begin(), symbols.end());
    for (std::uint8_t s : work) {
      if (s >= alphabet_size) {
        throw std::invalid_argument("WaveletTree: symbol out of alphabet range");
      }
    }
    root_ = build_node(work, 0, alphabet_size, builder);
  }

  std::size_t size() const noexcept { return size_; }
  unsigned alphabet_size() const noexcept { return alphabet_size_; }

  /// Tree depth in levels of bit-vectors: ceil(log2(alphabet size)).
  unsigned levels() const noexcept { return ceil_log2(alphabet_size_); }

  /// Occurrences of symbol `c` in positions [0, p), p <= size().
  std::size_t rank(std::uint8_t c, std::size_t p) const noexcept {
    const Node* node = root_.get();
    while (node) {
      if (c >= node->mid) {
        p = node->bits.rank1(p);
        node = node->child1.get();
      } else {
        p = node->bits.rank0(p);
        node = node->child0.get();
      }
    }
    return p;
  }

  /// rank(c, p1) and rank(c, p2) in one descent, p1 <= p2. At every node
  /// both positions take the same branch (the branch depends only on `c`),
  /// so a single walk serves both bounds of an SA interval; node
  /// bit-vectors exposing rank1_pair additionally share their superblock
  /// scan between the two positions.
  std::pair<std::size_t, std::size_t> rank_pair(std::uint8_t c, std::size_t p1,
                                                std::size_t p2) const noexcept {
    const Node* node = root_.get();
    while (node) {
      std::size_t r1, r2;
      if constexpr (requires(const BV& bv) { bv.rank1_pair(p1, p2); }) {
        const auto ranks = node->bits.rank1_pair(p1, p2);
        r1 = ranks.first;
        r2 = ranks.second;
      } else {
        r1 = node->bits.rank1(p1);
        r2 = node->bits.rank1(p2);
      }
      if (c >= node->mid) {
        p1 = r1;
        p2 = r2;
        node = node->child1.get();
      } else {
        p1 -= r1;
        p2 -= r2;
        node = node->child0.get();
      }
    }
    return {p1, p2};
  }

  /// Symbol at position i.
  std::uint8_t access(std::size_t i) const noexcept {
    const Node* node = root_.get();
    std::uint8_t lo = 0, hi = static_cast<std::uint8_t>(alphabet_size_ - 1);
    while (node) {
      if (node->bits.access(i)) {
        i = node->bits.rank1(i);
        lo = node->mid;
        if (!node->child1) return lo;
        node = node->child1.get();
      } else {
        i = node->bits.rank0(i);
        hi = static_cast<std::uint8_t>(node->mid - 1);
        if (!node->child0) return node->lo_value;
        node = node->child0.get();
      }
    }
    return lo <= hi ? lo : hi;  // unreachable for well-formed trees
  }

  /// Position of the (k+1)-th occurrence of symbol c (0-based k); the
  /// inverse of rank. Requires select1/select0 on the node bit-vectors.
  /// Throws std::out_of_range when k >= rank(c, size()).
  std::size_t select(std::uint8_t c, std::size_t k) const {
    return select_walk(root_.get(), c, k);
  }

  std::size_t num_nodes() const noexcept { return count_nodes(root_.get()); }

  /// Payload bytes of all node bit-vectors plus node bookkeeping. Shared
  /// RRR tables are NOT counted here (they are shared across nodes; callers
  /// add GlobalRankTable::device_size_in_bytes() once).
  std::size_t size_in_bytes() const noexcept { return node_bytes(root_.get()); }

  /// Bytes actually on the heap: node bookkeeping always lives there, but
  /// bit-vector payloads adopted from a mapped archive do not.
  std::size_t heap_size_in_bytes() const noexcept {
    return node_heap_bytes(root_.get());
  }

  /// Binary (de)serialization; requires BV::save / BV::load.
  void save(ByteWriter& writer) const {
    writer.u64(size_);
    writer.u32(alphabet_size_);
    save_node(root_.get(), writer);
  }
  static WaveletTree load(ByteReader& reader) {
    WaveletTree tree;
    tree.size_ = reader.u64();
    tree.alphabet_size_ = reader.u32();
    if (tree.alphabet_size_ < 2 || tree.alphabet_size_ > 256) {
      throw IoError("WaveletTree::load: corrupt alphabet size");
    }
    tree.root_ = load_node(reader);
    return tree;
  }

  /// Flat 64-byte-aligned layout (archive format v3); requires
  /// BV::save_flat / BV::load_flat. adopt=true borrows node payloads from
  /// the reader's backing buffer.
  void save_flat(ByteWriter& writer) const {
    writer.u64(size_);
    writer.u32(alphabet_size_);
    save_node_flat(root_.get(), writer);
  }
  static WaveletTree load_flat(ByteReader& reader, bool adopt) {
    WaveletTree tree;
    tree.size_ = reader.u64();
    tree.alphabet_size_ = reader.u32();
    if (tree.alphabet_size_ < 2 || tree.alphabet_size_ > 256) {
      throw IoError("WaveletTree::load_flat: corrupt alphabet size");
    }
    tree.root_ = load_node_flat(reader, adopt);
    return tree;
  }

 private:
  struct Node {
    BV bits;
    std::unique_ptr<Node> child0;
    std::unique_ptr<Node> child1;
    std::uint8_t lo_value = 0;  // first symbol of child0's alphabet
    std::uint8_t mid = 0;       // first symbol of child1's alphabet
  };

  static std::unique_ptr<Node> build_node(const std::vector<std::uint8_t>& symbols,
                                          unsigned lo, unsigned hi,
                                          const Builder& builder) {
    if (hi - lo <= 1) return nullptr;  // leaf range: no node needed
    const unsigned mid = lo + (hi - lo + 1) / 2;

    BitVector bits;
    std::vector<std::uint8_t> left;
    std::vector<std::uint8_t> right;
    left.reserve(symbols.size());
    right.reserve(symbols.size());
    for (std::uint8_t s : symbols) {
      const bool one = s >= mid;
      bits.push_back(one);
      (one ? right : left).push_back(s);
    }

    auto node = std::make_unique<Node>();
    node->lo_value = static_cast<std::uint8_t>(lo);
    node->mid = static_cast<std::uint8_t>(mid);
    node->bits = builder(bits);
    node->child0 = build_node(left, lo, mid, builder);
    node->child1 = build_node(right, mid, hi, builder);
    return node;
  }

  /// Recursive select: find the occurrence index inside the child, then map
  /// it back up through this node's bit-vector.
  static std::size_t select_walk(const Node* node, std::uint8_t c, std::size_t k) {
    if (!node) return k;  // leaf: the k-th occurrence is at local index k
    if (c >= node->mid) {
      const std::size_t below = select_walk(node->child1.get(), c, k);
      return node->bits.select1(below);
    }
    const std::size_t below = select_walk(node->child0.get(), c, k);
    return node->bits.select0(below);
  }

  static void save_node(const Node* node, ByteWriter& writer) {
    writer.u8(node ? 1 : 0);
    if (!node) return;
    writer.u8(node->lo_value);
    writer.u8(node->mid);
    node->bits.save(writer);
    save_node(node->child0.get(), writer);
    save_node(node->child1.get(), writer);
  }

  static std::unique_ptr<Node> load_node(ByteReader& reader) {
    if (reader.u8() == 0) return nullptr;
    auto node = std::make_unique<Node>();
    node->lo_value = reader.u8();
    node->mid = reader.u8();
    node->bits = BV::load(reader);
    node->child0 = load_node(reader);
    node->child1 = load_node(reader);
    return node;
  }

  static void save_node_flat(const Node* node, ByteWriter& writer) {
    writer.u8(node ? 1 : 0);
    if (!node) return;
    writer.u8(node->lo_value);
    writer.u8(node->mid);
    node->bits.save_flat(writer);
    save_node_flat(node->child0.get(), writer);
    save_node_flat(node->child1.get(), writer);
  }

  static std::unique_ptr<Node> load_node_flat(ByteReader& reader, bool adopt) {
    if (reader.u8() == 0) return nullptr;
    auto node = std::make_unique<Node>();
    node->lo_value = reader.u8();
    node->mid = reader.u8();
    node->bits = BV::load_flat(reader, adopt);
    node->child0 = load_node_flat(reader, adopt);
    node->child1 = load_node_flat(reader, adopt);
    return node;
  }

  static std::size_t count_nodes(const Node* node) noexcept {
    if (!node) return 0;
    return 1 + count_nodes(node->child0.get()) + count_nodes(node->child1.get());
  }

  static std::size_t node_bytes(const Node* node) noexcept {
    if (!node) return 0;
    return sizeof(Node) + node->bits.size_in_bytes() +
           node_bytes(node->child0.get()) + node_bytes(node->child1.get());
  }

  static std::size_t node_heap_bytes(const Node* node) noexcept {
    if (!node) return 0;
    std::size_t payload;
    if constexpr (requires(const BV& bv) { bv.heap_size_in_bytes(); }) {
      payload = node->bits.heap_size_in_bytes();
    } else {
      payload = node->bits.size_in_bytes();
    }
    return sizeof(Node) + payload + node_heap_bytes(node->child0.get()) +
           node_heap_bytes(node->child1.get());
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  unsigned alphabet_size_ = 0;
};

}  // namespace bwaver
