// Shared tables for RRR block decoding (paper, Sec. III-B / Fig. 3).
//
// For block size b, the "Global Rank Table" holds all 2^b possible blocks of
// b bits as 16-bit values, sorted first by class (number of 1s) and then in
// ascending numeric order. The "class offsets" array gives, for each class c,
// the index of the first block of that class inside the table. Both tables
// are stored once per process and shared among every RRR sequence with the
// same b — the paper notes this saves space when encoding all nodes of a
// wavelet tree.
//
// For construction we additionally keep the inverse mapping
// block value -> offset inside its class; the FPGA never needs it (encoding
// happens on the host), so it is not counted in the device memory model.
#pragma once

#include <cstdint>
#include <vector>

#include "util/binomial.hpp"

namespace bwaver {

class GlobalRankTable {
 public:
  /// Shared instance for block size `b` (1 <= b <= kMaxBlockBits).
  /// Thread-safe; built on first use.
  static const GlobalRankTable& get(unsigned b);

  unsigned block_bits() const noexcept { return b_; }

  /// Block bit pattern stored at `index` (index = class_offset(c) + offset).
  std::uint16_t permutation(std::uint32_t index) const noexcept {
    return permutations_[index];
  }

  /// Index in the permutation table of the first block with class `c`.
  std::uint32_t class_offset(unsigned c) const noexcept { return class_offsets_[c]; }

  /// Offset of `block` (a b-bit value) within its class, via the O(1)
  /// host-side inverse table.
  std::uint32_t offset_of(std::uint16_t block) const noexcept {
    return offset_of_[block];
  }

  /// Offset of `block` within its class by scanning the permutation table —
  /// what an implementation without the inverse table must do. Exposed so
  /// the Fig. 6 bench can reproduce the paper's build-time growth with b
  /// (the scan is O(C(b, c)) per block).
  std::uint32_t offset_of_by_search(std::uint16_t block) const noexcept;

  /// Width in bits of the offset field for class `c`: ceil(log2(C(b,c))).
  unsigned offset_width(unsigned c) const noexcept {
    return BinomialTable::instance().offset_width(b_, c);
  }

  /// Bytes the device-resident part occupies: 2^b 16-bit permutations plus
  /// b+1 32-bit class offsets. Matches the 2^{b+1} + 4(b+1) terms of the
  /// paper's size formula (the paper folds the "+4" into its constant).
  std::size_t device_size_in_bytes() const noexcept {
    return permutations_.size() * sizeof(std::uint16_t) +
           class_offsets_.size() * sizeof(std::uint32_t);
  }

 private:
  explicit GlobalRankTable(unsigned b);

  unsigned b_;
  std::vector<std::uint16_t> permutations_;   // 2^b entries, class-major
  std::vector<std::uint32_t> class_offsets_;  // b+1 entries
  std::vector<std::uint16_t> offset_of_;      // 2^b entries (host-only)
};

}  // namespace bwaver
