#include "mapper/read_batch.hpp"

#include "fmindex/dna.hpp"

namespace bwaver {

ReadBatch ReadBatch::from_simulated(std::span<const SimulatedRead> reads) {
  ReadBatch batch;
  std::size_t bases = 0;
  for (const auto& read : reads) bases += read.codes.size();
  batch.reserve(reads.size(), bases);
  for (const auto& read : reads) batch.add(read.codes);
  return batch;
}

ReadBatch ReadBatch::from_fastq(std::span<const FastqRecord> records) {
  ReadBatch batch;
  std::size_t bases = 0;
  for (const auto& record : records) bases += record.sequence.size();
  batch.reserve(records.size(), bases);
  for (const auto& record : records) {
    batch.add(dna_encode_string(record.sequence, /*substitute_invalid=*/true));
  }
  return batch;
}

}  // namespace bwaver
