#include "mapper/batch_scheduler.hpp"

#include <atomic>
#include <mutex>

#include "fmindex/dna.hpp"
#include "fmindex/occ_backends.hpp"
#include "kernels/vector_occ.hpp"
#include "mapper/software_mapper.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace bwaver {

std::optional<SearchMode> parse_search_mode(std::string_view name) {
  if (name == "per-read") return SearchMode::kPerRead;
  if (name == "sweep") return SearchMode::kSweep;
  return std::nullopt;
}

const char* search_mode_name(SearchMode mode) {
  return mode == SearchMode::kSweep ? "sweep" : "per-read";
}

const char* search_mode_choices() { return "per-read|sweep"; }

namespace detail {

template <typename Occ>
std::vector<QueryResult> sweep_map_batch(const FmIndex<Occ>& index,
                                         const ReadBatch& batch, unsigned threads,
                                         SoftwareMapReport* report) {
  std::vector<QueryResult> results(batch.size());
  std::atomic<std::uint64_t> mapped{0};
  std::mutex stats_mutex;
  SweepStats total_stats;
  WallTimer timer;

  // Reads per sweep wave: large enough for full memory-level parallelism
  // (thousands of independent in-flight searches), small enough that the
  // scheduler's state/scratch arrays stay resident next to the hot part of
  // the occ structure instead of streaming through the whole cache.
  constexpr std::size_t kWaveReads = 4096;

  auto work = [&](std::size_t begin, std::size_t end) {
    std::uint64_t local_mapped = 0;
    SweepStats stats;
    std::vector<std::uint8_t> rc_codes;
    std::vector<std::size_t> rc_offsets;
    std::vector<const std::uint8_t*> pattern_base;
    std::vector<SweepState> states;
    std::vector<SaInterval> final_iv;
    for (std::size_t wave = begin; wave < end; wave += kWaveReads) {
      const std::size_t count = std::min(kWaveReads, end - wave);

      // Reverse complements for the wave, flat so states can re-read
      // their pattern each pass without per-read allocations. Slot
      // convention: read k of the wave searches forward in slot 2k, its
      // reverse complement in slot 2k + 1.
      rc_offsets.assign(count + 1, 0);
      for (std::size_t k = 0; k < count; ++k) {
        rc_offsets[k + 1] = rc_offsets[k] + batch.read(wave + k).size();
      }
      rc_codes.resize(rc_offsets[count]);
      for (std::size_t k = 0; k < count; ++k) {
        const auto codes = batch.read(wave + k);
        std::uint8_t* out = rc_codes.data() + rc_offsets[k];
        for (std::size_t i = 0; i < codes.size(); ++i) {
          out[i] = dna_complement(codes[codes.size() - 1 - i]);
        }
      }
      const auto rc_read = [&](std::size_t k) {
        return std::span<const std::uint8_t>(rc_codes.data() + rc_offsets[k],
                                             rc_offsets[k + 1] - rc_offsets[k]);
      };

      // Seed every search exactly as count() would; sweep_execute retires
      // the ones count_start already finished (seed-covered/empty reads).
      pattern_base.resize(2 * count);
      states.clear();
      states.reserve(2 * count);
      final_iv.assign(2 * count, SaInterval{});
      for (std::size_t k = 0; k < count; ++k) {
        pattern_base[2 * k] = batch.read(wave + k).data();
        pattern_base[2 * k + 1] = rc_codes.data() + rc_offsets[k];
        std::size_t remaining = 0;
        SaInterval iv = index.count_start(batch.read(wave + k), remaining);
        states.push_back({static_cast<std::uint32_t>(2 * k),
                          static_cast<std::uint32_t>(remaining), iv});
        iv = index.count_start(rc_read(k), remaining);
        states.push_back({static_cast<std::uint32_t>(2 * k + 1),
                          static_cast<std::uint32_t>(remaining), iv});
      }

      sweep_execute(index, states, pattern_base.data(), final_iv.data(),
                    /*out_remaining=*/nullptr, &stats);

      for (std::size_t k = 0; k < count; ++k) {
        const SaInterval fwd = final_iv[2 * k];
        const SaInterval rev = final_iv[2 * k + 1];
        QueryResult& result = results[wave + k];
        result.id = static_cast<std::uint32_t>(wave + k);
        result.fwd_lo = fwd.lo;
        result.fwd_hi = fwd.hi;
        result.rev_lo = rev.lo;
        result.rev_hi = rev.hi;
        if (result.mapped()) ++local_mapped;
      }
    }
    mapped.fetch_add(local_mapped, std::memory_order_relaxed);
    const std::scoped_lock lock(stats_mutex);
    total_stats += stats;
  };

  if (threads <= 1) {
    work(0, batch.size());
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(batch.size(), work);
  }

  if (report) {
    report->seconds = timer.seconds();
    report->threads = threads;
    report->reads = batch.size();
    report->mapped = mapped.load();
    report->sweep = total_stats;
  }
  return results;
}

template std::vector<QueryResult> sweep_map_batch<RrrWaveletOcc>(
    const FmIndex<RrrWaveletOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> sweep_map_batch<PlainWaveletOcc>(
    const FmIndex<PlainWaveletOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> sweep_map_batch<SampledOcc>(
    const FmIndex<SampledOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> sweep_map_batch<VectorOcc>(
    const FmIndex<VectorOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> sweep_map_batch<EprOcc>(
    const FmIndex<EprOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);

}  // namespace detail
}  // namespace bwaver
