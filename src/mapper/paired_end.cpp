#include "mapper/paired_end.hpp"

#include <algorithm>
#include <stdexcept>

#include "fmindex/dna.hpp"
#include "mapper/software_mapper.hpp"
#include "util/rng.hpp"

namespace bwaver {

namespace {

/// Candidate locus: global position + strand of the mate's alignment.
struct Candidate {
  std::uint32_t pos;
  bool forward;  ///< mate sequence matches the forward strand here
};

/// Collects up to `cap` candidate loci from both strand intervals of one
/// result, filtering boundary-straddling spans.
std::vector<Candidate> collect_candidates(const FmIndex<RrrWaveletOcc>& index,
                                          const ReferenceSet& reference,
                                          const QueryResult& result,
                                          std::uint32_t read_length, std::size_t cap) {
  std::vector<Candidate> candidates;
  const auto& sa = index.suffix_array();
  for (int strand = 0; strand < 2; ++strand) {
    const bool forward = strand == 0;
    const std::uint32_t lo = forward ? result.fwd_lo : result.rev_lo;
    const std::uint32_t hi = forward ? result.fwd_hi : result.rev_hi;
    for (std::uint32_t row = lo; row < hi && candidates.size() < cap; ++row) {
      if (reference.span_within_sequence(sa[row], read_length)) {
        candidates.push_back(Candidate{sa[row], forward});
      }
    }
  }
  return candidates;
}

}  // namespace

std::vector<PairedAlignment> pair_alignments(
    const FmIndex<RrrWaveletOcc>& index, const ReferenceSet& reference,
    std::span<const QueryResult> results1, std::span<const QueryResult> results2,
    std::span<const std::uint32_t> len1, std::span<const std::uint32_t> len2,
    const PairedEndConfig& config) {
  if (results1.size() != results2.size() || results1.size() != len1.size() ||
      len1.size() != len2.size()) {
    throw std::invalid_argument("pair_alignments: mate array size mismatch");
  }
  std::vector<PairedAlignment> pairs(results1.size());

  for (std::size_t i = 0; i < results1.size(); ++i) {
    PairedAlignment& pair = pairs[i];
    const auto c1 = collect_candidates(index, reference, results1[i], len1[i],
                                       config.max_candidates);
    const auto c2 = collect_candidates(index, reference, results2[i], len2[i],
                                       config.max_candidates);
    if (c1.empty() && c2.empty()) {
      pair.pair_class = PairClass::kUnmapped;
      continue;
    }
    if (c1.empty() || c2.empty()) {
      pair.pair_class = PairClass::kOneUnmapped;
      continue;
    }

    pair.pair_class = PairClass::kDiscordant;
    for (const Candidate& a : c1) {
      for (const Candidate& b : c2) {
        // FR library: the forward-strand mate comes first; the other mate
        // aligns on the reverse strand downstream. Either mate may be the
        // forward one.
        const Candidate& fwd = a.forward ? a : b;
        const Candidate& rev = a.forward ? b : a;
        const std::uint32_t fwd_len = a.forward ? len1[i] : len2[i];
        const std::uint32_t rev_len = a.forward ? len2[i] : len1[i];
        (void)fwd_len;
        if (a.forward == b.forward) continue;  // FF/RR: wrong orientation
        if (rev.pos < fwd.pos) continue;       // RF: mates face outward
        const std::uint32_t insert = rev.pos + rev_len - fwd.pos;
        if (insert < config.min_insert || insert > config.max_insert) continue;
        const auto seq_a = reference.resolve(fwd.pos);
        const auto seq_b = reference.resolve(rev.pos);
        if (seq_a.sequence_index != seq_b.sequence_index) continue;

        pair.pair_class = PairClass::kProperPair;
        pair.sequence_index = seq_a.sequence_index;
        pair.mate1_is_forward = a.forward;
        pair.mate1_pos = reference.resolve(a.pos).offset;
        pair.mate2_pos = reference.resolve(b.pos).offset;
        pair.insert_size = insert;
        break;
      }
      if (pair.pair_class == PairClass::kProperPair) break;
    }
  }
  return pairs;
}

std::vector<PairedAlignment> map_pairs(const FmIndex<RrrWaveletOcc>& index,
                                       const ReferenceSet& reference,
                                       const ReadBatch& mates1, const ReadBatch& mates2,
                                       const PairedEndConfig& config, unsigned threads) {
  if (mates1.size() != mates2.size()) {
    throw std::invalid_argument("map_pairs: mate batches must have equal size");
  }
  const BwaverCpuMapper mapper(index);
  const auto results1 = mapper.map(mates1, threads);
  const auto results2 = mapper.map(mates2, threads);

  std::vector<std::uint32_t> len1(mates1.size()), len2(mates2.size());
  for (std::size_t i = 0; i < mates1.size(); ++i) {
    len1[i] = static_cast<std::uint32_t>(mates1.read(i).size());
    len2[i] = static_cast<std::uint32_t>(mates2.read(i).size());
  }
  return pair_alignments(index, reference, results1, results2, len1, len2, config);
}

std::vector<SimulatedPair> simulate_read_pairs(std::span<const std::uint8_t> reference,
                                               std::size_t num_pairs,
                                               unsigned read_length,
                                               std::uint32_t mean_insert,
                                               std::uint32_t insert_spread,
                                               std::uint64_t seed) {
  if (mean_insert < 2 * read_length) {
    throw std::invalid_argument("simulate_read_pairs: insert shorter than two reads");
  }
  if (mean_insert + insert_spread > reference.size()) {
    throw std::invalid_argument("simulate_read_pairs: insert longer than reference");
  }
  Xoshiro256 rng(seed);
  std::vector<SimulatedPair> pairs;
  pairs.reserve(num_pairs);
  for (std::size_t n = 0; n < num_pairs; ++n) {
    SimulatedPair pair;
    const std::uint32_t spread =
        insert_spread == 0
            ? 0
            : static_cast<std::uint32_t>(rng.below(2 * insert_spread + 1));
    pair.insert_size = mean_insert - insert_spread + spread;
    pair.fragment_start =
        static_cast<std::uint32_t>(rng.below(reference.size() - pair.insert_size + 1));

    pair.mate1.assign(reference.begin() + pair.fragment_start,
                      reference.begin() + pair.fragment_start + read_length);
    const std::uint32_t tail_start = pair.fragment_start + pair.insert_size - read_length;
    pair.mate2 = dna_reverse_complement(
        std::span<const std::uint8_t>(reference.data() + tail_start, read_length));
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace bwaver
