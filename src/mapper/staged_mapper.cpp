#include "mapper/staged_mapper.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "fmindex/dna.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bits.hpp"
#include "util/timer.hpp"

namespace bwaver {

namespace {

/// Exact (budget-0) search of one strand through the seeded index path: a
/// k-mer seed-table hit replaces the first k backward-search steps with one
/// lookup, so the returned step count models what the seeded exact module
/// executes. The interval is byte-identical to the budget-0 recursion —
/// a non-empty table entry IS the interval the recurrence reaches after
/// those k steps, and an empty entry means the k-suffix does not occur.
std::uint64_t exact_count_steps(const FmIndex<RrrWaveletOcc>& index,
                                std::span<const std::uint8_t> codes,
                                SaInterval& iv) {
  const KmerSeedTable* seeds = index.seed_table();
  const unsigned k = seeds != nullptr ? seeds->k() : 0;
  std::size_t next = codes.size();
  iv = index.full_interval();
  if (k != 0 && codes.size() >= k) {
    if (const auto seed = seeds->lookup(codes.last(k))) {
      iv = *seed;
      next = codes.size() - k;
    }
  }
  std::uint64_t steps = 0;
  while (next > 0 && !iv.empty()) {
    iv = index.step(iv, codes[--next]);
    ++steps;
  }
  return steps;
}

/// Searches one read (both strands) at exactly the given mismatch budget
/// and fills the result when anything aligns. PRECONDITION at budget > 0:
/// the read failed every lower budget (the staged pipeline guarantees it
/// by construction) — kScheme mode relies on this to search only the
/// exactly-`budget` stratum. Returns the executed backward-search steps
/// (slower strand, the engine-occupancy metric); `stats` (optional)
/// accumulates both strands' approximate-search counters. In kScheme mode
/// `bidir` must be the bidirectional wrapper of `index`. Both modes
/// resolve the SAME hit set; positions are canonicalized (sorted per
/// strand, forward first) so the modes are byte-identical wherever
/// neither truncates.
std::uint64_t search_read_stage(const FmIndex<RrrWaveletOcc>& index,
                                const BidirFmIndex<RrrWaveletOcc>* bidir,
                                ApproxMode mode, std::size_t hit_cap,
                                std::span<const std::uint8_t> codes, unsigned budget,
                                StagedReadResult& result, ApproxStats* stats) {
  const auto rc = dna_reverse_complement(codes);

  // The exact stage runs the seeded search: same intervals and positions
  // as the recursion below, fewer modeled steps when the seed table hits.
  if (budget == 0) {
    SaInterval fwd_iv, rev_iv;
    const std::uint64_t fwd_steps = exact_count_steps(index, codes, fwd_iv);
    const std::uint64_t rev_steps = exact_count_steps(index, rc, rev_iv);
    if (!fwd_iv.empty() || !rev_iv.empty()) {
      result.stage = 0;
      result.reverse_strand = fwd_iv.empty();
      for (int strand = 0; strand < 2; ++strand) {
        const SaInterval& hit = strand == 0 ? fwd_iv : rev_iv;
        for (std::uint32_t row = hit.lo; row < hit.hi; ++row) {
          result.positions.push_back(index.suffix_array()[row]);
        }
      }
    }
    return std::max(fwd_steps, rev_steps);
  }

  ApproxStats fwd_stats, rev_stats;
  std::vector<ApproxHit> fwd_hits, rev_hits;
  std::uint8_t best = StagedReadResult::kUnaligned;
  if (mode == ApproxMode::kScheme) {
    // Only the exactly-`budget` stratum: the staged pipeline (and the
    // software comparator) advance a read to this budget only after it
    // failed every lower stage, and those stages ran the identical
    // searches — the lower strata are provably empty. This is the
    // schemes' structural advantage over the branch recursion, which
    // re-explores the whole <=budget tree each stage by construction.
    scheme_count_exact(*bidir, codes, budget, fwd_hits, &fwd_stats, hit_cap);
    scheme_count_exact(*bidir, rc, budget, rev_hits, &rev_stats, hit_cap);
    if (!fwd_hits.empty() || !rev_hits.empty()) {
      best = static_cast<std::uint8_t>(budget);
    }
  } else {
    fwd_hits = approx_count(index, codes, budget, &fwd_stats, hit_cap);
    rev_hits = approx_count(index, rc, budget, &rev_stats, hit_cap);
    // Reads reaching stage k failed every stage < k, so any hit here is at
    // stratum k for exact-stage reads; for robustness pick the minimum
    // stratum actually present.
    for (const auto& hit : fwd_hits) best = std::min(best, hit.mismatches);
    for (const auto& hit : rev_hits) best = std::min(best, hit.mismatches);
  }
  if (best != StagedReadResult::kUnaligned) {
    result.stage = best;
    std::vector<std::uint32_t> strand_positions;
    for (int strand = 0; strand < 2; ++strand) {
      const auto& hits = strand == 0 ? fwd_hits : rev_hits;
      strand_positions.clear();
      for (const auto& hit : hits) {
        if (hit.mismatches != best) continue;
        for (std::uint32_t row = hit.interval.lo; row < hit.interval.hi; ++row) {
          strand_positions.push_back(index.suffix_array()[row]);
        }
      }
      // The two modes enumerate the (identical) interval set in different
      // orders; sorting per strand makes the reported loci canonical.
      std::sort(strand_positions.begin(), strand_positions.end());
      if (strand == 0) result.reverse_strand = strand_positions.empty();
      result.positions.insert(result.positions.end(), strand_positions.begin(),
                              strand_positions.end());
    }
  }
  if (stats != nullptr) {
    stats->steps_executed += fwd_stats.steps_executed + rev_stats.steps_executed;
    stats->branches_pruned += fwd_stats.branches_pruned + rev_stats.branches_pruned;
    stats->hits += fwd_stats.hits + rev_stats.hits;
    stats->truncated = stats->truncated || fwd_stats.truncated || rev_stats.truncated;
  }
  return std::max(fwd_stats.steps_executed, rev_stats.steps_executed);
}

/// The exact stage for all pending reads at once through the sweep
/// scheduler. Seeding replicates exact_count_steps (an empty seed-table
/// entry finishes the search immediately — unlike count()'s unseeded
/// fallback), and the per-read executed-step counts are recovered from the
/// codes left unconsumed, so results, aligned sets and modeled cycle
/// charges are identical to the per-read loop.
struct ExactStageOutcome {
  std::vector<SaInterval> intervals;        ///< fwd at 2k, rc at 2k + 1
  std::vector<std::uint64_t> steps;         ///< executed steps per pending read
};

ExactStageOutcome exact_stage_sweep(const FmIndex<RrrWaveletOcc>& index,
                                    const ReadBatch& batch,
                                    std::span<const std::size_t> pending) {
  const std::size_t count = pending.size();
  ExactStageOutcome outcome;
  outcome.intervals.assign(2 * count, SaInterval{});
  outcome.steps.assign(count, 0);

  std::vector<std::uint8_t> rc_codes;
  std::vector<std::size_t> rc_offsets(count + 1, 0);
  for (std::size_t k = 0; k < count; ++k) {
    rc_offsets[k + 1] = rc_offsets[k] + batch.read(pending[k]).size();
  }
  rc_codes.resize(rc_offsets[count]);
  for (std::size_t k = 0; k < count; ++k) {
    const auto codes = batch.read(pending[k]);
    std::uint8_t* out = rc_codes.data() + rc_offsets[k];
    for (std::size_t i = 0; i < codes.size(); ++i) {
      out[i] = dna_complement(codes[codes.size() - 1 - i]);
    }
  }
  const auto rc_read = [&](std::size_t k) {
    return std::span<const std::uint8_t>(rc_codes.data() + rc_offsets[k],
                                         rc_offsets[k + 1] - rc_offsets[k]);
  };

  const KmerSeedTable* seeds = index.seed_table();
  const unsigned k_seed = seeds != nullptr ? seeds->k() : 0;
  const auto seed_exact = [&](std::span<const std::uint8_t> codes,
                              std::size_t& next) {
    next = codes.size();
    SaInterval iv = index.full_interval();
    if (k_seed != 0 && codes.size() >= k_seed) {
      if (const auto seed = seeds->lookup(codes.last(k_seed))) {
        iv = *seed;
        next = codes.size() - k_seed;
      }
    }
    return iv;
  };

  std::vector<detail::SweepState> states;
  states.reserve(2 * count);
  std::vector<const std::uint8_t*> pattern_base(2 * count);
  std::vector<std::uint32_t> initial_remaining(2 * count);
  std::vector<std::uint32_t> final_remaining(2 * count);
  for (std::size_t k = 0; k < count; ++k) {
    pattern_base[2 * k] = batch.read(pending[k]).data();
    pattern_base[2 * k + 1] = rc_codes.data() + rc_offsets[k];
    std::size_t next = 0;
    SaInterval iv = seed_exact(batch.read(pending[k]), next);
    initial_remaining[2 * k] = static_cast<std::uint32_t>(next);
    states.push_back({static_cast<std::uint32_t>(2 * k),
                      static_cast<std::uint32_t>(next), iv});
    iv = seed_exact(rc_read(k), next);
    initial_remaining[2 * k + 1] = static_cast<std::uint32_t>(next);
    states.push_back({static_cast<std::uint32_t>(2 * k + 1),
                      static_cast<std::uint32_t>(next), iv});
  }

  detail::sweep_execute(index, states, pattern_base.data(),
                        outcome.intervals.data(), final_remaining.data(),
                        /*stats=*/nullptr);

  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t fwd = initial_remaining[2 * k] - final_remaining[2 * k];
    const std::uint64_t rev =
        initial_remaining[2 * k + 1] - final_remaining[2 * k + 1];
    outcome.steps[k] = std::max(fwd, rev);
  }
  return outcome;
}

}  // namespace

StagedFpgaMapper::StagedFpgaMapper(const FmIndex<RrrWaveletOcc>& index, DeviceSpec spec,
                                   unsigned max_mismatches, ApproxMode approx_mode,
                                   const BidirFmIndex<RrrWaveletOcc>* bidir,
                                   std::size_t hit_cap)
    : index_(&index),
      spec_(spec),
      max_mismatches_(max_mismatches),
      approx_mode_(approx_mode),
      bidir_(bidir),
      hit_cap_(hit_cap) {
  if (max_mismatches > 2) {
    throw std::invalid_argument(
        "StagedFpgaMapper: staged designs support at most 2 mismatches");
  }
  if (approx_mode == ApproxMode::kScheme) {
    if (bidir == nullptr) {
      throw std::invalid_argument(
          "StagedFpgaMapper: scheme mode needs a bidirectional index");
    }
    if (&bidir->forward() != &index) {
      throw std::invalid_argument(
          "StagedFpgaMapper: bidirectional index must wrap the mapper's index");
    }
  }
  const unsigned sf = index.occ_backend().params().superblock_factor;
  step_ii_ = static_cast<unsigned>(std::max<std::uint64_t>(
      1, div_ceil(static_cast<std::uint64_t>(sf) * spec.class_field_bits,
                  spec.port_width_bits)));
}

std::vector<StagedReadResult> StagedFpgaMapper::map(const ReadBatch& batch,
                                                    StagedMapReport* report,
                                                    SearchMode mode) const {
  std::vector<StagedReadResult> results(batch.size());
  std::vector<std::size_t> pending(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) pending[i] = i;

  // Map-level approximate-search totals, published as labeled counters so
  // the two ApproxModes can be compared on a live dashboard.
  ApproxStats approx_totals;

  for (unsigned stage = 0; stage <= max_mismatches_; ++stage) {
    StageReport stage_report;
    stage_report.mismatches = stage;
    stage_report.reads_in = pending.size();
    // Every stage reprograms the fabric with that stage's module and
    // re-streams the succinct structure.
    stage_report.reconfigure_seconds =
        spec_.bitstream_program_seconds +
        static_cast<double>(index_->occ_size_in_bytes()) /
            spec_.pcie_bandwidth_bytes_per_sec;

    std::vector<std::size_t> still_pending;
    std::uint64_t stage_cycles = spec_.pipeline_fill_cycles;
    if (stage == 0 && mode == SearchMode::kSweep) {
      // Batched exact stage: one sweep over all pending reads, then the
      // identical per-read bookkeeping in pending order.
      const ExactStageOutcome sweep = exact_stage_sweep(*index_, batch, pending);
      for (std::size_t k = 0; k < pending.size(); ++k) {
        const std::size_t read_index = pending[k];
        StagedReadResult& result = results[read_index];
        const SaInterval& fwd_iv = sweep.intervals[2 * k];
        const SaInterval& rev_iv = sweep.intervals[2 * k + 1];
        if (!fwd_iv.empty() || !rev_iv.empty()) {
          result.stage = 0;
          result.reverse_strand = fwd_iv.empty();
          for (int strand = 0; strand < 2; ++strand) {
            const SaInterval& hit = strand == 0 ? fwd_iv : rev_iv;
            for (std::uint32_t row = hit.lo; row < hit.hi; ++row) {
              result.positions.push_back(index_->suffix_array()[row]);
            }
          }
        }
        const std::uint64_t steps = sweep.steps[k];
        stage_cycles += spec_.query_issue_overhead + steps * step_ii_;
        stage_report.steps_executed += steps;
        if (result.stage != StagedReadResult::kUnaligned) {
          ++stage_report.reads_aligned;
        } else {
          still_pending.push_back(read_index);
        }
      }
    } else {
      for (std::size_t read_index : pending) {
        StagedReadResult& result = results[read_index];
        ApproxStats read_stats;
        const std::uint64_t steps =
            search_read_stage(*index_, bidir_, approx_mode_, hit_cap_,
                              batch.read(read_index), stage, result, &read_stats);
        approx_totals.steps_executed += read_stats.steps_executed;
        approx_totals.branches_pruned += read_stats.branches_pruned;
        approx_totals.hits += read_stats.hits;
        stage_cycles += spec_.query_issue_overhead + steps * step_ii_;
        stage_report.steps_executed += steps;
        stage_report.branches_pruned += read_stats.branches_pruned;
        stage_report.hits += read_stats.hits;
        if (read_stats.truncated) ++stage_report.truncated_reads;
        if (result.stage != StagedReadResult::kUnaligned) {
          ++stage_report.reads_aligned;
        } else {
          still_pending.push_back(read_index);
        }
      }
    }
    stage_report.kernel_seconds = spec_.cycles_to_seconds(stage_cycles);
    if (report) report->stages.push_back(stage_report);

    // Modeled per-stage span under the ambient trace (one span per mismatch
    // stratum: reconfiguration + kernel, the split Fig. 6 reports).
    if (const obs::ObsContext& ctx = obs::current_context(); ctx.trace != nullptr) {
      ctx.trace->emit("staged:" + std::to_string(stage) + "-mismatch",
                      ctx.parent_span, -1.0,
                      (stage_report.reconfigure_seconds + stage_report.kernel_seconds) *
                          1e3);
    }

    pending = std::move(still_pending);
    if (pending.empty()) break;
  }

  if (const obs::ObsContext& ctx = obs::current_context();
      ctx.metrics != nullptr && approx_totals.steps_executed != 0) {
    const obs::Labels labels{{"approx_mode", approx_mode_name(approx_mode_)}};
    ctx.metrics
        ->counter("bwaver_approx_steps_total",
                  "Backward-search steps executed by the mismatch stages", labels)
        .inc(approx_totals.steps_executed);
    ctx.metrics
        ->counter("bwaver_approx_pruned_total",
                  "Search branches abandoned on an empty interval", labels)
        .inc(approx_totals.branches_pruned);
    ctx.metrics
        ->counter("bwaver_approx_hits_total",
                  "SA intervals emitted by the mismatch stages", labels)
        .inc(approx_totals.hits);
  }
  return results;
}

std::vector<StagedReadResult> approx_map_batch(const FmIndex<RrrWaveletOcc>& index,
                                               const ReadBatch& batch,
                                               unsigned max_mismatches, unsigned threads,
                                               double* seconds, ApproxMode approx_mode,
                                               const BidirFmIndex<RrrWaveletOcc>* bidir,
                                               std::size_t hit_cap) {
  if (approx_mode == ApproxMode::kScheme && bidir == nullptr) {
    throw std::invalid_argument(
        "approx_map_batch: scheme mode needs a bidirectional index");
  }
  std::vector<StagedReadResult> results(batch.size());
  WallTimer timer;
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (unsigned stage = 0; stage <= max_mismatches; ++stage) {
        search_read_stage(index, bidir, approx_mode, hit_cap, batch.read(i),
                          stage, results[i], /*stats=*/nullptr);
        if (results[i].stage != StagedReadResult::kUnaligned) break;
      }
    }
  };
  if (threads <= 1) {
    work(0, batch.size());
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(batch.size(), work);
  }
  if (seconds) *seconds = timer.seconds();
  return results;
}

}  // namespace bwaver
