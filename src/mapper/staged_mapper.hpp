// Staged approximate mapping with runtime reconfiguration — the paper's
// approximate-matching future work, modeled after the design it cites
// (Arram et al. [7]): all reads first pass through the exact-alignment
// module; the fabric is then reconfigured and only the reads that remained
// unaligned go through the 1-mismatch module, then the 2-mismatch module.
//
// The device model charges a full bitstream-programming delay per
// reconfiguration and prices each approximate pass by the number of
// backward-search steps the search tree actually executes, so the modeled
// time captures both effects the staged design trades off: reconfiguration
// overhead vs. running expensive k-mismatch logic on few reads.
//
// The mismatch stages run in one of two modes (ApproxMode): the classic
// per-stratum branch recursion, or precomputed bidirectional search schemes
// over a BidirFmIndex (bidir_index.hpp) — identical hit sets, far fewer
// executed steps, because every scheme anchors one pattern part exactly
// before branching.
#pragma once

#include <cstdint>
#include <vector>

#include "fmindex/approx_search.hpp"
#include "fmindex/bidir_index.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fpga/device_spec.hpp"
#include "fpga/hls_kernel.hpp"
#include "mapper/batch_scheduler.hpp"
#include "mapper/read_batch.hpp"
#include "util/thread_pool.hpp"

namespace bwaver {

/// Where (and how well) one read aligned.
struct StagedReadResult {
  static constexpr std::uint8_t kUnaligned = 0xff;

  std::uint8_t stage = kUnaligned;  ///< mismatch count of the aligning stage
  bool reverse_strand = false;      ///< strand of the first reported hit
  std::vector<std::uint32_t> positions;  ///< loci at that mismatch stratum
};

struct StageReport {
  unsigned mismatches = 0;
  std::uint64_t reads_in = 0;        ///< reads entering this stage
  std::uint64_t reads_aligned = 0;   ///< reads the stage resolved
  std::uint64_t steps_executed = 0;  ///< backward-search steps in the stage
  std::uint64_t branches_pruned = 0;  ///< empty intervals abandoned (approx stages)
  std::uint64_t hits = 0;             ///< SA intervals emitted (approx stages)
  std::uint64_t truncated_reads = 0;  ///< reads whose hit list hit the cap
  double reconfigure_seconds = 0.0;  ///< bitstream load before the stage
  double kernel_seconds = 0.0;       ///< modeled compute time of the stage
};

struct StagedMapReport {
  std::vector<StageReport> stages;
  double total_seconds() const noexcept {
    double total = 0.0;
    for (const auto& stage : stages) {
      total += stage.reconfigure_seconds + stage.kernel_seconds;
    }
    return total;
  }
};

class StagedFpgaMapper {
 public:
  /// max_mismatches in [0, 2] (the range staged hardware designs support).
  /// `approx_mode` selects the mismatch stages' search algorithm: kBranch
  /// restarts the full 4-way backward recursion per stratum; kScheme runs
  /// the precomputed bidirectional search schemes over `bidir` (which must
  /// be non-null for that mode, wrap the same `index`, and outlive the
  /// mapper). Hit SETS are identical either way (enumeration order inside a
  /// read is canonicalized); only the executed step counts differ.
  /// `hit_cap` bounds the SA intervals gathered per read and strand — a
  /// capped read is reported via StageReport::truncated_reads.
  StagedFpgaMapper(const FmIndex<RrrWaveletOcc>& index, DeviceSpec spec = DeviceSpec{},
                   unsigned max_mismatches = 2,
                   ApproxMode approx_mode = ApproxMode::kBranch,
                   const BidirFmIndex<RrrWaveletOcc>* bidir = nullptr,
                   std::size_t hit_cap = kDefaultApproxHitCap);

  /// Maps every read; results indexed by read. Report is optional. `mode`
  /// selects the exact (budget-0) stage's execution order: kSweep runs it
  /// through the batched sweep scheduler (batch_scheduler.hpp) — identical
  /// results and modeled step counts, better host-side locality. The
  /// mismatch stages always run per-read (their search-tree descent is
  /// data-dependent, not step-synchronous).
  std::vector<StagedReadResult> map(const ReadBatch& batch,
                                    StagedMapReport* report = nullptr,
                                    SearchMode mode = SearchMode::kPerRead) const;

  unsigned max_mismatches() const noexcept { return max_mismatches_; }

 private:
  const FmIndex<RrrWaveletOcc>* index_;
  DeviceSpec spec_;
  unsigned max_mismatches_;
  unsigned step_ii_;
  ApproxMode approx_mode_;
  const BidirFmIndex<RrrWaveletOcc>* bidir_;
  std::size_t hit_cap_;
};

/// Software comparator: the same staged semantics on the host CPU across
/// `threads` workers, returning identical StagedReadResult records.
/// `approx_mode`/`bidir`/`hit_cap` mirror the StagedFpgaMapper constructor.
std::vector<StagedReadResult> approx_map_batch(
    const FmIndex<RrrWaveletOcc>& index, const ReadBatch& batch,
    unsigned max_mismatches, unsigned threads = 1, double* seconds = nullptr,
    ApproxMode approx_mode = ApproxMode::kBranch,
    const BidirFmIndex<RrrWaveletOcc>* bidir = nullptr,
    std::size_t hit_cap = kDefaultApproxHitCap);

}  // namespace bwaver
