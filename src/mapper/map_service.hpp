// Engine dispatch + result resolution over *borrowed* index state.
//
// Pipeline owns its index and maps against it; the multi-tenant web service
// instead borrows refcounted read handles from the IndexRegistry and must
// run many mapping requests concurrently against shared, immutable indexes.
// Both paths funnel through these free functions so their SAM output is
// byte-identical by construction.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/reference_set.hpp"
#include "fpga/query_packet.hpp"
#include "io/fastq.hpp"
#include "io/sam.hpp"
#include "mapper/software_mapper.hpp"
#include "util/cancellation.hpp"

namespace bwaver {

struct PipelineConfig;
struct MappingOutcome;

/// @SQ header lines for `reference`, in sequence order.
std::vector<SamSequence> sam_sequences_for(const ReferenceSet& reference);

/// Resolves one batch's SA intervals to per-sequence SAM alignments
/// (boundary filtering, `max_hits_per_read` cap) and accumulates the
/// outcome counters.
void resolve_query_results(const ReferenceSet& reference,
                           std::span<const std::uint32_t> suffix_array,
                           std::span<const FastqRecord> records,
                           std::span<const QueryResult> results,
                           std::size_t max_hits_per_read, MappingOutcome& outcome,
                           std::vector<SamAlignment>& alignments,
                           const CancelToken* cancel = nullptr);

/// Maps `records` against a borrowed index/reference pair with the engine
/// selected in `config` and renders the SAM document. `bowtie` supplies a
/// prebuilt baseline mapper for MappingEngine::kBowtie2Like; when null one
/// is built transiently from the reference (expensive — callers holding an
/// index long-term should cache it). If `mapping_seconds` is non-null it
/// receives the engine's wall-clock (software) or modeled (FPGA) time.
///
/// A non-null `cancel` token is polled at cooperative checkpoints (before
/// each engine sub-batch and per chunk of result resolution); once it
/// reports a stop the call unwinds with OperationCancelled. The job
/// subsystem uses this for DELETE /jobs/{id} and deadline enforcement.
///
/// `epr` optionally supplies a prebuilt EPR dictionary for
/// MappingEngine::kEpr (the format-v4 archive section, zero-copy aliased);
/// when null (or sized for a different BWT) the engine re-transposes the
/// index's BWT transiently.
MappingOutcome map_records_over(const FmIndex<RrrWaveletOcc>& index,
                                const ReferenceSet& reference,
                                const PipelineConfig& config,
                                const std::vector<FastqRecord>& records,
                                const Bowtie2LikeMapper* bowtie = nullptr,
                                double* mapping_seconds = nullptr,
                                const CancelToken* cancel = nullptr,
                                const EprOcc* epr = nullptr);

}  // namespace bwaver
