// Host driver for the FPGA kernel (paper, Sec. III-C/III-D).
//
// Mirrors the paper's execution flow: the succinct structure is loaded onto
// the device once; query sequences are then streamed in fixed-size batches
// of 512-bit packets through the OpenCL-style runtime (write buffer ->
// kernel -> read buffer), and SA intervals come back for the host to
// resolve into positions through the (host-resident) suffix array.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fpga/power.hpp"
#include "fpga/runtime.hpp"
#include "mapper/read_batch.hpp"

namespace bwaver {

/// Modeled-time report of one FPGA mapping run, broken down by stage the
/// way the paper's OpenCL-event profiling reports it.
struct FpgaMapReport {
  double program_seconds = 0.0;   ///< structure transfer + on-chip load
  double transfer_seconds = 0.0;  ///< query/result buffer movement
  double kernel_seconds = 0.0;    ///< kernel execution
  std::uint64_t reads = 0;
  std::uint64_t mapped = 0;
  std::uint64_t host_verified = 0;  ///< results re-checked on the host
  KernelStats kernel_stats;

  double total_seconds() const noexcept {
    return program_seconds + transfer_seconds + kernel_seconds;
  }
  /// Mapping time excluding the one-time structure load — what Table II's
  /// fixed-overhead discussion separates out.
  double mapping_seconds() const noexcept { return transfer_seconds + kernel_seconds; }
};

class BwaverFpgaMapper {
 public:
  /// Programs a freshly created runtime with `index`. The index must
  /// outlive the mapper. Throws DeviceCapacityError if the structure does
  /// not fit on-chip. `host_verify_stride` > 0 re-runs every Nth kernel
  /// result through the host-side (seed-table accelerated) search and
  /// throws KernelMismatchError on any interval disagreement — the cheap
  /// cross-check that keeps the device model honest against the reference
  /// implementation.
  BwaverFpgaMapper(const FmIndex<RrrWaveletOcc>& index, DeviceSpec spec = DeviceSpec{},
                   std::size_t batch_packets = 8192,
                   std::size_t host_verify_stride = 0);

  /// Maps all reads; results are indexed by read (QueryResult::id).
  std::vector<QueryResult> map(const ReadBatch& batch, FpgaMapReport* report = nullptr);

  std::size_t host_verify_stride() const noexcept { return host_verify_stride_; }

  const FpgaRuntime& runtime() const noexcept { return runtime_; }

  PowerReport power_report(double seconds) const noexcept {
    return PowerReport{seconds, runtime_.spec().board_power_watts};
  }

 private:
  const FmIndex<RrrWaveletOcc>* index_;
  FpgaRuntime runtime_;
  std::size_t batch_packets_;
  std::size_t host_verify_stride_;
  double program_seconds_ = 0.0;
};

/// A kernel result disagreed with the host-side reference search — the
/// device model (or a bitstream, on real hardware) is returning wrong
/// intervals, so the whole run is untrustworthy.
class KernelMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace bwaver
