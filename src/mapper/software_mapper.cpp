#include "mapper/software_mapper.hpp"

#include <atomic>

#include "fmindex/dna.hpp"
#include "util/timer.hpp"

namespace bwaver {

namespace detail {

template <typename Occ>
std::vector<QueryResult> map_batch(const FmIndex<Occ>& index, const ReadBatch& batch,
                                   unsigned threads, SoftwareMapReport* report) {
  std::vector<QueryResult> results(batch.size());
  std::atomic<std::uint64_t> mapped{0};
  WallTimer timer;

  auto work = [&](std::size_t begin, std::size_t end) {
    std::uint64_t local_mapped = 0;
    std::vector<std::uint8_t> rc;
    for (std::size_t i = begin; i < end; ++i) {
      const auto codes = batch.read(i);
      rc.assign(codes.size(), 0);
      for (std::size_t k = 0; k < codes.size(); ++k) {
        rc[k] = dna_complement(codes[codes.size() - 1 - k]);
      }
      const SaInterval fwd = index.count(codes);
      const SaInterval rev = index.count(rc);
      QueryResult& result = results[i];
      result.id = static_cast<std::uint32_t>(i);
      result.fwd_lo = fwd.lo;
      result.fwd_hi = fwd.hi;
      result.rev_lo = rev.lo;
      result.rev_hi = rev.hi;
      if (result.mapped()) ++local_mapped;
    }
    mapped.fetch_add(local_mapped, std::memory_order_relaxed);
  };

  if (threads <= 1) {
    work(0, batch.size());
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(batch.size(), work);
  }

  if (report) {
    report->seconds = timer.seconds();
    report->threads = threads;
    report->reads = batch.size();
    report->mapped = mapped.load();
  }
  return results;
}

template std::vector<QueryResult> map_batch<RrrWaveletOcc>(
    const FmIndex<RrrWaveletOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> map_batch<PlainWaveletOcc>(
    const FmIndex<PlainWaveletOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> map_batch<SampledOcc>(
    const FmIndex<SampledOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> map_batch<VectorOcc>(
    const FmIndex<VectorOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);
template std::vector<QueryResult> map_batch<EprOcc>(
    const FmIndex<EprOcc>&, const ReadBatch&, unsigned, SoftwareMapReport*);

}  // namespace detail

BwaverCpuMapper::BwaverCpuMapper(std::span<const std::uint8_t> reference,
                                 RrrParams params) {
  owned_ = std::make_unique<FmIndex<RrrWaveletOcc>>(
      reference, [params](std::span<const std::uint8_t> bwt) {
        return RrrWaveletOcc(bwt, params);
      });
  index_ = owned_.get();
}

std::vector<QueryResult> BwaverCpuMapper::map(const ReadBatch& batch, unsigned threads,
                                              SoftwareMapReport* report,
                                              SearchMode mode) const {
  return detail::map_batch_mode(*index_, batch, threads, report, mode);
}

Bowtie2LikeMapper::Bowtie2LikeMapper(std::span<const std::uint8_t> reference,
                                     unsigned checkpoint_words)
    : index_(reference, [checkpoint_words](std::span<const std::uint8_t> bwt) {
        return SampledOcc(bwt, checkpoint_words);
      }) {}

std::vector<QueryResult> Bowtie2LikeMapper::map(const ReadBatch& batch, unsigned threads,
                                                SoftwareMapReport* report,
                                                SearchMode mode) const {
  return detail::map_batch_mode(index_, batch, threads, report, mode);
}

}  // namespace bwaver
