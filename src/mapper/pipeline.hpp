// The BWaveR hybrid workflow (paper, Sec. III-D / Fig. 4), three steps:
//
//   1. "BWT and SA computation" — parse the (optionally gzipped) FASTA,
//      compute the suffix array and BWT, persist them to an index file;
//   2. "BWT encoding"           — build the succinct RRR-wavelet-tree
//      structure from the stored BWT;
//   3. "Sequence mapping"       — map the (optionally gzipped) FASTQ reads
//      and their reverse complements, resolve SA intervals to positions on
//      the host, and emit SAM.
//
// Steps 1-2 and all memory management run on the host CPU; step 3 is
// dispatched to the selected engine (the FPGA model, the pure-software
// BWaveR mapper, or the Bowtie2-like baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/reference_set.hpp"
#include "fpga/device_spec.hpp"
#include "io/fasta.hpp"
#include "io/sam.hpp"
#include "kernels/registry.hpp"
#include "mapper/fpga_mapper.hpp"
#include "mapper/software_mapper.hpp"
#include "store/index_archive.hpp"

namespace bwaver {

struct PipelineConfig {
  RrrParams rrr{};
  MappingEngine engine = MappingEngine::kFpga;
  unsigned threads = 1;              ///< software engines only
  DeviceSpec device{};               ///< FPGA engine only
  std::size_t max_hits_per_read = 64;  ///< SAM lines emitted per read (cap)
  /// Requested k-mer seed length for new index builds (0 disables the
  /// table; the effective k is capped by reference size — see
  /// KmerSeedTable::capped_k). Ignored by from_archive(): a loaded archive
  /// carries (or lacks) its own table.
  unsigned seed_k = KmerSeedTable::kDefaultK;
  /// Reads per parallel mapping shard for software engines (0 = auto-size
  /// from the batch and thread count). Only used when threads > 1.
  std::size_t shard_size = 0;
  /// Backward-search execution order for software engines: per-read, or
  /// the locality-aware batched sweep scheduler (batch_scheduler.hpp).
  /// Byte-identical SAM either way; ignored by the FPGA engine.
  SearchMode search_mode = SearchMode::kPerRead;
  /// FPGA engine only: re-derive every Nth kernel result through the
  /// host-side seeded search and fail on disagreement (0 disables). See
  /// BwaverFpgaMapper::host_verify_stride.
  std::size_t fpga_verify_stride = 0;
  /// Peak-memory target for build_archive() in bytes (0 = unbounded). When
  /// the direct path's estimated peak exceeds it, the build switches to the
  /// memory-bounded blockwise constructor (src/build/build_plan.hpp).
  std::size_t build_memory_budget_bytes = 0;
  /// Explicit blockwise block size in bases for build_archive(); non-zero
  /// forces the blockwise path (0 = derive from the budget).
  std::size_t build_block_bases = 0;
  /// Appends the optional "build" provenance section (builder, block size,
  /// merge passes, budget) to archives written by build_archive(). Off by
  /// default: provenance-free output stays byte-identical to save_index().
  bool build_provenance = false;
};

/// What Pipeline::build_archive() did: which constructor ran and its scale.
struct BuildArchiveResult {
  bool blockwise = false;
  std::size_t block_bases = 0;          ///< 0 on the direct path
  std::size_t merge_passes = 0;         ///< 0 on the direct path
  std::uint64_t bytes_written = 0;      ///< final archive size
  std::size_t estimated_peak_bytes = 0; ///< planner's estimate for the chosen path
};

struct PipelineTimings {
  double bwt_sa_seconds = 0.0;
  double encode_seconds = 0.0;
  double mapping_seconds = 0.0;  ///< wall-clock (software) or modeled (FPGA)
};

/// Per-stage decomposition of one mapping run (milliseconds). seed covers
/// read-batch/query-packet construction, search the engine's backward
/// search (wall-clock for software, modeled for the FPGA), locate the
/// SA-interval -> position resolution, sam the SAM rendering. On the
/// sharded path seed/search/locate are summed CPU time across shards, so
/// total_ms() can exceed the wall clock; at threads == 1 it tracks it.
struct MappingStageTimings {
  double seed_ms = 0.0;
  double search_ms = 0.0;
  double locate_ms = 0.0;
  double sam_ms = 0.0;

  double total_ms() const noexcept { return seed_ms + search_ms + locate_ms + sam_ms; }

  MappingStageTimings& operator+=(const MappingStageTimings& other) noexcept {
    seed_ms += other.seed_ms;
    search_ms += other.search_ms;
    locate_ms += other.locate_ms;
    sam_ms += other.sam_ms;
    return *this;
  }
};

struct MappingOutcome {
  std::uint64_t reads = 0;
  std::uint64_t mapped = 0;
  std::uint64_t occurrences = 0;  ///< total located positions, both strands
  std::uint64_t shards = 1;       ///< parallel shards dispatched (1 = sequential)
  MappingStageTimings stages;     ///< per-stage timing split
  SweepStats sweep;               ///< sweep-scheduler counters (zero per-read)
  std::string sam;                ///< rendered SAM document
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = PipelineConfig{}) : config_(config) {}

  /// Step 1. Reads `fasta_path` (every record becomes a reference
  /// sequence; multi-chromosome references are concatenated, BWA-style),
  /// computes SA + BWT and writes them to `index_path`. Returns the first
  /// sequence's name.
  std::string compute_bwt_sa(const std::string& fasta_path,
                             const std::string& index_path);

  /// Step 2. Loads an index file and builds the succinct structure.
  void encode(const std::string& index_path);

  /// Steps 1+2 without touching disk (used by tests and the web server).
  void build_from_sequence(const std::string& name, const std::string& bases);

  /// Steps 1+2 over parsed multi-sequence FASTA records.
  void build_from_records(const std::vector<FastaRecord>& records);

  /// Writes the complete built index (reference metadata, C table, succinct
  /// structure, suffix array) to a checksummed archive (see
  /// store/index_archive.hpp). Requires encode()/build_from_*() first.
  void save_index(const std::string& path) const;

  /// Builds an index over `reference` and writes it straight to an archive
  /// at `path` without retaining a resident pipeline — the `index build`
  /// path. Honors config.build_memory_budget_bytes / build_block_bases:
  /// when the direct build would exceed the budget (or a block size is
  /// forced) the memory-bounded blockwise constructor streams the archive
  /// instead (see src/build/blockwise_builder.hpp); both paths produce
  /// byte-identical files and write temp + fsync + atomic rename.
  /// `progress` (optional) receives human-readable status lines.
  static BuildArchiveResult build_archive(
      const std::string& path, const ReferenceSet& reference,
      const PipelineConfig& config,
      const std::function<void(const std::string&)>& progress = {});

  /// Loads a pipeline from an archive written by save_index() — no
  /// construction work is redone, so this is the fast deployment path. The
  /// RRR parameters in `config` are ignored (they come from the archive).
  /// `load_mode` selects copy vs zero-copy mmap loading for v3 archives
  /// (v1/v2 always copy); an mmap-backed pipeline keeps the file mapped for
  /// its lifetime.
  static Pipeline from_archive(const std::string& path,
                               PipelineConfig config = PipelineConfig{},
                               LoadMode load_mode = default_load_mode());

  /// Step 3. Maps the reads in `fastq_path`; writes SAM to `sam_path` if
  /// non-empty. Requires encode()/build_from_sequence() first.
  MappingOutcome map_reads(const std::string& fastq_path,
                           const std::string& sam_path = "");

  /// Step 3 over in-memory records.
  MappingOutcome map_records(const std::vector<FastqRecord>& records);

  /// Step 3, streaming: reads the FASTQ(.gz) in batches of `batch_records`
  /// (constant memory in the read count — required for the paper's 100 M
  /// read workloads), maps each batch on a single engine instance (the
  /// FPGA model is programmed once, so the fixed overhead is paid once),
  /// and appends SAM incrementally to `sam_path`.
  MappingOutcome map_reads_streaming(const std::string& fastq_path,
                                     const std::string& sam_path,
                                     std::size_t batch_records = 100'000);

  bool ready() const noexcept { return index_ != nullptr; }
  const PipelineTimings& timings() const noexcept { return timings_; }
  const FmIndex<RrrWaveletOcc>& index() const { return *index_; }
  const ReferenceSet& reference() const noexcept { return reference_; }
  /// The archive's EPR dictionary (format v4+); null when the archive
  /// predates it or the pipeline was built in memory.
  const EprOcc* epr() const noexcept { return epr_.get(); }
  /// Name of the first reference sequence.
  const std::string& reference_name() const {
    return reference_.sequence(0).name;
  }

  /// Serialized index-file helpers (exposed for tests).
  static void save_index_file(const std::string& path, const ReferenceSet& reference,
                              const Bwt& bwt, const std::vector<std::uint32_t>& sa);
  static void load_index_file(const std::string& path, ReferenceSet& reference,
                              Bwt& bwt, std::vector<std::uint32_t>& sa);

 private:
  void build_index(Bwt bwt, std::vector<std::uint32_t> sa);

  /// Resolves one batch's SA intervals to per-sequence SAM alignments
  /// (boundary filtering, hit cap) and accumulates outcome counters.
  void resolve_results(const std::vector<FastqRecord>& records,
                       std::span<const QueryResult> results, MappingOutcome& outcome,
                       std::vector<SamAlignment>& alignments) const;

  std::vector<SamSequence> sam_sequences() const;

  PipelineConfig config_;
  PipelineTimings timings_;
  ReferenceSet reference_;
  std::unique_ptr<FmIndex<RrrWaveletOcc>> index_;
  std::unique_ptr<Bowtie2LikeMapper> bowtie_;  ///< built lazily for that engine
  /// EPR dictionary adopted from a v4 archive; the epr engine aliases it
  /// instead of re-transposing the BWT.
  std::shared_ptr<const EprOcc> epr_;
  /// Keeps a zero-copy-loaded archive mapped while index_/reference_ view
  /// into it; null for heap-owned pipelines.
  std::shared_ptr<const MappedFile> archive_backing_;
};

}  // namespace bwaver
