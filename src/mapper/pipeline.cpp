#include "mapper/pipeline.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "build/blockwise_builder.hpp"
#include "build/build_plan.hpp"
#include "fmindex/dna.hpp"
#include "io/byte_io.hpp"
#include "io/fasta.hpp"
#include "io/sam.hpp"
#include "io/streaming.hpp"
#include "mapper/map_service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/index_archive.hpp"
#include "util/timer.hpp"

namespace bwaver {

namespace {
constexpr std::uint32_t kIndexMagic = 0x52565742;  // "BWVR" little-endian
constexpr std::uint32_t kIndexVersion = 2;         // v2: multi-sequence table
}  // namespace

void Pipeline::save_index_file(const std::string& path, const ReferenceSet& reference,
                               const Bwt& bwt, const std::vector<std::uint32_t>& sa) {
  ByteWriter writer;
  writer.u32(kIndexMagic);
  writer.u32(kIndexVersion);
  writer.u64(reference.num_sequences());
  for (const auto& seq : reference.sequences()) {
    writer.str(seq.name);
    writer.u32(seq.offset);
    writer.u32(seq.length);
  }
  writer.u32(bwt.text_length);
  writer.u32(bwt.primary);
  writer.vec_u8(bwt.symbols);
  writer.vec_u32(sa);
  write_file(path, writer.data());
}

void Pipeline::load_index_file(const std::string& path, ReferenceSet& reference,
                               Bwt& bwt, std::vector<std::uint32_t>& sa) {
  const auto data = read_file(path);
  ByteReader reader(data);
  if (reader.u32() != kIndexMagic) throw IoError("index file: bad magic: " + path);
  if (reader.u32() != kIndexVersion) throw IoError("index file: unsupported version");
  struct SeqMeta {
    std::string name;
    std::uint32_t offset, length;
  };
  std::vector<SeqMeta> metas;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    SeqMeta meta;
    meta.name = reader.str();
    meta.offset = reader.u32();
    meta.length = reader.u32();
    metas.push_back(std::move(meta));
  }
  bwt.text_length = reader.u32();
  bwt.primary = reader.u32();
  bwt.symbols = reader.vec_u8();
  sa = reader.vec_u32();
  if (bwt.symbols.size() != bwt.text_length ||
      sa.size() != static_cast<std::size_t>(bwt.text_length) + 1) {
    throw IoError("index file: inconsistent sizes: " + path);
  }

  // Rebuild the reference set from the BWT (the index file stores the
  // sequence *table* but not the raw text; the text is recoverable).
  const auto text = inverse_bwt(bwt);
  ReferenceSet rebuilt;
  for (const SeqMeta& meta : metas) {
    if (meta.offset + meta.length > text.size()) {
      throw IoError("index file: sequence table out of range: " + path);
    }
    rebuilt.add(meta.name, std::span<const std::uint8_t>(text.data() + meta.offset,
                                                         meta.length));
  }
  if (rebuilt.total_length() != text.size()) {
    throw IoError("index file: sequence table does not cover text: " + path);
  }
  reference = std::move(rebuilt);
}

std::string Pipeline::compute_bwt_sa(const std::string& fasta_path,
                                     const std::string& index_path) {
  WallTimer timer;
  const auto records = read_fasta(fasta_path);
  ReferenceSet reference;
  for (const auto& record : records) {
    reference.add(record.name,
                  dna_encode_string(record.sequence, /*substitute_invalid=*/true));
  }
  const auto sa = build_suffix_array(reference.concatenated());
  const Bwt bwt = build_bwt(reference.concatenated(), sa);
  save_index_file(index_path, reference, bwt, sa);
  timings_.bwt_sa_seconds = timer.seconds();
  return records.front().name;
}

void Pipeline::encode(const std::string& index_path) {
  Bwt bwt;
  std::vector<std::uint32_t> sa;
  load_index_file(index_path, reference_, bwt, sa);
  build_index(std::move(bwt), std::move(sa));
}

void Pipeline::build_from_sequence(const std::string& name, const std::string& bases) {
  build_from_records({FastaRecord{name, bases}});
}

void Pipeline::build_from_records(const std::vector<FastaRecord>& records) {
  WallTimer timer;
  ReferenceSet reference;
  for (const auto& record : records) {
    reference.add(record.name,
                  dna_encode_string(record.sequence, /*substitute_invalid=*/true));
  }
  const auto sa = build_suffix_array(reference.concatenated());
  Bwt bwt = build_bwt(reference.concatenated(), sa);
  timings_.bwt_sa_seconds = timer.seconds();
  reference_ = std::move(reference);
  build_index(std::move(bwt), std::move(sa));
}

void Pipeline::build_index(Bwt bwt, std::vector<std::uint32_t> sa) {
  WallTimer timer;
  const RrrParams params = config_.rrr;
  // The seed table needs the SA before it moves into the index; its build
  // is a single O(n) scan, charged to encode_seconds like the rest of the
  // succinct construction.
  auto seeds = std::make_shared<const KmerSeedTable>(
      KmerSeedTable::build(reference_.concatenated(), sa, config_.seed_k));
  index_ = std::make_unique<FmIndex<RrrWaveletOcc>>(
      std::move(bwt), std::move(sa), [params](std::span<const std::uint8_t> symbols) {
        return RrrWaveletOcc(symbols, params);
      });
  index_->set_seed_table(std::move(seeds));
  if (config_.engine == MappingEngine::kBowtie2Like) {
    // The baseline builds its own index over the same concatenated text.
    bowtie_ = std::make_unique<Bowtie2LikeMapper>(reference_.concatenated());
  }
  timings_.encode_seconds = timer.seconds();
}

MappingOutcome Pipeline::map_reads(const std::string& fastq_path,
                                   const std::string& sam_path) {
  const auto records = read_fastq(fastq_path);
  MappingOutcome outcome = map_records(records);
  if (!sam_path.empty()) {
    write_file(sam_path, outcome.sam);
  }
  return outcome;
}

MappingOutcome Pipeline::map_records(const std::vector<FastqRecord>& records) {
  if (!ready()) {
    throw std::logic_error("Pipeline: map before encode()/build_from_sequence()");
  }
  return map_records_over(*index_, reference_, config_, records, bowtie_.get(),
                          &timings_.mapping_seconds, /*cancel=*/nullptr,
                          epr_.get());
}

void Pipeline::resolve_results(const std::vector<FastqRecord>& records,
                               std::span<const QueryResult> results,
                               MappingOutcome& outcome,
                               std::vector<SamAlignment>& alignments) const {
  resolve_query_results(reference_, index_->suffix_array(), records, results,
                        config_.max_hits_per_read, outcome, alignments);
}

std::vector<SamSequence> Pipeline::sam_sequences() const {
  return sam_sequences_for(reference_);
}

void Pipeline::save_index(const std::string& path) const {
  if (!ready()) {
    throw std::logic_error("Pipeline: save_index before encode()/build_from_sequence()");
  }
  write_index_archive(path, reference_, *index_);
}

BuildArchiveResult Pipeline::build_archive(
    const std::string& path, const ReferenceSet& reference, const PipelineConfig& config,
    const std::function<void(const std::string&)>& progress) {
  const build::BuildPlan plan = build::plan_build(reference.total_length(),
                                                  config.build_memory_budget_bytes,
                                                  config.build_block_bases);
  BuildArchiveResult result;
  result.blockwise = plan.blockwise;
  result.estimated_peak_bytes = plan.estimated_peak_bytes;

  if (plan.blockwise) {
    build::BlockwiseConfig blockwise;
    blockwise.block_bases = plan.block_bases;
    blockwise.memory_budget_bytes = config.build_memory_budget_bytes;
    blockwise.seed_k = config.seed_k;
    blockwise.rrr = config.rrr;
    blockwise.write_provenance = config.build_provenance;
    blockwise.progress = progress;
    build::BlockwiseBuilder builder(reference, blockwise);
    const build::BlockwiseStats stats = builder.build_archive(path);
    result.block_bases = stats.block_bases;
    result.merge_passes = stats.merge_passes;
    result.bytes_written = stats.bytes_written;
    return result;
  }

  obs::TraceSpan span("build:direct");
  if (progress) {
    progress("direct build: " + std::to_string(reference.total_length()) + " bases");
  }
  const auto sa = build_suffix_array(reference.concatenated());
  Bwt bwt = build_bwt(reference.concatenated(), sa);
  auto seeds = std::make_shared<const KmerSeedTable>(
      KmerSeedTable::build(reference.concatenated(), sa, config.seed_k));
  const RrrParams params = config.rrr;
  FmIndex<RrrWaveletOcc> index(
      std::move(bwt), std::move(sa),
      [params](std::span<const std::uint8_t> symbols) {
        return RrrWaveletOcc(symbols, params);
      });
  index.set_seed_table(std::move(seeds));
  BuildProvenance provenance;
  provenance.builder = "direct";
  provenance.memory_budget_bytes = config.build_memory_budget_bytes;
  write_index_archive(path, reference, index, kArchiveVersionLatest,
                      config.build_provenance ? &provenance : nullptr);
  result.bytes_written = std::filesystem::file_size(path);

  const obs::ObsContext& ctx = obs::current_context();
  obs::MetricsRegistry& metrics =
      ctx.metrics != nullptr ? *ctx.metrics : obs::default_registry();
  const obs::Labels labels{{"builder", "direct"}};
  metrics.counter("bwaver_build_blocks_total", "Index-construction text blocks built",
                  labels)
      .inc(1);
  metrics.counter("bwaver_build_bytes_written_total",
                  "Index archive bytes written by builds", labels)
      .inc(result.bytes_written);
  return result;
}

Pipeline Pipeline::from_archive(const std::string& path, PipelineConfig config,
                                LoadMode load_mode) {
  StoredIndex stored = read_index_archive(path, load_mode);
  Pipeline pipeline(config);
  pipeline.reference_ = std::move(stored.reference);
  pipeline.index_ =
      std::make_unique<FmIndex<RrrWaveletOcc>>(std::move(stored.index));
  pipeline.archive_backing_ = std::move(stored.backing);
  pipeline.epr_ = std::move(stored.epr);
  if (config.engine == MappingEngine::kBowtie2Like) {
    pipeline.bowtie_ =
        std::make_unique<Bowtie2LikeMapper>(pipeline.reference_.concatenated());
  }
  return pipeline;
}

MappingOutcome Pipeline::map_reads_streaming(const std::string& fastq_path,
                                             const std::string& sam_path,
                                             std::size_t batch_records) {
  if (!ready()) {
    throw std::logic_error("Pipeline: map before encode()/build_from_sequence()");
  }
  if (batch_records == 0) {
    throw std::invalid_argument("Pipeline: batch_records must be >= 1");
  }

  // One engine instance for the whole stream: the FPGA model is programmed
  // once (and a derived engine's Occ structure is encoded once), so the
  // fixed overhead amortizes over all batches.
  std::unique_ptr<BwaverFpgaMapper> fpga;
  std::unique_ptr<BwaverCpuMapper> cpu;
  std::unique_ptr<PlainWaveletMapper> plain;
  std::unique_ptr<VectorMapper> vector;
  std::unique_ptr<EprMapper> epr_mapper;
  std::function<std::vector<QueryResult>(const ReadBatch&, unsigned,
                                         SoftwareMapReport*)>
      software_map;
  switch (config_.engine) {
    case MappingEngine::kFpga:
      fpga = std::make_unique<BwaverFpgaMapper>(*index_, config_.device, 8192,
                                                config_.fpga_verify_stride);
      break;
    case MappingEngine::kCpu:
      cpu = std::make_unique<BwaverCpuMapper>(*index_);
      software_map = [&cpu](const ReadBatch& batch, unsigned threads,
                            SoftwareMapReport* report) {
        return cpu->map(batch, threads, report);
      };
      break;
    case MappingEngine::kBowtie2Like:
      if (bowtie_ == nullptr) {
        bowtie_ = std::make_unique<Bowtie2LikeMapper>(reference_.concatenated());
      }
      software_map = [this](const ReadBatch& batch, unsigned threads,
                            SoftwareMapReport* report) {
        return bowtie_->map(batch, threads, report);
      };
      break;
    case MappingEngine::kPlainWavelet:
      plain = std::make_unique<PlainWaveletMapper>(
          *index_,
          [](std::span<const std::uint8_t> bwt) { return PlainWaveletOcc(bwt); });
      software_map = [&plain](const ReadBatch& batch, unsigned threads,
                              SoftwareMapReport* report) {
        return plain->map(batch, threads, report);
      };
      break;
    case MappingEngine::kVector:
      vector = std::make_unique<VectorMapper>(
          *index_,
          [](std::span<const std::uint8_t> bwt) { return VectorOcc(bwt); });
      software_map = [&vector](const ReadBatch& batch, unsigned threads,
                               SoftwareMapReport* report) {
        return vector->map(batch, threads, report);
      };
      break;
    case MappingEngine::kEpr:
      epr_mapper = std::make_unique<EprMapper>(
          *index_, [this](std::span<const std::uint8_t> bwt) {
            if (epr_ != nullptr && epr_->size() == index_->bwt().symbols.size()) {
              return EprOcc::view_of(*epr_);
            }
            return EprOcc(bwt);
          });
      software_map = [&epr_mapper](const ReadBatch& batch, unsigned threads,
                                   SoftwareMapReport* report) {
        return epr_mapper->map(batch, threads, report);
      };
      break;
  }

  std::ofstream sam;
  if (!sam_path.empty()) {
    sam.open(sam_path, std::ios::trunc);
    if (!sam) throw IoError("map_reads_streaming: cannot open " + sam_path);
    const std::string header = format_sam(sam_sequences(), {});
    sam << header;
  }

  MappingOutcome outcome;
  FastqStreamReader reader(fastq_path);
  double mapping_seconds = 0.0;
  std::vector<FastqRecord> batch_records_vec;
  FastqRecord record;
  bool more = true;
  while (more) {
    batch_records_vec.clear();
    while (batch_records_vec.size() < batch_records && (more = reader.next(record))) {
      batch_records_vec.push_back(std::move(record));
    }
    if (batch_records_vec.empty()) break;
    const ReadBatch batch = ReadBatch::from_fastq(batch_records_vec);

    std::vector<QueryResult> results;
    if (config_.engine == MappingEngine::kFpga) {
      FpgaMapReport report;
      results = fpga->map(batch, &report);
      mapping_seconds += report.mapping_seconds();
    } else {
      SoftwareMapReport report;
      results = software_map(batch, config_.threads, &report);
      mapping_seconds += report.seconds;
    }

    std::vector<SamAlignment> alignments;
    alignments.reserve(results.size());
    resolve_results(batch_records_vec, results, outcome, alignments);
    if (sam.is_open()) {
      sam << format_sam_alignments(alignments);
    }
  }
  if (config_.engine == MappingEngine::kFpga && fpga) {
    mapping_seconds +=
        static_cast<double>(fpga->runtime().events().front()->duration_ns()) * 1e-9;
  }
  timings_.mapping_seconds = mapping_seconds;
  return outcome;
}

}  // namespace bwaver
