#include "mapper/fpga_mapper.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bwaver {

BwaverFpgaMapper::BwaverFpgaMapper(const FmIndex<RrrWaveletOcc>& index, DeviceSpec spec,
                                   std::size_t batch_packets,
                                   std::size_t host_verify_stride)
    : index_(&index),
      runtime_(spec),
      batch_packets_(batch_packets),
      host_verify_stride_(host_verify_stride) {
  if (batch_packets_ == 0) {
    throw std::invalid_argument("BwaverFpgaMapper: batch_packets must be >= 1");
  }
  const EventPtr event = runtime_.program(index);
  program_seconds_ = static_cast<double>(event->duration_ns()) * 1e-9;
}

std::vector<QueryResult> BwaverFpgaMapper::map(const ReadBatch& batch,
                                               FpgaMapReport* report) {
  std::vector<QueryResult> results;
  results.reserve(batch.size());

  double transfer_seconds = 0.0;
  double kernel_seconds = 0.0;
  std::vector<QueryPacket> packets;
  packets.reserve(std::min(batch_packets_, batch.size()));

  std::size_t next = 0;
  while (next < batch.size()) {
    packets.clear();
    const std::size_t end = std::min(batch.size(), next + batch_packets_);
    for (std::size_t i = next; i < end; ++i) {
      packets.push_back(
          QueryPacket::encode(batch.read(i), static_cast<std::uint32_t>(i)));
    }
    next = end;

    const EventPtr write =
        runtime_.enqueue_write(packets.size() * QueryPacket::kBytes);
    const EventPtr kernel = runtime_.enqueue_kernel(packets, results);
    const EventPtr read = runtime_.enqueue_read(packets.size() * QueryResult::kBytes);
    transfer_seconds +=
        static_cast<double>(write->duration_ns() + read->duration_ns()) * 1e-9;
    kernel_seconds += static_cast<double>(kernel->duration_ns()) * 1e-9;
  }
  runtime_.finish();

  // Every Nth result is re-derived on the host through the seeded search
  // (count_both_strands goes through the k-mer table when one is attached,
  // so the check costs a fraction of an unseeded re-map). Any disagreement
  // is a modeling/hardware fault, not an input problem — fail the run.
  std::uint64_t host_verified = 0;
  if (host_verify_stride_ != 0) {
    for (std::size_t i = 0; i < results.size(); i += host_verify_stride_) {
      const QueryResult& result = results[i];
      const auto [fwd, rev] = index_->count_both_strands(batch.read(result.id));
      ++host_verified;
      if (fwd.lo != result.fwd_lo || fwd.hi != result.fwd_hi ||
          rev.lo != result.rev_lo || rev.hi != result.rev_hi) {
        throw KernelMismatchError(
            "BwaverFpgaMapper: kernel interval mismatch for read " +
            std::to_string(result.id) + ": device fwd [" +
            std::to_string(result.fwd_lo) + "," + std::to_string(result.fwd_hi) +
            ") rev [" + std::to_string(result.rev_lo) + "," +
            std::to_string(result.rev_hi) + ") vs host fwd [" +
            std::to_string(fwd.lo) + "," + std::to_string(fwd.hi) + ") rev [" +
            std::to_string(rev.lo) + "," + std::to_string(rev.hi) + ")");
      }
    }
  }

  if (report) {
    report->program_seconds = program_seconds_;
    report->transfer_seconds = transfer_seconds;
    report->kernel_seconds = kernel_seconds;
    report->reads = batch.size();
    report->host_verified = host_verified;
    report->mapped = 0;
    for (const QueryResult& result : results) {
      if (result.mapped()) ++report->mapped;
    }
    report->kernel_stats = runtime_.total_kernel_stats();
  }
  return results;
}

}  // namespace bwaver
