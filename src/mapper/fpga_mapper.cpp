#include "mapper/fpga_mapper.hpp"

#include <algorithm>
#include <stdexcept>

namespace bwaver {

BwaverFpgaMapper::BwaverFpgaMapper(const FmIndex<RrrWaveletOcc>& index, DeviceSpec spec,
                                   std::size_t batch_packets)
    : index_(&index), runtime_(spec), batch_packets_(batch_packets) {
  if (batch_packets_ == 0) {
    throw std::invalid_argument("BwaverFpgaMapper: batch_packets must be >= 1");
  }
  const EventPtr event = runtime_.program(index);
  program_seconds_ = static_cast<double>(event->duration_ns()) * 1e-9;
}

std::vector<QueryResult> BwaverFpgaMapper::map(const ReadBatch& batch,
                                               FpgaMapReport* report) {
  std::vector<QueryResult> results;
  results.reserve(batch.size());

  double transfer_seconds = 0.0;
  double kernel_seconds = 0.0;
  std::vector<QueryPacket> packets;
  packets.reserve(std::min(batch_packets_, batch.size()));

  std::size_t next = 0;
  while (next < batch.size()) {
    packets.clear();
    const std::size_t end = std::min(batch.size(), next + batch_packets_);
    for (std::size_t i = next; i < end; ++i) {
      packets.push_back(
          QueryPacket::encode(batch.read(i), static_cast<std::uint32_t>(i)));
    }
    next = end;

    const EventPtr write =
        runtime_.enqueue_write(packets.size() * QueryPacket::kBytes);
    const EventPtr kernel = runtime_.enqueue_kernel(packets, results);
    const EventPtr read = runtime_.enqueue_read(packets.size() * QueryResult::kBytes);
    transfer_seconds +=
        static_cast<double>(write->duration_ns() + read->duration_ns()) * 1e-9;
    kernel_seconds += static_cast<double>(kernel->duration_ns()) * 1e-9;
  }
  runtime_.finish();

  if (report) {
    report->program_seconds = program_seconds_;
    report->transfer_seconds = transfer_seconds;
    report->kernel_seconds = kernel_seconds;
    report->reads = batch.size();
    report->mapped = 0;
    for (const QueryResult& result : results) {
      if (result.mapped()) ++report->mapped;
    }
    report->kernel_stats = runtime_.total_kernel_stats();
  }
  return results;
}

}  // namespace bwaver
