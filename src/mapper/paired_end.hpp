// Paired-end mapping.
//
// Short-read sequencers emit read *pairs* from the two ends of one DNA
// fragment: in the standard FR library, mate 1 matches the forward strand
// and mate 2 the reverse strand, separated by the fragment ("insert")
// length. Pairing is a host-side post-process over the exact-match results
// the BWaveR kernel already produces: for each candidate combination of
// mate loci, check orientation, same reference sequence, and insert size
// within the configured window. Resequencing pipelines (the paper's
// motivating workload) rely on this to disambiguate repeats.
#pragma once

#include <cstdint>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/reference_set.hpp"
#include "fpga/query_packet.hpp"
#include "mapper/read_batch.hpp"

namespace bwaver {

struct PairedEndConfig {
  std::uint32_t min_insert = 100;  ///< fragment length window (inclusive)
  std::uint32_t max_insert = 1000;
  std::size_t max_candidates = 64;  ///< per-mate loci examined before giving up
};

enum class PairClass {
  kProperPair,   ///< FR orientation, insert within window, same sequence
  kDiscordant,   ///< both mates map but no combination satisfies the window
  kOneUnmapped,  ///< exactly one mate maps
  kUnmapped,     ///< neither mate maps
};

struct PairedAlignment {
  PairClass pair_class = PairClass::kUnmapped;
  // Valid for kProperPair only:
  std::uint32_t sequence_index = 0;
  std::uint32_t mate1_pos = 0;  ///< local, 0-based, forward-strand mate
  std::uint32_t mate2_pos = 0;
  std::uint32_t insert_size = 0;
  bool mate1_is_forward = true;  ///< orientation of the accepted combination
};

/// Pairs pre-computed per-mate results. `results1[i]` / `results2[i]` must
/// describe mate pair i with read lengths `len1[i]` / `len2[i]`.
std::vector<PairedAlignment> pair_alignments(
    const FmIndex<RrrWaveletOcc>& index, const ReferenceSet& reference,
    std::span<const QueryResult> results1, std::span<const QueryResult> results2,
    std::span<const std::uint32_t> len1, std::span<const std::uint32_t> len2,
    const PairedEndConfig& config);

/// Convenience: map both mate batches on the CPU mapper and pair.
std::vector<PairedAlignment> map_pairs(const FmIndex<RrrWaveletOcc>& index,
                                       const ReferenceSet& reference,
                                       const ReadBatch& mates1, const ReadBatch& mates2,
                                       const PairedEndConfig& config,
                                       unsigned threads = 1);

/// Simulated read-pair set: fragments sampled uniformly, mates from the two
/// fragment ends (FR), deterministic per seed.
struct SimulatedPair {
  std::vector<std::uint8_t> mate1;  ///< forward strand, fragment start
  std::vector<std::uint8_t> mate2;  ///< reverse strand, fragment end
  std::uint32_t fragment_start = 0;
  std::uint32_t insert_size = 0;
};

std::vector<SimulatedPair> simulate_read_pairs(std::span<const std::uint8_t> reference,
                                               std::size_t num_pairs,
                                               unsigned read_length,
                                               std::uint32_t mean_insert,
                                               std::uint32_t insert_spread,
                                               std::uint64_t seed);

}  // namespace bwaver
