// Locality-aware batched backward search — the "index sweep" scheduler.
//
// The per-read mapper walks each read's backward search to completion
// before touching the next: every occ lookup depends on the previous
// interval, so the core sits in a serial dependent-load chain and the
// memory system serves one (likely-missing) line at a time. Gagie's
// *Sequential-Access FM-Indexes* observation (PAPERS.md) is that backward
// search is step-synchronous: reordering WHICH read advances next never
// changes any read's interval sequence. The sweep scheduler exploits
// that: it keeps a wave of in-flight (interval, codes-remaining) states
// in one pool and advances the whole pool one step per pass. Within a
// pass the states are mutually independent, so their line fetches overlap
// — the memory-level parallelism a per-read chain never exposes — and a
// software-prefetch lookahead (FmIndex::prefetch_step, on backends with
// address-computable rank storage) issues each state's lines several
// steps before they are consumed. Waves are bounded (kWaveReads in
// batch_scheduler.cpp) so the scheduler's scratch stays cache-resident
// next to the hot part of the occ structure. An earlier variant also
// sorted the pool by interval position each pass to stream checkpoints
// in address order; measurement showed the sort's O(m log m) comparisons
// dwarfed the search steps at genome scales whose occ structures already
// sit in LLC, so the pool is left in slot order.
//
// Because each read still executes exactly the interval sequence
// FmIndex::count() would (same seed-table decision, same early exit on an
// empty interval), the resulting SA intervals — and therefore the SAM —
// are byte-identical to per-read order by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/sa_interval.hpp"
#include "fpga/query_packet.hpp"
#include "mapper/read_batch.hpp"

namespace bwaver {

struct SoftwareMapReport;

/// Execution order of the software engines' backward search. The modeled
/// FPGA engine ignores this: its kernel already streams query packets
/// through on-chip memory, which is the hardware form of the same sweep.
enum class SearchMode {
  kPerRead,  ///< each read searched to completion before the next
  kSweep,    ///< all reads advanced step-synchronously in index order
};

/// Canonical names ("per-read", "sweep"); nullopt for anything else.
std::optional<SearchMode> parse_search_mode(std::string_view name);
const char* search_mode_name(SearchMode mode);
/// "per-read|sweep" — for flag help and 400 messages.
const char* search_mode_choices();

/// Occupancy counters of one or more sweep runs (exported as
/// bwaver_sweep_* metrics — see docs/observability.md).
struct SweepStats {
  std::uint64_t batches = 0;      ///< sweep invocations (one per shard/chunk)
  std::uint64_t passes = 0;       ///< step sweeps over the in-flight pool
  std::uint64_t state_steps = 0;  ///< single-read single-step advances
  std::uint64_t peak_active = 0;  ///< largest in-flight pool of any pass

  SweepStats& operator+=(const SweepStats& other) noexcept {
    batches += other.batches;
    passes += other.passes;
    state_steps += other.state_steps;
    peak_active = std::max(peak_active, other.peak_active);
    return *this;
  }
};

namespace detail {

/// One in-flight backward search. `slot` routes the finished interval to
/// the caller's output (and selects the pattern); `remaining` counts the
/// codes not yet consumed — the next step consumes pattern[remaining - 1].
struct SweepState {
  std::uint32_t slot;
  std::uint32_t remaining;
  SaInterval iv;
};

/// Runs every state in `states` to completion (interval empty or pattern
/// consumed), step-synchronously; consumes the vector. Finished intervals
/// land in out_iv[slot]; out_remaining[slot] (optional) receives the codes
/// left unconsumed when the search died — callers derive executed step
/// counts from it. `pattern_base[slot]` points at the 2-bit code array the
/// state is searching (the next step consumes pattern_base[slot][remaining
/// - 1]). Each state executes exactly the step sequence the per-read
/// recurrence would, so out_iv is byte-identical to per-read search
/// regardless of scheduling.
template <typename Occ>
void sweep_execute(const FmIndex<Occ>& index, std::vector<SweepState>& states,
                   const std::uint8_t* const* pattern_base, SaInterval* out_iv,
                   std::uint32_t* out_remaining, SweepStats* stats) {
  // Deep enough to cover a line fetch at two lines per state, shallow
  // enough that prefetched lines survive in L1 until their step.
  constexpr std::size_t kLookahead = 8;

  if (stats != nullptr) ++stats->batches;
  for (;;) {
    // Retire finished searches (also catches states that start final: an
    // empty pattern, or a seed hit covering the whole read).
    std::size_t kept = 0;
    for (SweepState& state : states) {
      if (state.remaining == 0 || state.iv.empty()) {
        out_iv[state.slot] = state.iv;
        if (out_remaining != nullptr) out_remaining[state.slot] = state.remaining;
      } else {
        states[kept++] = state;
      }
    }
    states.resize(kept);
    if (states.empty()) break;

    if (stats != nullptr) {
      ++stats->passes;
      stats->state_steps += states.size();
      stats->peak_active = std::max<std::uint64_t>(stats->peak_active, states.size());
    }

    // One step for every in-flight state. The states are mutually
    // independent, so the pass is a stream of parallel line fetches — the
    // memory-level parallelism a per-read dependent chain never exposes.
    const std::size_t m = states.size();
    for (std::size_t j = 0; j < m; ++j) {
      if (j + kLookahead < m) index.prefetch_step(states[j + kLookahead].iv);
      SweepState& state = states[j];
      state.iv =
          index.count_step(state.iv, pattern_base[state.slot][state.remaining - 1]);
      --state.remaining;
    }
  }
}

/// Drop-in alternative to map_batch (software_mapper.hpp): forward +
/// reverse-complement exact search of every read through the sweep
/// scheduler, chunked across `threads` workers. Returns the identical
/// QueryResult vector.
template <typename Occ>
std::vector<QueryResult> sweep_map_batch(const FmIndex<Occ>& index,
                                         const ReadBatch& batch, unsigned threads,
                                         SoftwareMapReport* report);

}  // namespace detail
}  // namespace bwaver
