// Flat, cache-friendly container for a batch of reads (2-bit codes,
// variable length). Avoids per-read heap allocations when benchmarking
// millions of reads.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "io/fastq.hpp"
#include "sim/read_sim.hpp"

namespace bwaver {

class ReadBatch {
 public:
  ReadBatch() { offsets_.push_back(0); }

  void add(std::span<const std::uint8_t> codes) {
    codes_.insert(codes_.end(), codes.begin(), codes.end());
    offsets_.push_back(static_cast<std::uint64_t>(codes_.size()));
  }

  std::size_t size() const noexcept { return offsets_.size() - 1; }
  bool empty() const noexcept { return size() == 0; }

  std::span<const std::uint8_t> read(std::size_t i) const noexcept {
    return {codes_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  std::size_t total_bases() const noexcept { return codes_.size(); }

  void reserve(std::size_t reads, std::size_t bases) {
    offsets_.reserve(reads + 1);
    codes_.reserve(bases);
  }

  /// Builds a batch from simulated reads.
  static ReadBatch from_simulated(std::span<const SimulatedRead> reads);

  /// Builds a batch from FASTQ records; bases outside ACGTU are substituted
  /// deterministically (reads containing them cannot exact-match anyway).
  static ReadBatch from_fastq(std::span<const FastqRecord> records);

 private:
  std::vector<std::uint8_t> codes_;
  std::vector<std::uint64_t> offsets_;
};

}  // namespace bwaver
