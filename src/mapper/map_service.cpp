#include "mapper/map_service.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "mapper/fpga_mapper.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/read_batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace bwaver {

namespace {

/// Reads dispatched to the engine between cancellation checkpoints. Large
/// enough that the per-chunk engine call amortizes, small enough that a
/// DELETE /jobs/{id} or deadline takes effect promptly.
constexpr std::size_t kCancellableChunk = 2048;

/// Rows resolved between checkpoints inside one chunk.
constexpr std::size_t kResolveCheckStride = 1024;

/// Smallest worthwhile parallel shard: below this the batch/dispatch
/// overhead beats the parallelism.
constexpr std::size_t kMinShardSize = 64;

/// Reads per shard for the parallel software path. Auto mode aims for a
/// few shards per worker (load balancing without excessive batch-building
/// overhead); a cancel token caps the shard so cancellation latency stays
/// bounded like the sequential chunked path.
std::size_t effective_shard_size(std::size_t total, unsigned threads,
                                 std::size_t configured, bool cancellable) {
  std::size_t shard = configured;
  if (shard == 0) {
    const std::size_t target_shards = static_cast<std::size_t>(threads) * 4;
    shard = std::max(kMinShardSize, (total + target_shards - 1) / target_shards);
  }
  if (cancellable) shard = std::min(shard, kCancellableChunk);
  return std::max<std::size_t>(shard, 1);
}

/// Stage-latency bucket ladder (seconds): finer than the request-latency
/// ladder because stage splits of small batches live in the 10 µs .. 100 ms
/// range.
std::vector<double> stage_time_bounds() {
  return {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0};
}

/// Records the per-stage split into the ambient metrics registry (if one is
/// installed) and appends aggregated stage spans under `parent` (if the
/// ambient trace is live). `mode` labels the series with the effective
/// search-scheduling order; `sweep` (non-zero only under sweep mode) feeds
/// the bwaver_sweep_* scheduler counters. `fpga` optionally adds the
/// modeled device-phase children under the search span.
void publish_stages(const obs::ObsContext& ctx, std::uint32_t parent,
                    const MappingStageTimings& stages, const char* engine,
                    const char* mode, const SweepStats& sweep,
                    const FpgaMapReport* fpga) {
  if (ctx.metrics != nullptr) {
    static constexpr const char* kName = "bwaver_map_stage_seconds";
    static constexpr const char* kHelp =
        "Per-stage mapping time, by engine, search mode and stage";
    ctx.metrics
        ->histogram(kName, kHelp, stage_time_bounds(),
                    {{"engine", engine}, {"search_mode", mode}, {"stage", "seed"}})
        .observe_ms(stages.seed_ms);
    ctx.metrics
        ->histogram(kName, kHelp, stage_time_bounds(),
                    {{"engine", engine}, {"search_mode", mode}, {"stage", "search"}})
        .observe_ms(stages.search_ms);
    ctx.metrics
        ->histogram(kName, kHelp, stage_time_bounds(),
                    {{"engine", engine}, {"search_mode", mode}, {"stage", "locate"}})
        .observe_ms(stages.locate_ms);
    ctx.metrics
        ->histogram(kName, kHelp, stage_time_bounds(),
                    {{"engine", engine}, {"search_mode", mode}, {"stage", "sam"}})
        .observe_ms(stages.sam_ms);
    if (sweep.batches != 0) {
      const obs::Labels labels{{"engine", engine}};
      ctx.metrics
          ->counter("bwaver_sweep_batches_total",
                    "Sweep-scheduler invocations (one per shard or chunk)", labels)
          .inc(sweep.batches);
      ctx.metrics
          ->counter("bwaver_sweep_passes_total",
                    "Step sweeps over the in-flight state pool (search depth)",
                    labels)
          .inc(sweep.passes);
      ctx.metrics
          ->counter("bwaver_sweep_state_steps_total",
                    "Single-read search steps executed by the sweep scheduler",
                    labels)
          .inc(sweep.state_steps);
      ctx.metrics
          ->gauge("bwaver_sweep_peak_active",
                  "Largest in-flight state pool of the latest sweep run (batch "
                  "occupancy)",
                  labels)
          .set(static_cast<double>(sweep.peak_active));
    }
  }
  if (ctx.trace != nullptr) {
    ctx.trace->emit("seed", parent, -1.0, stages.seed_ms);
    const std::uint32_t search = ctx.trace->emit("search", parent, -1.0, stages.search_ms);
    if (fpga != nullptr) {
      // Modeled device phases nested under the search span — the split the
      // paper's OpenCL event profiling reports (program = structure load,
      // transfer = buffer movement).
      ctx.trace->emit("fpga:program", search, -1.0, fpga->program_seconds * 1e3);
      ctx.trace->emit("fpga:transfer", search, -1.0, fpga->transfer_seconds * 1e3);
      ctx.trace->emit("fpga:kernel", search, -1.0, fpga->kernel_seconds * 1e3);
    }
    ctx.trace->emit("locate", parent, -1.0, stages.locate_ms);
    ctx.trace->emit("sam", parent, -1.0, stages.sam_ms);
  }
}

}  // namespace

std::vector<SamSequence> sam_sequences_for(const ReferenceSet& reference) {
  std::vector<SamSequence> sequences;
  sequences.reserve(reference.num_sequences());
  for (const auto& seq : reference.sequences()) {
    sequences.push_back(SamSequence{seq.name, seq.length});
  }
  return sequences;
}

void resolve_query_results(const ReferenceSet& reference,
                           std::span<const std::uint32_t> suffix_array,
                           std::span<const FastqRecord> records,
                           std::span<const QueryResult> results,
                           std::size_t max_hits_per_read, MappingOutcome& outcome,
                           std::vector<SamAlignment>& alignments,
                           const CancelToken* cancel) {
  // Resolve SA intervals to per-sequence positions, dropping matches that
  // straddle a concatenation boundary.
  outcome.reads += results.size();
  std::size_t since_check = 0;
  for (const QueryResult& result : results) {
    if (cancel != nullptr && ++since_check >= kResolveCheckStride) {
      since_check = 0;
      cancel->throw_if_stopped();
    }
    const auto& record = records[result.id];
    const auto read_length = static_cast<std::uint32_t>(record.sequence.size());
    std::size_t survivors = 0;
    std::size_t emitted = 0;
    for (int strand = 0; strand < 2; ++strand) {
      const bool reverse = strand == 1;
      const std::uint32_t lo = reverse ? result.rev_lo : result.fwd_lo;
      const std::uint32_t hi = reverse ? result.rev_hi : result.fwd_hi;
      for (std::uint32_t row = lo; row < hi; ++row) {
        const auto local = reference.resolve_span(suffix_array[row], read_length);
        if (!local) continue;  // straddles a sequence boundary
        ++survivors;
        ++outcome.occurrences;
        if (emitted < max_hits_per_read) {
          alignments.push_back(SamAlignment{
              record.name, reverse, reference.sequence(local->sequence_index).name,
              local->offset, read_length, true});
          ++emitted;
        }
      }
    }
    if (survivors == 0) {
      alignments.push_back(
          SamAlignment{record.name, false, "", 0, read_length, /*mapped=*/false});
    } else {
      ++outcome.mapped;
    }
  }
}

MappingOutcome map_records_over(const FmIndex<RrrWaveletOcc>& index,
                                const ReferenceSet& reference,
                                const PipelineConfig& config,
                                const std::vector<FastqRecord>& records,
                                const Bowtie2LikeMapper* bowtie,
                                double* mapping_seconds,
                                const CancelToken* cancel, const EprOcc* epr) {
  if (cancel != nullptr) cancel->throw_if_stopped();

  // Ambient observability: a no-op unless a job/CLI run installed a context.
  // The map span parents the per-stage spans; the context is snapshotted
  // here so shard workers can re-install it on their own threads.
  obs::TraceSpan map_span("map_records");
  const obs::ObsContext obs_ctx = obs::current_context();

  // Engines are constructed once (the FPGA model is programmed once, a
  // derived engine's Occ structure is re-encoded once) and fed chunk by
  // chunk: with no cancel token everything goes in one chunk, exactly the
  // pre-async behaviour; with a token each chunk boundary is a checkpoint.
  // Every software engine funnels through one `software_map` callable so
  // the sharded and chunked paths below stay engine-agnostic.
  std::unique_ptr<BwaverFpgaMapper> fpga;
  std::unique_ptr<BwaverCpuMapper> cpu;
  std::unique_ptr<Bowtie2LikeMapper> transient;
  std::unique_ptr<PlainWaveletMapper> plain;
  std::unique_ptr<VectorMapper> vector;
  std::unique_ptr<EprMapper> epr_mapper;
  std::function<std::vector<QueryResult>(const ReadBatch&, unsigned,
                                         SoftwareMapReport*)>
      software_map;
  const SearchMode mode = config.search_mode;
  switch (config.engine) {
    case MappingEngine::kFpga:
      fpga = std::make_unique<BwaverFpgaMapper>(index, config.device, 8192,
                                                config.fpga_verify_stride);
      break;
    case MappingEngine::kCpu:
      cpu = std::make_unique<BwaverCpuMapper>(index);
      software_map = [&cpu, mode](const ReadBatch& batch, unsigned threads,
                                  SoftwareMapReport* report) {
        return cpu->map(batch, threads, report, mode);
      };
      break;
    case MappingEngine::kBowtie2Like:
      if (bowtie == nullptr) {
        transient = std::make_unique<Bowtie2LikeMapper>(reference.concatenated());
        bowtie = transient.get();
      }
      software_map = [bowtie, mode](const ReadBatch& batch, unsigned threads,
                                    SoftwareMapReport* report) {
        return bowtie->map(batch, threads, report, mode);
      };
      break;
    case MappingEngine::kPlainWavelet:
      plain = std::make_unique<PlainWaveletMapper>(
          index, [](std::span<const std::uint8_t> bwt) {
            return PlainWaveletOcc(bwt);
          });
      software_map = [&plain, mode](const ReadBatch& batch, unsigned threads,
                                    SoftwareMapReport* report) {
        return plain->map(batch, threads, report, mode);
      };
      break;
    case MappingEngine::kVector:
      vector = std::make_unique<VectorMapper>(
          index,
          [](std::span<const std::uint8_t> bwt) { return VectorOcc(bwt); });
      software_map = [&vector, mode](const ReadBatch& batch, unsigned threads,
                                     SoftwareMapReport* report) {
        return vector->map(batch, threads, report, mode);
      };
      break;
    case MappingEngine::kEpr:
      // Alias the archive-loaded dictionary when the caller supplied one of
      // the right size; otherwise transpose the BWT transiently.
      epr_mapper = std::make_unique<EprMapper>(
          index, [epr, &index](std::span<const std::uint8_t> bwt) {
            if (epr != nullptr && epr->size() == index.bwt().symbols.size()) {
              return EprOcc::view_of(*epr);
            }
            return EprOcc(bwt);
          });
      software_map = [&epr_mapper, mode](const ReadBatch& batch, unsigned threads,
                                         SoftwareMapReport* report) {
        return epr_mapper->map(batch, threads, report, mode);
      };
      break;
  }
  const char* engine_name = kernels::engine_spec(config.engine).name;
  // The FPGA kernel already streams query packets — the scheduling flag is
  // a documented no-op there, and its series stay labeled per-read.
  const char* mode_name = config.engine == MappingEngine::kFpga
                              ? search_mode_name(SearchMode::kPerRead)
                              : search_mode_name(mode);

  MappingOutcome outcome;
  std::vector<SamAlignment> alignments;
  alignments.reserve(records.size());
  double seconds = 0.0;

  const std::span<const FastqRecord> all(records);

  // Software engines shard the batch across a pool: each shard maps and
  // resolves into its own buffers (single-threaded engine call per shard),
  // and the buffers are merged in shard order afterwards — so the SAM and
  // every counter are byte-identical to the sequential path regardless of
  // completion order. The FPGA model stays sequential: its modeled runtime
  // mutates device state per batch.
  const bool sharded = config.engine != MappingEngine::kFpga && config.threads > 1 &&
                       records.size() > 1;
  if (sharded) {
    const std::size_t shard_size = effective_shard_size(
        records.size(), config.threads, config.shard_size, cancel != nullptr);
    const std::size_t num_shards = (records.size() + shard_size - 1) / shard_size;

    struct ShardResult {
      MappingOutcome outcome;
      std::vector<SamAlignment> alignments;
    };
    std::vector<ShardResult> shards(num_shards);

    WallTimer timer;
    ThreadPool pool(config.threads);
    // Exceptions (OperationCancelled from a checkpoint, engine failures)
    // propagate out of parallel_for; the pool's destructor joins every
    // in-flight shard before the shard buffers go out of scope.
    pool.parallel_for(num_shards, [&, obs_ctx](std::size_t begin_shard,
                                               std::size_t end_shard) {
      // Re-install the submitting thread's context so shard spans land in
      // the request's trace and stage times in its registry.
      obs::ScopedObsContext scoped(obs_ctx);
      for (std::size_t s = begin_shard; s < end_shard; ++s) {
        if (cancel != nullptr) cancel->throw_if_stopped();
        obs::TraceSpan shard_span("shard");
        const std::span<const FastqRecord> chunk = all.subspan(
            s * shard_size, std::min(shard_size, records.size() - s * shard_size));
        WallTimer stage_timer;
        const ReadBatch batch = ReadBatch::from_fastq(chunk);
        shards[s].outcome.stages.seed_ms = stage_timer.milliseconds();
        stage_timer.reset();
        SoftwareMapReport report;
        std::vector<QueryResult> results = software_map(batch, 1, &report);
        shards[s].outcome.stages.search_ms = stage_timer.milliseconds();
        shards[s].outcome.sweep = report.sweep;
        stage_timer.reset();
        shards[s].alignments.reserve(results.size());
        resolve_query_results(reference, index.suffix_array(), chunk, results,
                              config.max_hits_per_read, shards[s].outcome,
                              shards[s].alignments, cancel);
        shards[s].outcome.stages.locate_ms = stage_timer.milliseconds();
      }
    });
    seconds = timer.seconds();

    outcome.shards = num_shards;
    for (ShardResult& shard : shards) {
      outcome.reads += shard.outcome.reads;
      outcome.mapped += shard.outcome.mapped;
      outcome.occurrences += shard.outcome.occurrences;
      outcome.stages += shard.outcome.stages;
      outcome.sweep += shard.outcome.sweep;
      alignments.insert(alignments.end(),
                        std::make_move_iterator(shard.alignments.begin()),
                        std::make_move_iterator(shard.alignments.end()));
    }
    if (mapping_seconds != nullptr) *mapping_seconds = seconds;
    WallTimer sam_timer;
    outcome.sam = format_sam(sam_sequences_for(reference), alignments);
    outcome.stages.sam_ms = sam_timer.milliseconds();
    publish_stages(obs_ctx, map_span.id(), outcome.stages, engine_name, mode_name,
                   outcome.sweep, nullptr);
    return outcome;
  }

  // Accumulated modeled device phases across chunks (FPGA engine only) —
  // feeds the fpga:* child spans under "search".
  FpgaMapReport fpga_total;
  const std::size_t chunk_size =
      cancel == nullptr ? std::max<std::size_t>(records.size(), 1) : kCancellableChunk;
  for (std::size_t begin = 0; begin < records.size(); begin += chunk_size) {
    if (cancel != nullptr) cancel->throw_if_stopped();
    const std::span<const FastqRecord> chunk =
        all.subspan(begin, std::min(chunk_size, records.size() - begin));
    WallTimer stage_timer;
    const ReadBatch batch = ReadBatch::from_fastq(chunk);
    outcome.stages.seed_ms += stage_timer.milliseconds();
    stage_timer.reset();

    std::vector<QueryResult> results;
    if (config.engine == MappingEngine::kFpga) {
      FpgaMapReport report;
      results = fpga->map(batch, &report);
      seconds += report.total_seconds();
      // The FPGA search stage is modeled device time, not host wall time.
      outcome.stages.search_ms += report.total_seconds() * 1e3;
      fpga_total.program_seconds += report.program_seconds;
      fpga_total.transfer_seconds += report.transfer_seconds;
      fpga_total.kernel_seconds += report.kernel_seconds;
    } else {
      SoftwareMapReport report;
      results = software_map(batch, config.threads, &report);
      seconds += report.seconds;
      outcome.stages.search_ms += stage_timer.milliseconds();
      outcome.sweep += report.sweep;
    }
    stage_timer.reset();
    resolve_query_results(reference, index.suffix_array(), chunk, results,
                          config.max_hits_per_read, outcome, alignments, cancel);
    outcome.stages.locate_ms += stage_timer.milliseconds();
  }
  if (mapping_seconds != nullptr) *mapping_seconds = seconds;

  WallTimer sam_timer;
  outcome.sam = format_sam(sam_sequences_for(reference), alignments);
  outcome.stages.sam_ms = sam_timer.milliseconds();
  publish_stages(obs_ctx, map_span.id(), outcome.stages, engine_name, mode_name,
                 outcome.sweep,
                 config.engine == MappingEngine::kFpga ? &fpga_total : nullptr);
  return outcome;
}

}  // namespace bwaver
