#include "mapper/map_service.hpp"

#include <memory>

#include "mapper/fpga_mapper.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/read_batch.hpp"

namespace bwaver {

std::vector<SamSequence> sam_sequences_for(const ReferenceSet& reference) {
  std::vector<SamSequence> sequences;
  sequences.reserve(reference.num_sequences());
  for (const auto& seq : reference.sequences()) {
    sequences.push_back(SamSequence{seq.name, seq.length});
  }
  return sequences;
}

void resolve_query_results(const ReferenceSet& reference,
                           const std::vector<std::uint32_t>& suffix_array,
                           const std::vector<FastqRecord>& records,
                           std::span<const QueryResult> results,
                           std::size_t max_hits_per_read, MappingOutcome& outcome,
                           std::vector<SamAlignment>& alignments) {
  // Resolve SA intervals to per-sequence positions, dropping matches that
  // straddle a concatenation boundary.
  outcome.reads += results.size();
  for (const QueryResult& result : results) {
    const auto& record = records[result.id];
    const auto read_length = static_cast<std::uint32_t>(record.sequence.size());
    std::size_t survivors = 0;
    std::size_t emitted = 0;
    for (int strand = 0; strand < 2; ++strand) {
      const bool reverse = strand == 1;
      const std::uint32_t lo = reverse ? result.rev_lo : result.fwd_lo;
      const std::uint32_t hi = reverse ? result.rev_hi : result.fwd_hi;
      for (std::uint32_t row = lo; row < hi; ++row) {
        const auto local = reference.resolve_span(suffix_array[row], read_length);
        if (!local) continue;  // straddles a sequence boundary
        ++survivors;
        ++outcome.occurrences;
        if (emitted < max_hits_per_read) {
          alignments.push_back(SamAlignment{
              record.name, reverse, reference.sequence(local->sequence_index).name,
              local->offset, read_length, true});
          ++emitted;
        }
      }
    }
    if (survivors == 0) {
      alignments.push_back(
          SamAlignment{record.name, false, "", 0, read_length, /*mapped=*/false});
    } else {
      ++outcome.mapped;
    }
  }
}

MappingOutcome map_records_over(const FmIndex<RrrWaveletOcc>& index,
                                const ReferenceSet& reference,
                                const PipelineConfig& config,
                                const std::vector<FastqRecord>& records,
                                const Bowtie2LikeMapper* bowtie,
                                double* mapping_seconds) {
  const ReadBatch batch = ReadBatch::from_fastq(records);

  std::vector<QueryResult> results;
  double seconds = 0.0;
  switch (config.engine) {
    case MappingEngine::kFpga: {
      BwaverFpgaMapper mapper(index, config.device);
      FpgaMapReport report;
      results = mapper.map(batch, &report);
      seconds = report.total_seconds();
      break;
    }
    case MappingEngine::kCpu: {
      BwaverCpuMapper mapper(index);
      SoftwareMapReport report;
      results = mapper.map(batch, config.threads, &report);
      seconds = report.seconds;
      break;
    }
    case MappingEngine::kBowtie2Like: {
      std::unique_ptr<Bowtie2LikeMapper> transient;
      if (bowtie == nullptr) {
        transient = std::make_unique<Bowtie2LikeMapper>(reference.concatenated());
        bowtie = transient.get();
      }
      SoftwareMapReport report;
      results = bowtie->map(batch, config.threads, &report);
      seconds = report.seconds;
      break;
    }
  }
  if (mapping_seconds != nullptr) *mapping_seconds = seconds;

  MappingOutcome outcome;
  std::vector<SamAlignment> alignments;
  alignments.reserve(results.size());
  resolve_query_results(reference, index.suffix_array(), records, results,
                        config.max_hits_per_read, outcome, alignments);
  outcome.sam = format_sam(sam_sequences_for(reference), alignments);
  return outcome;
}

}  // namespace bwaver
