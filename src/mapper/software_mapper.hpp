// Software mappers.
//
//   * BwaverCpuMapper   — the paper's "optimized pure software
//     implementation": the identical RRR-wavelet-tree backward search run
//     on the host CPU, optionally across T worker threads.
//   * Bowtie2LikeMapper — the Bowtie2 stand-in for the paper's
//     `-a --score-min C,0,-1` configuration (all exact matches): an
//     FM-index over a 2-bit-packed BWT with checkpointed Occ counters
//     (the index layout CPU mappers actually use), multithreaded.
//
// Both return the same QueryResult records as the FPGA kernel, so results
// can be compared bit-for-bit ("without any loss in accuracy").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fmindex/epr_occ.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fpga/query_packet.hpp"
#include "kernels/vector_occ.hpp"
#include "mapper/batch_scheduler.hpp"
#include "mapper/read_batch.hpp"
#include "util/thread_pool.hpp"

namespace bwaver {

/// Wall-clock report of one software mapping run.
struct SoftwareMapReport {
  double seconds = 0.0;
  unsigned threads = 1;
  std::uint64_t reads = 0;
  std::uint64_t mapped = 0;
  /// Scheduler occupancy counters; all-zero under SearchMode::kPerRead.
  SweepStats sweep;
};

namespace detail {
/// Shared implementation: forward + reverse-complement backward search of
/// every read in `batch` over `index`, chunked across `threads` workers.
template <typename Occ>
std::vector<QueryResult> map_batch(const FmIndex<Occ>& index, const ReadBatch& batch,
                                   unsigned threads, SoftwareMapReport* report);

/// Mode dispatch shared by every software mapper: per-read recurrence or
/// the batched sweep scheduler (batch_scheduler.hpp). Identical results
/// either way.
template <typename Occ>
std::vector<QueryResult> map_batch_mode(const FmIndex<Occ>& index,
                                        const ReadBatch& batch, unsigned threads,
                                        SoftwareMapReport* report, SearchMode mode) {
  return mode == SearchMode::kSweep ? sweep_map_batch(index, batch, threads, report)
                                    : map_batch(index, batch, threads, report);
}
}  // namespace detail

class BwaverCpuMapper {
 public:
  /// Builds the succinct index over the reference (2-bit codes).
  BwaverCpuMapper(std::span<const std::uint8_t> reference, RrrParams params);

  /// Wraps an existing index (not owned).
  explicit BwaverCpuMapper(const FmIndex<RrrWaveletOcc>& index) : index_(&index) {}

  std::vector<QueryResult> map(const ReadBatch& batch, unsigned threads = 1,
                               SoftwareMapReport* report = nullptr,
                               SearchMode mode = SearchMode::kPerRead) const;

  const FmIndex<RrrWaveletOcc>& index() const noexcept { return *index_; }

 private:
  std::unique_ptr<FmIndex<RrrWaveletOcc>> owned_;
  const FmIndex<RrrWaveletOcc>* index_;
};

class Bowtie2LikeMapper {
 public:
  /// `checkpoint_words`: 64-bit words per Occ checkpoint block.
  explicit Bowtie2LikeMapper(std::span<const std::uint8_t> reference,
                             unsigned checkpoint_words = 4);

  std::vector<QueryResult> map(const ReadBatch& batch, unsigned threads = 1,
                               SoftwareMapReport* report = nullptr,
                               SearchMode mode = SearchMode::kPerRead) const;

  const FmIndex<SampledOcc>& index() const noexcept { return index_; }

 private:
  FmIndex<SampledOcc> index_;
};

/// Mapper over an Occ backend re-encoded from an existing index: the BWT,
/// suffix array and seed table are borrowed (zero-copy views) from the
/// base RRR index, only the Occ structure itself is rebuilt — so registry
/// engines beyond the archive's native backend cost one O(n) encode, not a
/// suffix-array reconstruction. Searches give identical SA intervals to
/// the base index by construction.
template <typename Occ>
class DerivedOccMapper {
 public:
  DerivedOccMapper(const FmIndex<RrrWaveletOcc>& base,
                   const typename FmIndex<Occ>::OccBuilder& builder)
      : index_(Bwt{FlatArray<std::uint8_t>::view_of(base.bwt().symbols),
                   base.bwt().primary, base.bwt().text_length},
               FlatArray<std::uint32_t>::view_of(base.suffix_array()), builder),
        base_(&base) {
    index_.set_seed_table(base.shared_seed_table());
  }

  std::vector<QueryResult> map(const ReadBatch& batch, unsigned threads = 1,
                               SoftwareMapReport* report = nullptr,
                               SearchMode mode = SearchMode::kPerRead) const {
    return detail::map_batch_mode(index_, batch, threads, report, mode);
  }

  const FmIndex<Occ>& index() const noexcept { return index_; }
  const FmIndex<RrrWaveletOcc>& base() const noexcept { return *base_; }

 private:
  FmIndex<Occ> index_;  ///< views into base_ — base_ must outlive this
  const FmIndex<RrrWaveletOcc>* base_;
};

using PlainWaveletMapper = DerivedOccMapper<PlainWaveletOcc>;
using VectorMapper = DerivedOccMapper<VectorOcc>;
using EprMapper = DerivedOccMapper<EprOcc>;

}  // namespace bwaver
