// bwaver — command-line front-end for the BWaveR pipeline.
//
// Subcommands:
//   simulate-genome  --preset ecoli|chr21 | --length N [--gc F] [--seed S] --out ref.fa[.gz]
//   simulate-reads   --ref ref.fa[.gz] --num N --length L [--mapping-ratio F]
//                    [--error-rate F] (per-base substitution probability for
//                    the mapping reads; deterministic per --seed) --out reads.fq[.gz]
//   index            --ref ref.fa[.gz] --out ref.bwvr            (pipeline step 1)
//   index build      --ref ref.fa[.gz] --store-dir DIR [--name N] [--b B] [--sf SF]
//                    [--seed-k K]  builds steps 1+2 (including the k-mer seed
//                    table; --seed-k 0 disables it) and persists a checksummed
//                    archive into the store directory (creating/updating its
//                    manifest)
//                    [--memory-budget-mb M] peak-RAM target: when the direct
//                    build would exceed it, the memory-bounded blockwise
//                    constructor streams the archive instead (byte-identical
//                    output); [--block-mb B] forces blockwise with B-MB text
//                    blocks; [--build-meta] records builder provenance in the
//                    archive (shown by `index info`)
//   index info       --archive ref.bwva | --store-dir DIR
//                    archive section table / store manifest listing
//   map              --index ref.bwvr --reads reads.fq[.gz] --out out.sam
//                    [--engine fpga|rrr|sampled|plain|vector] [--threads T]
//                    (cpu/bowtie2like accepted as aliases; default from
//                    $BWAVER_ENGINE, else fpga) [--b B] [--sf SF]
//                    [--shards N] (reads per parallel shard, 0 = auto)
//                    [--search-mode per-read|sweep] (software engines:
//                    per-read backward search or the locality-aware batched
//                    sweep scheduler; byte-identical SAM either way)
//                    [--profile FILE] write a per-stage profile (seed/search/
//                    locate/sam ms, wall, load mode, span tree) as JSON
//                    or: --store-dir DIR --ref-name N (load from the store;
//                    [--load-mode mmap|copy] selects zero-copy vs heap loads
//                    of v3 archives, default $BWAVER_LOAD_MODE or copy)
//   map-approx       --index ref.bwvr --reads reads.fq[.gz] [--mismatches K<=2]
//                    staged exact -> 1-mm -> 2-mm mapping (FPGA model)
//                    [--approx-mode branch|scheme] mismatch-stage algorithm:
//                    per-stratum branch recursion or bidirectional search
//                    schemes (identical hit sets, far fewer steps)
//                    [--max-approx-hits N] per-read/strand hit cap (0 = default)
//   map-paired       --index ref.bwvr --reads1 m1.fq[.gz] --reads2 m2.fq[.gz]
//                    [--min-insert N] [--max-insert N] [--threads T]
//   pipeline         --ref ref.fa[.gz] --reads reads.fq[.gz] --out out.sam [same options]
//   stats            --index ref.bwvr [--b B] [--sf SF]   entropy/size/device-fit report
//   serve            [--port P] [--b B] [--sf SF] [--engine ...]
//                    [--search-mode per-read|sweep] [--store-dir DIR]
//                    [--load-mode mmap|copy] [--memory-budget-mb M]
//                    [--workers N] [--max-queue N]
//                    [--job-timeout S] [--http-threads N] [--max-body-mb M]
//                    [--trace on|off] [--trace-slow-ms MS] [--trace-ring N]
//                    web front-end + async mapping-job engine with Prometheus
//                    /metrics and /trace/recent (see docs/serving.md and
//                    docs/observability.md)
//   router           --backend HOST:PORT [--backend ...] [--port P]
//                    [--shard-reads N] [--hedge-quantile Q] [--hedge-min-ms MS]
//                    [--max-attempts N] [--tenant-rate R] [--tenant-burst B]
//                    [--health-interval-ms MS] [--map-timeout-ms MS]
//                    [--http-threads N] [--max-body-mb M]
//                    shard-routing gateway over a replica fleet (docs/fleet.md)
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "app/cli.hpp"
#include "app/web_service.hpp"
#include "fleet/router.hpp"
#include "fmindex/dna.hpp"
#include "fmindex/index_stats.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/paired_end.hpp"
#include "mapper/pipeline.hpp"
#include "mapper/staged_mapper.hpp"
#include "obs/trace.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "kernels/registry.hpp"
#include "store/index_archive.hpp"
#include "store/index_registry.hpp"
#include "util/cpu_features.hpp"
#include "util/timer.hpp"

namespace {

using namespace bwaver;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bwaver <simulate-genome|simulate-reads|index|map|map-approx|"
               "pipeline|serve|router> [options]\n"
               "run `bwaver <subcommand>` with no options for details in the header "
               "of src/app/bwaver_main.cpp\n");
  return 2;
}

MappingEngine parse_engine(const std::string& name) {
  if (const auto engine = kernels::parse_engine_name(name)) return *engine;
  std::string known;
  for (const auto& spec : kernels::engines()) {
    if (!known.empty()) known += "|";
    known += spec.name;
  }
  throw std::invalid_argument("unknown engine: " + name + " (" + known + ")");
}

LoadMode load_mode_from_args(const ArgParser& args) {
  const std::string name = args.get("load-mode");
  if (name.empty()) return default_load_mode();
  if (const auto mode = parse_load_mode(name)) return *mode;
  throw std::invalid_argument("unknown load mode '" + name + "' (mmap|copy)");
}

PipelineConfig config_from_args(const ArgParser& args) {
  PipelineConfig config;
  config.rrr.block_bits = static_cast<unsigned>(args.get_int("b", 15));
  config.rrr.superblock_factor = static_cast<unsigned>(args.get_int("sf", 50));
  const std::string engine_arg = args.get("engine");
  config.engine =
      engine_arg.empty() ? kernels::default_engine() : parse_engine(engine_arg);
  config.threads = static_cast<unsigned>(args.get_int("threads", 1));
  config.seed_k = static_cast<unsigned>(
      args.get_int("seed-k", static_cast<std::int64_t>(KmerSeedTable::kDefaultK)));
  config.shard_size = static_cast<std::size_t>(args.get_int("shards", 0));
  if (const std::string mode_arg = args.get("search-mode"); !mode_arg.empty()) {
    const auto mode = parse_search_mode(mode_arg);
    if (!mode) {
      throw std::invalid_argument("unknown search mode '" + mode_arg + "' (" +
                                  search_mode_choices() + ")");
    }
    config.search_mode = *mode;
  }
  return config;
}

int cmd_simulate_genome(const ArgParser& args) {
  GenomeSimConfig config;
  const std::string preset = args.get("preset");
  if (preset == "ecoli") {
    config = ecoli_like_config(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  } else if (preset == "chr21") {
    config = chr21_like_config(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  } else if (!preset.empty()) {
    std::fprintf(stderr, "unknown preset '%s' (ecoli|chr21)\n", preset.c_str());
    return 2;
  }
  config.length = static_cast<std::size_t>(
      args.get_int("length", static_cast<std::int64_t>(config.length)));
  config.gc_content = args.get_double("gc", config.gc_content);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  const std::string out = args.get("out", "reference.fa");
  const std::string name =
      args.get("name", preset.empty() ? "synthetic" : preset + "_like");
  const FastaRecord record{name, simulate_genome_string(config)};
  write_fasta(out, std::span<const FastaRecord>(&record, 1), ends_with(out, ".gz"));
  std::printf("wrote %zu bp reference to %s\n", record.sequence.size(), out.c_str());
  return 0;
}

int cmd_simulate_reads(const ArgParser& args) {
  const std::string ref_path = args.get("ref");
  if (ref_path.empty()) return usage();
  const auto records = read_fasta(ref_path);
  const auto reference =
      dna_encode_string(records.front().sequence, /*substitute_invalid=*/true);

  ReadSimConfig config;
  config.num_reads = static_cast<std::size_t>(args.get_int("num", 1000));
  config.read_length = static_cast<unsigned>(args.get_int("length", 100));
  config.mapping_ratio = args.get_double("mapping-ratio", 1.0);
  config.error_rate = args.get_double("error-rate", 0.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const auto reads = simulate_reads(reference, config);
  const auto fastq = reads_to_fastq(reads);
  const std::string out = args.get("out", "reads.fq");
  write_fastq(out, fastq, ends_with(out, ".gz"));
  std::printf("wrote %zu reads of %u bp (mapping ratio %.2f, error rate %.3f) to %s\n",
              fastq.size(), config.read_length, config.mapping_ratio,
              config.error_rate, out.c_str());
  return 0;
}

int cmd_index_build(const ArgParser& args) {
  const std::string ref_path = args.get("ref");
  const std::string store_dir = args.get("store-dir");
  if (ref_path.empty() || store_dir.empty()) return usage();

  PipelineConfig config = config_from_args(args);
  config.build_memory_budget_bytes =
      static_cast<std::size_t>(args.get_int("memory-budget-mb", 0)) << 20;
  config.build_block_bases =
      static_cast<std::size_t>(args.get_int("block-mb", 0)) << 20;
  config.build_provenance = args.has("build-meta");

  const auto records = read_fasta(ref_path);
  const std::string name = args.get("name", records.front().name);

  ReferenceSet reference;
  for (const auto& record : records) {
    reference.add(record.name,
                  dna_encode_string(record.sequence, /*substitute_invalid=*/true));
  }

  // Build straight to a staging file in the store, then adopt(): the index
  // is registered without ever being resident, which is the whole point of
  // the memory-bounded path.
  IndexRegistry registry(store_dir);
  const std::string staging =
      (std::filesystem::path(store_dir) / (name + ".bwva.build")).string();
  WallTimer timer;
  const BuildArchiveResult built =
      Pipeline::build_archive(staging, reference, config, [](const std::string& line) {
        std::printf("  %s\n", line.c_str());
        std::fflush(stdout);
      });
  const double build_seconds = timer.seconds();
  registry.adopt(name, staging);
  const std::string archive = registry.archive_path(name);
  std::printf("built '%s' (%zu bp, %zu sequence(s)) %s -> %s (%llu bytes, %.3f s)\n",
              name.c_str(), static_cast<std::size_t>(reference.total_length()),
              reference.num_sequences(), built.blockwise ? "blockwise" : "direct",
              archive.c_str(), static_cast<unsigned long long>(built.bytes_written),
              build_seconds);
  if (built.blockwise) {
    std::printf("block %zu bases, %zu merge pass(es), estimated peak %zu MB\n",
                built.block_bases, built.merge_passes,
                built.estimated_peak_bytes >> 20);
  }
  return 0;
}

/// The engine a mapping run launched with these args would use, plus the
/// CPU feature set the SIMD kernels dispatch on — `index info` prints it
/// so operators see the selection without starting a run.
void print_engine_resolution(const ArgParser& args) {
  const std::string engine_arg = args.get("engine");
  const MappingEngine engine =
      engine_arg.empty() ? kernels::default_engine() : parse_engine(engine_arg);
  const auto& spec = kernels::engine_spec(engine);
  std::printf("mapping engine: %s (occ %s, kernel %s)\n", spec.name,
              spec.occ_backend, kernels::engine_kernel_name(engine));
  std::printf("cpu features: %s\n", cpu_features_string(cpu_features()).c_str());
}

int cmd_index_info(const ArgParser& args) {
  const std::string archive = args.get("archive");
  const std::string store_dir = args.get("store-dir");
  if (!archive.empty()) {
    const ArchiveInfo info = read_index_archive_info(archive);
    std::printf("archive: %s\nformat version: %u\nfile bytes: %llu\n",
                archive.c_str(), info.version,
                static_cast<unsigned long long>(info.file_bytes));
    std::printf("%-8s %12s %12s %10s\n", "section", "offset", "bytes", "crc32");
    for (const auto& section : info.sections) {
      std::printf("%-8s %12llu %12llu   %08x\n", section.name.c_str(),
                  static_cast<unsigned long long>(section.offset),
                  static_cast<unsigned long long>(section.length), section.crc32);
    }
    std::printf("text: %u bp, %zu sequence(s)\n", info.text_length,
                info.sequences.size());
    for (const auto& seq : info.sequences) {
      std::printf("  %s: offset %u, %u bp\n", seq.name.c_str(), seq.offset, seq.length);
    }
    // Builder provenance is an optional v3+ section; archives that predate
    // it (or were written without --build-meta) report "unknown".
    if (info.build.has_value()) {
      std::printf("builder: %s", info.build->builder.c_str());
      if (info.build->block_bases != 0 || info.build->merge_passes != 0) {
        std::printf(" (block %llu bases, %llu merge pass(es))",
                    static_cast<unsigned long long>(info.build->block_bases),
                    static_cast<unsigned long long>(info.build->merge_passes));
      }
      if (info.build->memory_budget_bytes != 0) {
        std::printf(" budget %llu MB",
                    static_cast<unsigned long long>(info.build->memory_budget_bytes >> 20));
      }
      std::printf("\n");
    } else {
      std::printf("builder: unknown\n");
    }
    print_engine_resolution(args);
    return 0;
  }
  if (!store_dir.empty()) {
    IndexRegistry registry(store_dir);
    std::printf("store: %s (%zu reference(s))\n", store_dir.c_str(), registry.size());
    for (const auto& entry : registry.list()) {
      std::printf("  %s: %llu bp, %llu sequence(s), %llu archive bytes\n",
                  entry.name.c_str(),
                  static_cast<unsigned long long>(entry.text_length),
                  static_cast<unsigned long long>(entry.num_sequences),
                  static_cast<unsigned long long>(entry.archive_bytes));
    }
    print_engine_resolution(args);
    return 0;
  }
  return usage();
}

int cmd_index(const ArgParser& args) {
  if (!args.positional().empty()) {
    const std::string& verb = args.positional().front();
    if (verb == "build") return cmd_index_build(args);
    if (verb == "info") return cmd_index_info(args);
    std::fprintf(stderr, "unknown index verb '%s' (build|info)\n", verb.c_str());
    return 2;
  }
  // Legacy step-1-only form: BWT + SA to a .bwvr file.
  const std::string ref_path = args.get("ref");
  const std::string out = args.get("out", "reference.bwvr");
  if (ref_path.empty()) return usage();
  Pipeline pipeline;
  const std::string name = pipeline.compute_bwt_sa(ref_path, out);
  std::printf("indexed '%s' -> %s (%.2f s)\n", name.c_str(), out.c_str(),
              pipeline.timings().bwt_sa_seconds);
  return 0;
}

int cmd_map(const ArgParser& args) {
  const std::string index_path = args.get("index");
  const std::string store_dir = args.get("store-dir");
  const std::string ref_name = args.get("ref-name");
  const std::string reads_path = args.get("reads");
  const std::string out = args.get("out", "out.sam");
  if (reads_path.empty() || (index_path.empty() && (store_dir.empty() || ref_name.empty()))) {
    return usage();
  }

  std::string load_mode = "encode";  // built from a .bwvr index file
  const PipelineConfig config = config_from_args(args);
  Pipeline pipeline(config);
  if (!index_path.empty()) {
    pipeline.encode(index_path);
  } else {
    const LoadMode mode = load_mode_from_args(args);
    load_mode = load_mode_name(mode);
    IndexRegistry registry(store_dir);
    pipeline = Pipeline::from_archive(registry.archive_path(ref_name), config, mode);
  }

  // --profile: attach a trace for this run so map_records_over's ambient
  // spans (map_records / shard / stage / fpga phases) are captured, then
  // dump the per-stage split alongside the span tree.
  const std::string profile_path = args.get("profile");
  std::shared_ptr<obs::Trace> trace;
  std::optional<obs::ScopedObsContext> scope;
  if (!profile_path.empty()) {
    trace = std::make_shared<obs::Trace>("map-cli");
    scope.emplace(obs::ObsContext{trace.get(), 0, nullptr});
  }

  WallTimer wall;
  const MappingOutcome outcome = pipeline.map_reads(reads_path, out);
  const double wall_ms = wall.milliseconds();
  scope.reset();

  std::printf("mapped %llu/%llu reads (%llu occurrences) -> %s\n"
              "encode %.3f s, mapping %.3f s\n",
              static_cast<unsigned long long>(outcome.mapped),
              static_cast<unsigned long long>(outcome.reads),
              static_cast<unsigned long long>(outcome.occurrences), out.c_str(),
              pipeline.timings().encode_seconds, pipeline.timings().mapping_seconds);

  if (trace != nullptr) {
    char stages[256];
    std::snprintf(stages, sizeof(stages),
                  "{\"seed_ms\":%.3f,\"search_ms\":%.3f,\"locate_ms\":%.3f,"
                  "\"sam_ms\":%.3f,\"queue_wait_ms\":0.000,\"total_ms\":%.3f}",
                  outcome.stages.seed_ms, outcome.stages.search_ms,
                  outcome.stages.locate_ms, outcome.stages.sam_ms,
                  outcome.stages.total_ms());
    char summary[256];
    std::snprintf(summary, sizeof(summary),
                  "\"wall_ms\":%.3f,\"reads\":%llu,\"mapped\":%llu,\"shards\":%llu",
                  wall_ms, static_cast<unsigned long long>(outcome.reads),
                  static_cast<unsigned long long>(outcome.mapped),
                  static_cast<unsigned long long>(outcome.shards));
    std::ofstream profile(profile_path, std::ios::trunc);
    if (!profile) {
      std::fprintf(stderr, "bwaver: cannot write profile to %s\n",
                   profile_path.c_str());
      return 1;
    }
    profile << "{" << summary << ",\"load_mode\":\"" << load_mode << "\""
            << ",\"engine\":\"" << kernels::engine_spec(config.engine).name << "\""
            << ",\"search_mode\":\"" << search_mode_name(config.search_mode) << "\""
            << ",\"rank_kernel\":\"" << kernels::engine_kernel_name(config.engine)
            << "\",\"cpu_features\":\"" << cpu_features_string(cpu_features())
            << "\",\"stages\":" << stages << ",\"trace\":" << trace->to_json()
            << "}\n";
    std::printf("profile (stages %s, wall %.3f ms) -> %s\n", stages, wall_ms,
                profile_path.c_str());
  }
  return 0;
}

int cmd_map_approx(const ArgParser& args) {
  const std::string index_path = args.get("index");
  const std::string reads_path = args.get("reads");
  if (index_path.empty() || reads_path.empty()) return usage();
  const auto mismatches = static_cast<unsigned>(args.get_int("mismatches", 2));

  ApproxMode approx_mode = ApproxMode::kBranch;
  if (const std::string mode_arg = args.get("approx-mode"); !mode_arg.empty()) {
    approx_mode = parse_approx_mode(mode_arg);  // throws on anything else
  }
  std::size_t hit_cap =
      static_cast<std::size_t>(args.get_int("max-approx-hits", 0));
  if (hit_cap == 0) hit_cap = kDefaultApproxHitCap;

  const PipelineConfig config = config_from_args(args);
  Pipeline pipeline(config);
  pipeline.encode(index_path);
  const auto records = read_fastq(reads_path);
  const ReadBatch batch = ReadBatch::from_fastq(records);

  // Scheme mode needs the reverse-text index too; build it over the same
  // text with the same RRR geometry so both directions rank identically.
  std::unique_ptr<BidirFmIndex<RrrWaveletOcc>> bidir;
  if (approx_mode == ApproxMode::kScheme) {
    const RrrParams params = config.rrr;
    bidir = std::make_unique<BidirFmIndex<RrrWaveletOcc>>(
        pipeline.index(), pipeline.reference().concatenated(),
        [params](std::span<const std::uint8_t> symbols) {
          return RrrWaveletOcc(symbols, params);
        });
  }

  const StagedFpgaMapper mapper(pipeline.index(), DeviceSpec{}, mismatches,
                                approx_mode, bidir.get(), hit_cap);
  StagedMapReport report;
  const auto results = mapper.map(batch, &report, config.search_mode);

  std::printf("staged approximate mapping, up to %u mismatches (%s mode)\n",
              mismatches, approx_mode_name(approx_mode));
  std::printf("%8s %10s %10s %12s %14s %14s\n", "stage", "reads in", "aligned",
              "steps", "reconf [ms]", "kernel [ms]");
  for (const auto& stage : report.stages) {
    std::printf("%6u mm %10llu %10llu %12llu %14.1f %14.3f\n", stage.mismatches,
                static_cast<unsigned long long>(stage.reads_in),
                static_cast<unsigned long long>(stage.reads_aligned),
                static_cast<unsigned long long>(stage.steps_executed),
                stage.reconfigure_seconds * 1e3, stage.kernel_seconds * 1e3);
  }
  std::size_t unaligned = 0;
  for (const auto& result : results) {
    unaligned += result.stage == StagedReadResult::kUnaligned;
  }
  std::uint64_t truncated = 0;
  for (const auto& stage : report.stages) truncated += stage.truncated_reads;
  std::printf("unaligned after all stages: %zu/%zu, modeled total %.1f ms\n", unaligned,
              results.size(), report.total_seconds() * 1e3);
  if (truncated != 0) {
    std::printf("warning: %llu read(s) hit the %zu-hit cap; loci lists truncated\n",
                static_cast<unsigned long long>(truncated), hit_cap);
  }
  return 0;
}

int cmd_map_paired(const ArgParser& args) {
  const std::string index_path = args.get("index");
  const std::string reads1 = args.get("reads1");
  const std::string reads2 = args.get("reads2");
  if (index_path.empty() || reads1.empty() || reads2.empty()) return usage();

  Pipeline pipeline(config_from_args(args));
  pipeline.encode(index_path);

  const ReadBatch mates1 = ReadBatch::from_fastq(read_fastq(reads1));
  const ReadBatch mates2 = ReadBatch::from_fastq(read_fastq(reads2));

  PairedEndConfig config;
  config.min_insert = static_cast<std::uint32_t>(args.get_int("min-insert", 100));
  config.max_insert = static_cast<std::uint32_t>(args.get_int("max-insert", 1000));
  const auto pairs =
      map_pairs(pipeline.index(), pipeline.reference(), mates1, mates2, config,
                static_cast<unsigned>(args.get_int("threads", 1)));

  std::size_t counts[4] = {0, 0, 0, 0};
  double insert_sum = 0.0;
  for (const auto& pair : pairs) {
    counts[static_cast<int>(pair.pair_class)]++;
    if (pair.pair_class == PairClass::kProperPair) insert_sum += pair.insert_size;
  }
  std::printf("pairs: %zu\n  proper:       %zu\n  discordant:   %zu\n"
              "  one unmapped: %zu\n  unmapped:     %zu\n",
              pairs.size(), counts[0], counts[1], counts[2], counts[3]);
  if (counts[0] > 0) {
    std::printf("mean insert of proper pairs: %.1f bp\n",
                insert_sum / static_cast<double>(counts[0]));
  }
  return 0;
}

int cmd_stats(const ArgParser& args) {
  const std::string index_path = args.get("index");
  if (index_path.empty()) return usage();
  Pipeline pipeline(config_from_args(args));
  pipeline.encode(index_path);
  const IndexStats stats = compute_index_stats(pipeline.index());
  std::printf("index: %s\nsequences: %zu (first: %s)\n", index_path.c_str(),
              pipeline.reference().num_sequences(), pipeline.reference_name().c_str());
  std::printf("%s", format_index_stats(stats).c_str());
  return 0;
}

int cmd_serve(const ArgParser& args) {
  WebServiceOptions options;
  options.pipeline = config_from_args(args);
  options.store_dir = args.get("store-dir");
  options.load_mode = load_mode_from_args(args);
  options.memory_budget_bytes =
      static_cast<std::size_t>(args.get_int(
          "memory-budget-mb",
          static_cast<std::int64_t>(IndexRegistry::kDefaultMemoryBudget >> 20)))
      << 20;
  options.jobs.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  options.jobs.queue_capacity =
      static_cast<std::size_t>(args.get_int("max-queue", 64));
  options.jobs.default_timeout =
      std::chrono::milliseconds(args.get_int("job-timeout", 0) * 1000);
  options.http.worker_threads =
      static_cast<std::size_t>(args.get_int("http-threads", 8));
  options.http.max_body_bytes =
      static_cast<std::size_t>(args.get_int("max-body-mb", 64)) << 20;
  const std::string trace_flag = args.get("trace", "on");
  if (trace_flag == "on" || trace_flag.empty()) {
    options.trace.enabled = true;
  } else if (trace_flag == "off") {
    options.trace.enabled = false;
  } else {
    throw std::invalid_argument("unknown --trace value '" + trace_flag + "' (on|off)");
  }
  options.trace.slow_threshold_ms = args.get_double("trace-slow-ms", 0.0);
  options.trace.ring_capacity = static_cast<std::size_t>(args.get_int("trace-ring", 64));
  WebService service(options);
  service.start(static_cast<std::uint16_t>(args.get_int("port", 8080)));
  std::printf("BWaveR web service on http://127.0.0.1:%u/ (Ctrl-C to stop)\n",
              service.port());
  std::printf("job engine: %zu worker(s), queue capacity %zu\n",
              options.jobs.workers, options.jobs.queue_capacity);
  if (!options.store_dir.empty()) {
    std::printf("serving %zu reference(s) from %s\n", service.registry().size(),
                options.store_dir.c_str());
  }
  // Orchestration (multi-process tests, the CI e2e job) parses the bound
  // port from a pipe; stdio is block-buffered there, so push it out now.
  std::fflush(stdout);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(60));
    std::printf("%s\n", service.stats().summary_line().c_str());
    std::fflush(stdout);
  }
}

int cmd_router(const ArgParser& args) {
  fleet::RouterOptions options;
  for (const std::string& spec : args.get_list("backend")) {
    options.backends.push_back(fleet::parse_backend(spec));
  }
  if (options.backends.empty()) {
    std::fprintf(stderr, "bwaver router: at least one --backend HOST:PORT required\n");
    return usage();
  }
  options.shard_reads = static_cast<std::size_t>(args.get_int("shard-reads", 256));
  options.hedge_quantile = args.get_double("hedge-quantile", 0.95);
  options.hedge_min_delay = std::chrono::milliseconds(args.get_int("hedge-min-ms", 20));
  options.max_attempts = static_cast<std::size_t>(args.get_int("max-attempts", 3));
  options.tenant_rate = args.get_double("tenant-rate", 0.0);
  options.tenant_burst = args.get_double("tenant-burst", 0.0);
  options.health_interval =
      std::chrono::milliseconds(args.get_int("health-interval-ms", 250));
  options.map_timeout = std::chrono::milliseconds(args.get_int("map-timeout-ms", 0));
  options.http.worker_threads =
      static_cast<std::size_t>(args.get_int("http-threads", 8));
  options.http.max_body_bytes =
      static_cast<std::size_t>(args.get_int("max-body-mb", 64)) << 20;

  fleet::RouterService router(std::move(options));
  router.start(static_cast<std::uint16_t>(args.get_int("port", 8090)));
  std::printf("BWaveR router on http://127.0.0.1:%u/ (Ctrl-C to stop)\n", router.port());
  for (const auto& snapshot : router.backends()) {
    std::printf("backend: %s\n", snapshot.key.c_str());
  }
  std::fflush(stdout);  // port line is parsed from a pipe by orchestration
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(60));
    std::size_t up = 0;
    for (const auto& snapshot : router.backends()) up += snapshot.up ? 1 : 0;
    std::printf("router: %zu/%zu backend(s) up\n", up, router.backends().size());
    std::fflush(stdout);
  }
}

int cmd_pipeline(const ArgParser& args) {
  const std::string ref_path = args.get("ref");
  const std::string reads_path = args.get("reads");
  const std::string out = args.get("out", "out.sam");
  if (ref_path.empty() || reads_path.empty()) return usage();

  Pipeline pipeline(config_from_args(args));
  const std::string index_path = out + ".bwvr";
  pipeline.compute_bwt_sa(ref_path, index_path);
  pipeline.encode(index_path);
  const MappingOutcome outcome = pipeline.map_reads(reads_path, out);
  std::printf("reference: %s\n", pipeline.reference_name().c_str());
  std::printf("step 1 (BWT+SA): %.3f s\nstep 2 (encode): %.3f s\nstep 3 (map): %.3f s\n",
              pipeline.timings().bwt_sa_seconds, pipeline.timings().encode_seconds,
              pipeline.timings().mapping_seconds);
  std::printf("mapped %llu/%llu reads (%llu occurrences) -> %s\n",
              static_cast<unsigned long long>(outcome.mapped),
              static_cast<unsigned long long>(outcome.reads),
              static_cast<unsigned long long>(outcome.occurrences), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  bwaver::ArgParser args(argc - 1, argv + 1);
  try {
    if (command == "simulate-genome") return cmd_simulate_genome(args);
    if (command == "simulate-reads") return cmd_simulate_reads(args);
    if (command == "index") return cmd_index(args);
    if (command == "map") return cmd_map(args);
    if (command == "map-approx") return cmd_map_approx(args);
    if (command == "map-paired") return cmd_map_paired(args);
    if (command == "pipeline") return cmd_pipeline(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "router") return cmd_router(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bwaver: error: %s\n", e.what());
    return 1;
  }
}
