// Argument parsing helpers shared by the CLI and the example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace bwaver {

/// Tiny `--flag value` / `--flag=value` / positional argument parser.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& flag) const { return flags_.count(flag) != 0; }

  std::string get(const std::string& flag, const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bwaver
