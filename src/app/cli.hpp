// Argument parsing helpers shared by the CLI and the example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace bwaver {

/// Tiny `--flag value` / `--flag=value` / positional argument parser.
/// Flags may repeat: get() returns the last occurrence (legacy behavior),
/// get_list() returns every occurrence in order (`--backend a --backend b`).
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& flag) const { return flags_.count(flag) != 0; }

  std::string get(const std::string& flag, const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;

  /// All values given for a repeatable flag, in command-line order (empty
  /// when the flag was never passed).
  std::vector<std::string> get_list(const std::string& flag) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::vector<std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bwaver
