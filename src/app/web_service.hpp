// BWaveR web service (paper, Sec. III-D / Fig. 4): the "intuitive web
// application" front-end over the three-step pipeline. Endpoints:
//
//   GET  /           — HTML landing page with usage instructions
//   GET  /status     — reference state and step timings
//   POST /reference  — body: FASTA or FASTA.gz; runs steps 1+2
//   POST /map        — body: FASTQ or FASTQ.gz; runs step 3, returns SAM
//
// The web layer holds one pipeline (one reference at a time), mirroring the
// paper's single-board deployment; concurrent POSTs are serialized.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "app/http_server.hpp"
#include "mapper/pipeline.hpp"

namespace bwaver {

class WebService {
 public:
  explicit WebService(PipelineConfig config = PipelineConfig{});

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  void start(std::uint16_t port = 0);
  void stop() { server_.stop(); }

  std::uint16_t port() const noexcept { return server_.port(); }

 private:
  HttpResponse handle_index() const;
  HttpResponse handle_status() const;
  HttpResponse handle_reference(const HttpRequest& request);
  HttpResponse handle_map(const HttpRequest& request);

  PipelineConfig config_;
  std::unique_ptr<Pipeline> pipeline_;
  mutable std::mutex mutex_;
  HttpServer server_;
};

}  // namespace bwaver
