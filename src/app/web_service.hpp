// BWaveR web service (paper, Sec. III-D / Fig. 4): the "intuitive web
// application" front-end over the three-step pipeline, grown into a
// multi-tenant serving layer with an asynchronous mapping-job engine.
//
// Synchronous endpoints:
//   GET  /              — HTML landing page with usage instructions
//   GET  /status        — registry state and memory budget
//   GET  /references    — JSON listing of the loaded/stored references
//   POST /reference     — body: FASTA or FASTA.gz; runs steps 1+2 and
//                         registers (and, with a store directory, persists)
//                         the index. `?name=X` overrides the reference name
//   POST /map           — body: FASTQ or FASTQ.gz; queued as a mapping job
//                         like /jobs but waited on inline, then the SAM is
//                         returned. Shares admission control: 503 +
//                         Retry-After when the queue is full
//   POST /evict         — `?ref=X`; drops the resident copy
//
// Fleet endpoints (docs/fleet.md — consumed by the router/gateway):
//   GET  /healthz       — liveness: constant "ok", never touches the job
//                         queue or registry locks (sub-millisecond)
//   GET  /readyz        — readiness: "ok" while accepting work, 503 once
//                         draining; same no-lock discipline
//   POST /admin/rollover— body: FASTA[.gz]; `?ref=X` (required). Rebuilds
//                         the reference off the serving path and flips the
//                         registry to the new generation with zero
//                         downtime (in-flight maps finish on the old one)
//
// Async job endpoints (the million-user path — submit, poll, fetch):
//   POST   /jobs            — body: FASTQ[.gz]; `?ref=X&priority=high|
//                             normal|low&timeout-ms=N`. Returns 202 + JSON
//                             {"id":...} immediately, 503 when full
//   GET    /jobs            — JSON list of retained jobs, newest first
//   GET    /jobs/{id}       — JSON status/progress of one job
//   GET    /jobs/{id}/result— the SAM payload once done (409 while
//                             pending, 410 after cancel/timeout)
//   DELETE /jobs/{id}       — cooperative cancellation
//   GET    /stats           — ServerStats JSON: admission counters,
//                             queue-wait/map-time histograms, per-reference
//                             request counts
//
// Observability endpoints (docs/observability.md):
//   GET    /metrics         — Prometheus text exposition of the shared
//                             obs::MetricsRegistry (job counters, latency
//                             histograms, queue/registry gauges, per-stage
//                             mapping histograms)
//   GET    /trace/recent    — JSON ring of recent span trees; `?chrome=1`
//                             returns Chrome trace_event JSON for
//                             chrome://tracing / Perfetto
//
// Mapping work executes on the JobManager's fixed worker pool, never on
// HTTP connection threads; both /map and /jobs funnel through the same
// bounded queue, so overload sheds load instead of forking threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "app/http_server.hpp"
#include "io/fasta.hpp"
#include "jobs/job_manager.hpp"
#include "mapper/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/index_registry.hpp"

namespace bwaver {

struct WebServiceOptions {
  PipelineConfig pipeline{};
  std::string store_dir;  ///< empty: memory-only (no persistence)
  std::size_t memory_budget_bytes = IndexRegistry::kDefaultMemoryBudget;
  /// How v3 archives are materialized on acquire (--load-mode; v1/v2
  /// archives always deserialize onto the heap).
  LoadMode load_mode = default_load_mode();
  JobManagerConfig jobs{};  ///< worker count, queue capacity, timeout, GC
  HttpServerOptions http{};
  /// Tracing knobs (--trace*): span trees per job, /trace/recent ring.
  obs::TraceConfig trace{};
};

class WebService {
 public:
  explicit WebService(PipelineConfig config)
      : WebService([&config] {
          WebServiceOptions options;
          options.pipeline = config;
          return options;
        }()) {}
  explicit WebService(WebServiceOptions options = WebServiceOptions{});

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  void start(std::uint16_t port = 0);
  void stop() { server_.stop(); }

  std::uint16_t port() const noexcept { return server_.port(); }
  const IndexRegistry& registry() const noexcept { return registry_; }
  JobManager& jobs() noexcept { return jobs_; }
  const ServerStats& stats() const noexcept { return jobs_.stats(); }
  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  obs::TraceCollector& traces() noexcept { return *traces_; }

 private:
  HttpResponse handle_index() const;
  HttpResponse handle_status() const;
  HttpResponse handle_references() const;
  HttpResponse handle_reference(const HttpRequest& request);
  HttpResponse handle_rollover(const HttpRequest& request);
  HttpResponse handle_map(const HttpRequest& request);
  HttpResponse handle_evict(const HttpRequest& request);
  HttpResponse handle_job_submit(const HttpRequest& request);
  HttpResponse handle_job_list() const;
  HttpResponse handle_job_status(const HttpRequest& request) const;
  HttpResponse handle_job_result(const HttpRequest& request) const;
  HttpResponse handle_job_cancel(const HttpRequest& request);
  HttpResponse handle_stats() const;
  HttpResponse handle_metrics();
  HttpResponse handle_trace_recent(const HttpRequest& request) const;

  /// Parses, validates, and enqueues one mapping job; returns the id via
  /// `job_id` or an error response via the return value (status != 0).
  HttpResponse submit_map_job(const HttpRequest& request, JobPriority priority,
                              std::uint64_t& job_id);

  /// Resolves `?ref=` to a registry name, defaulting to the single loaded
  /// reference. Returns "" (with `error` filled) when ambiguous or unknown.
  std::string resolve_ref_name(const HttpRequest& request, HttpResponse& error) const;

  /// Runs steps 1+2 (encode, build) over parsed FASTA records.
  StoredIndex build_stored_index(const std::vector<FastaRecord>& records) const;

  WebServiceOptions options_;
  IndexRegistry registry_;
  // Declared before jobs_: the JobManager's ServerStats registers its
  // counters into this shared registry, and workers attach job traces to
  // this collector.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<obs::TraceCollector> traces_;
  JobManager jobs_;
  std::mutex build_mutex_;  ///< serializes index *builds* (CPU-heavy), not maps
  std::mutex scrape_mutex_;  ///< serializes /metrics gauge refresh + render
  HttpServer server_;
};

}  // namespace bwaver
