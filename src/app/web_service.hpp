// BWaveR web service (paper, Sec. III-D / Fig. 4): the "intuitive web
// application" front-end over the three-step pipeline, grown into a
// multi-tenant serving layer. Endpoints:
//
//   GET  /              — HTML landing page with usage instructions
//   GET  /status        — registry state and memory budget
//   GET  /references    — JSON listing of the loaded/stored references
//   POST /reference     — body: FASTA or FASTA.gz; runs steps 1+2 and
//                         registers (and, with a store directory, persists)
//                         the index. `?name=X` overrides the reference name
//                         (default: the first FASTA record's name).
//   POST /map           — body: FASTQ or FASTQ.gz; runs step 3 against
//                         `?ref=X` (optional when exactly one reference is
//                         loaded) and returns SAM.
//   POST /evict         — `?ref=X`; drops the resident copy (still
//                         acquirable from its archive in persistent mode)
//
// Indexes come from an IndexRegistry: mapping requests take refcounted read
// handles and run concurrently; only build and evict take the registry's
// write lock. With a store directory the registry serves archives built by
// `bwaver index build` and persists uploads across restarts.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "app/http_server.hpp"
#include "mapper/pipeline.hpp"
#include "store/index_registry.hpp"

namespace bwaver {

struct WebServiceOptions {
  PipelineConfig pipeline{};
  std::string store_dir;  ///< empty: memory-only (no persistence)
  std::size_t memory_budget_bytes = IndexRegistry::kDefaultMemoryBudget;
};

class WebService {
 public:
  explicit WebService(PipelineConfig config) : WebService(WebServiceOptions{config, "", IndexRegistry::kDefaultMemoryBudget}) {}
  explicit WebService(WebServiceOptions options = WebServiceOptions{});

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  void start(std::uint16_t port = 0);
  void stop() { server_.stop(); }

  std::uint16_t port() const noexcept { return server_.port(); }
  const IndexRegistry& registry() const noexcept { return registry_; }

 private:
  HttpResponse handle_index() const;
  HttpResponse handle_status() const;
  HttpResponse handle_references() const;
  HttpResponse handle_reference(const HttpRequest& request);
  HttpResponse handle_map(const HttpRequest& request);
  HttpResponse handle_evict(const HttpRequest& request);

  /// Resolves `?ref=` to a registry name, defaulting to the single loaded
  /// reference. Returns "" (with `error` filled) when ambiguous or unknown.
  std::string resolve_ref_name(const HttpRequest& request, HttpResponse& error) const;

  WebServiceOptions options_;
  IndexRegistry registry_;
  std::mutex build_mutex_;  ///< serializes index *builds* (CPU-heavy), not maps
  HttpServer server_;
};

}  // namespace bwaver
